"""Old-vs-new class-support kernels and the batched permutation pass.

The PR-4 tentpole replaced the permutation engine's counting kernel —
a Python loop over arbitrary-precision-int ``popcount(t & class_bits)``
per forest node (the ``"bitset"`` policy) — with the packed uint64
:class:`~repro.bitmat.BitMatrix` (the ``"packed"`` policy): the whole
forest answers one labelling, or a whole *batch* of labellings, through
C-level ``bitwise_and`` + ``bitwise_count`` + row sums.

This bench times both kernels head-to-head on a 1000-pattern × 10k-
record forest (the acceptance gate: the batch kernel must be >= 5x the
bigint loop per labelling) and the end-to-end permutation pass under
both policies, then rewrites the repo-root ``BENCH_permutation.json``
artifact with this run's numbers — the first entry of the repo's perf
trajectory; CI archives one per commit (``REPRO_BENCH_JSON``
overrides the path).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from _scale import banner, bench_envelope, current_scale, write_bench
from repro import bitset as bs
from repro.corrections import PermutationEngine
from repro.data import GeneratorConfig, generate
from repro.mining import PatternForest, mine_class_rules
from repro.mining.patterns import Pattern

KERNEL_PATTERNS = 1000
KERNEL_RECORDS = 10_000
KERNEL_BATCH = 64
SEED = 2024

DEFAULT_OUT = Path(__file__).resolve().parents[1] / \
    "BENCH_permutation.json"


def _synthetic_forest(n_patterns: int, n_records: int, seed: int):
    """A flat DFS forest of random ~10%-density tidsets.

    Kernel timing needs controlled shape, not mined structure: every
    node is a root, so both policies store exactly ``n_patterns``
    tidsets of the same universe.
    """
    rng = np.random.default_rng(seed)
    patterns = []
    for node_id in range(n_patterns):
        flags = rng.random(n_records) < 0.1
        tidset = bs.from_numpy_bool(flags)
        patterns.append(Pattern(
            node_id=node_id, parent_id=-1,
            items=frozenset((node_id,)), tidset=tidset,
            support=int(flags.sum()), depth=0))
    indicator = rng.random(n_records) < 0.5
    return patterns, indicator


def _timed_repeat(fn, repeats: int = 3):
    """Best-of-N wall clock (seconds) and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_permutation_kernel():
    scale = current_scale()

    # ------------------------------------------------------------- #
    # kernel head-to-head: 1000 patterns x 10k records               #
    # ------------------------------------------------------------- #
    patterns, indicator = _synthetic_forest(KERNEL_PATTERNS,
                                            KERNEL_RECORDS, SEED)
    bigint_forest = PatternForest(patterns, KERNEL_RECORDS, "bitset")
    packed_forest = PatternForest(patterns, KERNEL_RECORDS, "packed")

    bigint_seconds, bigint_out = _timed_repeat(
        lambda: bigint_forest.class_supports(indicator))
    packed_seconds, packed_out = _timed_repeat(
        lambda: packed_forest.class_supports(indicator))
    assert (bigint_out == packed_out).all()

    rng = np.random.default_rng(SEED + 1)
    batch = np.stack([rng.permutation(indicator)
                      for _ in range(KERNEL_BATCH)])
    batch_seconds, batch_out = _timed_repeat(
        lambda: packed_forest.class_supports_batch(batch))
    batch_per_labelling = batch_seconds / KERNEL_BATCH
    assert (batch_out[0]
            == bigint_forest.class_supports(batch[0])).all()

    speedup_single = bigint_seconds / max(packed_seconds, 1e-12)
    speedup_batch = bigint_seconds / max(batch_per_labelling, 1e-12)

    # ------------------------------------------------------------- #
    # end-to-end permutation pass, bitset vs packed policy           #
    # ------------------------------------------------------------- #
    config = GeneratorConfig(
        n_records=scale.synth_records, n_attributes=24, n_rules=2,
        min_coverage=scale.synth_records // 5,
        max_coverage=scale.synth_records // 4,
        min_confidence=0.7, max_confidence=0.9)
    ruleset = mine_class_rules(generate(config, seed=SEED).dataset,
                               scale.synth_records // 5)
    n_perm = scale.runtime_permutations
    end_to_end = {}
    reference = None
    for policy in ("bitset", "packed"):
        engine = PermutationEngine(ruleset, n_permutations=n_perm,
                                   seed=SEED, policy=policy)
        elapsed, _ = _timed_repeat(lambda e=engine: e.run(), repeats=1)
        distribution = engine.min_p_distribution()
        if reference is None:
            reference = distribution
        else:
            # Hard guarantee: the policies are bit-identical.
            assert (distribution == reference).all()
        end_to_end[policy] = {
            "seconds": elapsed,
            "ms_per_permutation": elapsed * 1000 / n_perm,
        }
    end_to_end_speedup = (end_to_end["bitset"]["seconds"]
                          / max(end_to_end["packed"]["seconds"], 1e-12))

    record = bench_envelope(
        "permutation_kernel",
        gates={
            "speedup_batch": {"value": speedup_batch, "min": 5.0},
        },
        metrics={
            "kernel": {
                "n_patterns": KERNEL_PATTERNS,
                "n_records": KERNEL_RECORDS,
                "batch_size": KERNEL_BATCH,
                "bigint_ms_per_labelling": bigint_seconds * 1000,
                "packed_ms_per_labelling": packed_seconds * 1000,
                "packed_batch_ms_per_labelling":
                    batch_per_labelling * 1000,
                "speedup_single": speedup_single,
                "speedup_batch": speedup_batch,
            },
            "end_to_end": {
                "n_permutations": n_perm,
                "n_rules": ruleset.n_tests,
                "n_records": scale.synth_records,
                "policies": end_to_end,
                "packed_speedup": end_to_end_speedup,
            },
        },
    )
    out_path = write_bench(record, str(DEFAULT_OUT))

    lines = [
        f"kernel ({KERNEL_PATTERNS} patterns x {KERNEL_RECORDS} "
        f"records):",
        f"  bigint loop:   {bigint_seconds * 1000:8.3f} ms/labelling",
        f"  packed single: {packed_seconds * 1000:8.3f} ms/labelling "
        f"({speedup_single:.1f}x)",
        f"  packed batch:  {batch_per_labelling * 1000:8.3f} "
        f"ms/labelling ({speedup_batch:.1f}x, B={KERNEL_BATCH})",
        f"end-to-end ({n_perm} permutations, {ruleset.n_tests} rules):",
        f"  bitset policy: "
        f"{end_to_end['bitset']['ms_per_permutation']:8.3f} ms/perm",
        f"  packed policy: "
        f"{end_to_end['packed']['ms_per_permutation']:8.3f} ms/perm "
        f"({end_to_end_speedup:.1f}x)",
    ]
    print()
    print(banner("permutation kernel: bigint loop vs packed uint64",
                 "\n".join(lines)))
    print(f"wrote {out_path}")

    # The acceptance gate: on the 1000x10k forest the batched packed
    # kernel replaces ~n_patterns bigint AND+popcount calls per
    # labelling with a few array ops — anything under 5x means the
    # kernel regressed.
    assert speedup_batch >= 5.0, (
        f"packed batch kernel only {speedup_batch:.1f}x over the "
        f"bigint loop")
