"""Figure 13: impact of the number of rules tested (FDR control).

Same sweep as Figure 12 (conf(Rt)=0.60, min_sup 100..400) with the
FDR-controlling panel. Paper findings: BH and Perm_FDR track each
other closely across the whole sweep; the holdout variants stay the
most conservative; FDR remains controlled (well under the panel's 0.2
axis) everywhere.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import FDR_METHODS, ExperimentRunner, format_series


def run_experiment():
    scale = current_scale()
    coverage = scale.synth_records // 5
    config = GeneratorConfig(
        n_records=scale.synth_records, n_attributes=40, n_rules=1,
        min_length=2, max_length=4,
        min_coverage=coverage, max_coverage=coverage,
        min_confidence=0.60, max_confidence=0.60)
    runner = ExperimentRunner(methods=FDR_METHODS,
                              n_permutations=scale.permutations)
    sweep = {}
    for min_sup in scale.minsup_sweep:
        sweep[min_sup] = runner.run(config, min_sup=min_sup,
                                    n_replicates=scale.replicates,
                                    seed=1313)
    return sweep


def test_fig13_minsup_fdr(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()
    min_sups = list(sweep)

    power = {m: [sweep[s].aggregates[m].power for s in min_sups]
             for m in FDR_METHODS}
    fdr = {m: [sweep[s].aggregates[m].fdr for s in min_sups]
           for m in FDR_METHODS}
    false_positives = {
        m: [sweep[s].aggregates[m].avg_false_positives for s in min_sups]
        for m in FDR_METHODS}

    print()
    print(banner("Figure 13(a): power when controlling FDR at 5%",
                 f"conf(Rt)=0.60, {scale.replicates} replicates"))
    print(format_series("min_sup", min_sups, power))
    print()
    print(banner("Figure 13(b): FDR"))
    print(format_series("min_sup", min_sups, fdr))
    print()
    print(banner("Figure 13(c): average #false positives"))
    print(format_series("min_sup", min_sups, false_positives))

    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    # BH ~ Perm_FDR across the sweep (the paper's FDR headline).
    assert abs(mean(power["BH"]) - mean(power["Perm_FDR"])) <= 0.25
    # Holdout most conservative.
    assert mean(power["HD_BH"]) <= \
        max(mean(power["BH"]), mean(power["Perm_FDR"])) + 1e-9
    # FDR controlled for all corrected methods.
    for method in ("BH", "Perm_FDR", "HD_BH", "RH_BH"):
        assert mean(fdr[method]) <= 0.25, method
    # No-correction false positives dwarf everything else.
    assert mean(false_positives["No correction"]) >= \
        mean(false_positives["BH"])
