"""Packed-native ingest and closed mining vs the bigint baseline.

The packed-native PR retired the bigint tidset substrate: ingest
tokenizes each attribute column once against a plain dict and packs
every cell into one ``(n_items, ceil(n/64))`` uint64 arena through a
single vectorized :func:`~repro.tidvector.pack_pairs` call, where the
old path ran ``catalog.add_pair`` plus a per-cell bigint
``tids |= 1 << r`` (an Item allocation, a dict probe on it, and an
O(n)-byte int copy for every cell). This bench times the two ingest
implementations head-to-head on the synthetic 10k x 1k dataset
(10 000 records, 125 attributes x 8 values = 1 000 items) — the
acceptance gate is packed-native >= 3x — plus the closed miner's
wall-clock on the packed arena, then rewrites the repo-root
``BENCH_mining.json`` artifact (``REPRO_BENCH_JSON`` overrides the
path).
"""

from __future__ import annotations

import random
import time
from pathlib import Path

from _scale import banner, bench_envelope, current_scale, write_bench
from repro.data import Dataset
from repro.data.items import ItemCatalog
from repro.mining import mine_closed

SEED = 7041
N_ATTRIBUTES = 125
N_VALUES = 8          # 125 attributes x 8 values = 1000 items
DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_mining.json"


def _synthetic_records(n_records: int):
    """Uniform categorical records: 10k x 1k items at full scale."""
    rng = random.Random(SEED)
    records = [
        [f"v{rng.randrange(N_VALUES)}" for _ in range(N_ATTRIBUTES)]
        for _ in range(n_records)
    ]
    labels = ["c0" if rng.random() < 0.5 else "c1"
              for _ in range(n_records)]
    return records, labels


def _bigint_ingest(records):
    """The retired ``Dataset.from_records`` hot loop, verbatim.

    One ``catalog.add_pair`` (frozen-dataclass Item + dict probe) and
    one arbitrary-precision ``|= 1 << r`` per cell — the baseline the
    packed-native ingest is gated against.
    """
    catalog = ItemCatalog()
    tidsets = []
    for r, record in enumerate(records):
        for j, value in enumerate(record):
            if value is None:
                continue
            item_id = catalog.add_pair(f"A{j}", str(value))
            if item_id == len(tidsets):
                tidsets.append(0)
            tidsets[item_id] |= 1 << r
    return catalog, tidsets


def _timed(fn, repeats=3):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_mining_ingest():
    scale = current_scale()
    n_records = 2_000 if scale.name == "smoke" else 10_000
    repeats = 1 if scale.name == "smoke" else 3
    records, labels = _synthetic_records(n_records)

    bigint_seconds, (old_catalog, old_tidsets) = _timed(
        lambda: _bigint_ingest(records), repeats)
    packed_seconds, dataset = _timed(
        lambda: Dataset.from_records(records, labels), repeats)
    speedup = bigint_seconds / max(packed_seconds, 1e-12)

    # Identical catalogs and identical sets, bit for bit, before any
    # timing claim counts.
    assert [str(i) for i in old_catalog] == \
        [str(i) for i in dataset.catalog]
    for row, bits in zip(dataset.item_tidsets, old_tidsets):
        assert row.to_bigint() == bits

    min_sup = max(2, n_records // 20)
    mine_seconds, patterns = _timed(
        lambda: mine_closed(dataset.item_tidsets, dataset.n_records,
                            min_sup, max_length=3), repeats=1)

    record = bench_envelope(
        "mining_ingest",
        gates={
            "ingest_speedup": {"value": speedup, "min": 3.0},
        },
        metrics={
            "ingest": {
                "n_records": n_records,
                "n_items": dataset.n_items,
                "n_cells": n_records * N_ATTRIBUTES,
                "bigint_seconds": bigint_seconds,
                "packed_seconds": packed_seconds,
                "speedup": speedup,
            },
            "closed_mining": {
                "min_sup": min_sup,
                "max_length": 3,
                "n_patterns": len(patterns),
                "seconds": mine_seconds,
            },
        },
    )
    out_path = write_bench(record, str(DEFAULT_OUT))

    lines = [
        f"ingest ({n_records} records x {dataset.n_items} items, "
        f"{n_records * N_ATTRIBUTES} cells):",
        f"  bigint from_records : {bigint_seconds * 1000:9.1f} ms",
        f"  packed from_records : {packed_seconds * 1000:9.1f} ms "
        f"({speedup:.1f}x)",
        f"closed mining (min_sup={min_sup}, max_length=3): "
        f"{mine_seconds * 1000:9.1f} ms, {len(patterns)} patterns",
    ]
    print()
    print(banner("packed-native ingest vs bigint baseline",
                 "\n".join(lines)))
    print(f"wrote {out_path}")

    # The acceptance gate: columnar tokenization + one vectorized pack
    # must beat the per-cell Item/bigint loop decisively on 10k x 1k.
    assert speedup >= 3.0, (
        f"packed-native ingest only {speedup:.1f}x over the bigint "
        f"baseline")
