"""Table 4: rules by confidence and p-value level on german.

Paper setting: min_sup=60, rules reported as ``=> good`` (70% class
prior). The table's lesson: confidence and statistical significance
are nearly orthogonal — a min_conf=0.85 filter keeps hundreds of rules
with p > 1e-4, while raising it to 0.9 throws away hundreds of rules
with p < 1e-6. The bench prints our matrix next to those two headline
counts and asserts both phenomena.
"""

from __future__ import annotations

from _scale import banner
from repro.corrections import PermutationEngine, bonferroni
from repro.data import load_real_dataset
from repro.evaluation import confidence_pvalue_bins, format_binned_table
from repro.mining import mine_class_rules


def run_experiment():
    dataset = load_real_dataset("german")
    ruleset = mine_class_rules(dataset, min_sup=60, rhs_class=0)
    matrix = confidence_pvalue_bins(ruleset.rules)
    return dataset, ruleset, matrix


def test_table4_german_bins(benchmark):
    dataset, ruleset, matrix = benchmark.pedantic(run_experiment,
                                                  rounds=1, iterations=1)
    print()
    print(banner("Table 4: german, rules => good, min_sup=60",
                 f"{ruleset.n_tests} rules tested "
                 f"(paper: 13064)"))
    print(format_binned_table(matrix))

    bc = bonferroni(ruleset, 0.05)
    engine = PermutationEngine(ruleset, n_permutations=100, seed=4)
    perm = engine.fwer(0.05)
    print(f"\nBC cut-off:        {bc.threshold:.3g} "
          f"(paper: 3.83e-06)")
    print(f"Perm_FWER cut-off: {perm.threshold:.3g} "
          f"(paper: 1.83e-05)")

    # Phenomenon 1: rules with confidence >= 0.85 but p > 1e-4 exist in
    # quantity (the paper counts 834).
    high_conf_weak = sum(
        matrix[i][j]
        for i in range(4)       # p-value bins above 1e-4
        for j in range(1, 4))   # confidence >= 0.85
    assert high_conf_weak > 20

    # Phenomenon 2: rules with p < 1e-6 but confidence < 0.9 exist in
    # quantity (the paper counts 247 below the 0.9 filter).
    strong_low_conf = sum(
        matrix[i][j]
        for i in range(6, 9)    # p-value bins below 1e-6
        for j in range(0, 2))   # confidence < 0.9
    assert strong_low_conf > 20

    # The permutation cut-off is at least Bonferroni's (dependence-aware
    # thresholds can only be looser), mirroring the paper's two values.
    assert perm.threshold >= bc.threshold
