"""Figure 3: distribution of p-values with and without an embedded rule.

Paper setting: N=2000, A=40, conf(R)=0.8; three datasets — random,
one embedded rule with coverage 200, one with coverage 400. The paper's
point: a single embedded rule drags *many* by-product rules to low
p-values, so naive false-positive accounting would report FDR ~ 1.

Expected shape: the random curve has (almost) no mass below 1e-6, the
coverage-200 curve has some, the coverage-400 curve clearly more.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig, generate
from repro.evaluation import format_series, pvalue_cdf
from repro.mining import mine_class_rules

GRID = [1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0]


def _config(coverage):
    scale = current_scale()
    return GeneratorConfig(
        n_records=scale.synth_records, n_attributes=40,
        n_rules=0 if coverage == 0 else 1,
        min_length=2, max_length=4,
        min_coverage=max(coverage, 1), max_coverage=max(coverage, 1),
        min_confidence=0.8, max_confidence=0.8)


def compute_distributions():
    scale = current_scale()
    min_sup = max(40, scale.synth_records // 20)
    curves = {}
    for label, coverage in (("random", 0),
                            ("supp(X)=200", scale.synth_records // 10),
                            ("supp(X)=400", scale.synth_records // 5)):
        data = generate(_config(coverage), seed=303)
        ruleset = mine_class_rules(data.dataset, min_sup=min_sup)
        curves[label] = [count for _, count in
                         pvalue_cdf(ruleset.p_values(), grid=GRID)]
    return curves


def test_fig03_pvalue_distribution(benchmark):
    curves = benchmark.pedantic(compute_distributions, rounds=1,
                                iterations=1)
    scale = current_scale()
    print()
    print(banner("Figure 3: #rules with p-value <= x",
                 f"N={scale.synth_records}, A=40, conf(R)=0.8"))
    print(format_series("p <=", [f"{g:.0e}" for g in GRID], curves))

    random_curve = curves["random"]
    small = curves["supp(X)=200"]
    large = curves["supp(X)=400"]
    # Below 1e-6 (index 3): random has essentially nothing, embedded
    # rules produce real mass, larger coverage more so.
    assert random_curve[3] <= small[3] <= large[3]
    assert large[3] > 0
    # All curves end at their total rule count (monotone CDF).
    for series in curves.values():
        assert series == sorted(series)
