"""Ablation: STUCCO's layered Bonferroni in contrast-set mining.

Bay & Pazzani's contrast-set miner (the paper's ref [3]) is the
earliest citation for multiple-testing control inside a pattern search.
This ablation reproduces its core claim on synthetic group data:

* on **random** data (no group differences), naive per-test chi-square
  at 5% floods — one false contrast per twenty candidates — while the
  layered correction reports (near) zero; this is the contrast-set
  analogue of the paper's Figure 6;
* on data with a **planted** group difference, all three corrections
  keep finding the contrast, because a real effect's p-value is far
  below even the layered level — power is lost on *marginal* effects,
  not strong ones;
* the layered levels sit between naive and flat Bonferroni in
  stringency at level 1 and tighten with depth.
"""

from __future__ import annotations

import random

from _scale import banner, current_scale
from repro.contrast import find_contrast_sets
from repro.data import Dataset, GeneratorConfig, generate
from repro.evaluation import format_table

CORRECTIONS = ("none", "stucco", "bonferroni")


def _planted_dataset(n_records, rng):
    """Two groups; attribute A0 differs 70/30, the rest are noise."""
    records = []
    labels = []
    for r in range(n_records):
        group = r % 2
        rate = 0.7 if group == 0 else 0.3
        row = ["x1" if rng.random() < rate else "x0"]
        for __ in range(9):
            row.append(f"v{rng.randrange(3)}")
        records.append(row)
        labels.append(f"g{group}")
    names = ["A0"] + [f"N{j}" for j in range(9)]
    return Dataset.from_records(records, labels, names,
                                name="planted-contrast")


def run_experiment():
    scale = current_scale()
    n = max(400, scale.synth_records // 4)
    replicates = max(3, scale.replicates // 2)
    master = random.Random(31337)
    random_config = GeneratorConfig(n_records=n, n_attributes=10,
                                    n_rules=0)
    false_counts = {name: [] for name in CORRECTIONS}
    power = {name: [] for name in CORRECTIONS}
    for __ in range(replicates):
        seed = master.getrandbits(48)
        data = generate(random_config, seed=seed)
        for name in CORRECTIONS:
            result = find_contrast_sets(
                data.dataset, min_deviation=0.02, correction=name)
            false_counts[name].append(result.n_found)
        planted = _planted_dataset(n, random.Random(seed ^ 0xF00D))
        for name in CORRECTIONS:
            result = find_contrast_sets(
                planted, min_deviation=0.2, correction=name)
            hit = any(
                "A0" in {planted.catalog.item(i).attribute
                         for i in contrast.items}
                for contrast in result.contrast_sets)
            power[name].append(1.0 if hit else 0.0)
    return {"false_counts": false_counts, "power": power}


def test_ablation_contrast(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()

    def mean(values):
        return sum(values) / len(values)

    rows = []
    for name in CORRECTIONS:
        rows.append([
            name,
            f"{mean(results['false_counts'][name]):.1f}",
            f"{mean(results['power'][name]):.2f}",
        ])
    print()
    print(banner("Ablation: STUCCO layered correction (ref [3])",
                 f"{scale.replicates} replicates"))
    print(format_table(
        ["correction", "false contrasts (random data)",
         "power (planted 70/30 split)"],
        rows))

    false_counts = {name: mean(results["false_counts"][name])
                    for name in CORRECTIONS}
    power = {name: mean(results["power"][name])
             for name in CORRECTIONS}
    # Naive testing floods on random data; the corrections do not.
    assert false_counts["none"] > false_counts["stucco"]
    assert false_counts["stucco"] <= 1.0
    assert false_counts["bonferroni"] <= 1.0
    # A strong planted contrast survives every correction.
    for name in CORRECTIONS:
        assert power[name] == 1.0
