"""Ablation: Section 7's representative-pattern redundancy reduction.

The paper's closing remark: testing only representative patterns
reduces the number of hypotheses and should improve the power of every
correction approach. This ablation sweeps the merge tolerance
``delta`` on the Fig 8 embedded-rule workload and reports, per delta:

* the mean hypothesis count ``Nt`` (reduction vs delta=0);
* *exact* power — Section 5.2's definition, which credits detection
  only to the rule whose tidset equals the planted pattern's;
* *cluster* power — detection credited to any significant rule whose
  items are a sub- or super-pattern of the planted rule's and whose
  records overlap it (the planted signal surfacing through its
  cluster representative);
* achieved FWER under the Section 5.2 false-positive definition.

Expected shape — and the bench's headline finding: ``Nt`` falls
monotonically in delta and FWER stays controlled, but the two power
curves *diverge*. Exact power collapses with delta because the planted
pattern's own closed pattern is precisely the kind of near-duplicate
chain member the reduction absorbs; cluster power survives, because
the representative that absorbed it carries (almost) the same record
set and stays significant. Reduction improves the power *budget*
(``alpha / Nt`` grows) while changing *which* pattern reports the
discovery — a caveat Section 7's one-paragraph sketch does not
mention, and the reason the `redundancy_reduction.py` example tells
users to watch the rules they care about when sweeping delta.
"""

from __future__ import annotations

import random

from _scale import banner, current_scale
from repro.corrections import bonferroni
from repro.data import GeneratorConfig, generate
from repro.evaluation import evaluate_result, format_series
from repro.mining import mine_representative_rules

DELTAS = (0.0, 0.1, 0.2, 0.3, 0.5)


def _cluster_detected(result, data) -> bool:
    """Planted signal found in some (possibly representative) form."""
    planted = data.embedded_rules[0]
    planted_items = set(planted.item_ids)
    planted_tids = planted.tidset
    for rule in result.significant:
        if rule.class_index != planted.class_index:
            continue
        rule_items = set(rule.items)
        related = (rule_items <= planted_items
                   or rule_items >= planted_items)
        if related and any(
                data.dataset.item_tidsets[item] & planted_tids
                for item in rule.items):
            return True
    return False


def run_experiment():
    scale = current_scale()
    n = scale.synth_records
    coverage = n // 5
    min_sup = max(50, n * 150 // 2000)
    config = GeneratorConfig(
        n_records=n, n_attributes=40, n_rules=1,
        min_length=2, max_length=4,
        min_coverage=coverage, max_coverage=coverage,
        min_confidence=0.62, max_confidence=0.62)
    master = random.Random(9090)
    seeds = [master.getrandbits(48) for _ in range(scale.replicates)]
    results = {delta: {"n_tests": [], "power_exact": [],
                       "power_cluster": [], "fwer": []}
               for delta in DELTAS}
    for seed in seeds:
        data = generate(config, seed=seed)
        for delta in DELTAS:
            ruleset = mine_representative_rules(data.dataset, min_sup,
                                                delta=delta)
            result = bonferroni(ruleset, 0.05)
            outcome = evaluate_result(result, data.embedded_rules,
                                      data.dataset)
            results[delta]["n_tests"].append(ruleset.n_tests)
            results[delta]["power_exact"].append(outcome.power)
            results[delta]["power_cluster"].append(
                1.0 if _cluster_detected(result, data) else 0.0)
            results[delta]["fwer"].append(
                1.0 if outcome.n_false_positives > 0 else 0.0)
    return results


def test_ablation_representative(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()

    def mean(values):
        return sum(values) / len(values)

    series = {
        "mean Nt": [mean(results[d]["n_tests"]) for d in DELTAS],
        "exact power": [mean(results[d]["power_exact"])
                        for d in DELTAS],
        "cluster power": [mean(results[d]["power_cluster"])
                          for d in DELTAS],
        "BC FWER": [mean(results[d]["fwer"]) for d in DELTAS],
    }

    print()
    print(banner("Ablation: representative patterns (Section 7)",
                 f"conf(Rt)=0.62, {scale.replicates} replicates, "
                 f"Bonferroni at 5%"))
    print(format_series("delta", DELTAS, series))
    reduction = [1.0 - nt / series["mean Nt"][0]
                 for nt in series["mean Nt"]]
    print(format_series("delta", DELTAS, {"Nt reduction": reduction}))

    n_tests = series["mean Nt"]
    # The hypothesis count shrinks monotonically with delta (the
    # edge-relative merge guarantees this) ...
    assert all(a >= b for a, b in zip(n_tests, n_tests[1:]))
    # ... measurably so at the largest tolerance.
    assert n_tests[-1] < n_tests[0]
    # Error control is never lost by dropping hypotheses.
    assert all(f <= 0.3 for f in series["BC FWER"])
    # The planted signal keeps surfacing through its representative:
    # cluster power stays within noise of the delta=0 exact power.
    assert series["cluster power"][-1] \
        >= series["exact power"][0] - 0.2
    # The headline caveat: cluster power dominates exact power at
    # every delta (they coincide at delta=0).
    for exact, cluster in zip(series["exact power"],
                              series["cluster power"]):
        assert cluster >= exact - 1e-9
    assert series["exact power"][0] \
        == series["cluster power"][0]
