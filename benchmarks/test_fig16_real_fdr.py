"""Figure 16: #significant rules on real datasets, FDR controlled at 5%.

Paper findings: the counts reported by the direct adjustment (BH) and
the permutation approach are very similar on all datasets — the basis
for recommending plain BH for FDR control — while the holdout reports
much fewer on german and hypo.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.corrections import (
    HoldoutRun,
    PermutationEngine,
    benjamini_hochberg,
    no_correction,
)
from repro.data import load_real_dataset
from repro.evaluation import format_series
from repro.mining import mine_class_rules


def _sweeps():
    scale = current_scale()
    return {
        "adult": (load_real_dataset("adult",
                                    n_records=scale.adult_records),
                  [scale.adult_records // 20, scale.adult_records // 10]),
        "german": (load_real_dataset("german"), [40, 60, 80]),
        "hypo": (load_real_dataset("hypo"), [1800, 2000, 2100]),
    }


def run_experiment():
    scale = current_scale()
    output = {}
    for name, (dataset, min_sups) in _sweeps().items():
        counts = {"No correction": [], "BH": [], "Perm_FDR": [],
                  "RH_BH": []}
        for min_sup in min_sups:
            ruleset = mine_class_rules(dataset, min_sup, max_length=5)
            counts["No correction"].append(
                no_correction(ruleset).n_significant)
            counts["BH"].append(
                benjamini_hochberg(ruleset).n_significant)
            engine = PermutationEngine(
                ruleset, n_permutations=scale.permutations, seed=16)
            counts["Perm_FDR"].append(engine.fdr().n_significant)
            run = HoldoutRun(dataset, min_sup, split="random", seed=16,
                             max_length=5)
            counts["RH_BH"].append(
                run.benjamini_hochberg().n_significant)
        output[name] = (min_sups, counts)
    return output


def test_fig16_real_fdr(benchmark):
    output = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    for name, (min_sups, counts) in output.items():
        print(banner(f"Figure 16 ({name}): #significant rules, "
                     f"FDR at 5%"))
        print(format_series("min_sup", min_sups, counts))
        print()

    for name, (min_sups, counts) in output.items():
        for i in range(len(min_sups)):
            assert counts["BH"][i] <= counts["No correction"][i]
            # BH and Perm_FDR report very similar counts (within 25%).
            bh = counts["BH"][i]
            perm = counts["Perm_FDR"][i]
            assert abs(perm - bh) <= 0.25 * max(bh, perm, 1), \
                (name, min_sups[i])
    # Holdout reports notably fewer on german and hypo.
    for name in ("german", "hypo"):
        _, counts = output[name]
        assert sum(counts["RH_BH"]) < sum(counts["BH"]), name
