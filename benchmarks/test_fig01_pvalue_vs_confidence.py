"""Figure 1: p-value of X => c against confidence for several coverages.

Paper setting: n=1000 records, supp(c)=500, supp(X) in
{5, 10, 20, 40, 70, 100}; confidence sweeps 0.5 .. 1.0. The expected
shape: every curve falls steeply as confidence rises, and larger
coverage gives uniformly smaller p-values (the coverage-5 curve never
drops below ~0.06, the paper's Section 2.3 observation).
"""

from __future__ import annotations

from _scale import banner
from repro.evaluation import format_series
from repro.stats import PValueBuffer

N_RECORDS = 1000
CLASS_SUPPORT = 500
COVERAGES = (5, 10, 20, 40, 70, 100)
CONFIDENCES = [0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0]


def compute_curves():
    """p(conf; supp_x) for every coverage via the p-value buffers."""
    curves = {}
    for supp_x in COVERAGES:
        buffer = PValueBuffer(N_RECORDS, CLASS_SUPPORT, supp_x)
        series = []
        for confidence in CONFIDENCES:
            supp_r = round(confidence * supp_x)
            supp_r = min(max(supp_r, buffer.low), buffer.high)
            series.append(buffer.p_value(supp_r))
        curves[f"supp(X)={supp_x}"] = series
    return curves


def test_fig01_pvalue_vs_confidence(benchmark):
    curves = benchmark(compute_curves)
    print()
    print(banner("Figure 1: p-value vs confidence",
                 f"#records={N_RECORDS}, supp(c)={CLASS_SUPPORT}"))
    print(format_series("confidence", CONFIDENCES, curves))

    # Shape assertions from the paper.
    for name, series in curves.items():
        # Monotone non-increasing in confidence at and above 0.5.
        for earlier, later in zip(series, series[1:]):
            assert later <= earlier * (1 + 1e-9), name
    # Larger coverage -> smaller p at confidence 1.0.
    finals = [curves[f"supp(X)={s}"][-1] for s in COVERAGES]
    assert finals == sorted(finals, reverse=True)
    # Section 2.3: the coverage-5 rule cannot beat 0.062.
    assert min(curves["supp(X)=5"]) > 0.06
    # coverage 100 at confidence 1 is astronomically significant.
    assert curves["supp(X)=100"][-1] < 1e-20
