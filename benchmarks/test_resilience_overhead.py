"""Cost of the resilience layer when nothing is failing.

The fault-tolerance PR threaded retry waves, a circuit-breaker
consult and named fault-injection points through the executor hot
path, and a bounded busy retry around every artifact-store write.
All of that must be free in the common case:

* a **disarmed** fault point is one truthiness check on an empty
  dict — no RNG, no locks, no syscalls;
* ``Executor.map_shards`` with the default :class:`RetryPolicy` and
  a healthy breaker runs exactly one wave, within a small constant
  factor of the bare serial loop it replaced.
"""

from __future__ import annotations

import time

from _scale import banner
from repro.parallel import CircuitBreaker, Executor, RetryPolicy
from repro.testing import faults

CALLS = 200_000
SHARDS = 200
REPEATS = 5


def _work(seed: int) -> int:
    total = seed
    for value in range(2_000):
        total += value * value
    return total


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disarmed_fault_point_is_nanoseconds():
    faults.disarm()
    should_fire = faults.should_fire

    def probe():
        for _ in range(CALLS):
            should_fire("worker-kill")

    elapsed = _best_of(REPEATS, probe)
    per_call = elapsed / CALLS
    print(banner("resilience: disarmed fault points",
                 f"{per_call * 1e9:.0f} ns per should_fire()"))
    # Generous even for a loaded CI box; the real cost is ~100 ns.
    assert per_call < 5e-6


def test_clean_serial_wave_overhead_is_bounded():
    shards = list(range(SHARDS))
    executor = Executor("serial", retry=RetryPolicy(),
                        breaker=CircuitBreaker())

    def direct():
        return [_work(shard) for shard in shards]

    def through_executor():
        return executor.map_shards(_work, shards)

    assert through_executor() == direct()  # and warm both paths
    direct_time = _best_of(REPEATS, direct)
    executor_time = _best_of(REPEATS, through_executor)
    ratio = executor_time / direct_time
    print(banner("resilience: clean map_shards vs bare loop",
                 f"direct {direct_time * 1e3:.1f} ms, executor "
                 f"{executor_time * 1e3:.1f} ms, ratio {ratio:.3f}"))
    assert executor.stats["waves"] >= REPEATS + 1
    assert executor.stats["retries"] == 0
    # One wave over ~1 ms shards: the wave bookkeeping must stay
    # within 25% of the bare loop.
    assert ratio < 1.25
