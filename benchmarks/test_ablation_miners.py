"""Ablation: the three miners (closed / Apriori / FP-growth).

The paper's pipeline mines *closed* patterns (Section 3) for two
reasons: fewer hypotheses (duplicates removed) and the enumeration-tree
structure the Diffsets policy needs. This ablation quantifies the
first reason against the two all-frequent-pattern miners and
cross-checks all three for agreement:

* FP-growth and Apriori must emit identical pattern sets (two
  independent implementations, one answer);
* the closed miner must emit exactly the tidset-distinct patterns —
  so #closed <= #frequent, with the gap measuring the redundancy that
  closedness removes from the multiple-testing denominator;
* per-miner wall-clock is reported (FP-growth's pattern-growth vs
  Apriori's level-wise candidate generation).
"""

from __future__ import annotations

import time

from _scale import banner, current_scale
from repro.data import GeneratorConfig, generate
from repro.evaluation import format_table
from repro.mining import mine_apriori, mine_closed, mine_fpgrowth


def _workloads():
    scale = current_scale()
    n = min(scale.synth_records, 1000)
    dense = GeneratorConfig(
        n_records=n, n_attributes=12, min_values=2, max_values=3,
        n_rules=2, min_length=2, max_length=3,
        min_coverage=n // 5, max_coverage=n // 4,
        min_confidence=0.8, max_confidence=0.9)
    sparse = GeneratorConfig(
        n_records=n, n_attributes=20, min_values=4, max_values=8,
        n_rules=0)
    return (("dense", dense, n // 8, 0), ("sparse", sparse, n // 20, 0),
            # Redundant encodings (perfectly correlated columns) are
            # where closedness pays: duplicate the first four item
            # columns so many frequent patterns share one tidset.
            ("correlated", dense, n // 8, 4))


def run_experiment():
    rows = []
    for name, config, min_sup, n_duplicates in _workloads():
        dataset = generate(config, seed=42).dataset
        tidsets = list(dataset.item_tidsets)
        tidsets.extend(tidsets[:n_duplicates])
        n = dataset.n_records

        start = time.perf_counter()
        apriori = mine_apriori(tidsets, n, min_sup)
        t_apriori = time.perf_counter() - start

        start = time.perf_counter()
        fpgrowth = mine_fpgrowth(tidsets, n, min_sup)
        t_fpgrowth = time.perf_counter() - start

        start = time.perf_counter()
        closed = mine_closed(tidsets, n, min_sup)
        t_closed = time.perf_counter() - start

        agree = ([(p.items, p.support) for p in apriori]
                 == [(p.items, p.support) for p in fpgrowth])
        n_closed = sum(1 for p in closed if p.items)
        distinct_tidsets = len({p.tidset for p in apriori})
        rows.append({
            "workload": name, "n_duplicates": n_duplicates,
            "min_sup": min_sup,
            "n_frequent": len(apriori), "n_closed": n_closed,
            "distinct_tidsets": distinct_tidsets,
            "agree": agree,
            "t_apriori": t_apriori, "t_fpgrowth": t_fpgrowth,
            "t_closed": t_closed,
        })
    return rows


def test_ablation_miners(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print()
    print(banner("Ablation: closed vs Apriori vs FP-growth"))
    print(format_table(
        ["workload", "min_sup", "#frequent", "#closed",
         "#distinct tidsets", "apriori (s)", "fpgrowth (s)",
         "closed (s)"],
        [[r["workload"], r["min_sup"], r["n_frequent"], r["n_closed"],
          r["distinct_tidsets"], f"{r['t_apriori']:.3f}",
          f"{r['t_fpgrowth']:.3f}", f"{r['t_closed']:.3f}"]
         for r in rows]))

    for row in rows:
        # Cross-check: two all-pattern miners, one answer.
        assert row["agree"], row["workload"]
        # Closedness is a lossless compression of the hypothesis set:
        # one closed pattern per distinct tidset (root excluded when
        # no item is universal).
        assert row["n_closed"] <= row["n_frequent"]
        assert abs(row["n_closed"] - row["distinct_tidsets"]) <= 1
        if row["n_duplicates"]:
            # Duplicated columns explode the frequent-pattern count
            # but leave the closed count (hypotheses) unchanged —
            # the compression the paper's Section 3 relies on.
            assert row["n_closed"] <= 0.7 * row["n_frequent"]
