"""Registry/pipeline indirection overhead vs. direct dispatch.

The PR that introduced the correction registry and the composable
Pipeline replaced a hard-coded if/elif dispatch with registry
resolution plus stage objects. This bench pins the cost of that
indirection: a BH run through :class:`repro.core.Pipeline` must stay
within 5% wall-clock of the same mine+score+correct work called
directly (the seed's dispatch was a handful of string comparisons, so
anything beyond noise would be a regression in the stage plumbing, not
the dispatch itself).
"""

from __future__ import annotations

import time

from _scale import banner
from repro.core.pipeline import Pipeline
from repro.corrections import benjamini_hochberg
from repro.data import GeneratorConfig, generate
from repro.mining import mine_class_rules

MIN_SUP = 40
REPEATS = 5


def _dataset():
    config = GeneratorConfig(
        n_records=800, n_attributes=20, n_rules=2,
        min_coverage=150, max_coverage=250,
        min_confidence=0.7, max_confidence=0.9)
    return generate(config, seed=406).dataset


def _best_of(repeats, fn):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_pipeline_overhead_under_5_percent():
    dataset = _dataset()

    def direct():
        ruleset = mine_class_rules(dataset, MIN_SUP)
        return benjamini_hochberg(ruleset, 0.05)

    pipeline = Pipeline(min_sup=MIN_SUP, corrections=("bh",))

    def through_pipeline():
        return pipeline.run(dataset)["bh"]

    # Warm both paths (caches, imports) before timing.
    expected = direct()
    actual = through_pipeline()
    assert actual.threshold == expected.threshold
    assert actual.n_significant == expected.n_significant

    direct_time = _best_of(REPEATS, direct)
    pipeline_time = _best_of(REPEATS, through_pipeline)
    overhead = pipeline_time / direct_time - 1.0

    print(banner("pipeline overhead",
                 f"direct {direct_time * 1e3:.1f} ms, "
                 f"pipeline {pipeline_time * 1e3:.1f} ms, "
                 f"overhead {overhead:+.2%}"))
    assert overhead < 0.05, (
        f"registry/pipeline indirection costs {overhead:.2%} "
        f"(direct {direct_time:.4f}s vs pipeline {pipeline_time:.4f}s)")
