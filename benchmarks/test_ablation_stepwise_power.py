"""Ablation: do the classical stepwise upgrades buy power here?

The paper's direct-adjustment arm is single-step Bonferroni (FWER) and
plain BH (FDR). This ablation runs the uniformly-more-powerful
procedures the statistics literature offers on the same embedded-rule
workload (Fig 8/10's setting at one moderate confidence):

* FWER family: BC <= Sidak, BC <= Holm <= Hochberg, and the
  permutation pair Perm_FWER <= Perm_FWER_SD (step-down minP);
* FDR family: BY <= BH <= {Storey, BKY}.

Expected outcome: the rejection-count orderings hold *by construction*
(they are theorems, asserted here end-to-end through the pipeline),
while *power on the planted rule* barely moves — the planted rule's
p-value is far from the decision boundary except in a narrow
confidence band, which is exactly why the paper's conclusions about
the three approach families are robust to the choice within the
direct-adjustment family. Error control must hold for all procedures.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import ExperimentRunner, format_series

FWER_PANEL = ("BC", "Sidak", "Holm", "Hochberg",
              "Perm_FWER", "Perm_FWER_SD")
FDR_PANEL = ("BY", "BH", "Storey", "BKY", "Perm_FDR")


def run_experiment():
    scale = current_scale()
    coverage = scale.synth_records // 5
    min_sup = max(50, scale.synth_records * 150 // 2000)
    runner = ExperimentRunner(methods=FWER_PANEL + FDR_PANEL,
                              n_permutations=scale.permutations)
    sweep = {}
    for confidence in scale.conf_sweep:
        config = GeneratorConfig(
            n_records=scale.synth_records, n_attributes=40, n_rules=1,
            min_length=2, max_length=4,
            min_coverage=coverage, max_coverage=coverage,
            min_confidence=confidence, max_confidence=confidence)
        sweep[confidence] = runner.run(config, min_sup=min_sup,
                                       n_replicates=scale.replicates,
                                       seed=2024)
    return sweep


def test_ablation_stepwise_power(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()
    confidences = list(sweep)

    power_fwer = {m: [sweep[c].aggregates[m].power for c in confidences]
                  for m in FWER_PANEL}
    fwer = {m: [sweep[c].aggregates[m].fwer for c in confidences]
            for m in FWER_PANEL}
    power_fdr = {m: [sweep[c].aggregates[m].power for c in confidences]
                 for m in FDR_PANEL}
    fdr = {m: [sweep[c].aggregates[m].fdr for c in confidences]
           for m in FDR_PANEL}
    rejections_fwer = {
        m: [sweep[c].aggregates[m].avg_significant for c in confidences]
        for m in FWER_PANEL}
    rejections_fdr = {
        m: [sweep[c].aggregates[m].avg_significant for c in confidences]
        for m in FDR_PANEL}

    print()
    print(banner("Ablation: stepwise/adaptive procedures — power "
                 "(FWER family)",
                 f"{scale.replicates} replicates, "
                 f"{scale.permutations} permutations"))
    print(format_series("conf(Rt)", confidences, power_fwer))
    print()
    print(banner("Ablation: FWER achieved"))
    print(format_series("conf(Rt)", confidences, fwer))
    print()
    print(banner("Ablation: average #significant (FWER family)"))
    print(format_series("conf(Rt)", confidences, rejections_fwer))
    print()
    print(banner("Ablation: power (FDR family)"))
    print(format_series("conf(Rt)", confidences, power_fdr))
    print()
    print(banner("Ablation: FDR achieved"))
    print(format_series("conf(Rt)", confidences, fdr))
    print()
    print(banner("Ablation: average #significant (FDR family)"))
    print(format_series("conf(Rt)", confidences, rejections_fdr))

    for i in range(len(confidences)):
        # Theorem-level orderings, end to end through the pipeline.
        assert rejections_fwer["BC"][i] <= rejections_fwer["Sidak"][i]
        assert rejections_fwer["BC"][i] <= rejections_fwer["Holm"][i] \
            <= rejections_fwer["Hochberg"][i]
        assert rejections_fwer["Perm_FWER"][i] \
            <= rejections_fwer["Perm_FWER_SD"][i]
        assert rejections_fdr["BY"][i] <= rejections_fdr["BH"][i]
        assert rejections_fdr["BH"][i] <= rejections_fdr["Storey"][i]
        # Power inherits the ordering (weakly).
        assert power_fwer["BC"][i] <= power_fwer["Hochberg"][i] + 1e-12
        assert power_fdr["BY"][i] <= power_fdr["Storey"][i] + 1e-12
    # At the top of the sweep every procedure detects the rule.
    assert power_fwer["Holm"][-1] == 1.0
    assert power_fdr["Storey"][-1] == 1.0
