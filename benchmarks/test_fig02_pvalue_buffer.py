"""Figure 2: the p-value buffer worked example.

Reproduces the exact numbers of the paper's Figure 2 — the
hypergeometric pmf H(k; 20, 11, 6) and the two-ends-inward sum-up that
turns it into the buffer of all possible two-tailed p-values — and
benchmarks buffer construction at realistic sizes (the operation the
permutation engine performs once per distinct coverage).
"""

from __future__ import annotations

import pytest

from _scale import banner
from repro.evaluation import format_table
from repro.stats import PValueBuffer, pmf_table

PAPER_PMF = [0.0021672, 0.035759, 0.17879, 0.35759,
             0.30650, 0.10728, 0.011920]
PAPER_PVALUES = [0.0021672, 0.049845, 0.33591, 1.0000,
                 0.64241, 0.15712, 0.014087]


def build_large_buffer():
    """The construction cost the permutation engine amortizes."""
    return PValueBuffer(32561, 7841, 1500)


def test_fig02_pvalue_buffer(benchmark):
    buffer = benchmark(build_large_buffer)
    assert len(buffer) == 1501

    pmf = pmf_table(20, 11, 6)
    example = PValueBuffer(20, 11, 6)
    print()
    print(banner("Figure 2: p-value buffer example",
                 "n=20, supp(c)=11, supp(X)=6"))
    rows = [
        [k, f"{pmf[k]:.7f}", f"{example.p_value(k):.7f}",
         f"{PAPER_PMF[k]:.7f}", f"{PAPER_PVALUES[k]:.7f}"]
        for k in range(7)
    ]
    print(format_table(
        ["k", "H(k) ours", "p(k) ours", "H(k) paper", "p(k) paper"],
        rows))

    assert pmf == pytest.approx(PAPER_PMF, rel=2e-4)
    assert example.p_values() == pytest.approx(PAPER_PVALUES, rel=2e-4)
