"""Figure 11 (dedicated): average #rules tested vs min_sup.

Paper setting: N=2000, A=40, one embedded rule with coverage 400 and
conf(Rt)=0.60; the minimum support threshold on the whole dataset is
swept 100..400 (halved on the exploratory halves). Expected shape:
the number of rules tested *increases steeply as min_sup decreases*
on every split, and the whole dataset always tests the most.

Figure 12's bench re-prints this panel from its own runs; this
dedicated bench runs only the counting methods, matching DESIGN.md's
per-experiment index.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import ExperimentRunner, format_series

COUNT_METHODS = ("No correction", "HD_BC", "RH_BC")

SERIES_KEYS = ("whole dataset", "HD_exploratory", "RH_exploratory",
               "HD_evaluation", "RH_evaluation")


def run_experiment():
    scale = current_scale()
    coverage = scale.synth_records // 5
    config = GeneratorConfig(
        n_records=scale.synth_records, n_attributes=40, n_rules=1,
        min_length=2, max_length=4,
        min_coverage=coverage, max_coverage=coverage,
        min_confidence=0.60, max_confidence=0.60)
    runner = ExperimentRunner(methods=COUNT_METHODS)
    sweep = {}
    for min_sup in scale.minsup_sweep:
        sweep[min_sup] = runner.run(config, min_sup=min_sup,
                                    n_replicates=scale.replicates,
                                    seed=1111)
    return sweep


def test_fig11_rules_tested_minsup(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()
    min_sups = list(sweep)
    tested = {key: [sweep[s].mean_tested.get(key, 0.0)
                    for s in min_sups]
              for key in SERIES_KEYS}

    print()
    print(banner("Figure 11: average #rules tested vs min_sup",
                 f"N={scale.synth_records}, A=40, conf(Rt)=0.60, "
                 f"{scale.replicates} replicates"))
    print(format_series("min_sup", min_sups, tested))

    whole = tested["whole dataset"]
    # Rule count decreases monotonically as min_sup grows.
    assert all(a >= b for a, b in zip(whole, whole[1:]))
    # The spread is large: the lowest min_sup tests many times more
    # rules than the highest.
    assert whole[0] >= 3.0 * whole[-1]
    for i in range(len(min_sups)):
        # Exploratory counts track the whole-dataset count (same
        # relative threshold on half the records).
        assert tested["HD_exploratory"][i] <= 3.0 * whole[i]
        assert tested["HD_evaluation"][i] <= tested["HD_exploratory"][i]
        assert tested["RH_evaluation"][i] <= tested["RH_exploratory"][i]
