"""Table 2: the four real-world datasets.

Checks that the simulated stand-ins reproduce the paper's Table 2
shapes exactly (records / attributes / classes) and benchmarks
generation cost (the stand-ins are rebuilt per experiment run).
"""

from __future__ import annotations

from _scale import banner
from repro.data import REAL_DATASETS, load_real_dataset
from repro.evaluation import format_table

PAPER_TABLE2 = {
    "adult": (32561, 14, 2),
    "german": (1000, 20, 2),
    "hypo": (3163, 25, 2),
    "mushroom": (8124, 22, 2),
}


def build_german():
    return load_real_dataset("german")


def test_table2_datasets(benchmark):
    benchmark(build_german)

    print()
    print(banner("Table 2: real-world datasets (simulated stand-ins)"))
    rows = []
    for name, (records, attributes, classes) in PAPER_TABLE2.items():
        spec = REAL_DATASETS[name]
        rows.append([name, spec.n_records, spec.n_attributes,
                     len(spec.class_names),
                     f"{records}/{attributes}/{classes}"])
        assert spec.n_records == records, name
        assert spec.n_attributes == attributes, name
        assert len(spec.class_names) == classes, name
    print(format_table(
        ["dataset", "#records", "#attributes", "#classes",
         "paper (rec/attr/cls)"], rows))

    # The generated objects match their specs (full-size german only;
    # the big ones are exercised by the other real-data benches).
    german = load_real_dataset("german")
    assert german.n_records == 1000
    assert german.n_attributes == 20
    assert german.n_classes == 2
