"""Ablation: does statistical filtering cost predictive accuracy?

The paper motivates class association rules by their classification
record (Section 2, citing CBA [11]) but never measures what its
corrections do to a classifier built from the surviving rules. This
ablation closes that loop on the D2kA20R5-style workload (N records,
20 attributes, 5 embedded rules): for each correction, the rule base
is filtered to the significant rules, a CBA classifier is built by
database-coverage pruning, and accuracy is estimated by stratified
cross-validation of the *whole* mine-correct-fit pipeline.

Expected shape:

* the candidate rule base shrinks monotonically with stringency
  (none >= BH >= Bonferroni significant counts);
* cross-validated accuracy moves very little: coverage pruning already
  discards most rules, and the rules a correction removes first are
  the low-coverage/low-confidence ones CBA ranks last anyway;
* every classifier beats the majority-class prior, filtered or not.

A CPAR arm (greedy FOIL induction, ref [21]) runs alongside: it emits
an order of magnitude fewer rules than the miner tests, because greedy
covering lands on strong signals directly — the learner's implicit
answer to the multiplicity problem the corrections solve explicitly.

The sting is in the tail: "no correction" pays its price in rule-base
*interpretability* (hundreds of spurious rules a user must wade
through), not accuracy — which is exactly why the paper argues
statistical control and domain measures are complementary.
"""

from __future__ import annotations

import random

from _scale import banner, current_scale
from repro.classify import compare_filtered_rule_bases
from repro.data import GeneratorConfig, generate
from repro.evaluation import format_table

CORRECTIONS = ("none", "bh", "bonferroni")


def _workload(scale):
    n = scale.synth_records
    coverage_low = n // 5
    coverage_high = n * 3 // 10
    config = GeneratorConfig(
        n_records=n, n_attributes=20, n_rules=5,
        min_length=2, max_length=4,
        min_coverage=coverage_low, max_coverage=coverage_high,
        min_confidence=0.70, max_confidence=0.85)
    return config


def run_experiment():
    scale = current_scale()
    config = _workload(scale)
    k = 2 if scale.name == "smoke" else 3
    min_sup = max(50, scale.synth_records * 150 // 2000)
    replicates = max(2, scale.replicates // 3)
    master = random.Random(4242)
    rows = {name: {"candidates": [], "significant": [],
                   "classifier_rules": [], "train_acc": [],
                   "cv_acc": [], "prior": []}
            for name in CORRECTIONS + ("cpar",)}
    for __ in range(replicates):
        seed = master.getrandbits(48)
        data = generate(config, seed=seed)
        dataset = data.dataset
        majority = max(dataset.class_support(c)
                       for c in range(dataset.n_classes))
        prior = majority / dataset.n_records
        reports = compare_filtered_rule_bases(
            dataset, min_sup, corrections=CORRECTIONS, k=k,
            seed=seed & 0xFFFF)
        for report in reports:
            cell = rows[report.correction]
            cell["candidates"].append(report.n_candidate_rules)
            cell["significant"].append(report.n_significant_rules)
            cell["classifier_rules"].append(report.n_classifier_rules)
            cell["train_acc"].append(report.training_accuracy)
            cell["cv_acc"].append(report.cv.mean_accuracy)
            cell["prior"].append(prior)
        # CPAR arm: greedy induction instead of mine-then-select.
        cpar_reports = compare_filtered_rule_bases(
            dataset, min_sup, corrections=("none",), k=k,
            classifier="cpar", seed=seed & 0xFFFF)
        cell = rows["cpar"]
        report = cpar_reports[0]
        cell["candidates"].append(report.n_candidate_rules)
        cell["significant"].append(report.n_significant_rules)
        cell["classifier_rules"].append(report.n_classifier_rules)
        cell["train_acc"].append(report.training_accuracy)
        cell["cv_acc"].append(report.cv.mean_accuracy)
        cell["prior"].append(prior)
    return rows


def test_ablation_classifier(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()

    def mean(values):
        return sum(values) / len(values)

    table_rows = []
    for name in CORRECTIONS + ("cpar",):
        cell = rows[name]
        table_rows.append([
            name,
            f"{mean(cell['candidates']):.0f}",
            f"{mean(cell['significant']):.0f}",
            f"{mean(cell['classifier_rules']):.1f}",
            f"{mean(cell['train_acc']):.3f}",
            f"{mean(cell['cv_acc']):.3f}",
        ])
    print()
    print(banner("Ablation: correction-filtered CBA classifier",
                 "D2kA20R5-style workload, stratified CV"))
    print(format_table(
        ["correction", "candidates", "significant", "kept by CBA",
         "train acc", "cv acc"],
        table_rows))
    prior = mean(rows[CORRECTIONS[0]]["prior"])
    print(f"majority-class prior: {prior:.3f}")

    by_name = {name: rows[name] for name in CORRECTIONS}
    # Stringency shrinks the significant pool monotonically.
    assert (mean(by_name["none"]["significant"])
            >= mean(by_name["bh"]["significant"])
            >= mean(by_name["bonferroni"]["significant"]))
    # Every pipeline beats the prior out of sample.
    for name in CORRECTIONS:
        assert mean(by_name[name]["cv_acc"]) > prior
    # Filtering costs little accuracy: BH within 5 points of none.
    assert (mean(by_name["none"]["cv_acc"])
            - mean(by_name["bh"]["cv_acc"])) < 0.05
    # Greedy induction emits far fewer rules than the miner tests.
    cpar = rows["cpar"]
    assert mean(cpar["candidates"]) < \
        mean(by_name["none"]["candidates"]) / 5
    assert mean(cpar["cv_acc"]) > mean(cpar["prior"]) - 0.02
