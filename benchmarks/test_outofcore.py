"""Out-of-core arena benchmarks: zero-copy workers, ingest, sharding.

The sharded-arena PR stakes three measurable claims, all recorded in
the repo-root ``BENCH_outofcore.json`` (``REPRO_BENCH_JSON``
overrides) in the shared envelope:

* **zero-copy workers** — pickling an arena-backed dataset ships the
  *path*; a forked worker re-maps the same pages, so its anonymous-RSS
  delta stays under 10% of the arena size, versus ~100% when the
  in-RAM dataset is pickled wholesale (the pre-PR behaviour). The
  gated ratio is wholesale-delta / zero-copy-delta.
* **streaming ingest** — ``stream_records_to_arena`` builds the same
  arena in bounded chunks at a throughput comparable to the in-RAM
  ``Dataset.from_records`` (gated as a dimensionless ratio so runner
  speed cancels out).
* **sharded scoring** — permutation scoring through word-column
  blocks (``word_block``) stays within a small factor of the whole-
  matrix sweep while bounding the working set; results asserted
  bit-identical before any number counts.
"""

from __future__ import annotations

import multiprocessing
import pickle
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from _scale import banner, bench_envelope, current_scale, write_bench
from repro.corrections.permutation import PermutationEngine
from repro.data import Dataset, stream_records_to_arena
from repro.data.items import ItemCatalog
from repro.mining import mine_class_rules
from repro.tidvector import words_for

SEED = 2026
DEFAULT_OUT = Path(__file__).resolve().parents[1] / \
    "BENCH_outofcore.json"

#: records for the RSS probe arena, per scale (4096 items each — the
#: arena must dwarf the per-record structures every open pays for).
_PROBE_RECORDS = {"smoke": 1 << 16, "default": 1 << 18,
                  "paper": 1 << 20}
_PROBE_ITEMS = 4096

_INGEST_RECORDS = {"smoke": 5_000, "default": 50_000, "paper": 100_000}

_SCORING_RECORDS = {"smoke": 8_192, "default": 32_768, "paper": 65_536}


def _synthetic_dataset(n_records: int, n_items: int,
                       rng: np.random.Generator) -> Dataset:
    """A dataset built straight from a random packed arena.

    ``n_records`` must be a multiple of 64 so every tail word is clean.
    """
    assert n_records % 64 == 0
    arena = rng.integers(0, 1 << 63,
                         size=(n_items, words_for(n_records)),
                         dtype=np.uint64)
    catalog = ItemCatalog()
    for j in range(n_items):
        catalog.add_pair(f"A{j}", "y")
    labels = rng.integers(0, 2, size=n_records)
    return Dataset(n_records, catalog, arena, labels, ["c0", "c1"],
                   name="outofcore-bench")


def _rss_anon_kb() -> int:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("RssAnon:"):
                return int(line.split()[1])
    raise RuntimeError("RssAnon not found")  # pragma: no cover


_WORKER_RSS0 = 0


def _worker_init():
    # Baseline captured at worker start, before any task arrives —
    # everything the task ships and materializes counts against it.
    global _WORKER_RSS0
    _WORKER_RSS0 = _rss_anon_kb()


def _worker_probe(payload: bytes):
    """Runs in a fresh forked worker: unpickle a dataset, touch every
    item row, report the anonymous-RSS growth the dataset cost."""
    dataset = pickle.loads(payload)
    touched = 0
    for start in range(0, dataset.n_items, 64):
        rows = dataset.item_arena[start:start + 64]
        touched ^= int(np.bitwise_count(rows).sum())
    return (_rss_anon_kb() - _WORKER_RSS0) * 1024, touched


def _probe_worker_rss(payload: bytes):
    context = multiprocessing.get_context("fork")
    with context.Pool(1, initializer=_worker_init) as pool:
        return pool.apply(_worker_probe, (payload,))


def _bench_zero_copy(tmp_path: Path, rng: np.random.Generator):
    scale = current_scale()
    dataset = _synthetic_dataset(_PROBE_RECORDS[scale.name],
                                 _PROBE_ITEMS, rng)
    arena_bytes = dataset.item_arena.nbytes
    path = tmp_path / "probe.arena"
    # fingerprint=False: the record-wise content hash is pointless
    # work on a dense random arena and is never read by this probe.
    dataset.save_arena(path, fingerprint=False)
    mapped = Dataset.open_arena(path)

    wholesale_delta, check_a = _probe_worker_rss(pickle.dumps(dataset))
    zero_copy_delta, check_b = _probe_worker_rss(pickle.dumps(mapped))
    assert check_a == check_b  # both workers read the same words

    return {
        "arena_bytes": arena_bytes,
        "n_records": dataset.n_records,
        "n_items": dataset.n_items,
        "wholesale_worker_rss_delta_bytes": wholesale_delta,
        "zero_copy_worker_rss_delta_bytes": zero_copy_delta,
        "zero_copy_rss_fraction_of_arena":
            zero_copy_delta / arena_bytes,
    }


def _bench_ingest(tmp_path: Path, rng: np.random.Generator):
    scale = current_scale()
    n_records = _INGEST_RECORDS[scale.name]
    values = [f"v{v}" for v in range(4)]
    records = [[values[int(c)] for c in row]
               for row in rng.integers(0, 4, size=(n_records, 8))]
    labels = [f"c{int(v)}" for v in rng.integers(0, 2, size=n_records)]
    names = [f"A{j}" for j in range(8)]

    inram_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        reference = Dataset.from_records(records, labels, names,
                                         name="ing")
        inram_s = min(inram_s, time.perf_counter() - start)

    path = tmp_path / "ingest.arena"
    stream_s = float("inf")
    for attempt in range(3):
        target = path.with_suffix(f".{attempt}")
        start = time.perf_counter()
        stream_records_to_arena(records, labels, target,
                                attribute_names=names, name="ing",
                                chunk_records=4096)
        stream_s = min(stream_s, time.perf_counter() - start)
    streamed = Dataset.open_arena(path.with_suffix(".0"))
    assert streamed.fingerprint() == reference.fingerprint()

    return {
        "n_records": n_records,
        "n_attributes": 8,
        "inram_s": inram_s,
        "stream_s": stream_s,
        "stream_records_per_s": n_records / max(stream_s, 1e-9),
        "stream_vs_inram_ratio": inram_s / max(stream_s, 1e-9),
    }


def _bench_sharded_scoring(rng: np.random.Generator):
    scale = current_scale()
    n_records = _SCORING_RECORDS[scale.name]
    bits = rng.random((n_records, 12)) < 0.4
    records = [["y" if cell else "n" for cell in row] for row in bits]
    labels = [f"c{int(v)}" for v in rng.integers(0, 2, size=n_records)]
    dataset = Dataset.from_records(
        records, labels, [f"A{j}" for j in range(12)], name="score")
    ruleset = mine_class_rules(dataset, min_sup=n_records // 4)
    n_words = words_for(n_records)

    timings = {}
    reference = None
    for label, word_block in (("whole", 0), ("sharded", n_words // 4)):
        best = float("inf")
        for _ in range(3):
            engine = PermutationEngine(
                ruleset, n_permutations=scale.runtime_permutations,
                seed=0, word_block=word_block)
            start = time.perf_counter()
            p_values = engine.empirical_p_values()
            best = min(best, time.perf_counter() - start)
        timings[label] = best
        if reference is None:
            reference = p_values
        else:
            assert p_values == reference  # bit-identical scoring
    return {
        "n_records": n_records,
        "n_rules": len(ruleset.rules),
        "n_permutations": scale.runtime_permutations,
        "word_block": n_words // 4,
        "whole_s": timings["whole"],
        "sharded_s": timings["sharded"],
        "sharded_vs_whole_ratio":
            timings["whole"] / max(timings["sharded"], 1e-9),
    }


def test_outofcore(tmp_path):
    if platform.system() != "Linux":  # pragma: no cover
        pytest.skip("RSS probe reads /proc; Linux only")
    rng = np.random.default_rng(SEED)

    zero_copy = _bench_zero_copy(tmp_path, rng)
    ingest = _bench_ingest(tmp_path, rng)
    scoring = _bench_sharded_scoring(rng)

    record = bench_envelope(
        "outofcore",
        gates={
            # Capped at 20x: the raw ratio swings with the few MB of
            # worker-local noise in the denominator, and anything past
            # 20x is equally "zero-copy" — the cap keeps the CI
            # regression band meaningful.
            "zero_copy_rss_ratio": {
                "value": min(
                    20.0,
                    zero_copy["wholesale_worker_rss_delta_bytes"]
                    / max(zero_copy["zero_copy_worker_rss_delta_bytes"],
                          4096)),
                "min": 5.0,
            },
            "ingest_stream_ratio": {
                "value": ingest["stream_vs_inram_ratio"],
                "min": 0.05,
            },
            "sharded_scoring_ratio": {
                "value": scoring["sharded_vs_whole_ratio"],
                "min": 0.2,
            },
        },
        metrics={
            "zero_copy_workers": zero_copy,
            "streaming_ingest": ingest,
            "sharded_scoring": scoring,
        },
    )
    out_path = write_bench(record, str(DEFAULT_OUT))

    mib = 1024 * 1024
    lines = [
        f"arena {zero_copy['arena_bytes'] / mib:.0f} MiB: worker "
        f"anon-RSS delta wholesale "
        f"{zero_copy['wholesale_worker_rss_delta_bytes'] / mib:.1f} "
        f"MiB -> zero-copy "
        f"{zero_copy['zero_copy_worker_rss_delta_bytes'] / mib:.1f} "
        f"MiB ({zero_copy['zero_copy_rss_fraction_of_arena']:.1%} "
        f"of arena)",
        f"ingest {ingest['n_records']} records: in-RAM "
        f"{ingest['inram_s']:.2f} s, streamed "
        f"{ingest['stream_s']:.2f} s "
        f"({ingest['stream_records_per_s']:.0f} rec/s)",
        f"scoring {scoring['n_rules']} rules x "
        f"{scoring['n_permutations']} permutations: whole "
        f"{scoring['whole_s']:.2f} s, word_block="
        f"{scoring['word_block']} {scoring['sharded_s']:.2f} s",
    ]
    print()
    print(banner("out-of-core arenas: zero-copy workers, streaming "
                 "ingest, sharded scoring", "\n".join(lines)))
    print(f"wrote {out_path}")

    # The acceptance gate: a forked worker's private memory for the
    # arena-backed dataset is a rounding error next to the arena.
    fraction = zero_copy["zero_copy_rss_fraction_of_arena"]
    assert fraction < 0.10, (
        f"zero-copy worker RSS delta is {fraction:.1%} of the arena")
