"""Figure 7 (dedicated): average #rules tested vs conf(Rt).

Paper setting: N=2000, A=40, one embedded rule with coverage 400,
confidence swept 0.55..0.70, min_sup=150 on the whole dataset
(min_sup/2 on the exploratory halves). Expected shape: the whole
dataset tests the most rules; both exploratory halves test fewer
(half the records at half the min_sup); the candidate counts reaching
the evaluation halves are orders of magnitude smaller. The sweep is
essentially flat in confidence — one embedded rule barely moves the
frequent-pattern count.

Figure 8's bench re-prints this panel from its own (heavier) runs;
this dedicated bench runs only the cheap methods needed for the
counts, matching DESIGN.md's per-experiment index.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import ExperimentRunner, format_series

COUNT_METHODS = ("No correction", "HD_BC", "RH_BC")

SERIES_KEYS = ("whole dataset", "HD_exploratory", "RH_exploratory",
               "HD_evaluation", "RH_evaluation")


def run_experiment():
    scale = current_scale()
    coverage = scale.synth_records // 5
    min_sup = max(50, scale.synth_records * 150 // 2000)
    runner = ExperimentRunner(methods=COUNT_METHODS)
    sweep = {}
    for confidence in scale.conf_sweep:
        config = GeneratorConfig(
            n_records=scale.synth_records, n_attributes=40, n_rules=1,
            min_length=2, max_length=4,
            min_coverage=coverage, max_coverage=coverage,
            min_confidence=confidence, max_confidence=confidence)
        sweep[confidence] = runner.run(config, min_sup=min_sup,
                                       n_replicates=scale.replicates,
                                       seed=707)
    return sweep


def test_fig07_rules_tested(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()
    confidences = list(sweep)
    tested = {key: [sweep[c].mean_tested.get(key, 0.0)
                    for c in confidences]
              for key in SERIES_KEYS}

    print()
    print(banner("Figure 7: average #rules tested vs conf(Rt)",
                 f"N={scale.synth_records}, A=40, "
                 f"coverage(Rt)={scale.synth_records // 5}, "
                 f"{scale.replicates} replicates"))
    print(format_series("conf(Rt)", confidences, tested))

    for i, _confidence in enumerate(confidences):
        whole = tested["whole dataset"][i]
        # Halving both the records and min_sup keeps the relative
        # threshold, so the exploratory counts track the whole-dataset
        # count (same order of magnitude; sampling noise goes both
        # ways).
        assert tested["HD_exploratory"][i] <= 3.0 * whole
        assert tested["RH_exploratory"][i] <= 3.0 * whole
        # Candidates passing to the evaluation half are a small subset
        # of the exploratory rule population.
        assert tested["HD_evaluation"][i] <= tested["HD_exploratory"][i]
        assert tested["RH_evaluation"][i] <= tested["RH_exploratory"][i]
    # The count barely depends on the embedded rule's confidence:
    # within a factor 2 across the sweep.
    whole_series = tested["whole dataset"]
    assert max(whole_series) <= 2.0 * min(whole_series)
