"""Registered-miner comparison: wall-clock and hypothesis counts.

Runs every miner in the registry (:mod:`repro.mining.registry`) over
three workloads and records, per miner, the mining wall-clock and the
hypothesis count ``Nt`` its pattern set hands the corrections — the
closed-vs-all trade-off of Section 7 measured through the public
registry rather than by calling miner internals. The record is written
as JSON (``REPRO_BENCH_JSON``, default ``miner_backends.json``) so CI
archives the trajectory per commit, exactly like
``test_parallel_scaling.py``.

The ``sparse-wide`` workload doubles as the regression benchmark for
the FP-growth transaction build: the old construction probed every
item's bitset for every record (O(n_records × n_items)); the fix walks
each item tidset's set bits (O(sum of supports)), which on this
workload — many records, many items, low density — is an order of
magnitude less work. The hard assertions are structural (all-frequent
miners agree with each other; closed never exceeds them); wall-clock
ratios are recorded, and the FP-growth-vs-Apriori ratio is asserted
only loosely since shared runners make tight timing flaky.
"""

from __future__ import annotations

import json
import os
import time

from _scale import banner, current_scale
from repro.data import GeneratorConfig, generate
from repro.evaluation import format_table
from repro.mining import available_miners, generate_rules

SEED = 4242


def _workloads():
    scale = current_scale()
    n = min(scale.synth_records, 1500)
    dense = GeneratorConfig(
        n_records=n, n_attributes=12, min_values=2, max_values=3,
        n_rules=2, min_length=2, max_length=3,
        min_coverage=n // 5, max_coverage=n // 4,
        min_confidence=0.8, max_confidence=0.9)
    # The FP-growth transaction-build regression case: wide and
    # sparse, so n_records * n_items dwarfs the sum of supports.
    sparse_wide = GeneratorConfig(
        n_records=n, n_attributes=40, min_values=6, max_values=10,
        n_rules=0)
    return (("dense", dense, n // 8),
            ("sparse-wide", sparse_wide, n // 25),
            ("low-minsup", dense, n // 20))


def run_experiment():
    rows = []
    for workload, config, min_sup in _workloads():
        dataset = generate(config, seed=SEED).dataset
        by_miner = {}
        for miner in available_miners():
            start = time.perf_counter()
            pattern_set = miner.mine(dataset, min_sup)
            mine_seconds = time.perf_counter() - start
            ruleset = generate_rules(dataset, pattern_set, min_sup)
            by_miner[miner.name] = {
                "seconds": mine_seconds,
                "n_patterns": pattern_set.n_patterns,
                "n_hypotheses": ruleset.n_tests,
                "capabilities": list(miner.capabilities),
            }
        rows.append({
            "workload": workload,
            "n_records": dataset.n_records,
            "min_sup": min_sup,
            "miners": by_miner,
        })
    return rows


def test_miner_backends():
    scale = current_scale()
    rows = run_experiment()

    table_rows = []
    for row in rows:
        for name, cell in row["miners"].items():
            table_rows.append([
                row["workload"], name, row["min_sup"],
                cell["n_patterns"], cell["n_hypotheses"],
                f"{cell['seconds'] * 1e3:.1f}",
            ])
    print(banner(
        "miner backends",
        format_table(["workload", "miner", "min_sup", "#patterns",
                      "#hypotheses", "ms"], table_rows)))

    for row in rows:
        miners = row["miners"]
        # Structural guarantees, workload-independent: both
        # all-frequent miners count the same hypothesis set, and the
        # closed set never exceeds it (that gap is the point of
        # mining closed patterns).
        assert miners["apriori"]["n_hypotheses"] == \
            miners["fpgrowth"]["n_hypotheses"], row["workload"]
        assert miners["closed"]["n_hypotheses"] <= \
            miners["apriori"]["n_hypotheses"], row["workload"]
        assert miners["representative"]["n_hypotheses"] <= \
            miners["closed"]["n_hypotheses"], row["workload"]

    # The transaction-build regression guard: with the per-item
    # bitset walk, FP-growth on the sparse-wide workload must stay
    # within an order of magnitude of Apriori (the old per-record
    # probe loop sat far outside this bound). Smoke scale stays
    # informational — sub-millisecond timings are all noise.
    sparse = next(r for r in rows if r["workload"] == "sparse-wide")
    fp_seconds = sparse["miners"]["fpgrowth"]["seconds"]
    ap_seconds = sparse["miners"]["apriori"]["seconds"]
    ratio = fp_seconds / ap_seconds if ap_seconds else 0.0
    if scale.name != "smoke" and ap_seconds >= 0.01:
        assert ratio <= 10.0, (
            f"fpgrowth/apriori wall-clock ratio {ratio:.1f} on the "
            f"sparse-wide workload; transaction build regressed?")
    else:
        print(f"informational only (scale={scale.name}): "
              f"fpgrowth/apriori ratio {ratio:.2f}")

    record = {
        "benchmark": "miner_backends",
        "scale": scale.name,
        "seed": SEED,
        "workloads": rows,
    }
    out_path = os.environ.get("REPRO_BENCH_JSON", "miner_backends.json")
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
    print(f"wrote {out_path}")
