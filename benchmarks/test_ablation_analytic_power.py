"""Ablation: analytic power model vs simulated power (Figure 8(a)).

:func:`repro.stats.power.detection_power` predicts the Section 5.5
power sweeps from the hypergeometric machinery alone — no mining, no
permutations. This bench runs the Bonferroni arm of the Figure 8
experiment and overlays the analytic prediction, computed at each
replicate set's mean hypothesis count.

Expected outcome: the two curves share the regime structure (≈0 at
conf .55, transitional around .60, ≈1 by .65-.70) and agree pointwise
to within Monte-Carlo noise plus model error (the model holds ``n_c``
at its nominal value and ignores coverage realisation jitter).
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import ExperimentRunner, format_series
from repro.stats.power import detection_power, deterministic_detection


def run_experiment():
    scale = current_scale()
    n = scale.synth_records
    coverage = n // 5
    min_sup = max(50, n * 150 // 2000)
    runner = ExperimentRunner(methods=("BC",))
    simulated = {}
    thresholds = {}
    for confidence in scale.conf_sweep:
        config = GeneratorConfig(
            n_records=n, n_attributes=40, n_rules=1,
            min_length=2, max_length=4,
            min_coverage=coverage, max_coverage=coverage,
            min_confidence=confidence, max_confidence=confidence)
        result = runner.run(config, min_sup=min_sup,
                            n_replicates=scale.replicates, seed=313)
        simulated[confidence] = result.aggregates["BC"].power
        thresholds[confidence] = (
            0.05 / result.mean_tested["whole dataset"])
    return simulated, thresholds


def test_ablation_analytic_power(benchmark):
    simulated, thresholds = benchmark.pedantic(run_experiment,
                                               rounds=1, iterations=1)
    scale = current_scale()
    n = scale.synth_records
    coverage = n // 5
    confidences = list(simulated)

    binomial = [detection_power(n, n // 2, coverage, conf,
                                thresholds[conf])
                for conf in confidences]
    step = [1.0 if deterministic_detection(n, n // 2, coverage, conf,
                                           thresholds[conf]) else 0.0
            for conf in confidences]
    measured = [simulated[conf] for conf in confidences]

    print()
    print(banner("Ablation: analytic vs simulated Bonferroni power",
                 f"N={n}, coverage(Rt)={coverage}, "
                 f"{scale.replicates} replicates"))
    print(format_series("conf(Rt)", confidences, {
        "binomial model": binomial,
        "deterministic model": step,
        "simulated": measured,
    }))

    # Both analytic curves are non-decreasing in confidence.
    assert binomial == sorted(binomial)
    assert step == sorted(step)
    # Same regimes at the sweep's ends.
    assert binomial[0] < 0.25 and measured[0] < 0.25
    assert binomial[-1] > 0.9 and measured[-1] > 0.9
    # The deterministic model matches the generator's embedding:
    # pointwise agreement within replicate noise.
    for s, m in zip(step, measured):
        assert abs(s - m) <= 0.3, (s, m)
    # The binomial model brackets the transition: it may lag inside
    # the boundary band but must agree outside it.
    for b, m, conf in zip(binomial, measured, confidences):
        if b < 0.05 or b > 0.95:
            assert abs(b - m) <= 0.3, (conf, b, m)
