"""Per-shape timings for every kernel in the native suite.

The kernel-suite PR grew :mod:`repro._native` from one fused scoring
kernel into three — batched class supports, the subset/closure mask,
and the andnot diffset recurrence — each consumed through a
:mod:`repro.bitmat` wrapper with a silent numpy fallback. This bench
times, per dataset shape:

* the **closure check** (:func:`~repro.bitmat.superset_mask` behind
  ``VerticalView.superset_positions``) against the per-row Python
  ``is_subset`` loop it replaced;
* the **enumeration join** (``VerticalView.candidate_supports``, the
  closed miner's child-support pass) against the per-candidate Python
  ``intersection_count`` loop — the acceptance-gated ratio;
* the **multi-class batched supports**
  (``PatternForest.class_supports_multi``, one dispatch for all
  classes) against the historical one-call-per-class loop;
* the **andnot recurrence** (:func:`~repro.bitmat.andnot_counts`, the
  diffset builder's sizing pass) against the per-pair Python
  ``andnot_count`` loop;

plus the packed-vs-diffsets per-labelling times at a dense and a very
sparse density, the measured crossover behind ``--policy auto``
(:func:`repro.mining.diffsets.resolve_auto_policy`). Every timed pair
is asserted equal before any number counts. Results land in the
repo-root ``BENCH_kernels.json`` (``REPRO_BENCH_JSON`` overrides) in
the shared envelope; the gated ratio is the enumeration join on the
10k-record x 1k-item reference shape.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from _scale import banner, bench_envelope, current_scale, write_bench
from repro.bitmat import andnot_counts, superset_mask
from repro.mining import PatternForest
from repro.mining.patterns import Pattern
from repro.mining.tidsets import build_vertical_view
from repro.tidvector import TidVector, arena_rows, pack_bool_matrix

SEED = 2026
#: The acceptance-gated reference shape (records, items).
REFERENCE_SHAPE = (10_000, 1_000)
N_QUERIES = 16
N_CLASSES = 3
BATCH = 16

DEFAULT_OUT = Path(__file__).resolve().parents[1] / "BENCH_kernels.json"

_EXTRA_SHAPES = {
    "smoke": (),
    "default": ((2_000, 200), (50_000, 500)),
    "paper": ((2_000, 200), (50_000, 500), (100_000, 1_000)),
}


def _timed(fn, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _random_view(n_records, n_items, density, rng):
    flags = rng.random((n_items, n_records)) < density
    arena = pack_bool_matrix(flags)
    tidsets = arena_rows(arena, n_records)
    return build_vertical_view(tidsets, n_records, min_sup=1,
                               order="original")


def _bench_shape(n_records, n_items, repeats, rng):
    """Time all four kernels against their Python loops on one shape."""
    view = _random_view(n_records, n_items, 0.1, rng)
    queries = [view.pattern_tidset([rng.integers(0, n_items)])
               & view.tidsets[int(rng.integers(0, n_items))]
               for _ in range(N_QUERIES)]

    # -- closure check: superset mask vs per-row is_subset loop ------ #
    python_s, python_out = _timed(
        lambda: [[q.is_subset(t) for t in view.tidsets]
                 for q in queries], repeats)
    kernel_s, kernel_out = _timed(
        lambda: [superset_mask(view.matrix, q.words) for q in queries],
        repeats)
    for py_row, k_row in zip(python_out, kernel_out):
        assert np.array_equal(np.asarray(py_row), k_row)
    closure = _ratio_block(python_s, kernel_s)

    # -- enumeration join: candidate supports vs per-candidate loop - #
    python_s, python_out = _timed(
        lambda: [[q.intersection_count(t) for t in view.tidsets]
                 for q in queries], repeats)
    kernel_s, kernel_out = _timed(
        lambda: [view.candidate_supports(q) for q in queries], repeats)
    for py_row, k_row in zip(python_out, kernel_out):
        assert np.array_equal(np.asarray(py_row), k_row)
    join = _ratio_block(python_s, kernel_s)

    # -- multi-class batched supports vs one call per class ---------- #
    patterns = [Pattern(node_id=i, parent_id=-1,
                        items=frozenset((i,)), tidset=t,
                        support=t.count(), depth=0)
                for i, t in enumerate(view.tidsets)]
    forest = PatternForest(patterns, n_records, "packed")
    labels = rng.integers(0, N_CLASSES, size=(BATCH, n_records))
    stacked = np.stack([labels == c for c in range(N_CLASSES)])
    python_s, python_out = _timed(
        lambda: np.stack([forest.class_supports_batch(labels == c)
                          for c in range(N_CLASSES)]), repeats)
    kernel_s, kernel_out = _timed(
        lambda: forest.class_supports_multi(stacked), repeats)
    assert np.array_equal(python_out, kernel_out)
    multi = _ratio_block(python_s, kernel_s)

    # -- andnot recurrence vs per-pair Python loop ------------------- #
    perm = rng.permutation(n_items)
    pairs_a = view.matrix
    pairs_b = view.matrix[perm]
    vec_b = arena_rows(pairs_b, n_records)
    python_s, python_out = _timed(
        lambda: [a.andnot_count(b)
                 for a, b in zip(view.tidsets, vec_b)], repeats)
    kernel_s, kernel_out = _timed(
        lambda: andnot_counts(pairs_a, pairs_b), repeats)
    assert np.array_equal(np.asarray(python_out), kernel_out)
    andnot = _ratio_block(python_s, kernel_s)

    return {
        "n_records": n_records,
        "n_items": n_items,
        "n_queries": N_QUERIES,
        "closure": closure,
        "enumeration_join": join,
        "multi_class_supports": multi,
        "andnot_recurrence": andnot,
    }


def _ratio_block(python_seconds, kernel_seconds):
    return {
        "python_ms": python_seconds * 1000,
        "kernel_ms": kernel_seconds * 1000,
        "speedup": python_seconds / max(kernel_seconds, 1e-12),
    }


def _policy_crossover(rng, repeats):
    """Packed vs diffsets per-labelling cost at two densities.

    The dense side shows the packed sweep winning outright; the very
    sparse side shows the gather path closing in — the measured basis
    for ``resolve_auto_policy``'s density crossover.
    """
    n_records, n_nodes = 10_000, 500
    out = {}
    for label, density in (("dense_10pct", 0.1),
                           ("sparse_0.1pct", 0.001)):
        flags = rng.random((n_nodes, n_records)) < density
        arena = pack_bool_matrix(flags)
        tidsets = arena_rows(arena, n_records)
        patterns = [Pattern(node_id=i, parent_id=-1,
                            items=frozenset((i,)), tidset=t,
                            support=t.count(), depth=0)
                    for i, t in enumerate(tidsets)]
        indicator = rng.random(n_records) < 0.5
        timings = {}
        reference = None
        for policy in ("packed", "diffsets"):
            forest = PatternForest(patterns, n_records, policy)
            seconds, result = _timed(
                lambda f=forest: f.class_supports(indicator), repeats)
            if reference is None:
                reference = result
            else:
                assert np.array_equal(reference, result)
            timings[policy] = seconds * 1000
        out[label] = {
            "n_records": n_records,
            "n_nodes": n_nodes,
            "density": density,
            "packed_ms": timings["packed"],
            "diffsets_ms": timings["diffsets"],
        }
    return out


def test_kernel_suite():
    scale = current_scale()
    repeats = 1 if scale.name == "smoke" else 3
    rng = np.random.default_rng(SEED)

    shapes = [_bench_shape(n_records, n_items, repeats, rng)
              for n_records, n_items
              in (REFERENCE_SHAPE,) + _EXTRA_SHAPES[scale.name]]
    reference = shapes[0]
    crossover = _policy_crossover(rng, repeats)

    record = bench_envelope(
        "kernel_suite",
        gates={
            "enumeration_speedup": {
                "value": reference["enumeration_join"]["speedup"],
                "min": 3.0,
            },
        },
        metrics={
            "reference_shape": list(REFERENCE_SHAPE),
            "shapes": shapes,
            "policy_crossover": crossover,
        },
    )
    out_path = write_bench(record, str(DEFAULT_OUT))

    lines = []
    for shape in shapes:
        lines.append(f"{shape['n_records']} records x "
                     f"{shape['n_items']} items:")
        for key in ("closure", "enumeration_join",
                    "multi_class_supports", "andnot_recurrence"):
            block = shape[key]
            lines.append(
                f"  {key:22s} {block['python_ms']:9.2f} ms -> "
                f"{block['kernel_ms']:9.2f} ms "
                f"({block['speedup']:.1f}x)")
    for label, block in crossover.items():
        lines.append(
            f"crossover {label}: packed {block['packed_ms']:.2f} ms, "
            f"diffsets {block['diffsets_ms']:.2f} ms per labelling")
    print()
    print(banner("native kernel suite vs pure-Python word loops",
                 "\n".join(lines)))
    print(f"wrote {out_path}")

    # The acceptance gate: on the 10k x 1k reference shape one fused
    # AND+popcount pass must decisively beat a thousand per-candidate
    # Python calls.
    gate = reference["enumeration_join"]["speedup"]
    assert gate >= 3.0, (
        f"enumeration join only {gate:.1f}x over the Python loop")
