"""Figures 11 and 12: impact of the number of rules tested (FWER).

Paper setting: conf(Rt) fixed at 0.60, coverage 400, min_sup swept
100..400 on the whole dataset (the number of rules tested grows as
min_sup drops — Figure 11). Expected shapes (Figure 12): power of the
corrected methods *decreases* as more rules are tested (lower cut-offs
needed); the direct adjustment's power falls faster than the
permutation approach's; FWER stays controlled throughout.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import FWER_METHODS, ExperimentRunner, format_series


def run_experiment():
    scale = current_scale()
    coverage = scale.synth_records // 5
    config = GeneratorConfig(
        n_records=scale.synth_records, n_attributes=40, n_rules=1,
        min_length=2, max_length=4,
        min_coverage=coverage, max_coverage=coverage,
        min_confidence=0.60, max_confidence=0.60)
    runner = ExperimentRunner(methods=FWER_METHODS,
                              n_permutations=scale.permutations)
    sweep = {}
    for min_sup in scale.minsup_sweep:
        sweep[min_sup] = runner.run(config, min_sup=min_sup,
                                    n_replicates=scale.replicates,
                                    seed=1212)
    return sweep


def test_fig12_minsup_fwer(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()
    min_sups = list(sweep)

    tested = {key: [sweep[s].mean_tested.get(key, 0.0) for s in min_sups]
              for key in ("whole dataset", "HD_exploratory",
                          "RH_exploratory", "HD_evaluation",
                          "RH_evaluation")}
    power = {m: [sweep[s].aggregates[m].power for s in min_sups]
             for m in FWER_METHODS}
    fwer = {m: [sweep[s].aggregates[m].fwer for s in min_sups]
            for m in FWER_METHODS}
    false_positives = {
        m: [sweep[s].aggregates[m].avg_false_positives for s in min_sups]
        for m in FWER_METHODS}

    print()
    print(banner("Figure 11: average #rules tested vs min_sup",
                 f"conf(Rt)=0.60, {scale.replicates} replicates"))
    print(format_series("min_sup", min_sups, tested))
    print()
    print(banner("Figure 12(a): power when controlling FWER at 5%"))
    print(format_series("min_sup", min_sups, power))
    print()
    print(banner("Figure 12(b): FWER"))
    print(format_series("min_sup", min_sups, fwer))
    print()
    print(banner("Figure 12(c): average #false positives"))
    print(format_series("min_sup", min_sups, false_positives))

    # Figure 11: rules tested grow as min_sup falls.
    whole = tested["whole dataset"]
    assert whole[0] > whole[-1]
    # No-correction: always detects, never controls.
    assert all(p == 1.0 for p in power["No correction"])
    assert all(f >= 0.9 for f in fwer["No correction"])
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    # Permutation at least as powerful as direct adjustment.
    assert mean(power["Perm_FWER"]) >= mean(power["BC"]) - 1e-9
    # Corrected methods control FWER across the sweep.
    for method in ("BC", "Perm_FWER", "HD_BC", "RH_BC"):
        assert mean(fwer[method]) <= 0.35, method
