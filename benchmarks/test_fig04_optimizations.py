"""Figure 4: how much Diffsets and p-value buffering speed permutation.

Paper arms (Section 4.2): "no optimization" (rules mined once, but
every p-value recomputed from scratch and full record-id lists), a
dynamic one-slot p-value buffer, Diffsets on top, and a 16 MB static
buffer on top of that. Expected shape: the dynamic buffer wins ~an
order of magnitude; Diffsets help further on the real-like datasets
but not on the random dataset D8hA20R0 (diffsets there are no smaller
than the id-lists); the static buffer adds little beyond the dynamic
one.

Because the no-optimization arm is orders of magnitude slower, every
arm is timed per permutation (the paper's 1000-permutation cost is the
per-permutation cost times 1000).
"""

from __future__ import annotations

import time

from _scale import banner, current_scale
from repro.corrections import PermutationEngine
from repro.data import (
    GeneratorConfig,
    generate,
    load_real_dataset,
)
from repro.evaluation import format_table
from repro.mining import generate_rules, mine_closed

ARMS = (
    ("no optimization", "full", "direct", dict()),
    ("dynamic buf", "full", "cache",
     dict(use_static=False, use_dynamic=True)),
    ("Diffsets+dynamic buf", "diffsets", "cache",
     dict(use_static=False, use_dynamic=True)),
    ("16M static+Diffsets+dynamic", "diffsets", "cache",
     dict(use_static=True, use_dynamic=True)),
    ("bitset+vectorized", "bitset", "vectorized", dict()),
    ("packed batch (ours)", "packed", "vectorized", dict()),
)


def _datasets():
    scale = current_scale()
    yield ("adult", load_real_dataset("adult",
                                      n_records=scale.adult_records),
           max(60, scale.adult_records // 20))
    yield ("german", load_real_dataset("german"), 60)
    yield ("hypo", load_real_dataset("hypo"), 2000)
    yield ("mushroom", load_real_dataset(
        "mushroom", n_records=scale.mushroom_records),
        scale.mushroom_records // 10)
    yield ("D8hA20R0", generate(GeneratorConfig(
        n_records=800, n_attributes=20, n_rules=0), seed=404).dataset, 20)
    yield ("D2kA20R5", generate(GeneratorConfig(
        n_records=2000, n_attributes=20, n_rules=5,
        min_coverage=400, max_coverage=600,
        min_confidence=0.6, max_confidence=0.8), seed=405).dataset, 60)


_DIRECT_SAMPLE = 1200


def _time_per_permutation(dataset, patterns, min_sup, arm,
                          n_permutations):
    label, policy, mode, cache_options = arm
    ruleset = generate_rules(dataset, patterns, min_sup, **cache_options)
    scale_factor = 1.0
    if mode == "direct" and len(ruleset.rules) > _DIRECT_SAMPLE:
        # The unoptimized arm rebuilds every p-value from scratch; its
        # per-permutation cost is linear in the rule count, so timing a
        # sample and extrapolating is faithful and keeps the bench
        # tractable.
        scale_factor = len(ruleset.rules) / _DIRECT_SAMPLE
        import dataclasses
        ruleset = dataclasses.replace(
            ruleset, rules=ruleset.rules[:_DIRECT_SAMPLE])
    engine = PermutationEngine(ruleset, n_permutations=n_permutations,
                               seed=11, policy=policy, pvalue_mode=mode)
    start = time.perf_counter()
    engine.run()
    per_permutation = (time.perf_counter() - start) / n_permutations
    return per_permutation * scale_factor


def run_ablation():
    # Warm the lazy native kernel so its one-time compile never lands
    # inside a timed region (it would be charged to the packed arm).
    from repro._native import load_kernel
    load_kernel()
    scale = current_scale()
    rows = []
    for name, dataset, min_sup in _datasets():
        patterns = mine_closed(dataset.item_tidsets, dataset.n_records,
                               min_sup, max_length=5)
        row = [name, len(patterns)]
        for arm in ARMS:
            # The unoptimized arm is orders slower; sample fewer
            # permutations to estimate its per-permutation cost.
            n_perm = (3 if arm[2] == "direct"
                      else scale.runtime_permutations)
            seconds = _time_per_permutation(dataset, patterns, min_sup,
                                            arm, n_perm)
            row.append(seconds * 1000)
        rows.append(row)
    return rows


def test_fig04_optimizations(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    print()
    print(banner("Figure 4: permutation-test optimizations",
                 "milliseconds per permutation (lower is better)"))
    headers = ["dataset", "#patterns"] + [arm[0] for arm in ARMS]
    printable = [
        [row[0], row[1]] + [f"{v:.2f}" for v in row[2:]]
        for row in rows
    ]
    print(format_table(headers, printable))

    for row in rows:
        name = row[0]
        no_opt, dynamic, diff_dyn, static_all, bitset, packed = row[2:]
        # The dynamic buffer must beat no-optimization decisively.
        assert dynamic < no_opt / 2, name
        # The static buffer adds little on top of the dynamic buffer
        # (within noise: allow up to 2x either way).
        assert static_all < dynamic * 2, name
        # The vectorized lookups are the fastest family of arms.
        assert bitset <= min(dynamic, diff_dyn, static_all) * 1.5, name
        # The packed uint64 kernel never loses to the bigint loop by
        # more than noise (on big forests it wins by an order of
        # magnitude; tiny smoke forests are timer-bound).
        assert packed <= bitset * 1.5, name
