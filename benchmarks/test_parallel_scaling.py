"""Parallel speedup of the permutation pass (``n_jobs`` scaling).

Times ``permutation_fwer`` at 1, 2 and 4 workers on the ``threads``
and ``processes`` backends against the serial baseline, checks the
rule-level output is identical at every worker count (the hard
assertion — parallelism must never change results), and records the
speedup curve as JSON (``REPRO_BENCH_JSON``, default
``parallel_scaling.json``) so CI can archive the perf trajectory
per-commit.

The ≥2× speedup target at 4 process workers is asserted only on
hardware that can deliver it (≥4 cores) and outside smoke scale;
elsewhere — shared CI runners, small containers — the curve is
reported informationally.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from _scale import banner, current_scale
from repro.corrections import permutation_fwer
from repro.data import GeneratorConfig, generate
from repro.mining import mine_class_rules

MIN_SUP_FRACTION = 5  # min_sup = records / 5
SEED = 777
JOB_COUNTS = (1, 2, 4)
BACKENDS = ("threads", "processes")


def _ruleset(scale):
    config = GeneratorConfig(
        n_records=scale.synth_records, n_attributes=24, n_rules=2,
        min_coverage=scale.synth_records // 5,
        max_coverage=scale.synth_records // 4,
        min_confidence=0.7, max_confidence=0.9)
    dataset = generate(config, seed=SEED).dataset
    return mine_class_rules(dataset,
                            scale.synth_records // MIN_SUP_FRACTION)


def _fingerprint(result):
    return (result.threshold, result.n_significant,
            tuple((r.items, r.class_index, r.p_value)
                  for r in result.significant))


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_parallel_scaling():
    scale = current_scale()
    n_perm = scale.runtime_permutations
    ruleset = _ruleset(scale)

    serial_time, serial_result = _timed(
        lambda: permutation_fwer(ruleset, 0.05, n_permutations=n_perm,
                                 seed=SEED))
    reference = _fingerprint(serial_result)

    curves = {}
    for backend in BACKENDS:
        curve = {}
        for n_jobs in JOB_COUNTS:
            elapsed, result = _timed(
                lambda n_jobs=n_jobs, backend=backend: permutation_fwer(
                    ruleset, 0.05, n_permutations=n_perm, seed=SEED,
                    n_jobs=n_jobs, backend=backend))
            # The hard guarantee: identical rules at every worker
            # count, on every backend, rule for rule.
            assert _fingerprint(result) == reference, (
                f"{backend} n_jobs={n_jobs} changed the output")
            curve[n_jobs] = {
                "seconds": elapsed,
                "speedup": serial_time / elapsed if elapsed else 0.0,
            }
        curves[backend] = curve

    cores = multiprocessing.cpu_count()
    record = {
        "benchmark": "parallel_scaling",
        "scale": scale.name,
        "cpu_count": cores,
        "n_permutations": n_perm,
        "n_rules": ruleset.n_tests,
        "serial_seconds": serial_time,
        "curves": curves,
    }
    out_path = os.environ.get("REPRO_BENCH_JSON",
                              "parallel_scaling.json")
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)

    lines = [f"serial: {serial_time * 1e3:.0f} ms "
             f"({n_perm} permutations, {ruleset.n_tests} rules, "
             f"{cores} cores)"]
    for backend, curve in curves.items():
        for n_jobs, cell in curve.items():
            lines.append(f"{backend:>9} x{n_jobs}: "
                         f"{cell['seconds'] * 1e3:7.0f} ms  "
                         f"speedup {cell['speedup']:.2f}x")
    print(banner("parallel scaling", "\n".join(lines)))
    print(f"wrote {out_path}")

    process_speedup = curves["processes"][4]["speedup"]
    if scale.name != "smoke" and cores >= 4:
        assert process_speedup >= 2.0, (
            f"expected >= 2x speedup at 4 process workers on "
            f"{cores} cores, got {process_speedup:.2f}x "
            f"(serial {serial_time:.3f}s)")
    else:
        print(f"informational only (scale={scale.name}, "
              f"cores={cores}): 4-worker process speedup "
              f"{process_speedup:.2f}x")
