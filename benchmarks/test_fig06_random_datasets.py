"""Figure 6: error control on random datasets (no embedded rules).

Paper setting: N=2000, A=40, Nr=0; min_sup swept 100..1000; 100
replicate datasets. Every reported rule is a false positive. Expected
shapes: (a) FWER without correction climbs to 1 as min_sup drops (more
rules tested), all corrected methods stay near or below 5%; (b) the
number of rules tested grows fast as min_sup drops, the holdout
exploratory half tests more (min_sup halved) and its evaluation half
orders fewer; (c) the number of false positives without correction
tracks the number of rules tested.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import ExperimentRunner, format_series

METHODS = ("No correction", "BC", "BH", "Perm_FWER", "Perm_FDR",
           "HD_BC", "HD_BH")


def run_experiment():
    scale = current_scale()
    config = GeneratorConfig(n_records=scale.synth_records,
                             n_attributes=40, n_rules=0)
    runner = ExperimentRunner(methods=METHODS,
                              n_permutations=scale.permutations)
    sweep = {}
    for min_sup in scale.random_minsup_sweep:
        sweep[min_sup] = runner.run(config, min_sup=min_sup,
                                    n_replicates=scale.replicates,
                                    seed=606)
    return sweep


def test_fig06_random_datasets(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()
    min_sups = list(sweep)

    fwer = {m: [sweep[s].aggregates[m].fwer for s in min_sups]
            for m in METHODS}
    tested = {key: [sweep[s].mean_tested.get(key, 0.0) for s in min_sups]
              for key in ("whole dataset", "HD_exploratory",
                          "HD_evaluation")}
    false_positives = {
        m: [sweep[s].aggregates[m].avg_false_positives for s in min_sups]
        for m in METHODS}

    print()
    print(banner("Figure 6(a): FWER on random datasets",
                 f"N={scale.synth_records}, A=40, "
                 f"{scale.replicates} replicates"))
    print(format_series("min_sup", min_sups, fwer))
    print()
    print(banner("Figure 6(b): average #rules tested"))
    print(format_series("min_sup", min_sups, tested))
    print()
    print(banner("Figure 6(c): average #false positives"))
    print(format_series("min_sup", min_sups, false_positives))

    lowest = min_sups[0]   # sweep is ascending: lowest min_sup first
    highest = min_sups[-1]
    # (a) Without correction FWER saturates at low min_sup; corrected
    # methods control it.
    assert fwer["No correction"][0] >= 0.9
    for method in ("BC", "Perm_FWER", "HD_BC"):
        assert max(fwer[method]) <= 0.3, method
    # (b) More rules tested at lower min_sup; the exploratory half
    # tests at least as many (min_sup halved on half the data);
    # evaluation candidates are far fewer.
    whole = tested["whole dataset"]
    assert whole[0] > whole[-1]
    assert tested["HD_evaluation"][0] < whole[0]
    # (c) Uncorrected false positives track the rule count.
    assert false_positives["No correction"][0] > \
        false_positives["No correction"][-1]
    for method in ("BC", "Perm_FWER", "HD_BC"):
        assert max(false_positives[method]) <= 1.0, method
