"""Ablation: how many permutations does the min-p threshold need?

The paper fixes N=1000 permutations. This bench measures how the
Perm_FWER cut-off stabilizes as N grows: the alpha-quantile of the
min-p distribution is noisy for small N (and undefined below 1/alpha),
then converges. Useful guidance for anyone trading cost for fidelity.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.corrections import PermutationEngine
from repro.data import GeneratorConfig, generate
from repro.evaluation import format_table
from repro.mining import mine_class_rules

COUNTS = (20, 50, 100, 200, 400)


def run_sweep():
    scale = current_scale()
    config = GeneratorConfig(n_records=scale.synth_records,
                             n_attributes=30, n_rules=0)
    dataset = generate(config, seed=777).dataset
    min_sup = max(40, scale.synth_records // 13)
    ruleset = mine_class_rules(dataset, min_sup)
    rows = []
    for n_permutations in COUNTS:
        thresholds = []
        for seed in range(3):
            engine = PermutationEngine(ruleset,
                                       n_permutations=n_permutations,
                                       seed=seed)
            thresholds.append(engine.fwer(0.05).threshold)
        mean = sum(thresholds) / len(thresholds)
        spread = max(thresholds) - min(thresholds)
        rows.append([n_permutations, mean, spread])
    return ruleset, rows


def test_ablation_permutation_count(benchmark):
    ruleset, rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(banner("Ablation: Perm_FWER threshold vs permutation count",
                 f"{ruleset.n_tests} rules; 3 seeds per count"))
    print(format_table(
        ["N permutations", "mean cut-off", "max-min spread"],
        [[r[0], f"{r[1]:.3g}", f"{r[2]:.3g}"] for r in rows]))

    # N=20 cannot estimate the 5% quantile: floor(0.05*20)=1 works, but
    # any N below 20 would yield threshold 0. All means must be finite
    # and positive from N=20 up.
    for n_permutations, mean, _spread in rows:
        assert mean > 0.0, n_permutations
    # Relative spread shrinks from the smallest to the largest count.
    first_rel = rows[0][2] / max(rows[0][1], 1e-300)
    last_rel = rows[-1][2] / max(rows[-1][1], 1e-300)
    assert last_rel <= first_rel * 1.5
