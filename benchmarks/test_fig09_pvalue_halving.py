"""Figure 9: why holdout loses power — halving the data inflates p-values.

Paper setting: p-value of a rule with coverage 400 on N=2000 versus the
same rule with coverage 200 on N=1000 (what each holdout half sees),
swept over confidence. Expected shape: several orders of magnitude of
difference, growing with confidence.
"""

from __future__ import annotations

import math

from _scale import banner
from repro.evaluation import format_series
from repro.stats import PValueBuffer

CONFIDENCES = [0.50, 0.55, 0.60, 0.65, 0.70, 0.75]


def compute_curves():
    whole = PValueBuffer(2000, 1000, 400)
    half = PValueBuffer(1000, 500, 200)
    curves = {"N=2000, rule_cvg=400": [], "N=1000, rule_cvg=200": []}
    for confidence in CONFIDENCES:
        k_whole = min(max(round(confidence * 400), whole.low), whole.high)
        k_half = min(max(round(confidence * 200), half.low), half.high)
        curves["N=2000, rule_cvg=400"].append(whole.p_value(k_whole))
        curves["N=1000, rule_cvg=200"].append(half.p_value(k_half))
    return curves


def test_fig09_pvalue_halving(benchmark):
    curves = benchmark(compute_curves)
    print()
    print(banner("Figure 9: p-values on whole vs halved data",
                 "supp(c) = N/2"))
    print(format_series("confidence", CONFIDENCES, curves))

    whole = curves["N=2000, rule_cvg=400"]
    half = curves["N=1000, rule_cvg=200"]
    for confidence, p_whole, p_half in zip(CONFIDENCES, whole, half):
        assert p_whole <= p_half * (1 + 1e-9)
        if confidence >= 0.6:
            # Several orders of magnitude apart (paper: "increased by
            # several orders").
            assert math.log10(p_half) - math.log10(max(p_whole, 1e-300)) \
                >= 2
