"""Figure 10: power/FDR/#FP vs conf(Rt) when FDR is controlled at 5%.

Same workload as Figure 8 but with the FDR-controlling panel:
"No correction", BH, Perm_FDR, HD_BH, RH_BH. Paper findings: the
holdout has the lowest power, lowest FDR and fewest false positives;
the direct adjustment (BH) and the permutation approach perform very
similarly — which is why the paper recommends plain BH for FDR control.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import FDR_METHODS, ExperimentRunner, format_series


def run_experiment():
    scale = current_scale()
    coverage = scale.synth_records // 5
    runner = ExperimentRunner(methods=FDR_METHODS,
                              n_permutations=scale.permutations)
    min_sup = max(50, scale.synth_records * 150 // 2000)
    sweep = {}
    for confidence in scale.conf_sweep:
        config = GeneratorConfig(
            n_records=scale.synth_records, n_attributes=40, n_rules=1,
            min_length=2, max_length=4,
            min_coverage=coverage, max_coverage=coverage,
            min_confidence=confidence, max_confidence=confidence)
        sweep[confidence] = runner.run(config, min_sup=min_sup,
                                       n_replicates=scale.replicates,
                                       seed=1010)
    return sweep


def test_fig10_power_fdr(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()
    confidences = list(sweep)

    power = {m: [sweep[c].aggregates[m].power for c in confidences]
             for m in FDR_METHODS}
    fdr = {m: [sweep[c].aggregates[m].fdr for c in confidences]
           for m in FDR_METHODS}
    false_positives = {
        m: [sweep[c].aggregates[m].avg_false_positives
            for c in confidences]
        for m in FDR_METHODS}

    print()
    print(banner("Figure 10(a): power when controlling FDR at 5%",
                 f"N={scale.synth_records}, coverage(Rt)="
                 f"{scale.synth_records // 5}, "
                 f"{scale.replicates} replicates"))
    print(format_series("conf(Rt)", confidences, power))
    print()
    print(banner("Figure 10(b): FDR"))
    print(format_series("conf(Rt)", confidences, fdr))
    print()
    print(banner("Figure 10(c): average #false positives"))
    print(format_series("conf(Rt)", confidences, false_positives))

    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    # BH and Perm_FDR behave very similarly (the paper's key FDR
    # finding).
    assert abs(mean(power["BH"]) - mean(power["Perm_FDR"])) <= 0.25
    # The holdout is the most conservative arm.
    assert mean(power["HD_BH"]) <= mean(power["Perm_FDR"]) + 1e-9
    assert mean(false_positives["HD_BH"]) <= \
        mean(false_positives["No correction"])
    # Power rises with confidence for the corrected methods.
    for method in ("BH", "Perm_FDR"):
        assert power[method][-1] >= power[method][0], method
    # FDR stays moderate for the corrected methods even on the planted
    # data (by-products are excused by the ground-truth analysis).
    for method in ("BH", "Perm_FDR", "HD_BH"):
        assert max(fdr[method]) <= 0.30, method
