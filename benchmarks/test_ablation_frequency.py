"""Ablation: frequency-significance methods (Section 6's related work).

Two methods from the lineage the paper situates itself against, run on
Quest-style market-basket data where ground truth is the generator's
own potential itemsets:

* **Megiddo & Srikant resampling** — Section 6's criticism is that the
  original calibrated its cut-off from only 9 random datasets, "which
  may be too small". Sweeping the resample count quantifies it: the
  calibrated threshold's spread across replicate runs should shrink as
  the resample count grows.
* **Kirsch et al. s***  — on structured (Quest) data a significant
  support threshold should exist with a small FDR bound; on marginal-
  preserving random data the search should (almost always) come back
  empty — the frequency analogue of the paper's Figure 6 finding that
  corrected methods stay quiet on random datasets.
"""

from __future__ import annotations

import math
import random

from _scale import banner, current_scale
from repro.data import QuestConfig, generate_quest
from repro.evaluation import format_series, format_table
from repro.frequency import (
    NullModel,
    calibrate_cutoff,
    find_support_threshold,
    score_patterns,
)

RESAMPLE_COUNTS = (3, 9, 30)


def _workload(scale):
    # Sparse baskets (universe 80, T6) keep the item marginals low, so
    # planted co-occurrence stands clear of the marginal-preserving
    # null; dense baskets launder the signal into the marginals.
    n_transactions = {"smoke": 300, "default": 800,
                      "paper": 2000}[scale.name]
    return QuestConfig(
        n_transactions=n_transactions, avg_transaction_length=6.0,
        avg_pattern_length=4.0, n_items=80, n_patterns=8,
        corruption_mean=0.05)


def run_experiment():
    scale = current_scale()
    config = _workload(scale)
    min_sup = max(8, config.n_transactions // 40)
    replicates = max(3, scale.replicates // 2)
    master = random.Random(7171)

    spreads = {count: [] for count in RESAMPLE_COUNTS}
    kirsch_structured = []
    kirsch_random = []
    fdr_bounds = []
    best_fdr_bounds = []
    survivors = []
    for __ in range(replicates):
        seed = master.getrandbits(48)
        data = generate_quest(config, seed=seed)
        tidsets = data.tidsets()
        n = data.n_transactions

        # Megiddo-Srikant: calibrate at several resample counts, three
        # runs each, record the log10-threshold spread per count.
        for count in RESAMPLE_COUNTS:
            thresholds = []
            for run in range(3):
                calibration = calibrate_cutoff(
                    tidsets, n, min_sup, n_resamples=count,
                    max_length=3, seed=seed ^ (run + count * 101))
                thresholds.append(max(calibration.threshold, 1e-300))
            logs = [math.log10(t) for t in thresholds]
            spreads[count].append(max(logs) - min(logs))

        scored = score_patterns(tidsets, n, min_sup, max_length=3)
        calibration = calibrate_cutoff(
            tidsets, n, min_sup, n_resamples=9, max_length=3,
            seed=seed ^ 0xBEEF)
        survivors.append(sum(1 for s in scored
                             if s.p_value <= calibration.threshold))

        # Kirsch s*: structured vs marginal-preserving random data.
        # Size k=3: planted patterns average 4 items, and a heavy
        # pattern inflates its items' marginals enough that the
        # independence null nearly reproduces the observed *pair*
        # counts — the signal is laundered into the marginals. Triple
        # co-occurrence decays as f^3 under the null and survives.
        result = find_support_threshold(
            tidsets, n, k=3, min_sup=min_sup, n_null_samples=10,
            seed=seed ^ 0xABba)
        kirsch_structured.append(1.0 if result.found else 0.0)
        if result.found:
            # s* is the *smallest* passing threshold (largest flagged
            # family, weakest FDR bound); also record the cleanest
            # bound any passing candidate offers.
            fdr_bounds.append(result.fdr_bound)
            passing = [
                min(1.0, mean_ / observed)
                for observed, mean_, adj_p in
                result.candidates.values()
                if adj_p <= result.alpha and observed >= 5]
            best_fdr_bounds.append(min(passing))
        null = NullModel(tidsets, n)
        random_tidsets = null.sample_tidsets(random.Random(seed ^ 7))
        null_result = find_support_threshold(
            random_tidsets, n, k=3, min_sup=min_sup,
            n_null_samples=10, seed=seed ^ 0xCAFE)
        kirsch_random.append(1.0 if null_result.found else 0.0)

    return {
        "spreads": spreads,
        "kirsch_structured": kirsch_structured,
        "kirsch_random": kirsch_random,
        "fdr_bounds": fdr_bounds,
        "best_fdr_bounds": best_fdr_bounds,
        "survivors": survivors,
    }


def test_ablation_frequency(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    spread_means = [mean(results["spreads"][count])
                    for count in RESAMPLE_COUNTS]
    print()
    print(banner("Ablation: frequency significance (refs [10], [13])",
                 "Quest T8I3 workload"))
    print(format_series(
        "resamples", RESAMPLE_COUNTS,
        {"threshold spread (log10)": spread_means},
        title="Megiddo-Srikant cut-off stability vs resample count"))
    print()
    print(format_table(
        ["metric", "value"],
        [
            ["MS survivors (structured data)",
             f"{mean(results['survivors']):.1f}"],
            ["Kirsch s* found rate, structured",
             f"{mean(results['kirsch_structured']):.2f}"],
            ["Kirsch s* found rate, random",
             f"{mean(results['kirsch_random']):.2f}"],
            ["Kirsch FDR bound at s* (largest family)",
             f"{mean(results['fdr_bounds']):.3g}"],
            ["Kirsch FDR bound, best passing candidate",
             f"{mean(results['best_fdr_bounds']):.3g}"],
        ],
        title="Kirsch support-threshold search"))

    # Section 6's criticism made quantitative: 30 resamples calibrate
    # a tighter cut-off than 3.
    assert spread_means[-1] <= spread_means[0] + 0.5
    # Structured data carries frequency-significant patterns.
    assert mean(results["survivors"]) >= 1.0
    assert mean(results["kirsch_structured"]) >= 0.65
    # Random data rarely yields a threshold (grid-level Bonferroni).
    assert mean(results["kirsch_random"]) <= 0.34
    # s* maximizes the flagged family, so its bound is the weakest a
    # passing candidate carries; it must still be well below one ...
    if results["fdr_bounds"]:
        assert mean(results["fdr_bounds"]) <= 0.9
    # ... and some deeper threshold always offers a clean family.
    if results["best_fdr_bounds"]:
        assert mean(results["best_fdr_bounds"]) <= 0.35
