"""Ablation: closed patterns vs all frequent patterns as hypotheses.

Section 3 of the paper uses closed patterns so that rules occurring in
the same record set are tested once; Section 7 flags further
redundancy reduction as future work. This bench quantifies the choice:
on redundant data (mushroom-like) the closed representation tests
fewer hypotheses, which directly loosens the Bonferroni cut-off —
power for free, with an identical significant-tidset population.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import load_real_dataset
from repro.evaluation import format_table
from repro.mining import generate_rules, mine_apriori, mine_closed
from repro.mining.closed import ClosedPattern


def _apriori_as_ruleset(dataset, min_sup, max_length):
    """Score ALL frequent patterns (the no-closedness arm)."""
    frequent = mine_apriori(dataset.item_tidsets, dataset.n_records,
                            min_sup, max_length=max_length)
    patterns = [
        ClosedPattern(node_id=i, parent_id=-1, items=fp.items,
                      tidset=fp.tidset, support=fp.support, depth=1)
        for i, fp in enumerate(frequent)
    ]
    return generate_rules(dataset, patterns, min_sup)


def run_ablation():
    scale = current_scale()
    dataset = load_real_dataset("mushroom",
                                n_records=min(1200,
                                              scale.mushroom_records))
    min_sup, max_length = 140, 3
    closed = generate_rules(
        dataset,
        mine_closed(dataset.item_tidsets, dataset.n_records, min_sup,
                    max_length=max_length),
        min_sup)
    everything = _apriori_as_ruleset(dataset, min_sup, max_length)
    return dataset, closed, everything


def test_ablation_closed_vs_all(benchmark):
    dataset, closed, everything = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1)
    from repro.corrections import bonferroni
    bc_closed = bonferroni(closed, 0.05)
    bc_all = bonferroni(everything, 0.05)

    print()
    print(banner("Ablation: closed vs all frequent patterns",
                 f"mushroom sample, n={dataset.n_records}"))
    print(format_table(
        ["representation", "hypotheses", "BC cut-off", "BC significant"],
        [["closed", closed.n_tests, f"{bc_closed.threshold:.3g}",
          bc_closed.n_significant],
         ["all frequent", everything.n_tests, f"{bc_all.threshold:.3g}",
          bc_all.n_significant]]))

    # Fewer hypotheses with closed patterns...
    assert closed.n_tests < everything.n_tests
    # ...hence a looser (larger) Bonferroni cut-off.
    assert bc_closed.threshold > bc_all.threshold
    # Closedness only removes duplicates: every significant tidset of
    # the all-frequent arm whose closure was enumerated (the length cap
    # can exclude long closures) is significant in the closed arm too —
    # the closed arm's looser cut-off cannot lose it.
    closed_universe = {
        dataset.pattern_tidset(p.items) for p in closed.patterns}
    closed_significant = {
        dataset.pattern_tidset(r.items) for r in bc_closed.significant}
    all_significant = {
        dataset.pattern_tidset(r.items) for r in bc_all.significant}
    assert (all_significant & closed_universe) <= closed_significant
