"""Ablation: sequential (early-stopping) permutation p-values.

Section 4.2's engineering makes each permutation cheap; the sequential
Besag–Clifford procedure (`repro.stats.sequential`) makes *fewer*
permutations suffice for rules that are clearly not significant. This
bench runs the sequential test on every rule of an embedded-rule
dataset and compares total draws against the fixed-N baseline the
engine would spend on the same rule set.

Expected shape: the bulk of the rule population is nowhere near
significance, so its sequential tests stop after ~h/p draws; the
total permutation budget drops several-fold versus fixed-N while the
significant rules (which run to n_max) keep their full resolution.
Validity is free — the stopped estimator is super-uniform under the
null — so the saving has no error-control cost.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig, generate
from repro.evaluation import format_table
from repro.mining import mine_class_rules
from repro.stats import sequential_rule_p_value


def run_experiment():
    scale = current_scale()
    n = min(scale.synth_records, 1000)
    config = GeneratorConfig(
        n_records=n, n_attributes=20, n_rules=1,
        min_length=2, max_length=3,
        min_coverage=n // 5, max_coverage=n // 5,
        min_confidence=0.8, max_confidence=0.8)
    dataset = generate(config, seed=77).dataset
    ruleset = mine_class_rules(dataset, n // 10)
    n_max = scale.runtime_permutations * 4
    draws = []
    early = 0
    clearly_null = 0
    for index in range(len(ruleset.rules)):
        result = sequential_rule_p_value(ruleset, index, h=10,
                                         n_max=n_max, seed=index)
        draws.append(result.draws)
        if result.stopped_early:
            early += 1
        if result.p_value > 0.2:
            clearly_null += 1
    return {
        "n_rules": len(ruleset.rules),
        "n_max": n_max,
        "total_draws": sum(draws),
        "fixed_budget": n_max * len(ruleset.rules),
        "stopped_early": early,
        "clearly_null": clearly_null,
        "max_draws": max(draws),
        "min_draws": min(draws),
    }


def test_ablation_sequential(benchmark):
    stats = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    saving = 1.0 - stats["total_draws"] / stats["fixed_budget"]
    print()
    print(banner("Ablation: sequential permutation p-values "
                 "(Besag-Clifford)",
                 f"h=10, n_max={stats['n_max']}"))
    print(format_table(
        ["#rules", "fixed budget", "sequential draws", "saving",
         "stopped early", "p > 0.2"],
        [[stats["n_rules"], stats["fixed_budget"],
          stats["total_draws"], f"{saving:.1%}",
          stats["stopped_early"], stats["clearly_null"]]]))

    # Early stopping fires on a meaningful share of the population and
    # cuts the total budget substantially.
    assert stats["stopped_early"] >= stats["clearly_null"] * 0.9
    assert stats["total_draws"] < 0.7 * stats["fixed_budget"]
    # Significant rules still get full resolution.
    assert stats["max_draws"] == stats["n_max"]
