"""Figure 14: #significant rules on real datasets, FWER controlled at 5%.

On real data the ground truth is unknown, so the paper compares the
*counts* of rules each approach reports. Expected shapes: on
adult (and mushroom) the three approaches nearly coincide — almost all
rules are extreme; on german and hypo the permutation approach reports
more rules than the direct adjustment, and both report far more than
the holdout.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.corrections import (
    HoldoutRun,
    PermutationEngine,
    bonferroni,
    no_correction,
)
from repro.data import REAL_DATASETS, load_real_dataset
from repro.evaluation import format_series
from repro.mining import mine_class_rules


def _sweeps():
    scale = current_scale()
    return {
        "adult": (load_real_dataset("adult",
                                    n_records=scale.adult_records),
                  [scale.adult_records // 20, scale.adult_records // 10]),
        "german": (load_real_dataset("german"), [40, 60, 80]),
        "hypo": (load_real_dataset("hypo"), [1800, 2000, 2100]),
    }


def run_experiment():
    scale = current_scale()
    output = {}
    for name, (dataset, min_sups) in _sweeps().items():
        counts = {"No correction": [], "BC": [], "Perm_FWER": [],
                  "RH_BC": []}
        for min_sup in min_sups:
            ruleset = mine_class_rules(dataset, min_sup, max_length=5)
            counts["No correction"].append(
                no_correction(ruleset).n_significant)
            counts["BC"].append(bonferroni(ruleset).n_significant)
            engine = PermutationEngine(
                ruleset, n_permutations=scale.permutations, seed=14)
            counts["Perm_FWER"].append(engine.fwer().n_significant)
            run = HoldoutRun(dataset, min_sup, split="random", seed=14,
                             max_length=5)
            counts["RH_BC"].append(run.bonferroni().n_significant)
        output[name] = (min_sups, counts)
    return output


def test_fig14_real_fwer(benchmark):
    output = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print()
    for name, (min_sups, counts) in output.items():
        print(banner(f"Figure 14 ({name}): #significant rules, "
                     f"FWER at 5%"))
        print(format_series("min_sup", min_sups, counts))
        print()

    for name, (min_sups, counts) in output.items():
        for i in range(len(min_sups)):
            none = counts["No correction"][i]
            bc = counts["BC"][i]
            perm = counts["Perm_FWER"][i]
            rh = counts["RH_BC"][i]
            # Correction never reports more than no correction, and
            # the permutation threshold is never below Bonferroni's.
            assert bc <= none
            assert perm >= bc
            assert rh <= none
    # On german/hypo the permutation approach finds strictly more than
    # BC somewhere in the sweep (the gray zone pays off).
    for name in ("german", "hypo"):
        _, counts = output[name]
        assert any(p > b for p, b in zip(counts["Perm_FWER"],
                                         counts["BC"])), name
