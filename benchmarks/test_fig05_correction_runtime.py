"""Figure 5: running time of the three correction approaches.

Paper finding (Sections 5.3, 7): permutation test > holdout > direct
adjustment in cost; the permutation approach can be tens of times
slower than direct adjustment, the holdout a few times slower.
Times include frequent pattern mining, as in the paper.
"""

from __future__ import annotations

import time

from _scale import banner, current_scale
from repro.corrections import (
    HoldoutRun,
    PermutationEngine,
    benjamini_hochberg,
    bonferroni,
)
from repro.data import GeneratorConfig, generate, load_real_dataset
from repro.evaluation import format_table
from repro.mining import mine_class_rules


def _datasets():
    scale = current_scale()
    yield ("adult", load_real_dataset("adult",
                                      n_records=scale.adult_records),
           max(60, scale.adult_records // 20))
    yield ("german", load_real_dataset("german"), 60)
    yield ("hypo", load_real_dataset("hypo"), 2000)
    yield ("mushroom", load_real_dataset(
        "mushroom", n_records=scale.mushroom_records),
        scale.mushroom_records // 10)
    yield ("D8hA20R0", generate(GeneratorConfig(
        n_records=800, n_attributes=20, n_rules=0), seed=404).dataset, 20)
    yield ("D2kA20R5", generate(GeneratorConfig(
        n_records=2000, n_attributes=20, n_rules=5,
        min_coverage=400, max_coverage=600,
        min_confidence=0.6, max_confidence=0.8), seed=405).dataset, 60)


def _time_methods(dataset, min_sup, n_permutations):
    start = time.perf_counter()
    ruleset = mine_class_rules(dataset, min_sup, max_length=5)
    mining_time = time.perf_counter() - start

    start = time.perf_counter()
    bonferroni(ruleset)
    benjamini_hochberg(ruleset)
    direct_time = mining_time + (time.perf_counter() - start)

    start = time.perf_counter()
    run = HoldoutRun(dataset, min_sup, max_length=5)
    run.bonferroni()
    run.benjamini_hochberg()
    holdout_time = time.perf_counter() - start

    start = time.perf_counter()
    engine = PermutationEngine(ruleset, n_permutations=n_permutations,
                               seed=7)
    engine.fwer()
    engine.fdr()
    permutation_time = mining_time + (time.perf_counter() - start)

    return ruleset.n_tests, direct_time, holdout_time, permutation_time


def run_comparison():
    scale = current_scale()
    rows = []
    for name, dataset, min_sup in _datasets():
        n_tests, direct, hold, perm = _time_methods(
            dataset, min_sup, scale.runtime_permutations)
        rows.append([name, n_tests, direct, hold, perm])
    return rows


def test_fig05_correction_runtime(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    scale = current_scale()
    print()
    print(banner(
        "Figure 5: running time of the three approaches",
        f"seconds, including mining; permutations="
        f"{scale.runtime_permutations}"))
    printable = [
        [r[0], r[1], f"{r[2]:.3f}", f"{r[3]:.3f}", f"{r[4]:.3f}"]
        for r in rows
    ]
    print(format_table(
        ["dataset", "#rules", "direct adjustment", "holdout",
         "permutation"], printable))

    slower_perm = sum(1 for r in rows if r[4] > r[2])
    # The permutation approach must be the most expensive arm nearly
    # everywhere (it repeats scoring hundreds of times).
    assert slower_perm >= len(rows) - 1
    # Direct adjustment is never the slowest by a wide margin: its cost
    # is one mining pass plus two threshold scans.
    for row in rows:
        assert row[2] <= row[4] * 1.2, row[0]
