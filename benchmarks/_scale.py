"""Benchmark scale control and the shared ``BENCH_*.json`` envelope.

Every bench reads ``REPRO_SCALE`` from the environment:

* ``smoke``   — minimal sizes, seconds per bench (CI sanity);
* ``default`` — reduced replicate/permutation counts that preserve the
  paper's qualitative shapes in a few minutes per bench;
* ``paper``   — the paper's own sizes (100 replicate datasets, 1000
  permutations, full UCI record counts); hours of compute.

``EXPERIMENTS.md`` records which scale produced the committed numbers.

Committed benchmark artifacts all share one envelope so the CI
``bench-regression`` job can parse them uniformly::

    {
      "schema_version": 1,
      "benchmark": "<name>",
      "scale": "<smoke|default|paper>",
      "host": {"machine": ..., "python": ..., "system": ...},
      "gates": {"<ratio name>": {"value": <measured>, "min": <floor>}},
      "metrics": {...}            # bench-specific detail, free-form
    }

``gates`` holds every speedup ratio the repo stakes a claim on: each
must stay above its absolute ``min`` and, in CI, within the tolerance
band of the committed ``value`` (see
``benchmarks/check_bench_regression.py``). Everything else lives under
``metrics`` and is informational.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass
from typing import Dict, Tuple

#: Version of the shared BENCH_*.json envelope.
ENVELOPE_VERSION = 1


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for wall-clock time."""

    name: str
    replicates: int          # datasets per experimental cell
    permutations: int        # permutation count for Perm_* methods
    runtime_permutations: int  # permutations in the Fig 4/5 timing runs
    adult_records: int       # adult stand-in size (paper: 32561)
    mushroom_records: int    # mushroom stand-in size (paper: 8124)
    synth_records: int       # N for the synthetic experiments (paper: 2000)
    conf_sweep: Tuple[float, ...]
    minsup_sweep: Tuple[int, ...]
    random_minsup_sweep: Tuple[int, ...]


_SCALES = {
    "smoke": Scale(
        name="smoke", replicates=3, permutations=60,
        runtime_permutations=20, adult_records=2000,
        mushroom_records=1500, synth_records=1000,
        conf_sweep=(0.60, 0.70),
        # Must stay at or below the embedded coverage (N/5) so the
        # planted rule is minable at every sweep point.
        minsup_sweep=(100, 150),
        random_minsup_sweep=(200, 600),
    ),
    "default": Scale(
        name="default", replicates=10, permutations=150,
        runtime_permutations=60, adult_records=8000,
        mushroom_records=4000, synth_records=2000,
        conf_sweep=(0.55, 0.60, 0.65, 0.70),
        minsup_sweep=(100, 150, 200, 300, 400),
        random_minsup_sweep=(100, 200, 400, 600, 800, 1000),
    ),
    "paper": Scale(
        name="paper", replicates=100, permutations=1000,
        runtime_permutations=1000, adult_records=32561,
        mushroom_records=8124, synth_records=2000,
        conf_sweep=(0.55, 0.58, 0.60, 0.62, 0.65, 0.70),
        minsup_sweep=(100, 150, 200, 250, 300, 350, 400),
        random_minsup_sweep=(100, 200, 300, 400, 500, 600, 700, 800,
                             900, 1000),
    ),
}


def current_scale() -> Scale:
    """Resolve the active scale from ``REPRO_SCALE`` (default: default)."""
    name = os.environ.get("REPRO_SCALE", "default")
    try:
        return _SCALES[name]
    except KeyError:
        valid = ", ".join(sorted(_SCALES))
        raise RuntimeError(
            f"REPRO_SCALE={name!r} is not one of: {valid}") from None


def banner(experiment: str, detail: str = "") -> str:
    """Standard header printed by every bench."""
    scale = current_scale()
    line = "=" * 72
    parts = [line, f"{experiment}  [scale={scale.name}]"]
    if detail:
        parts.append(detail)
    parts.append(line)
    return "\n".join(parts)


def host_fingerprint() -> Dict[str, str]:
    """Where the committed numbers came from (context, not a gate)."""
    return {
        "machine": platform.machine(),
        "python": platform.python_version(),
        "system": platform.system(),
    }


def bench_envelope(benchmark: str, gates: Dict[str, Dict[str, float]],
                   metrics: Dict[str, object]) -> Dict[str, object]:
    """Assemble one ``BENCH_*.json`` record in the shared envelope.

    ``gates`` maps ratio names to ``{"value": measured, "min": floor}``
    — the numbers the bench-regression job compares run over run.
    ``metrics`` is the bench's free-form detail block.
    """
    record = {
        "schema_version": ENVELOPE_VERSION,
        "benchmark": benchmark,
        "scale": current_scale().name,
        "host": host_fingerprint(),
        "gates": gates,
        "metrics": metrics,
    }
    validate_bench(record)
    return record


def validate_bench(record: object) -> None:
    """Reject malformed envelopes with an explicit error.

    Raises ``ValueError`` naming every problem found; the
    bench-regression comparator runs this on both the committed and
    the freshly produced files before comparing anything, so a schema
    drift fails loudly instead of slipping past the gate.
    """
    problems = []
    if not isinstance(record, dict):
        raise ValueError("bench record must be a JSON object")
    if record.get("schema_version") != ENVELOPE_VERSION:
        problems.append(
            f"schema_version must be {ENVELOPE_VERSION}, got "
            f"{record.get('schema_version')!r}")
    benchmark = record.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        problems.append("benchmark must be a non-empty string")
    if record.get("scale") not in _SCALES:
        problems.append(
            f"scale must be one of {sorted(_SCALES)}, got "
            f"{record.get('scale')!r}")
    host = record.get("host")
    if not isinstance(host, dict) or not all(
            isinstance(host.get(k), str)
            for k in ("machine", "python", "system")):
        problems.append(
            "host must carry machine/python/system strings")
    gates = record.get("gates")
    if not isinstance(gates, dict):
        problems.append("gates must be an object")
    else:
        for name, gate in gates.items():
            if not isinstance(gate, dict) \
                    or not isinstance(gate.get("value"), (int, float)) \
                    or not isinstance(gate.get("min"), (int, float)):
                problems.append(
                    f"gate {name!r} must be "
                    "{'value': number, 'min': number}")
            elif gate["value"] < gate["min"]:
                problems.append(
                    f"gate {name!r}: value {gate['value']:.3f} below "
                    f"its floor {gate['min']}")
    if not isinstance(record.get("metrics"), dict):
        problems.append("metrics must be an object")
    if problems:
        raise ValueError("invalid bench record: " + "; ".join(problems))


def write_bench(record: Dict[str, object], default_path: str) -> str:
    """Validate and write one envelope (``REPRO_BENCH_JSON`` overrides
    the destination); returns the path written."""
    validate_bench(record)
    out_path = os.environ.get("REPRO_BENCH_JSON", str(default_path))
    with open(out_path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return out_path
