"""Benchmark scale control.

Every bench reads ``REPRO_SCALE`` from the environment:

* ``smoke``   — minimal sizes, seconds per bench (CI sanity);
* ``default`` — reduced replicate/permutation counts that preserve the
  paper's qualitative shapes in a few minutes per bench;
* ``paper``   — the paper's own sizes (100 replicate datasets, 1000
  permutations, full UCI record counts); hours of compute.

``EXPERIMENTS.md`` records which scale produced the committed numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Scale:
    """Knobs that trade fidelity for wall-clock time."""

    name: str
    replicates: int          # datasets per experimental cell
    permutations: int        # permutation count for Perm_* methods
    runtime_permutations: int  # permutations in the Fig 4/5 timing runs
    adult_records: int       # adult stand-in size (paper: 32561)
    mushroom_records: int    # mushroom stand-in size (paper: 8124)
    synth_records: int       # N for the synthetic experiments (paper: 2000)
    conf_sweep: Tuple[float, ...]
    minsup_sweep: Tuple[int, ...]
    random_minsup_sweep: Tuple[int, ...]


_SCALES = {
    "smoke": Scale(
        name="smoke", replicates=3, permutations=60,
        runtime_permutations=20, adult_records=2000,
        mushroom_records=1500, synth_records=1000,
        conf_sweep=(0.60, 0.70),
        # Must stay at or below the embedded coverage (N/5) so the
        # planted rule is minable at every sweep point.
        minsup_sweep=(100, 150),
        random_minsup_sweep=(200, 600),
    ),
    "default": Scale(
        name="default", replicates=10, permutations=150,
        runtime_permutations=60, adult_records=8000,
        mushroom_records=4000, synth_records=2000,
        conf_sweep=(0.55, 0.60, 0.65, 0.70),
        minsup_sweep=(100, 150, 200, 300, 400),
        random_minsup_sweep=(100, 200, 400, 600, 800, 1000),
    ),
    "paper": Scale(
        name="paper", replicates=100, permutations=1000,
        runtime_permutations=1000, adult_records=32561,
        mushroom_records=8124, synth_records=2000,
        conf_sweep=(0.55, 0.58, 0.60, 0.62, 0.65, 0.70),
        minsup_sweep=(100, 150, 200, 250, 300, 350, 400),
        random_minsup_sweep=(100, 200, 300, 400, 500, 600, 700, 800,
                             900, 1000),
    ),
}


def current_scale() -> Scale:
    """Resolve the active scale from ``REPRO_SCALE`` (default: default)."""
    name = os.environ.get("REPRO_SCALE", "default")
    try:
        return _SCALES[name]
    except KeyError:
        valid = ", ".join(sorted(_SCALES))
        raise RuntimeError(
            f"REPRO_SCALE={name!r} is not one of: {valid}") from None


def banner(experiment: str, detail: str = "") -> str:
    """Standard header printed by every bench."""
    scale = current_scale()
    line = "=" * 72
    parts = [line, f"{experiment}  [scale={scale.name}]"]
    if detail:
        parts.append(detail)
    parts.append(line)
    return "\n".join(parts)
