"""Figure 15: p-value distribution on the four real datasets.

Paper finding: on adult and mushroom more than 80% of rules have
p-values below 1e-12 (so all correction approaches nearly coincide);
on german and hypo a large fraction of rules sit between 1e-6 and
1e-2, which is exactly where the choice of correction matters.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import load_real_dataset
from repro.evaluation import format_series, pvalue_cdf
from repro.mining import mine_class_rules

GRID = [1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0]


def run_experiment():
    scale = current_scale()
    settings = {
        "adult": (load_real_dataset("adult",
                                    n_records=scale.adult_records),
                  scale.adult_records // 30),
        "german": (load_real_dataset("german"), 60),
        "hypo": (load_real_dataset("hypo"), 2000),
        "mushroom": (load_real_dataset(
            "mushroom", n_records=scale.mushroom_records),
            scale.mushroom_records // 13),
    }
    curves = {}
    totals = {}
    for name, (dataset, min_sup) in settings.items():
        ruleset = mine_class_rules(dataset, min_sup, max_length=5)
        cdf = pvalue_cdf(ruleset.p_values(), grid=GRID, normalized=True)
        curves[f"{name} (min_sup={min_sup})"] = [
            fraction for _, fraction in cdf]
        totals[name] = ruleset.n_tests
    return curves, totals


def test_fig15_real_pvalue_cdf(benchmark):
    curves, totals = benchmark.pedantic(run_experiment, rounds=1,
                                        iterations=1)
    print()
    print(banner("Figure 15: fraction of rules with p-value <= x",
                 f"rule counts: {totals}"))
    print(format_series("p <=", [f"{g:.0e}" for g in GRID], curves))

    by_name = {label.split(" ")[0]: series
               for label, series in curves.items()}
    # adult and mushroom: most rules extreme (paper: > 80%). The
    # threshold scales with the sample size: p-values concentrate with
    # n, so truncated smoke-scale samples sit higher.
    scale = current_scale()
    extreme_floor = 0.6 if scale.adult_records >= 4000 else 0.3
    assert by_name["adult"][0] >= extreme_floor
    assert by_name["mushroom"][0] >= extreme_floor
    # german and hypo: a sizeable gray zone between 1e-6 and 1e-2.
    for name in ("german", "hypo"):
        gray = by_name[name][5] - by_name[name][3]
        assert gray >= 0.15, name
    # Every curve is a CDF.
    for series in curves.values():
        assert series == sorted(series)
        assert series[-1] == 1.0
