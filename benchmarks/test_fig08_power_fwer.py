"""Figures 7 and 8: power/FWER/#FP vs conf(Rt) when FWER is controlled.

Paper setting: N=2000, A=40, one embedded rule with coverage 400,
confidence swept 0.55..0.70, min_sup=150 on the whole dataset, FWER
controlled at 5%. Expected shapes (Figure 8): power of every corrected
method rises with confidence; the permutation approach dominates the
direct adjustment, which dominates the holdout; no-correction has
power 1 throughout but FWER 1. Figure 7's #rules-tested panel comes
from the same runs.
"""

from __future__ import annotations

from _scale import banner, current_scale
from repro.data import GeneratorConfig
from repro.evaluation import FWER_METHODS, ExperimentRunner, format_series


def run_experiment():
    scale = current_scale()
    coverage = scale.synth_records // 5
    runner = ExperimentRunner(methods=FWER_METHODS,
                              n_permutations=scale.permutations)
    min_sup = max(50, scale.synth_records * 150 // 2000)
    sweep = {}
    for confidence in scale.conf_sweep:
        config = GeneratorConfig(
            n_records=scale.synth_records, n_attributes=40, n_rules=1,
            min_length=2, max_length=4,
            min_coverage=coverage, max_coverage=coverage,
            min_confidence=confidence, max_confidence=confidence)
        sweep[confidence] = runner.run(config, min_sup=min_sup,
                                       n_replicates=scale.replicates,
                                       seed=808)
    return sweep


def test_fig08_power_fwer(benchmark):
    sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    scale = current_scale()
    confidences = list(sweep)

    power = {m: [sweep[c].aggregates[m].power for c in confidences]
             for m in FWER_METHODS}
    fwer = {m: [sweep[c].aggregates[m].fwer for c in confidences]
            for m in FWER_METHODS}
    false_positives = {
        m: [sweep[c].aggregates[m].avg_false_positives
            for c in confidences]
        for m in FWER_METHODS}
    tested = {key: [sweep[c].mean_tested.get(key, 0.0)
                    for c in confidences]
              for key in ("whole dataset", "HD_exploratory",
                          "RH_exploratory", "HD_evaluation",
                          "RH_evaluation")}

    print()
    print(banner("Figure 7: average #rules tested",
                 f"coverage(Rt)={scale.synth_records // 5}, "
                 f"{scale.replicates} replicates"))
    print(format_series("conf(Rt)", confidences, tested))
    print()
    print(banner("Figure 8(a): power when controlling FWER at 5%"))
    print(format_series("conf(Rt)", confidences, power))
    print()
    print(banner("Figure 8(b): FWER"))
    print(format_series("conf(Rt)", confidences, fwer))
    print()
    print(banner("Figure 8(c): average #false positives"))
    print(format_series("conf(Rt)", confidences, false_positives))

    # No-correction detects the rule everywhere but with FWER ~ 1.
    assert all(p == 1.0 for p in power["No correction"])
    assert all(f >= 0.9 for f in fwer["No correction"])
    # Corrected methods: power non-decreasing overall (compare ends).
    for method in ("BC", "Perm_FWER"):
        assert power[method][-1] >= power[method][0], method
    # At the top of the sweep everything detects the rule.
    assert power["BC"][-1] == 1.0
    assert power["Perm_FWER"][-1] == 1.0
    # Ordering: permutation >= direct >= holdout (paper Section 7),
    # averaged over the sweep to absorb replicate noise.
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    assert mean(power["Perm_FWER"]) >= mean(power["BC"]) - 1e-9
    assert mean(power["BC"]) >= mean(power["HD_BC"]) - 1e-9
    # Holdout keeps the fewest false positives.
    assert mean(false_positives["HD_BC"]) <= \
        mean(false_positives["No correction"])
