"""Compare a fresh BENCH_*.json against its committed baseline.

The CI ``bench-regression`` job re-runs every benchmark and calls this
once per artifact::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_kernels.json --fresh fresh/BENCH_kernels.json

Both files must carry the shared envelope (``_scale.validate_bench``).
For every gate in the *baseline* the fresh run must (a) still clear
the gate's absolute ``min`` and (b) reach at least ``(1 - tolerance)``
of the committed ratio — the default 30% band absorbs runner noise
while catching real kernel regressions. A gate present in the
baseline but missing from the fresh run is a failure (a silently
dropped gate is how regressions hide); new gates in the fresh run are
reported but do not fail until committed.

Exit status 0 when every gate holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

from _scale import validate_bench

DEFAULT_TOLERANCE = 0.30


def load(path: str) -> dict:
    with open(path) as handle:
        record = json.load(handle)
    validate_bench(record)
    return record


def compare(baseline: dict, fresh: dict,
            tolerance: float) -> "list[str]":
    """Return one line per failed gate (empty = pass)."""
    failures = []
    if baseline["benchmark"] != fresh["benchmark"]:
        return [f"benchmark mismatch: baseline "
                f"{baseline['benchmark']!r} vs fresh "
                f"{fresh['benchmark']!r}"]
    for name, gate in sorted(baseline["gates"].items()):
        committed = float(gate["value"])
        floor = float(gate["min"])
        fresh_gate = fresh["gates"].get(name)
        if fresh_gate is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        measured = float(fresh_gate["value"])
        allowed = committed * (1.0 - tolerance)
        status = "ok"
        if measured < floor:
            status = f"below absolute floor {floor:g}"
        elif measured < allowed:
            status = (f"regressed >{tolerance:.0%} "
                      f"(allowed >= {allowed:.2f})")
        line = (f"{name}: committed {committed:.2f}x, "
                f"fresh {measured:.2f}x — {status}")
        print(f"  {line}")
        if status != "ok":
            failures.append(line)
    for name in sorted(set(fresh["gates"]) - set(baseline["gates"])):
        print(f"  {name}: new gate "
              f"({fresh['gates'][name]['value']:.2f}x), not yet "
              f"committed — informational")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced BENCH_*.json")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression of each "
                             "committed ratio (default: 0.30)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("tolerance must be in [0, 1)")
    baseline = load(args.baseline)
    fresh = load(args.fresh)
    print(f"{baseline['benchmark']}: baseline scale "
          f"{baseline['scale']}, fresh scale {fresh['scale']}, "
          f"tolerance {args.tolerance:.0%}")
    failures = compare(baseline, fresh, args.tolerance)
    if failures:
        print(f"FAIL: {len(failures)} gate(s) regressed:",
              file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("all gates within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
