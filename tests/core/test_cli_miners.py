"""CLI integration with the miner registry: ``--algorithm``,
``--list-algorithms``, did-you-mean errors, and plugin miners."""

from __future__ import annotations

import io
import sys
import textwrap

import pytest

from repro.cli import build_parser, main
from repro.data import GeneratorConfig, generate, save_csv
from repro.mining import resolve_miner, unregister_miner


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    config = GeneratorConfig(
        n_records=300, n_attributes=8, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    dataset = generate(config, seed=55).dataset
    path = tmp_path_factory.mktemp("cli-miners") / "data.csv"
    save_csv(dataset, path)
    return str(path)


class TestAlgorithmFlag:
    def test_default_is_closed(self):
        args = build_parser().parse_args(
            ["mine", "x.csv", "--min-sup", "10"])
        assert args.algorithm == "closed"

    def test_alias_canonicalised(self):
        args = build_parser().parse_args(
            ["mine", "x.csv", "--min-sup", "10",
             "--algorithm", "FP-Growth"])
        assert args.algorithm == "fpgrowth"

    def test_mine_runs_with_every_builtin(self, csv_path):
        from repro.mining import miner_names

        for algorithm in miner_names():
            out = io.StringIO()
            code = main(["mine", csv_path, "--min-sup", "25",
                         "--correction", "BH",
                         "--algorithm", algorithm, "--top", "3"],
                        out=out)
            assert code == 0, algorithm
            assert "significant rules" in out.getvalue()

    def test_all_frequent_tests_at_least_as_many(self, csv_path):
        def n_tests(algorithm):
            out = io.StringIO()
            assert main(["mine", csv_path, "--min-sup", "25",
                         "--algorithm", algorithm], out=out) == 0
            text = out.getvalue()
            return int(text.split("n_tests=")[1].split(")")[0])

        assert n_tests("fpgrowth") >= n_tests("closed")

    def test_typo_gets_did_you_mean(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["mine", "x.csv", "--min-sup", "10",
                 "--algorithm", "fpgorwth"])
        assert excinfo.value.code == 2
        assert "did you mean 'fpgrowth'" in capsys.readouterr().err

    def test_jobs_do_not_change_csv_output(self, csv_path, tmp_path):
        outputs = []
        for jobs, backend in (("1", "serial"), ("4", "processes")):
            csv_out = tmp_path / f"rules_j{jobs}.csv"
            assert main(["mine", csv_path, "--min-sup", "25",
                         "--algorithm", "fpgrowth",
                         "--correction", "Perm_FWER",
                         "--permutations", "50", "--seed", "0",
                         "--jobs", jobs, "--backend", backend,
                         "--csv-out", str(csv_out)],
                        out=io.StringIO()) == 0
            outputs.append(csv_out.read_bytes())
        assert outputs[0] == outputs[1]


class TestListAlgorithms:
    def test_lists_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--list-algorithms"])
        assert excinfo.value.code == 0
        captured = capsys.readouterr().out
        for name in ("closed", "apriori", "fpgrowth",
                     "representative", "general-rules"):
            assert name in captured
        assert "all-frequent" in captured


class TestPluginMiners:
    def test_plugin_miner_usable_via_algorithm(self, csv_path,
                                               tmp_path, monkeypatch):
        module = tmp_path / "my_miners.py"
        module.write_text(textwrap.dedent("""\
            from repro.mining import (
                Miner,
                mine_apriori,
                patternset_from_frequent,
                register_miner,
            )

            def _mine(item_tidsets, n_records, min_sup, max_length,
                      **opts):
                patterns = mine_apriori(item_tidsets, n_records,
                                        min_sup,
                                        max_length=max_length)
                return patternset_from_frequent(
                    patterns, n_records, min_sup)

            register_miner(Miner(
                name="plugin-miner", mine_fn=_mine,
                aliases=("pm",), capabilities=("all-frequent",)))
        """))
        monkeypatch.syspath_prepend(str(tmp_path))
        try:
            out = io.StringIO()
            code = main(["--plugin", "my_miners", "mine", csv_path,
                         "--min-sup", "25",
                         "--algorithm", "plugin-miner"], out=out)
            assert code == 0
            assert "significant rules" in out.getvalue()
            assert resolve_miner("pm").name == "plugin-miner"
            # The plugin miner shows up in the listing too.
            with pytest.raises(SystemExit):
                main(["--plugin", "my_miners", "--list-algorithms"])
        finally:
            unregister_miner("plugin-miner")
            sys.modules.pop("my_miners", None)

    def test_repro_plugins_env(self, csv_path, tmp_path, monkeypatch):
        module = tmp_path / "env_miners.py"
        module.write_text(textwrap.dedent("""\
            from repro.mining import (
                Miner,
                mine_fpgrowth,
                patternset_from_frequent,
                register_miner,
            )

            register_miner(Miner(
                name="env-miner",
                mine_fn=lambda t, n, s, m, **o:
                    patternset_from_frequent(
                        mine_fpgrowth(t, n, s, max_length=m), n, s),
                capabilities=("all-frequent",)))
        """))
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "env_miners")
        try:
            out = io.StringIO()
            code = main(["mine", csv_path, "--min-sup", "25",
                         "--algorithm", "env-miner"], out=out)
            assert code == 0
        finally:
            unregister_miner("env-miner")
            sys.modules.pop("env_miners", None)
