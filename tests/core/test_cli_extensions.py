"""Unit tests for the CLI extension options (measures, ranking,
redundancy, mid-p)."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.data import GeneratorConfig, generate, save_csv


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    config = GeneratorConfig(
        n_records=300, n_attributes=8, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    dataset = generate(config, seed=55).dataset
    path = tmp_path_factory.mktemp("cli-ext") / "data.csv"
    save_csv(dataset, path)
    return str(path)


class TestMeasuresCommand:
    def test_lists_all_measures(self):
        out = io.StringIO()
        assert main(["measures"], out=out) == 0
        text = out.getvalue()
        for name in ("lift", "leverage", "conviction", "jaccard"):
            assert name in text


class TestNewCorrectionsViaCli:
    @pytest.mark.parametrize("correction",
                             ["holm", "hochberg", "sidak",
                              "storey", "bky"])
    def test_direct_style_corrections(self, csv_path, correction):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "25",
                     "--correction", correction], out=out)
        assert code == 0
        assert "significant rules" in out.getvalue()

    def test_stepdown_permutation(self, csv_path):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "25",
                     "--correction", "permutation-fwer-stepdown",
                     "--permutations", "30", "--seed", "0"], out=out)
        assert code == 0
        assert "Perm_FWER_SD" in out.getvalue()


class TestRankBy:
    def test_rank_by_lift_runs(self, csv_path):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "25",
                     "--correction", "bh", "--rank-by", "lift",
                     "--top", "5"], out=out)
        assert code == 0

    def test_rank_by_rejects_unknown_measure(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["mine", "x.csv", "--min-sup", "10",
                               "--rank-by", "bogus"])


class TestRedundancyDeltaOption:
    def test_runs_and_reports(self, csv_path):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "25",
                     "--correction", "bonferroni",
                     "--redundancy-delta", "0.3"], out=out)
        assert code == 0

    def test_rejected_with_holdout(self, csv_path):
        code = main(["mine", csv_path, "--min-sup", "25",
                     "--correction", "holdout-fwer",
                     "--redundancy-delta", "0.3"], out=io.StringIO())
        assert code == 2  # ReproError -> exit code 2


class TestMidPOption:
    def test_midp_scorer_accepted(self, csv_path):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "25",
                     "--scorer", "fisher-midp"], out=out)
        assert code == 0

    def test_parser_rejects_unknown_scorer(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["mine", "x.csv", "--min-sup", "10",
                               "--scorer", "exact"])


class TestPowerCommand:
    def test_untestable_coverage_reported(self):
        out = io.StringIO()
        code = main(["power", "--records", "1000",
                     "--class-support", "500", "--coverage", "5",
                     "--threshold", "0.05"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "UNTESTABLE" in text
        assert "minimum testable coverage: 6" in text

    def test_detectable_coverage_reports_boundary(self):
        out = io.StringIO()
        code = main(["power", "--records", "2000",
                     "--class-support", "1000", "--coverage", "400",
                     "--threshold", "1.43e-5",
                     "--confidence", "0.6"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "minimum detectable support:    240" in text
        assert "detection power" in text

    def test_requires_all_shape_arguments(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["power", "--records", "100"])


class TestExperimentCommand:
    def test_runs_and_prints_table(self):
        out = io.StringIO()
        code = main(["experiment", "--records", "240",
                     "--attributes", "8", "--coverage", "48",
                     "--confidence", "0.9", "--min-sup", "20",
                     "--replicates", "2",
                     "--methods", "No correction,BC",
                     "--seed", "3"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "power" in text and "FWER" in text
        assert "No correction" in text and "BC" in text

    def test_unknown_method_is_reported_as_error(self):
        code = main(["experiment", "--records", "240",
                     "--methods", "NotAMethod",
                     "--replicates", "1"], out=io.StringIO())
        assert code == 2


class TestCsvOut:
    def test_mine_writes_csv(self, csv_path, tmp_path):
        out = io.StringIO()
        target = tmp_path / "sig.csv"
        code = main(["mine", csv_path, "--min-sup", "25",
                     "--correction", "bonferroni",
                     "--csv-out", str(target)], out=out)
        assert code == 0
        assert target.exists()
        header = target.open().readline().strip().split(",")
        assert header[:2] == ["rule", "class"]
        assert "wrote" in out.getvalue()
