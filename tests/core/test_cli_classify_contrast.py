"""CLI tests for the classify and contrast subcommands."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestClassifyCommand:
    def test_plain_cba_on_builtin(self):
        code, text = _run(["classify", "builtin:german",
                           "--min-sup", "150", "--top", "2"])
        assert code == 0
        assert "CBAClassifier" in text
        assert "default=" in text

    def test_cmar_variant(self):
        code, text = _run(["classify", "builtin:german",
                           "--min-sup", "150",
                           "--classifier", "cmar", "--top", "2"])
        assert code == 0
        assert "CMARClassifier" in text

    def test_correction_filter(self):
        code, text = _run(["classify", "builtin:german",
                           "--min-sup", "150",
                           "--correction", "bonferroni", "--top", "2"])
        assert code == 0
        assert "CBAClassifier" in text

    def test_cpar_variant_with_filter(self):
        code, text = _run(["classify", "builtin:german",
                           "--min-sup", "150",
                           "--classifier", "cpar",
                           "--correction", "bonferroni", "--top", "2"])
        assert code == 0
        assert "CPARClassifier" in text
        assert "laplace=" in text

    def test_cross_validation_output(self):
        code, text = _run(["classify", "builtin:german",
                           "--min-sup", "200", "--folds", "2",
                           "--max-length", "2", "--top", "1"])
        assert code == 0
        assert "CV accuracy" in text
        assert "accuracy:" in text

    def test_requires_min_sup(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "builtin:german"])


class TestContrastCommand:
    def test_contrast_on_builtin(self):
        code, text = _run(["contrast", "builtin:german",
                           "--min-deviation", "0.15",
                           "--min-sup", "40",
                           "--max-length", "2", "--top", "3"])
        assert code == 0
        assert "contrast sets" in text
        assert "layered alpha" in text

    def test_correction_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["contrast", "builtin:german", "--correction", "bh"])

    def test_naive_correction_accepted(self):
        code, text = _run(["contrast", "builtin:german",
                           "--min-deviation", "0.2",
                           "--min-sup", "60",
                           "--max-length", "1",
                           "--correction", "none", "--top", "2"])
        assert code == 0
        assert "contrast sets" in text

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["contrast", "builtin:german"])
        assert args.min_deviation == 0.05
        assert args.correction == "stucco"
        assert args.max_length == 3
