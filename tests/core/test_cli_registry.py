"""CLI integration with the correction registry: alias resolution,
registry-driven listings, and out-of-tree plugin corrections."""

from __future__ import annotations

import io
import sys
import textwrap

import pytest

from repro.cli import build_parser, main
from repro.corrections import resolve_correction, unregister_correction
from repro.data import GeneratorConfig, generate, save_csv
from repro.errors import CorrectionError


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    config = GeneratorConfig(
        n_records=300, n_attributes=8, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    dataset = generate(config, seed=55).dataset
    path = tmp_path_factory.mktemp("cli-registry") / "data.csv"
    save_csv(dataset, path)
    return str(path)


class TestAliasResolution:
    def test_abbreviation_accepted(self, csv_path):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "25",
                     "--correction", "BH"], out=out)
        assert code == 0
        assert "BH" in out.getvalue()

    def test_table3_spelling_canonicalised(self):
        args = build_parser().parse_args(
            ["mine", "x.csv", "--min-sup", "10",
             "--correction", "Perm_FWER"])
        assert args.correction == "permutation-fwer"

    def test_variant_spelling_preserved(self):
        # "HD_BH" binds the structured split; canonicalising it to
        # "holdout-fdr" would silently drop that binding.
        args = build_parser().parse_args(
            ["mine", "x.csv", "--min-sup", "10",
             "--correction", "HD_BH"])
        assert args.correction == "HD_BH"

    def test_variant_spelling_picks_structured_split(self, csv_path):
        structured = io.StringIO()
        random_split = io.StringIO()
        assert main(["mine", csv_path, "--min-sup", "25",
                     "--correction", "HD_BH", "--seed", "1"],
                    out=structured) == 0
        assert main(["mine", csv_path, "--min-sup", "25",
                     "--correction", "RH_BH", "--seed", "1"],
                    out=random_split) == 0
        assert "HD_BH:" in structured.getvalue()
        assert "RH_BH:" in random_split.getvalue()

    def test_unknown_correction_suggests(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "x.csv", "--min-sup", "10",
                 "--correction", "bonferonni"])
        assert "did you mean" in capsys.readouterr().err

    def test_corrections_listing_shows_aliases(self):
        out = io.StringIO()
        assert main(["corrections"], out=out) == 0
        text = out.getvalue()
        assert "bonferroni" in text
        assert "BC" in text
        assert "aliases" in text

    def test_experiment_accepts_canonical_names(self):
        out = io.StringIO()
        code = main(["experiment", "--records", "200",
                     "--attributes", "8", "--coverage", "40",
                     "--min-sup", "25", "--replicates", "2",
                     "--methods", "none,bonferroni"], out=out)
        assert code == 0
        # The table reports the Table 3 abbreviations.
        assert "BC" in out.getvalue()
        assert "No correction" in out.getvalue()


class TestPlugins:
    @pytest.fixture
    def plugin_on_path(self, tmp_path, monkeypatch):
        module = tmp_path / "my_corrections.py"
        module.write_text(textwrap.dedent("""\
            from repro.corrections import (Correction, bonferroni,
                                           register_correction)

            register_correction(Correction(
                name="plugin-strict", abbreviation="PS", family="fwer",
                apply_fn=lambda rs, alpha, ctx: bonferroni(rs,
                                                           alpha / 10),
                aliases=("ps",)))
        """))
        monkeypatch.syspath_prepend(str(tmp_path))
        yield "my_corrections"
        # Drop the import cache too: registration happens at module
        # import, so a cached module would not re-register next time.
        sys.modules.pop("my_corrections", None)
        try:
            unregister_correction("plugin-strict")
        except CorrectionError:
            pass

    def test_plugin_correction_usable_from_cli(self, plugin_on_path,
                                               csv_path):
        out = io.StringIO()
        code = main(["--plugin", plugin_on_path, "mine", csv_path,
                     "--min-sup", "25", "--correction", "plugin-strict"],
                    out=out)
        assert code == 0
        resolve_correction("plugin-strict")  # stays registered

    def test_plugin_env_var(self, plugin_on_path, monkeypatch):
        monkeypatch.setenv("REPRO_PLUGINS", plugin_on_path)
        out = io.StringIO()
        assert main(["corrections"], out=out) == 0
        assert "plugin-strict" in out.getvalue()

    def test_missing_plugin_module_errors(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--plugin", "no_such_module_xyz", "corrections"])
        assert "cannot import" in capsys.readouterr().err
