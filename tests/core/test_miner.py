"""Unit tests for the public SignificantRuleMiner API."""

from __future__ import annotations

import pytest

from repro import (
    CORRECTIONS,
    CorrectionError,
    SignificantRuleMiner,
    mine_significant_rules,
)
from repro.data import GeneratorConfig, generate


@pytest.fixture(scope="module")
def dataset():
    config = GeneratorConfig(
        n_records=300, n_attributes=10, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    return generate(config, seed=101).dataset


class TestCorrections:
    @pytest.mark.parametrize("correction", sorted(CORRECTIONS))
    def test_every_correction_runs(self, dataset, correction):
        report = mine_significant_rules(
            dataset, min_sup=25, correction=correction,
            n_permutations=40, seed=3)
        assert report.correction == correction
        assert report.n_tested >= 0
        assert isinstance(report.significant, list)

    def test_unknown_correction(self):
        with pytest.raises(CorrectionError):
            SignificantRuleMiner(min_sup=10, correction="voodoo")

    def test_none_loosest_bonferroni_strictest(self, dataset):
        loose = mine_significant_rules(dataset, min_sup=25,
                                       correction="none")
        strict = mine_significant_rules(dataset, min_sup=25,
                                        correction="bonferroni")
        assert len(strict.significant) <= len(loose.significant)

    def test_holdout_report_has_no_ruleset(self, dataset):
        report = mine_significant_rules(dataset, min_sup=25,
                                        correction="holdout-fwer", seed=1)
        assert report.ruleset is None

    def test_direct_report_keeps_ruleset(self, dataset):
        report = mine_significant_rules(dataset, min_sup=25,
                                        correction="bh")
        assert report.ruleset is not None
        assert report.n_tested == report.ruleset.n_tests


class TestReport:
    def test_summary_and_describe(self, dataset):
        report = mine_significant_rules(dataset, min_sup=25,
                                        correction="bonferroni")
        assert dataset.name in report.summary()
        text = report.describe(limit=2)
        assert "=>" in text or "0 significant" in text

    def test_significant_sorted_by_describe(self, dataset):
        report = mine_significant_rules(dataset, min_sup=25,
                                        correction="none")
        assert len(report.significant) > 0


class TestMinerReuse:
    def test_same_miner_multiple_datasets(self, dataset):
        miner = SignificantRuleMiner(min_sup=25, correction="bh")
        first = miner.mine(dataset)
        second = miner.mine(dataset)
        assert len(first.significant) == len(second.significant)

    def test_options_forwarded(self, dataset):
        miner = SignificantRuleMiner(min_sup=25, correction="bh",
                                     max_length=2, min_conf=0.5)
        report = miner.mine(dataset)
        assert all(r.length <= 2 for r in report.significant)
        assert all(r.confidence >= 0.5 for r in report.significant)

    def test_permutation_seeded(self, dataset):
        a = mine_significant_rules(dataset, min_sup=25,
                                   correction="permutation-fwer",
                                   n_permutations=40, seed=7)
        b = mine_significant_rules(dataset, min_sup=25,
                                   correction="permutation-fwer",
                                   n_permutations=40, seed=7)
        assert a.result.threshold == b.result.threshold

    def test_chi2_scorer_via_api(self, dataset):
        report = mine_significant_rules(dataset, min_sup=25,
                                        correction="bh", scorer="chi2")
        assert report.ruleset.scorer == "chi2"
