"""Parallel execution through the Pipeline API (``n_jobs=`` /
``backend=``)."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Pipeline, PipelineState
from repro.data import GeneratorConfig, generate
from repro.errors import CorrectionError, ReproError

CORRECTIONS = ("bonferroni", "BH", "Perm_FWER", "Perm_FDR", "Storey",
               "Holm", "holdout-fdr")


def _datasets(n):
    config = GeneratorConfig(
        n_records=300, n_attributes=8, n_rules=1,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    return [generate(config, seed=100 + i).dataset for i in range(n)]


def _fingerprints(results):
    return [
        {method: (res.threshold, res.n_significant,
                  [r.items for r in res.significant])
         for method, res in result.results.items()}
        for result in results
    ]


@pytest.fixture(scope="module")
def serial_results():
    pipe = Pipeline(min_sup=25, corrections=CORRECTIONS, seed=0,
                    n_permutations=30)
    return pipe.run_many(_datasets(3))


class TestRunManyFanOut:
    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_identical_to_serial(self, serial_results, backend):
        pipe = Pipeline(min_sup=25, corrections=CORRECTIONS, seed=0,
                        n_permutations=30, n_jobs=4, backend=backend)
        parallel = pipe.run_many(_datasets(3))
        assert _fingerprints(parallel) == _fingerprints(serial_results)

    def test_result_keys_keep_requested_order(self, serial_results):
        pipe = Pipeline(min_sup=25, corrections=CORRECTIONS, seed=0,
                        n_permutations=30, n_jobs=4, backend="threads")
        for result in pipe.run_many(_datasets(2)):
            assert tuple(result.results) == CORRECTIONS

    def test_process_results_support_report(self):
        pipe = Pipeline(min_sup=25, corrections=("BH",), seed=0,
                        n_jobs=2, backend="processes")
        result = pipe.run_many(_datasets(2))[0]
        report = result.report("BH")
        assert report.correction == "bh"
        assert report.result.n_significant == \
            result["BH"].n_significant

    def test_methods_override_still_works(self, serial_results):
        pipe = Pipeline(min_sup=25, corrections=("bonferroni",), seed=0,
                        n_permutations=30, n_jobs=2, backend="threads")
        results = pipe.run_many(_datasets(2), methods=("BH", "Storey"))
        for result in results:
            assert tuple(result.results) == ("BH", "Storey")

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_results_report_requested_configuration(self, backend):
        """Workers run intra-run serial, but the returned contexts
        surface the configuration the caller asked for."""
        pipe = Pipeline(min_sup=25, corrections=("BH",), seed=0,
                        n_jobs=2, backend=backend)
        for result in pipe.run_many(_datasets(2)):
            assert result.context.n_jobs == 2
            assert result.context.backend == backend

    def test_custom_stages_rejected_on_processes(self):
        class NullStage:
            name = "null"

            def run(self, ctx, state):
                return state

        pipe = Pipeline(min_sup=25, corrections=("bh",), n_jobs=2,
                        backend="processes", stages=(NullStage(),))
        with pytest.raises(CorrectionError, match="custom stage"):
            pipe.run_many(_datasets(2))

    def test_custom_stages_fine_on_threads(self):
        ran = []

        class RecordingState(PipelineState):
            pass

        class MineLike:
            name = "minelike"

            def run(self, ctx, state):
                ran.append(ctx.dataset.name)
                from repro.mining.closed import mine_closed
                state.patterns = mine_closed(
                    ctx.dataset.item_tidsets, ctx.dataset.n_records,
                    ctx.min_sup)
                return state

        class ScoreLike:
            name = "scorelike"

            def run(self, ctx, state):
                from repro.mining.rules import generate_rules
                state.ruleset = generate_rules(
                    ctx.dataset, state.patterns, ctx.min_sup)
                return state

        pipe = Pipeline(min_sup=25, corrections=("bh",), n_jobs=2,
                        backend="threads",
                        stages=(MineLike(), ScoreLike()))
        results = pipe.run_many(_datasets(2))
        assert len(results) == 2 and len(ran) == 2


class TestSingleRunParallelism:
    def test_run_identical_across_backends(self):
        dataset = _datasets(1)[0]
        serial = Pipeline(min_sup=25, corrections=CORRECTIONS, seed=0,
                          n_permutations=30).run(dataset)
        for backend in ("threads", "processes"):
            parallel = Pipeline(min_sup=25, corrections=CORRECTIONS,
                                seed=0, n_permutations=30, n_jobs=4,
                                backend=backend).run(dataset)
            assert _fingerprints([parallel]) == _fingerprints([serial])
            assert tuple(parallel.results) == CORRECTIONS

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ReproError):
            Pipeline(min_sup=10, corrections=("bh",), backend="gpu")
        with pytest.raises(ReproError):
            Pipeline(min_sup=10, corrections=("bh",), n_jobs=0)

    def test_context_carries_executor_settings(self):
        pipe = Pipeline(min_sup=25, corrections=("bh",), n_jobs=3,
                        backend="threads")
        ctx = pipe.context(_datasets(1)[0])
        assert ctx.n_jobs == 3
        assert ctx.backend == "threads"
        assert ctx.executor().backend == "threads"
        # Intra-run fan-out downgrades processes to threads (shared
        # mutable caches, unpicklable closures).
        ctx2 = pipe.context(_datasets(1)[0]).override(
            backend="processes")
        assert ctx2.executor(intra_run=True).backend == "threads"
        assert ctx2.executor().backend == "processes"
