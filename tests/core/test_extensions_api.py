"""Tests for the extension surface of the public API.

Covers the options added beyond the paper's core pipeline: the
Section 7 redundancy reduction (``redundancy_delta``), the mid-p
scorer, and the relative behaviour of the extended correction
catalogue through ``mine_significant_rules``.
"""

from __future__ import annotations

import pytest

from repro import (
    CORRECTIONS,
    CorrectionError,
    SignificantRuleMiner,
    mine_significant_rules,
)
from repro.data import GeneratorConfig, generate


@pytest.fixture(scope="module")
def dataset():
    config = GeneratorConfig(
        n_records=300, n_attributes=10, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    return generate(config, seed=101).dataset


class TestExtendedCorrectionCatalogue:
    def test_new_identifiers_registered(self):
        for key in ("holm", "hochberg", "sidak", "storey", "bky",
                    "permutation-fwer-stepdown"):
            assert key in CORRECTIONS

    def test_holm_at_least_bonferroni(self, dataset):
        bc = mine_significant_rules(dataset, 25, correction="bonferroni")
        hl = mine_significant_rules(dataset, 25, correction="holm")
        assert hl.result.n_significant >= bc.result.n_significant

    def test_fwer_family_ordering(self, dataset):
        counts = {
            key: mine_significant_rules(
                dataset, 25, correction=key).result.n_significant
            for key in ("bonferroni", "sidak", "holm", "hochberg")
        }
        assert counts["bonferroni"] <= counts["sidak"]
        assert counts["bonferroni"] <= counts["holm"] \
            <= counts["hochberg"]

    def test_fdr_family_ordering(self, dataset):
        counts = {
            key: mine_significant_rules(
                dataset, 25, correction=key).result.n_significant
            for key in ("by", "bh", "storey")
        }
        assert counts["by"] <= counts["bh"] <= counts["storey"]

    def test_stepdown_at_least_single_step(self, dataset):
        single = mine_significant_rules(
            dataset, 25, correction="permutation-fwer",
            n_permutations=60, seed=5)
        stepdown = mine_significant_rules(
            dataset, 25, correction="permutation-fwer-stepdown",
            n_permutations=60, seed=5)
        assert stepdown.result.n_significant \
            >= single.result.n_significant


class TestRedundancyDelta:
    def test_reduces_or_keeps_hypothesis_count(self, dataset):
        full = mine_significant_rules(dataset, 25, correction="bh")
        reduced = mine_significant_rules(dataset, 25, correction="bh",
                                         redundancy_delta=0.3)
        assert reduced.n_tested <= full.n_tested

    def test_delta_zero_is_identity(self, dataset):
        full = mine_significant_rules(dataset, 25, correction="bh")
        same = mine_significant_rules(dataset, 25, correction="bh",
                                      redundancy_delta=0.0)
        assert same.n_tested == full.n_tested

    def test_rejected_with_holdout(self):
        with pytest.raises(CorrectionError):
            SignificantRuleMiner(min_sup=10, correction="holdout-fwer",
                                 redundancy_delta=0.1)
        with pytest.raises(CorrectionError):
            SignificantRuleMiner(min_sup=10, correction="holdout-fdr",
                                 redundancy_delta=0.1)

    def test_works_with_permutation(self, dataset):
        report = mine_significant_rules(
            dataset, 25, correction="permutation-fwer",
            n_permutations=30, seed=1, redundancy_delta=0.3)
        assert report.n_tested >= 0

    def test_ruleset_patterns_are_representatives(self, dataset):
        report = mine_significant_rules(dataset, 25, correction="bh",
                                        redundancy_delta=0.4)
        assert report.ruleset is not None
        ids = [pattern.node_id for pattern in report.ruleset.patterns]
        assert ids == list(range(len(ids)))


class TestMidPScorer:
    def test_midp_via_api(self, dataset):
        exact = mine_significant_rules(dataset, 25, correction="bh")
        mid = mine_significant_rules(dataset, 25, correction="bh",
                                     scorer="fisher-midp")
        assert mid.result.n_significant >= exact.result.n_significant

    def test_midp_with_permutation(self, dataset):
        report = mine_significant_rules(
            dataset, 25, correction="permutation-fwer",
            scorer="fisher-midp", n_permutations=30, seed=7)
        assert report.n_tested > 0
