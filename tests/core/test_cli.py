"""Unit tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.data import GeneratorConfig, generate, save_csv, save_fimi


@pytest.fixture(scope="module")
def csv_path(tmp_path_factory):
    config = GeneratorConfig(
        n_records=300, n_attributes=8, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    dataset = generate(config, seed=55).dataset
    path = tmp_path_factory.mktemp("cli") / "data.csv"
    save_csv(dataset, path)
    return str(path)


class TestParser:
    def test_mine_requires_min_sup(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["mine", "x.csv"])

    def test_unknown_correction_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["mine", "x.csv", "--min-sup", "10",
                               "--correction", "magic"])

    def test_defaults(self):
        args = build_parser().parse_args(["mine", "x.csv",
                                          "--min-sup", "10"])
        assert args.correction == "bh"
        assert args.alpha == 0.05
        assert args.permutations == 1000


class TestCommands:
    def test_datasets_listing(self):
        out = io.StringIO()
        assert main(["datasets"], out=out) == 0
        text = out.getvalue()
        for name in ("adult", "german", "hypo", "mushroom"):
            assert f"builtin:{name}" in text

    def test_corrections_listing(self):
        out = io.StringIO()
        assert main(["corrections"], out=out) == 0
        text = out.getvalue()
        for key in ("bonferroni", "bh", "by", "lamp",
                    "permutation-fwer"):
            assert key in text

    def test_mine_csv(self, csv_path):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "30",
                     "--correction", "bonferroni", "--top", "3"],
                    out=out)
        assert code == 0
        text = out.getvalue()
        assert "BC:" in text
        assert "=>" in text

    def test_mine_builtin(self):
        out = io.StringIO()
        code = main(["mine", "builtin:german", "--min-sup", "80",
                     "--correction", "lamp", "--top", "2"], out=out)
        assert code == 0
        assert "LAMP" in out.getvalue()

    def test_mine_fimi(self, tmp_path):
        config = GeneratorConfig(n_records=100, n_attributes=5,
                                 min_values=2, max_values=2, n_rules=0)
        dataset = generate(config, seed=9).dataset
        data_path = tmp_path / "t.fimi"
        label_path = tmp_path / "t.labels"
        save_fimi(dataset, data_path, label_path=label_path)
        # FIMI via CLI reads labels from the last item per line, so
        # write a combined file instead.
        combined = tmp_path / "combined.fimi"
        lines = data_path.read_text().splitlines()
        labels = label_path.read_text().splitlines()
        combined.write_text("\n".join(
            f"{line} {label}" for line, label in zip(lines, labels)))
        out = io.StringIO()
        code = main(["mine", str(combined), "--min-sup", "20",
                     "--correction", "bh"], out=out)
        assert code == 0

    def test_unknown_format_is_error(self, tmp_path):
        weird = tmp_path / "data.xyz"
        weird.write_text("whatever")
        out = io.StringIO()
        assert main(["mine", str(weird), "--min-sup", "5"],
                    out=out) == 2

    def test_unknown_builtin_is_error(self):
        out = io.StringIO()
        assert main(["mine", "builtin:iris", "--min-sup", "5"],
                    out=out) == 2

    def test_class_column_by_name(self, csv_path):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "30",
                     "--class-column", "class"], out=out)
        assert code == 0

    def test_permutation_via_cli(self, csv_path):
        out = io.StringIO()
        code = main(["mine", csv_path, "--min-sup", "30",
                     "--correction", "permutation-fwer",
                     "--permutations", "40", "--seed", "1"], out=out)
        assert code == 0
        assert "Perm_FWER" in out.getvalue()
