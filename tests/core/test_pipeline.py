"""The composable Pipeline API and its equivalence to the classic
single-correction miner."""

from __future__ import annotations

import pytest

from repro import (
    CORRECTIONS,
    CorrectionError,
    Pipeline,
    SignificantRuleMiner,
)
from repro.core.pipeline import (
    CorrectStage,
    MineStage,
    PipelineState,
    ReduceStage,
    ScoreStage,
)
from repro.data import make_german

N_PERMUTATIONS = 30
SEED = 5
MIN_SUP = 40


@pytest.fixture(scope="module")
def german():
    """A fixed-seed German-credit stand-in, shrunk for speed."""
    return make_german(seed=4, n_records=400)


def rule_keys(rules):
    return sorted((tuple(sorted(rule.items)), rule.class_index,
                   rule.p_value) for rule in rules)


class TestMinerEquivalence:
    """Pipeline output matches SignificantRuleMiner rule-for-rule."""

    @pytest.mark.parametrize("correction", sorted(CORRECTIONS))
    def test_matches_miner(self, german, correction):
        miner = SignificantRuleMiner(
            min_sup=MIN_SUP, correction=correction,
            n_permutations=N_PERMUTATIONS, seed=SEED)
        expected = miner.mine(german)
        pipe = Pipeline(min_sup=MIN_SUP, corrections=(correction,),
                        n_permutations=N_PERMUTATIONS, seed=SEED)
        result = pipe.run(german)
        actual = result.report()
        assert actual.correction == expected.correction
        assert actual.result.method == expected.result.method
        assert actual.result.threshold == expected.result.threshold
        assert actual.n_tested == expected.n_tested
        assert rule_keys(actual.significant) == \
            rule_keys(expected.significant)

    def test_redundancy_path_matches(self, german):
        miner = SignificantRuleMiner(min_sup=MIN_SUP, correction="bh",
                                     redundancy_delta=0.05)
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("bh",),
                        redundancy_delta=0.05)
        expected = miner.mine(german)
        actual = pipe.run(german).report()
        assert actual.n_tested == expected.n_tested
        assert rule_keys(actual.significant) == \
            rule_keys(expected.significant)


class TestSharing:
    def test_one_mining_pass_for_many_corrections(self, german):
        pipe = Pipeline(min_sup=MIN_SUP,
                        corrections=("none", "bonferroni", "BH"))
        result = pipe.run(german)
        assert set(result.results) == {"none", "bonferroni", "BH"}
        for correction_result in result.results.values():
            assert correction_result.n_tests == result.ruleset.n_tests

    def test_permutation_pass_shared(self, german):
        pipe = Pipeline(
            min_sup=MIN_SUP,
            corrections=("permutation-fwer", "permutation-fdr"),
            n_permutations=N_PERMUTATIONS, seed=SEED)
        result = pipe.run(german)
        assert "permutation-engine" in result.context.shared
        # Shared engine means identical results to two separate runs
        # with the same seed.
        solo = Pipeline(min_sup=MIN_SUP,
                        corrections=("permutation-fdr",),
                        n_permutations=N_PERMUTATIONS, seed=SEED)
        assert result["permutation-fdr"].threshold == \
            solo.run(german)["permutation-fdr"].threshold

    def test_holdout_split_shared(self, german):
        pipe = Pipeline(min_sup=MIN_SUP,
                        corrections=("holdout-fwer", "holdout-fdr"),
                        seed=SEED)
        result = pipe.run(german)
        holdout_keys = [key for key in result.context.shared
                        if key.startswith("holdout:")]
        assert holdout_keys == ["holdout:random:0.05"]

    def test_holdout_only_run_skips_whole_dataset_mining(self, german):
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("holdout-fwer",),
                        seed=SEED)
        result = pipe.run(german)
        assert result.ruleset is None
        assert result.report().ruleset is None

    def test_variant_spellings_pick_their_split(self, german):
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("HD_BC", "RH_BC"),
                        seed=SEED)
        result = pipe.run(german)
        assert result["HD_BC"].method == "HD_BC"
        assert result["RH_BC"].method == "RH_BC"
        assert sorted(key for key in result.context.shared
                      if key.startswith("holdout:")) == \
            ["holdout:random:0.05", "holdout:structured:0.05"]


class TestRunMany:
    def test_run_many_returns_one_result_per_dataset(self, german):
        other = make_german(seed=9, n_records=300)
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("bonferroni",))
        results = pipe.run_many([german, other])
        assert [r.dataset for r in results] == [german, other]

    def test_run_many_methods_override(self, german):
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("bonferroni",))
        results = pipe.run_many([german], methods=("BH", "Storey"))
        assert set(results[0].results) == {"BH", "Storey"}


class TestComposition:
    def test_default_stage_order(self):
        pipe = Pipeline(min_sup=10)
        names = [stage.name for stage in pipe.stages()]
        assert names == ["mine", "reduce", "score", "correct"]

    def test_custom_stage_runs(self, german):
        class CapLength:
            name = "cap-length"

            def run(self, ctx, state):
                state.patterns = [p for p in state.patterns
                                  if len(p.items) <= 1]
                return state

        pipe = Pipeline(
            min_sup=MIN_SUP, corrections=("none",),
            stages=(MineStage(), CapLength(), ReduceStage(),
                    ScoreStage()))
        result = pipe.run(german)
        assert result.ruleset.rules
        assert all(rule.length <= 1 for rule in result.ruleset.rules)

    def test_custom_stages_run_even_for_holdout_only(self, german):
        seen = []

        class Recorder:
            name = "recorder"

            def run(self, ctx, state):
                seen.append(ctx.dataset.name)
                return state

        pipe = Pipeline(min_sup=MIN_SUP, corrections=("holdout-fwer",),
                        seed=SEED, stages=(Recorder(),))
        pipe.run(german)
        assert seen == [german.name]

    def test_holdout_cache_keyed_by_alpha(self, german):
        from repro.corrections import resolve_correction

        pipe = Pipeline(min_sup=MIN_SUP, corrections=("holdout-fwer",),
                        seed=SEED)
        ctx = pipe.context(german)
        resolved = resolve_correction("holdout-fwer")
        first = resolved.apply(None, 0.05, ctx)
        second = resolved.apply(None, 0.01, ctx)
        # A stricter alpha must re-screen candidates, not reuse the
        # pool screened at 0.05.
        assert second.n_tests <= first.n_tests
        assert len([key for key in ctx.shared
                    if key.startswith("holdout:")]) == 2

    def test_stage_objects_reusable(self, german):
        state = PipelineState()
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("none",))
        ctx = pipe.context(german)
        for stage in (MineStage(), ReduceStage(), ScoreStage(),
                      CorrectStage(pipe.resolved)):
            state = stage.run(ctx, state)
        assert state.results["none"].n_tests == state.ruleset.n_tests


class TestErrors:
    def test_empty_corrections_rejected(self):
        with pytest.raises(CorrectionError, match="at least one"):
            Pipeline(min_sup=10, corrections=())

    def test_redundancy_with_holdout_rejected(self):
        with pytest.raises(CorrectionError, match="redundancy_delta"):
            Pipeline(min_sup=10, corrections=("bh", "holdout-fwer"),
                     redundancy_delta=0.1)

    def test_report_needs_method_when_ambiguous(self, german):
        pipe = Pipeline(min_sup=MIN_SUP,
                        corrections=("none", "bonferroni"))
        result = pipe.run(german)
        with pytest.raises(CorrectionError, match="explicit method"):
            result.report()

    def test_report_unknown_method(self, german):
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("none",))
        result = pipe.run(german)
        with pytest.raises(CorrectionError, match="was not run"):
            result.report("bh")


class TestLifetimes:
    def test_report_survives_unregistration(self, german):
        from repro.corrections import (
            Correction,
            bonferroni,
            register_correction,
            unregister_correction,
        )

        register_correction(Correction(
            name="test-ephemeral", abbreviation="TE", family="fwer",
            apply_fn=lambda rs, alpha, ctx: bonferroni(rs, alpha)))
        try:
            result = Pipeline(min_sup=MIN_SUP,
                              corrections=("test-ephemeral",)
                              ).run(german)
        finally:
            unregister_correction("test-ephemeral")
        report = result.report()  # must not consult the live registry
        assert report.correction == "test-ephemeral"

    def test_miner_attributes_live_until_mine(self, german):
        miner = SignificantRuleMiner(min_sup=MIN_SUP, correction="none")
        miner.alpha = 0.001
        report = miner.mine(german)
        assert report.result.alpha == 0.001
        assert report.result.threshold == 0.001
