"""Public-API surface checks: exports resolve and stay importable."""

from __future__ import annotations

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.data",
    "repro.mining",
    "repro.stats",
    "repro.corrections",
    "repro.interest",
    "repro.evaluation",
    "repro.classify",
    "repro.contrast",
    "repro.frequency",
    "repro.core",
]


class TestTopLevel:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{module_name} must declare __all__"
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name}"


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackage_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40


def test_error_hierarchy_exported_at_top_level():
    from repro import (
        CorrectionError,
        DataError,
        EvaluationError,
        MiningError,
        ReproError,
        StatsError,
    )

    for error in (DataError, MiningError, StatsError, CorrectionError,
                  EvaluationError):
        assert issubclass(error, ReproError)
