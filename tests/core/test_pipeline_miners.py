"""The Pipeline's ``algorithm=`` dimension: default equivalence,
every registered miner end-to-end with the correction catalogue, and
determinism across the parallel backends."""

from __future__ import annotations

import pytest

from repro import Miner, Pipeline, SignificantRuleMiner
from repro.data import make_german
from repro.errors import EvaluationError, MiningError
from repro.evaluation.runner import ExperimentRunner
from repro.mining import (
    available_miners,
    mine_class_rules,
    patternset_from_frequent,
    register_miner,
    unregister_miner,
)

N_PERMUTATIONS = 30
SEED = 5
MIN_SUP = 40

MINERS = [m.name for m in available_miners()]


@pytest.fixture(scope="module")
def german():
    return make_german(seed=4, n_records=400)


def rule_keys(rules):
    return sorted((tuple(sorted(rule.items)), rule.class_index,
                   rule.p_value) for rule in rules)


class TestDefaultAlgorithm:
    def test_default_is_closed_and_identical(self, german):
        implicit = Pipeline(min_sup=MIN_SUP, corrections=("bh",))
        explicit = Pipeline(min_sup=MIN_SUP, corrections=("bh",),
                            algorithm="closed")
        legacy = mine_class_rules(german, MIN_SUP)
        for pipe in (implicit, explicit):
            result = pipe.run(german)
            assert result.state.pattern_set.algorithm == "closed"
            assert rule_keys(result.ruleset.rules) == \
                rule_keys(legacy.rules)

    def test_algorithm_survives_config_roundtrip(self, german):
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("bh",),
                        algorithm="fpgrowth")
        rebuilt = Pipeline(**pipe._config())
        assert rebuilt.algorithm == "fpgrowth"
        assert rule_keys(pipe.run(german).ruleset.rules) == \
            rule_keys(rebuilt.run(german).ruleset.rules)


class TestEveryRegisteredMiner:
    """The CI algorithm dimension: the pipeline equivalence suite runs
    for every miner in the registry, plugins included."""

    @pytest.mark.parametrize("algorithm", MINERS)
    def test_runs_with_direct_corrections(self, german, algorithm):
        pipe = Pipeline(min_sup=MIN_SUP,
                        corrections=("none", "bonferroni", "BH"),
                        algorithm=algorithm)
        result = pipe.run(german)
        assert result.state.pattern_set.algorithm == algorithm
        for correction_result in result.results.values():
            assert correction_result.n_tests == result.ruleset.n_tests
        assert result["BH"].n_significant >= \
            result["bonferroni"].n_significant

    @pytest.mark.parametrize("algorithm", MINERS)
    def test_runs_with_permutation_and_holdout(self, german, algorithm):
        pipe = Pipeline(
            min_sup=MIN_SUP,
            corrections=("permutation-fwer", "holdout-fdr"),
            algorithm=algorithm,
            n_permutations=N_PERMUTATIONS, seed=SEED)
        result = pipe.run(german)
        assert set(result.results) == {"permutation-fwer",
                                       "holdout-fdr"}
        # The holdout split re-mined with the same algorithm.
        run = result.context.shared["holdout:random:0.05"]
        assert run.algorithm == algorithm

    @pytest.mark.parametrize("algorithm", MINERS)
    def test_miner_equals_pipeline(self, german, algorithm):
        miner = SignificantRuleMiner(min_sup=MIN_SUP, correction="bh",
                                     algorithm=algorithm)
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("bh",),
                        algorithm=algorithm)
        assert rule_keys(miner.mine(german).significant) == \
            rule_keys(pipe.run(german).report().significant)

    def test_all_frequent_never_fewer_hypotheses(self, german):
        def n_tested(algorithm):
            return Pipeline(min_sup=MIN_SUP, corrections=("bh",),
                            algorithm=algorithm,
                            ).run(german).ruleset.n_tests
        closed = n_tested("closed")
        assert n_tested("apriori") == n_tested("fpgrowth") >= closed
        assert n_tested("representative") <= closed


class TestDeterminismAcrossBackends:
    @pytest.mark.parametrize("algorithm", ["closed", "fpgrowth"])
    def test_jobs_do_not_change_results(self, german, algorithm):
        def run(n_jobs, backend):
            pipe = Pipeline(
                min_sup=MIN_SUP,
                corrections=("permutation-fwer", "BH"),
                algorithm=algorithm,
                n_permutations=N_PERMUTATIONS, seed=SEED,
                n_jobs=n_jobs, backend=backend)
            result = pipe.run(german)
            return {method: rule_keys(res.significant)
                    for method, res in result.results.items()}

        reference = run(1, "serial")
        assert run(4, "threads") == reference
        assert run(4, "processes") == reference


class TestLateRegistration:
    def test_algorithm_resolved_at_mine_stage_time(self, german):
        # The pipeline stores the name; a miner registered *after*
        # construction must still resolve at run time.
        pipe = Pipeline(min_sup=MIN_SUP, corrections=("bh",),
                        algorithm="late-miner")
        with pytest.raises(MiningError, match="late-miner"):
            pipe.run(german)

        def mine_fn(item_tidsets, n_records, min_sup, max_length,
                    **opts):
            from repro.mining import mine_fpgrowth
            return patternset_from_frequent(
                mine_fpgrowth(item_tidsets, n_records, min_sup,
                              max_length=max_length),
                n_records, min_sup)

        register_miner(Miner(name="late-miner", mine_fn=mine_fn,
                             capabilities=("all-frequent",)))
        try:
            result = pipe.run(german)
            assert result.state.pattern_set.algorithm == "late-miner"
        finally:
            unregister_miner("late-miner")

    def test_miner_options_reach_the_miner(self, german):
        tight = Pipeline(min_sup=MIN_SUP, corrections=("bh",),
                         algorithm="representative",
                         miner_options={"delta": 0.5}).run(german)
        default = Pipeline(min_sup=MIN_SUP, corrections=("bh",),
                           algorithm="representative").run(german)
        assert tight.ruleset.n_tests <= default.ruleset.n_tests


class TestOversizedMinSupStillRejected:
    """The registry path must keep the eager min_sup sanity checks the
    old mine_class_rules call sites provided."""

    def test_holdout_only_pipeline_rejects_oversized_min_sup(self,
                                                             german):
        from repro.errors import ReproError

        pipe = Pipeline(min_sup=10 ** 6,
                        corrections=("holdout-fwer",), seed=SEED)
        with pytest.raises(ReproError, match="exceed"):
            pipe.run(german)

    def test_runner_rejects_oversized_min_sup(self):
        from repro.data import GeneratorConfig

        config = GeneratorConfig(
            n_records=100, n_attributes=6, n_rules=0)
        runner = ExperimentRunner(methods=("BH",), n_permutations=5)
        with pytest.raises(MiningError, match="exceeds dataset size"):
            runner.run(config, min_sup=10 ** 6, n_replicates=1, seed=0)


class TestExperimentRunnerAlgorithm:
    def test_unknown_algorithm_fails_fast(self):
        with pytest.raises(EvaluationError, match="did you mean"):
            ExperimentRunner(methods=("BH",), algorithm="fpgorwth")

    def test_ablation_grid_counts_more_hypotheses(self):
        from repro.data import GeneratorConfig

        config = GeneratorConfig(
            n_records=300, n_attributes=8, n_rules=1,
            min_coverage=60, max_coverage=60,
            min_confidence=0.9, max_confidence=0.9)

        def mean_tested(algorithm):
            runner = ExperimentRunner(
                methods=("BC", "BH"), n_permutations=10,
                algorithm=algorithm)
            result = runner.run(config, min_sup=40, n_replicates=2,
                                seed=0)
            return result.mean_tested["whole dataset"]

        assert mean_tested("fpgrowth") >= mean_tested("closed")

    def test_process_workers_honor_the_algorithm(self):
        from repro.data import GeneratorConfig

        config = GeneratorConfig(
            n_records=300, n_attributes=8, n_rules=1,
            min_coverage=60, max_coverage=60,
            min_confidence=0.9, max_confidence=0.9)

        def aggregates(n_jobs, backend):
            runner = ExperimentRunner(
                methods=("BC", "BH"), n_permutations=10,
                algorithm="fpgrowth", n_jobs=n_jobs, backend=backend)
            result = runner.run(config, min_sup=40, n_replicates=3,
                                seed=0)
            return {m: result.aggregates[m].row()
                    for m in runner.methods}

        assert aggregates(1, "serial") == aggregates(2, "processes")
