"""InducedRuleSet against the full direct-adjustment catalogue.

The duck-type contract (rules / p_values() / n_tests) is what lets a
greedy learner's output flow through the same correction procedures as
mined rule sets; this file pins that contract per procedure.
"""

from __future__ import annotations

import pytest

from repro.classify import CPARClassifier, InducedRuleSet
from repro.corrections import (
    benjamini_hochberg,
    benjamini_yekutieli,
    bonferroni,
    hochberg,
    holm,
    no_correction,
    sidak,
    storey_fdr,
    two_stage_bh,
)

PROCEDURES = [
    no_correction,
    bonferroni,
    benjamini_hochberg,
    holm,
    hochberg,
    sidak,
    benjamini_yekutieli,
    storey_fdr,
    two_stage_bh,
]




@pytest.mark.parametrize("procedure", PROCEDURES,
                         ids=lambda f: f.__name__)
def test_every_direct_procedure_accepts_induced_rules(embedded_data,
                                                      procedure):
    fitted = CPARClassifier(min_gain=0.5).fit(embedded_data.dataset)
    ruleset = fitted.induced_ruleset()
    result = procedure(ruleset, 0.05)
    assert result.n_tests == ruleset.n_tests
    assert 0 <= result.n_significant <= ruleset.n_tests
    for rule in result.significant:
        assert rule in ruleset.rules


def test_rejection_orderings_hold_on_induced_rules(embedded_data):
    """The theorem-level nestings hold regardless of rule origin."""
    fitted = CPARClassifier(min_gain=0.5).fit(embedded_data.dataset)
    ruleset = fitted.induced_ruleset()
    bc = bonferroni(ruleset, 0.05).n_significant
    hl = holm(ruleset, 0.05).n_significant
    hb = hochberg(ruleset, 0.05).n_significant
    bh = benjamini_hochberg(ruleset, 0.05).n_significant
    by = benjamini_yekutieli(ruleset, 0.05).n_significant
    assert bc <= hl <= hb <= bh
    assert by <= bh


def test_empty_induced_ruleset():
    ruleset = InducedRuleSet([])
    assert ruleset.n_tests == 0
    assert ruleset.p_values() == []
    result = bonferroni(ruleset, 0.05)
    assert result.n_significant == 0
