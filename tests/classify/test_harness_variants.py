"""The correction-vs-accuracy harness across all three classifiers."""

from __future__ import annotations

import pytest

from repro.classify import compare_filtered_rule_bases, cross_validate
from repro.classify.evaluate import CrossValidationResult, ConfusionMatrix


class TestHarnessWithCMAR:
    def test_cmar_rows(self, embedded_data):
        reports = compare_filtered_rule_bases(
            embedded_data.dataset, min_sup=40,
            corrections=("none", "bonferroni"), classifier="cmar",
            k=None)
        assert len(reports) == 2
        for report in reports:
            assert report.n_classifier_rules >= 0
            assert 0.0 <= report.training_accuracy <= 1.0

    def test_cmar_filtering_monotone(self, embedded_data):
        reports = compare_filtered_rule_bases(
            embedded_data.dataset, min_sup=40,
            corrections=("none", "bonferroni"), classifier="cmar",
            k=None)
        by_name = {r.correction: r for r in reports}
        assert (by_name["none"].n_significant_rules
                >= by_name["bonferroni"].n_significant_rules)


class TestHarnessWithCPAR:
    def test_cpar_candidates_equal_induced(self, embedded_data):
        reports = compare_filtered_rule_bases(
            embedded_data.dataset, min_sup=40,
            corrections=("none",), classifier="cpar", k=None)
        report = reports[0]
        # For the greedy inducer the candidate pool IS the rule base.
        assert report.n_candidate_rules == report.n_classifier_rules

    def test_cpar_bonferroni_prunes(self, embedded_data):
        reports = compare_filtered_rule_bases(
            embedded_data.dataset, min_sup=40,
            corrections=("none", "bonferroni"), classifier="cpar",
            k=None)
        by_name = {r.correction: r for r in reports}
        assert (by_name["bonferroni"].n_classifier_rules
                <= by_name["none"].n_classifier_rules)


class TestStatisticsHelpers:
    def test_empty_cv_result(self):
        result = CrossValidationResult(
            fold_accuracies=[], confusion=ConfusionMatrix(["a", "b"]),
            fold_rule_counts=[])
        assert result.mean_accuracy == 0.0
        assert result.std_accuracy == 0.0
        assert result.mean_rule_count == 0.0

    def test_single_fold_std_is_zero(self):
        result = CrossValidationResult(
            fold_accuracies=[0.8],
            confusion=ConfusionMatrix(["a", "b"]),
            fold_rule_counts=[3])
        assert result.std_accuracy == 0.0
        assert result.mean_accuracy == pytest.approx(0.8)

    def test_std_of_spread_folds(self):
        result = CrossValidationResult(
            fold_accuracies=[0.5, 0.9],
            confusion=ConfusionMatrix(["a", "b"]),
            fold_rule_counts=[2, 4])
        assert result.mean_accuracy == pytest.approx(0.7)
        assert result.std_accuracy == pytest.approx(0.2)
        assert result.mean_rule_count == pytest.approx(3.0)
