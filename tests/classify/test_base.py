"""Unit tests for the classifier plumbing in repro.classify.base."""

from __future__ import annotations

import pytest

from repro import bitset as bs
from repro.classify.base import (
    Prediction,
    majority_class,
    record_item_sets,
    rule_matches,
)
from repro.mining.rules import ClassRule


def _rule(items, class_index=0):
    return ClassRule(pattern_id=0, items=frozenset(items),
                     class_index=class_index, coverage=10, support=8,
                     confidence=0.8, p_value=0.01)


class TestRecordItemSets:
    def test_round_trips_the_columnar_layout(self, tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        assert len(sets) == tiny_dataset.n_records
        for item_id, tids in enumerate(tiny_dataset.item_tidsets):
            for r in range(tiny_dataset.n_records):
                contains = bool(tids >> r & 1)
                assert (item_id in sets[r]) == contains

    def test_every_record_has_one_item_per_attribute(self, tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        for items in sets:
            assert len(items) == tiny_dataset.n_attributes

    def test_sets_are_frozen(self, tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        assert all(isinstance(s, frozenset) for s in sets)


class TestRuleMatches:
    def test_subset_matches(self):
        assert rule_matches(_rule({1, 2}), frozenset({1, 2, 3}))

    def test_exact_match(self):
        assert rule_matches(_rule({1, 2}), frozenset({1, 2}))

    def test_missing_item_fails(self):
        assert not rule_matches(_rule({1, 4}), frozenset({1, 2, 3}))

    def test_empty_lhs_matches_everything(self):
        assert rule_matches(_rule(set()), frozenset())


class TestMajorityClass:
    def test_whole_dataset_majority(self, tiny_dataset):
        # tiny is 4 pos / 4 neg: tie breaks to the smaller index.
        assert majority_class(tiny_dataset) == 0

    def test_majority_within_tidset(self, tiny_dataset):
        # records 0..2 are all pos
        tidset = bs.bitset_from_indices([0, 1, 2])
        assert majority_class(tiny_dataset, tidset) == 0
        # records 4..6 are all neg
        tidset = bs.bitset_from_indices([4, 5, 6])
        assert majority_class(tiny_dataset, tidset) == 1

    def test_empty_tidset_falls_back_to_tie_break(self, tiny_dataset):
        assert majority_class(tiny_dataset, 0) == 0


class TestPrediction:
    def test_is_frozen(self):
        prediction = Prediction(0, None, 0.5, is_default=True)
        with pytest.raises(AttributeError):
            prediction.class_index = 1

    def test_carries_rule(self):
        rule = _rule({1})
        prediction = Prediction(1, rule, 0.8, is_default=False)
        assert prediction.rule is rule
        assert not prediction.is_default
