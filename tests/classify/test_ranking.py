"""Unit tests for CBA and significance rule precedence."""

from __future__ import annotations

import pytest

from repro.classify.ranking import (
    cba_sort_key,
    rank_rules,
    significance_sort_key,
)
from repro.mining.rules import ClassRule


def _rule(pattern_id=0, items=(1,), class_index=0, coverage=10,
          support=8, confidence=0.8, p_value=0.01):
    return ClassRule(pattern_id=pattern_id, items=frozenset(items),
                     class_index=class_index, coverage=coverage,
                     support=support, confidence=confidence,
                     p_value=p_value)


class TestCBAOrder:
    def test_higher_confidence_first(self):
        low = _rule(pattern_id=1, confidence=0.6)
        high = _rule(pattern_id=2, confidence=0.9)
        assert rank_rules([low, high]) == [high, low]

    def test_support_breaks_confidence_ties(self):
        light = _rule(pattern_id=1, support=5)
        heavy = _rule(pattern_id=2, support=9)
        assert rank_rules([light, heavy]) == [heavy, light]

    def test_shorter_lhs_breaks_support_ties(self):
        long_rule = _rule(pattern_id=1, items=(1, 2, 3))
        short_rule = _rule(pattern_id=2, items=(1, 2))
        assert rank_rules([long_rule, short_rule]) == [short_rule,
                                                       long_rule]

    def test_pattern_id_makes_order_total(self):
        first = _rule(pattern_id=1)
        second = _rule(pattern_id=2)
        assert rank_rules([second, first]) == [first, second]

    def test_key_is_deterministic(self):
        rule = _rule()
        assert cba_sort_key(rule) == cba_sort_key(rule)


class TestSignificanceOrder:
    def test_lower_p_value_first(self):
        weak = _rule(pattern_id=1, p_value=0.04)
        strong = _rule(pattern_id=2, p_value=1e-8)
        ranked = rank_rules([weak, strong], order="significance")
        assert ranked == [strong, weak]

    def test_confidence_breaks_p_ties(self):
        low = _rule(pattern_id=1, confidence=0.6)
        high = _rule(pattern_id=2, confidence=0.9)
        ranked = rank_rules([low, high], order="significance")
        assert ranked == [high, low]

    def test_key_orders_by_p_first(self):
        better_p = _rule(p_value=1e-6, confidence=0.5)
        better_conf = _rule(p_value=1e-2, confidence=0.99)
        assert (significance_sort_key(better_p)
                < significance_sort_key(better_conf))


class TestRankRules:
    def test_does_not_mutate_input(self):
        rules = [_rule(pattern_id=2), _rule(pattern_id=1)]
        snapshot = list(rules)
        rank_rules(rules)
        assert rules == snapshot

    def test_unknown_order_raises(self):
        with pytest.raises(ValueError, match="unknown rule order"):
            rank_rules([], order="chaos")

    def test_empty_input(self):
        assert rank_rules([]) == []
