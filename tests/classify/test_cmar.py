"""Unit tests for the CMAR voting classifier."""

from __future__ import annotations

import pytest

from repro.classify import CBAClassifier, CMARClassifier, record_item_sets
from repro.classify.cmar import max_chi2
from repro.errors import DataError
from repro.mining.rules import mine_class_rules
from repro.stats.chi2 import chi2_statistic


@pytest.fixture
def tiny_ruleset(tiny_dataset):
    return mine_class_rules(tiny_dataset, min_sup=2)


@pytest.fixture
def fitted(tiny_ruleset):
    return CMARClassifier().fit(tiny_ruleset)


class TestMaxChi2:
    def test_perfect_association_attains_the_bound(self):
        # coverage 10, n_c 10, n 20: best table is [[10,0],[0,10]].
        bound = max_chi2(10, 10, 20)
        attained = chi2_statistic(10, 0, 0, 10)
        assert bound == pytest.approx(attained)

    def test_statistic_never_exceeds_bound(self):
        n, n_c, coverage = 50, 20, 15
        bound = max_chi2(coverage, n_c, n)
        for support in range(0, min(coverage, n_c) + 1):
            a = support
            b = coverage - support
            c = n_c - support
            d = n - n_c - b
            if d < 0:
                continue
            assert chi2_statistic(a, b, c, d) <= bound + 1e-9

    def test_degenerate_margins_score_zero(self):
        assert max_chi2(0, 10, 20) == 0.0
        assert max_chi2(20, 10, 20) == 0.0
        assert max_chi2(10, 0, 20) == 0.0
        assert max_chi2(10, 20, 20) == 0.0


class TestFit:
    def test_fit_returns_self(self, tiny_ruleset):
        classifier = CMARClassifier()
        assert classifier.fit(tiny_ruleset) is classifier

    def test_invalid_delta_rejected(self):
        with pytest.raises(DataError, match="delta"):
            CMARClassifier(delta=0)

    def test_delta_one_keeps_no_more_rules_than_delta_three(
            self, tiny_ruleset):
        thin = CMARClassifier(delta=1).fit(tiny_ruleset)
        thick = CMARClassifier(delta=3).fit(tiny_ruleset)
        assert thin.n_rules <= thick.n_rules

    def test_weights_are_nonnegative(self, fitted):
        assert all(w >= 0.0 for w in fitted._weights.values())

    def test_empty_rule_base_degenerates_to_default(self, tiny_ruleset):
        fitted = CMARClassifier().fit(tiny_ruleset, rules=[])
        prediction = fitted.predict_itemset(frozenset())
        assert prediction.is_default


class TestPredict:
    def test_training_accuracy_on_separable_data(self, fitted,
                                                 tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        predictions = fitted.predict(sets)
        correct = sum(1 for p, a in zip(predictions,
                                        tiny_dataset.class_labels)
                      if p == a)
        assert correct == tiny_dataset.n_records

    def test_unseen_itemset_falls_to_default(self, fitted):
        prediction = fitted.predict_itemset(frozenset({10_000}))
        assert prediction.is_default
        assert prediction.class_index == fitted.default_class

    def test_winning_score_is_normalized(self, fitted, tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        for items in sets:
            prediction = fitted.predict_itemset(items)
            assert 0.0 <= prediction.score <= 1.0

    def test_prediction_rule_belongs_to_winning_class(self, fitted,
                                                      tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        for items in sets:
            prediction = fitted.predict_itemset(items)
            if prediction.rule is not None:
                assert prediction.rule.class_index == \
                    prediction.class_index

    def test_unfitted_predict_raises(self):
        with pytest.raises(DataError, match="not fitted"):
            CMARClassifier().predict_itemset(frozenset())


class TestAgreementWithCBA:
    def test_agrees_with_cba_on_separable_data(self, tiny_dataset,
                                               tiny_ruleset):
        cba = CBAClassifier().fit(tiny_ruleset)
        cmar = CMARClassifier().fit(tiny_ruleset)
        sets = record_item_sets(tiny_dataset)
        assert cba.predict(sets) == cmar.predict(sets)

    def test_synthetic_accuracy_at_least_default(self, embedded_data):
        dataset = embedded_data.dataset
        ruleset = mine_class_rules(dataset, min_sup=40)
        fitted = CMARClassifier().fit(ruleset)
        sets = record_item_sets(dataset)
        predictions = fitted.predict(sets)
        correct = sum(1 for p, a in zip(predictions,
                                        dataset.class_labels)
                      if p == a)
        majority = max(dataset.class_support(c)
                       for c in range(dataset.n_classes))
        assert correct >= majority * 0.9


class TestDescribe:
    def test_unfitted_describe(self, tiny_dataset):
        assert "not fitted" in CMARClassifier().describe(tiny_dataset)

    def test_fitted_describe_mentions_delta(self, fitted, tiny_dataset):
        assert "delta" in fitted.describe(tiny_dataset)
