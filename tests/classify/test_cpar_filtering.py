"""Tests for the statistical filtering of CPAR's induced rules."""

from __future__ import annotations

import pytest

from repro.classify import CPARClassifier, record_item_sets
from repro.classify.cpar import InducedRuleSet
from repro.classify.evaluate import significance_filtered_classifier
from repro.corrections import bonferroni
from repro.errors import DataError


@pytest.fixture
def fitted(embedded_data):
    return CPARClassifier(min_gain=0.5).fit(embedded_data.dataset)


class TestInducedRuleSet:
    def test_duck_type_fields(self, fitted):
        ruleset = fitted.induced_ruleset()
        assert ruleset.n_tests == fitted.n_rules
        assert len(ruleset.p_values()) == fitted.n_rules

    def test_direct_corrections_accept_it(self, fitted):
        result = bonferroni(fitted.induced_ruleset(), 0.05)
        assert result.n_tests == fitted.n_rules
        assert result.n_significant <= fitted.n_rules

    def test_unfitted_raises(self):
        with pytest.raises(DataError, match="not fitted"):
            CPARClassifier().induced_ruleset()

    def test_is_a_copy(self, fitted):
        ruleset = fitted.induced_ruleset()
        ruleset.rules.clear()
        assert fitted.n_rules > 0


class TestFiltered:
    def test_filter_shrinks_or_keeps(self, fitted):
        filtered = fitted.filtered("bonferroni", 0.05)
        assert filtered.n_rules <= fitted.n_rules

    def test_original_untouched(self, fitted):
        before = fitted.n_rules
        fitted.filtered("bonferroni", 0.05)
        assert fitted.n_rules == before

    def test_bh_no_stricter_than_bonferroni(self, fitted):
        bh = fitted.filtered("bh", 0.05)
        bc = fitted.filtered("bonferroni", 0.05)
        assert bh.n_rules >= bc.n_rules

    def test_filtered_classifier_still_predicts(self, fitted,
                                                embedded_data):
        filtered = fitted.filtered("bonferroni", 0.05)
        sets = record_item_sets(embedded_data.dataset)
        predictions = filtered.predict(sets)
        assert len(predictions) == embedded_data.dataset.n_records

    def test_survivors_meet_the_threshold(self, fitted):
        filtered = fitted.filtered("bonferroni", 0.05)
        threshold = 0.05 / fitted.n_rules
        for rule in filtered.rules:
            assert rule.p_value <= threshold

    def test_unknown_correction_rejected(self, fitted):
        with pytest.raises(DataError, match="direct adjustment"):
            fitted.filtered("permutation-fwer", 0.05)


class TestEvaluateIntegration:
    def test_cpar_through_the_harness(self, embedded_data):
        fitted = significance_filtered_classifier(
            embedded_data.dataset, min_sup=40, correction="none",
            classifier="cpar")
        assert fitted.n_rules >= 0
        assert fitted.default_class is not None

    def test_cpar_with_bonferroni_filter(self, embedded_data):
        plain = significance_filtered_classifier(
            embedded_data.dataset, min_sup=40, correction="none",
            classifier="cpar")
        filtered = significance_filtered_classifier(
            embedded_data.dataset, min_sup=40,
            correction="bonferroni", classifier="cpar")
        assert filtered.n_rules <= plain.n_rules
