"""Unit tests for the CBA classifier."""

from __future__ import annotations

import pytest

from repro.classify import CBAClassifier, record_item_sets
from repro.errors import DataError
from repro.mining.rules import mine_class_rules


@pytest.fixture
def tiny_ruleset(tiny_dataset):
    return mine_class_rules(tiny_dataset, min_sup=2)


@pytest.fixture
def fitted(tiny_ruleset):
    return CBAClassifier().fit(tiny_ruleset)


class TestFit:
    def test_fit_returns_self(self, tiny_ruleset):
        classifier = CBAClassifier()
        assert classifier.fit(tiny_ruleset) is classifier

    def test_default_class_is_set(self, fitted):
        assert fitted.default_class in (0, 1)

    def test_training_errors_recorded(self, fitted, tiny_dataset):
        assert 0 <= fitted.training_errors <= tiny_dataset.n_records

    def test_rules_are_subset_of_candidates(self, fitted, tiny_ruleset):
        candidate_keys = {(rule.items, rule.class_index)
                          for rule in tiny_ruleset.rules}
        for rule in fitted.rules:
            assert (rule.items, rule.class_index) in candidate_keys

    def test_perfect_separator_yields_zero_errors(self, tiny_dataset,
                                                  tiny_ruleset):
        # Attribute A perfectly separates pos (a) from neg (b).
        fitted = CBAClassifier().fit(tiny_ruleset)
        assert fitted.training_errors == 0

    def test_empty_rule_list_degenerates_to_default(self, tiny_ruleset,
                                                    tiny_dataset):
        fitted = CBAClassifier().fit(tiny_ruleset, rules=[])
        assert fitted.n_rules == 0
        sets = record_item_sets(tiny_dataset)
        predictions = fitted.predict(sets)
        assert all(p == fitted.default_class for p in predictions)

    def test_explicit_rule_subset_is_respected(self, tiny_ruleset):
        subset = tiny_ruleset.rules[:1]
        fitted = CBAClassifier().fit(tiny_ruleset, rules=subset)
        assert fitted.n_rules <= 1


class TestPredict:
    def test_training_accuracy_on_separable_data(self, fitted,
                                                 tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        predictions = fitted.predict(sets)
        correct = sum(1 for p, a in zip(predictions,
                                        tiny_dataset.class_labels)
                      if p == a)
        assert correct == tiny_dataset.n_records

    def test_prediction_carries_fired_rule(self, fitted, tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        prediction = fitted.predict_itemset(sets[0])
        if not prediction.is_default:
            assert prediction.rule is not None
            assert prediction.rule.items <= sets[0]

    def test_unseen_itemset_falls_to_default(self, fitted):
        prediction = fitted.predict_itemset(frozenset({10_000}))
        assert prediction.is_default
        assert prediction.rule is None
        assert prediction.class_index == fitted.default_class

    def test_default_score_is_class_prior(self, fitted):
        prediction = fitted.predict_itemset(frozenset({10_000}))
        assert prediction.score == pytest.approx(0.5)

    def test_unfitted_predict_raises(self):
        with pytest.raises(DataError, match="not fitted"):
            CBAClassifier().predict_itemset(frozenset())


class TestOrderVariants:
    def test_significance_order_accepted(self, tiny_ruleset):
        fitted = CBAClassifier(order="significance").fit(tiny_ruleset)
        assert fitted.default_class is not None

    def test_unknown_order_raises_at_fit(self, tiny_ruleset):
        with pytest.raises(ValueError, match="unknown rule order"):
            CBAClassifier(order="bogus").fit(tiny_ruleset)


class TestDescribe:
    def test_unfitted_describe(self, tiny_dataset):
        assert "not fitted" in CBAClassifier().describe(tiny_dataset)

    def test_fitted_describe_mentions_default(self, fitted,
                                              tiny_dataset):
        text = fitted.describe(tiny_dataset)
        assert "default=" in text
        assert "training_errors=" in text

    def test_describe_truncates(self, fitted, tiny_dataset):
        text = fitted.describe(tiny_dataset, limit=0)
        if fitted.n_rules:
            assert "more" in text


class TestCoveragePruning:
    def test_pruned_classifier_is_smaller_on_synthetic(self,
                                                       embedded_data):
        dataset = embedded_data.dataset
        ruleset = mine_class_rules(dataset, min_sup=40)
        fitted = CBAClassifier().fit(ruleset)
        assert 0 < fitted.n_rules < len(ruleset.rules)

    def test_training_error_never_worse_than_default_only(
            self, embedded_data):
        dataset = embedded_data.dataset
        ruleset = mine_class_rules(dataset, min_sup=40)
        fitted = CBAClassifier().fit(ruleset)
        majority = max(dataset.class_support(c)
                       for c in range(dataset.n_classes))
        default_only_errors = dataset.n_records - majority
        assert fitted.training_errors <= default_only_errors
