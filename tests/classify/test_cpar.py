"""Unit tests for the CPAR greedy rule inducer."""

from __future__ import annotations

import math

import pytest

from repro.classify import CPARClassifier, foil_gain, record_item_sets
from repro.errors import DataError


@pytest.fixture
def fitted(tiny_dataset):
    return CPARClassifier(min_gain=0.1).fit(tiny_dataset)


class TestFoilGain:
    def test_pure_specialization_gains(self):
        # 10 pos / 10 neg -> 5 pos / 0 neg: strong gain.
        gain = foil_gain(10, 10, 5, 0)
        assert gain == pytest.approx(5 * (0.0 - math.log(0.5)))

    def test_no_positives_left_is_zero(self):
        assert foil_gain(10, 10, 0, 5) == 0.0

    def test_zero_baseline_is_zero(self):
        assert foil_gain(0, 10, 0, 0) == 0.0

    def test_useless_literal_gains_nothing(self):
        # Same precision before and after -> zero gain.
        assert foil_gain(10, 10, 5, 5) == pytest.approx(0.0)

    def test_degrading_literal_is_negative(self):
        assert foil_gain(10, 5, 5, 10) < 0.0


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"weight_decay": 0.0},
        {"weight_decay": 1.0},
        {"coverage_threshold": 0.0},
        {"min_gain": 0.0},
        {"max_branches": 0},
        {"k_best": 0},
        {"max_rule_length": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(DataError):
            CPARClassifier(**kwargs)


class TestFit:
    def test_fit_returns_self(self, tiny_dataset):
        classifier = CPARClassifier(min_gain=0.1)
        assert classifier.fit(tiny_dataset) is classifier

    def test_induces_rules_on_separable_data(self, fitted):
        assert fitted.n_rules > 0

    def test_rules_carry_real_p_values(self, fitted):
        for rule in fitted.rules:
            assert 0.0 <= rule.p_value <= 1.0
            assert rule.support <= rule.coverage

    def test_rule_statistics_consistent(self, fitted, tiny_dataset):
        for rule in fitted.rules:
            tidset = tiny_dataset.pattern_tidset(rule.items)
            assert rule.coverage == bin(tidset).count("1")

    def test_rules_for_both_classes(self, fitted):
        classes = {rule.class_index for rule in fitted.rules}
        assert classes == {0, 1}

    def test_no_duplicate_rules(self, fitted):
        keys = [(rule.items, rule.class_index)
                for rule in fitted.rules]
        assert len(keys) == len(set(keys))


class TestPredict:
    def test_separable_data_classified_perfectly(self, fitted,
                                                 tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        predictions = fitted.predict(sets)
        assert predictions == tiny_dataset.class_labels

    def test_unseen_itemset_falls_to_default(self, fitted):
        prediction = fitted.predict_itemset(frozenset({10_000}))
        assert prediction.is_default
        assert prediction.class_index == fitted.default_class

    def test_prediction_rule_matches_winner(self, fitted,
                                            tiny_dataset):
        sets = record_item_sets(tiny_dataset)
        for items in sets:
            prediction = fitted.predict_itemset(items)
            if prediction.rule is not None:
                assert prediction.rule.class_index == \
                    prediction.class_index

    def test_unfitted_predict_raises(self):
        with pytest.raises(DataError, match="not fitted"):
            CPARClassifier().predict_itemset(frozenset())


class TestOnSyntheticData:
    def test_beats_the_prior_on_planted_rules(self, embedded_data):
        dataset = embedded_data.dataset
        fitted = CPARClassifier(min_gain=0.5).fit(dataset)
        sets = record_item_sets(dataset)
        predictions = fitted.predict(sets)
        correct = sum(1 for p, a in zip(predictions,
                                        dataset.class_labels)
                      if p == a)
        majority = max(dataset.class_support(c)
                       for c in range(dataset.n_classes))
        assert correct >= majority

    def test_rule_count_bounded(self, embedded_data):
        dataset = embedded_data.dataset
        fitted = CPARClassifier(min_gain=0.5).fit(dataset)
        assert fitted.n_rules <= 4 * dataset.n_items + 8

    def test_branching_finds_at_least_single_path(self, embedded_data):
        dataset = embedded_data.dataset
        single = CPARClassifier(min_gain=0.5, max_branches=1)
        branched = CPARClassifier(min_gain=0.5, max_branches=3)
        assert branched.fit(dataset).n_rules >= \
            single.fit(dataset).n_rules


class TestDescribe:
    def test_unfitted_describe(self, tiny_dataset):
        assert "not fitted" in CPARClassifier().describe(tiny_dataset)

    def test_fitted_describe_shows_laplace(self, fitted, tiny_dataset):
        text = fitted.describe(tiny_dataset)
        assert "laplace=" in text
        assert "CPARClassifier" in text
