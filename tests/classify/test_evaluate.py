"""Unit tests for cross-validation and the correction-vs-accuracy
harness."""

from __future__ import annotations

import random

import pytest

from repro.classify import (
    CBAClassifier,
    ConfusionMatrix,
    compare_filtered_rule_bases,
    cross_validate,
    significance_filtered_classifier,
    stratified_folds,
)
from repro.errors import EvaluationError
from repro.mining.rules import mine_class_rules


class TestConfusionMatrix:
    def test_starts_empty(self):
        matrix = ConfusionMatrix(["a", "b"])
        assert matrix.total == 0
        assert matrix.accuracy == 0.0

    def test_accuracy(self):
        matrix = ConfusionMatrix(["a", "b"])
        matrix.record(0, 0)
        matrix.record(0, 1)
        matrix.record(1, 1)
        matrix.record(1, 1)
        assert matrix.total == 4
        assert matrix.n_correct == 3
        assert matrix.accuracy == pytest.approx(0.75)

    def test_describe_contains_all_class_names(self):
        matrix = ConfusionMatrix(["good", "bad"])
        matrix.record(0, 1)
        text = matrix.describe()
        assert "good" in text and "bad" in text
        assert "accuracy" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EvaluationError, match="shape"):
            ConfusionMatrix(["a", "b"], counts=[[0]])


class TestStratifiedFolds:
    def test_folds_partition_records(self):
        labels = [0, 1] * 25
        folds = stratified_folds(labels, 5, random.Random(0))
        seen = sorted(r for fold in folds for r in fold)
        assert seen == list(range(50))

    def test_folds_are_balanced_in_size(self):
        labels = [0, 1] * 25
        folds = stratified_folds(labels, 5, random.Random(0))
        sizes = [len(fold) for fold in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_class_balance_within_one(self):
        labels = [0] * 30 + [1] * 20
        folds = stratified_folds(labels, 5, random.Random(1))
        for fold in folds:
            zeros = sum(1 for r in fold if labels[r] == 0)
            ones = len(fold) - zeros
            assert abs(zeros - 6) <= 1
            assert abs(ones - 4) <= 1

    def test_too_few_folds_rejected(self):
        with pytest.raises(EvaluationError, match="folds"):
            stratified_folds([0, 1], 1)

    def test_more_folds_than_records_rejected(self):
        with pytest.raises(EvaluationError):
            stratified_folds([0, 1], 3)

    def test_deterministic_given_rng(self):
        labels = [0, 1, 0, 1, 0, 1, 0, 1]
        first = stratified_folds(labels, 2, random.Random(42))
        second = stratified_folds(labels, 2, random.Random(42))
        assert first == second


class TestCrossValidate:
    def test_separable_data_scores_perfectly(self, tiny_dataset):
        def factory(train):
            return CBAClassifier().fit(mine_class_rules(train, min_sup=1))

        result = cross_validate(tiny_dataset, factory, k=2, seed=0)
        assert result.mean_accuracy == pytest.approx(1.0)
        assert result.confusion.total == tiny_dataset.n_records

    def test_fold_counts_recorded(self, tiny_dataset):
        def factory(train):
            return CBAClassifier().fit(mine_class_rules(train, min_sup=1))

        result = cross_validate(tiny_dataset, factory, k=2, seed=0)
        assert len(result.fold_accuracies) == 2
        assert len(result.fold_rule_counts) == 2

    def test_std_zero_for_identical_folds(self, tiny_dataset):
        def factory(train):
            return CBAClassifier().fit(mine_class_rules(train, min_sup=1))

        result = cross_validate(tiny_dataset, factory, k=2, seed=0)
        assert result.std_accuracy == pytest.approx(0.0)


class TestSignificanceFilteredClassifier:
    def test_none_correction_reproduces_plain_cba(self, embedded_data):
        dataset = embedded_data.dataset
        filtered = significance_filtered_classifier(
            dataset, min_sup=40, correction="none")
        plain = CBAClassifier().fit(mine_class_rules(dataset, min_sup=40))
        assert filtered.n_rules == plain.n_rules

    def test_bonferroni_prunes_rule_base(self, embedded_data):
        dataset = embedded_data.dataset
        unfiltered = significance_filtered_classifier(
            dataset, min_sup=40, correction="none")
        filtered = significance_filtered_classifier(
            dataset, min_sup=40, correction="bonferroni")
        assert filtered.n_rules <= unfiltered.n_rules

    def test_cmar_variant(self, embedded_data):
        dataset = embedded_data.dataset
        fitted = significance_filtered_classifier(
            dataset, min_sup=40, correction="bh", classifier="cmar")
        assert fitted.default_class is not None

    def test_unknown_classifier_rejected(self, embedded_data):
        with pytest.raises(EvaluationError, match="classifier"):
            significance_filtered_classifier(
                embedded_data.dataset, min_sup=40, classifier="svm")

    def test_holdout_correction_supported(self, embedded_data):
        dataset = embedded_data.dataset
        fitted = significance_filtered_classifier(
            dataset, min_sup=40, correction="holdout-fwer", seed=3)
        assert fitted.default_class is not None


class TestCompareFilteredRuleBases:
    def test_reports_one_row_per_correction(self, embedded_data):
        dataset = embedded_data.dataset
        reports = compare_filtered_rule_bases(
            dataset, min_sup=40, corrections=("none", "bonferroni"),
            k=None)
        assert [r.correction for r in reports] == ["none", "bonferroni"]

    def test_significant_counts_monotone_in_stringency(self,
                                                       embedded_data):
        dataset = embedded_data.dataset
        reports = compare_filtered_rule_bases(
            dataset, min_sup=40, corrections=("none", "bh", "bonferroni"),
            k=None)
        by_name = {r.correction: r for r in reports}
        assert (by_name["none"].n_significant_rules
                >= by_name["bh"].n_significant_rules
                >= by_name["bonferroni"].n_significant_rules)

    def test_rows_are_table_ready(self, embedded_data):
        dataset = embedded_data.dataset
        reports = compare_filtered_rule_bases(
            dataset, min_sup=40, corrections=("none",), k=None)
        row = reports[0].row()
        assert row["correction"] == "none"
        assert "train_acc" in row
        assert "cv_acc" not in row

    def test_cv_columns_present_when_requested(self, embedded_data):
        dataset = embedded_data.dataset
        reports = compare_filtered_rule_bases(
            dataset, min_sup=60, corrections=("bonferroni",), k=2)
        row = reports[0].row()
        assert "cv_acc" in row and "cv_std" in row
        assert 0.0 <= row["cv_acc"] <= 1.0
