"""Failure-injection tests: classifiers under degenerate inputs.

A production classifier meets skewed classes, single-class folds,
empty rule pools and mismatched catalogs. These tests pin down what
each classifier does there — predictable degradation, never a crash
with a confusing traceback.
"""

from __future__ import annotations

import pytest

from repro.classify import (
    CBAClassifier,
    CMARClassifier,
    CPARClassifier,
    cross_validate,
    record_item_sets,
    stratified_folds,
)
from repro.data import Dataset
from repro.errors import EvaluationError
from repro.mining.rules import mine_class_rules


@pytest.fixture
def skewed_dataset():
    """19 records of one class, 1 of the other."""
    records = [[f"v{r % 2}"] for r in range(20)]
    labels = ["big"] * 19 + ["small"]
    return Dataset.from_records(records, labels, ["A"], name="skewed")


@pytest.fixture
def constant_dataset():
    """Every record identical: rules carry no information."""
    records = [["x", "y"]] * 12
    labels = ["a", "b"] * 6
    return Dataset.from_records(records, labels, ["A", "B"],
                                name="constant")


class TestSkewedClasses:
    def test_cba_defaults_to_majority(self, skewed_dataset):
        ruleset = mine_class_rules(skewed_dataset, min_sup=1)
        fitted = CBAClassifier().fit(ruleset)
        prediction = fitted.predict_itemset(frozenset({999}))
        assert skewed_dataset.class_names[prediction.class_index] == \
            "big"

    def test_cba_training_errors_at_most_minority(self,
                                                  skewed_dataset):
        ruleset = mine_class_rules(skewed_dataset, min_sup=1)
        fitted = CBAClassifier().fit(ruleset)
        assert fitted.training_errors <= 1

    def test_cpar_handles_tiny_minority(self, skewed_dataset):
        fitted = CPARClassifier(min_gain=0.1).fit(skewed_dataset)
        sets = record_item_sets(skewed_dataset)
        predictions = fitted.predict(sets)
        assert len(predictions) == 20


class TestConstantData:
    def test_cba_on_uninformative_rules(self, constant_dataset):
        ruleset = mine_class_rules(constant_dataset, min_sup=1)
        fitted = CBAClassifier().fit(ruleset)
        # Nothing separates the classes; accuracy equals the prior.
        sets = record_item_sets(constant_dataset)
        predictions = fitted.predict(sets)
        correct = sum(
            1 for p, a in zip(predictions,
                              constant_dataset.class_labels)
            if p == a)
        assert correct == 6

    def test_cmar_on_uninformative_rules(self, constant_dataset):
        ruleset = mine_class_rules(constant_dataset, min_sup=1)
        fitted = CMARClassifier().fit(ruleset)
        prediction = fitted.predict_itemset(frozenset({0, 1}))
        assert prediction.class_index in (0, 1)

    def test_cpar_induces_nothing_useful(self, constant_dataset):
        fitted = CPARClassifier().fit(constant_dataset)
        # No literal can achieve positive gain on constant data at the
        # default min_gain; prediction falls back to the default.
        prediction = fitted.predict_itemset(frozenset({0, 1}))
        if fitted.n_rules == 0:
            assert prediction.is_default


class TestCrossValidationEdges:
    def test_folds_with_singleton_class(self, skewed_dataset):
        folds = stratified_folds(skewed_dataset.class_labels, 2)
        sizes = [len(fold) for fold in folds]
        assert sum(sizes) == 20
        # the single minority record lands in exactly one fold
        minority_fold_count = sum(
            1 for fold in folds
            if any(skewed_dataset.class_labels[r] == 1 for r in fold))
        assert minority_fold_count == 1

    def test_cv_survives_single_class_training_fold(self):
        """With 2 records of one class and 2 folds, one training half
        can still see both classes; the harness must not crash even
        when a fold's minority count is zero."""
        records = [[f"v{r % 3}"] for r in range(10)]
        labels = ["a"] * 8 + ["b"] * 2
        dataset = Dataset.from_records(records, labels, ["A"],
                                       name="nearly-one-class")

        def factory(train):
            return CBAClassifier().fit(mine_class_rules(train,
                                                        min_sup=1))

        result = cross_validate(dataset, factory, k=2, seed=0)
        assert result.confusion.total == 10

    def test_more_folds_than_minority_records(self):
        records = [[f"v{r % 2}"] for r in range(9)]
        labels = ["a"] * 8 + ["b"]
        dataset = Dataset.from_records(records, labels, ["A"],
                                       name="minority-one")

        def factory(train):
            return CBAClassifier().fit(mine_class_rules(train,
                                                        min_sup=1))

        result = cross_validate(dataset, factory, k=3, seed=1)
        assert len(result.fold_accuracies) == 3

    def test_invalid_k_rejected(self, skewed_dataset):
        def factory(train):
            return CBAClassifier().fit(mine_class_rules(train,
                                                        min_sup=1))

        with pytest.raises(EvaluationError):
            cross_validate(skewed_dataset, factory, k=1)


class TestForeignItemsets:
    def test_prediction_with_items_outside_catalog(self, skewed_dataset):
        ruleset = mine_class_rules(skewed_dataset, min_sup=1)
        for classifier in (CBAClassifier().fit(ruleset),
                           CMARClassifier().fit(ruleset)):
            prediction = classifier.predict_itemset(
                frozenset({10**6, 10**6 + 1}))
            assert prediction.is_default

    def test_empty_itemset(self, skewed_dataset):
        ruleset = mine_class_rules(skewed_dataset, min_sup=1)
        fitted = CBAClassifier().fit(ruleset)
        prediction = fitted.predict_itemset(frozenset())
        assert prediction.class_index in (0, 1)
