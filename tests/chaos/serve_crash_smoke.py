#!/usr/bin/env python
"""Kill -9 / restart / journal-recovery smoke of ``repro serve``.

The CI chaos job's end-to-end durability check, stdlib-only:

1. start ``repro serve`` with a file-backed store (journal derived),
2. run one mine job to completion and keep its CSV bytes,
3. submit a deliberately slow second job and SIGKILL the server
   mid-run — no drain, no goodbye,
4. restart on the same store: the finished job must still serve the
   **byte-identical** CSV straight from the artifact cache, and the
   killed job must be replayed from the journal and run to done,
5. resubmit the first job's params: answered from cache
   (``cached: true``) with the same bytes again.

Exit code 0 on success; any violated expectation aborts with a
diagnostic on stderr. Usage::

    python tests/chaos/serve_crash_smoke.py [workdir]
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

MINE_PARAMS = {"dataset": "small", "min_sup": 10,
               "correction": "permutation-fdr", "n_permutations": 20}
#: Sized so the job takes several seconds: the SIGKILL lands mid-run.
SLOW_PARAMS = dict(MINE_PARAMS, n_permutations=400_000)


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def request(method, url, body=None, timeout=10):
    data = None if body is None else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return response.status, response.read()


def get_json(url):
    status, payload = request("GET", url)
    return status, json.loads(payload)


def wait_for_health(base, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            status, body = get_json(f"{base}/health")
            if status == 200 and body["status"] == "ok":
                return body
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        time.sleep(0.2)
    fail(f"server at {base} never became healthy")


def wait_for_state(base, job_id, states, deadline=120.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        _, body = get_json(f"{base}/v1/jobs/{job_id}")
        if body["state"] in states:
            return body
        time.sleep(0.2)
    fail(f"job {job_id} never reached {states} "
         f"(last: {body['state']!r}, error: {body.get('error')!r})")


def submit(base, params):
    status, payload = request("POST", f"{base}/v1/jobs",
                              {"kind": "mine", "params": params})
    if status != 201:
        fail(f"submit returned {status}: {payload!r}")
    return json.loads(payload)["job_id"]


def result_csv(base, job_id):
    status, payload = request("GET",
                              f"{base}/v1/jobs/{job_id}/result.csv")
    if status != 200:
        fail(f"result.csv for {job_id} returned {status}")
    return payload


def start_server(workdir, port, csv_path):
    env = dict(os.environ)
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--host", "127.0.0.1", "--port", str(port),
         "--db", os.path.join(workdir, "store.sqlite"),
         "--dataset", f"small={csv_path}",
         "--job-workers", "1", "--backend", "serial"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        env=env)
    return process


def write_dataset(workdir):
    """The service suite's small dataset, as a CSV on disk."""
    path = os.path.join(workdir, "small.csv")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("A,B,C,class\n")
        for index in range(60):
            a = "a1" if index % 3 else "a0"
            b = f"b{index % 2}"
            c = f"c{index % 5}"
            label = ("pos" if (index % 3 != 0) == (index % 7 != 0)
                     else "neg")
            handle.write(f"{a},{b},{c},{label}\n")
    return path


def main() -> None:
    workdir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-crash-smoke-")
    os.makedirs(workdir, exist_ok=True)
    csv_path = write_dataset(workdir)
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    base = f"http://127.0.0.1:{port}"

    print(f"[1/5] starting repro serve in {workdir} on :{port}")
    server = start_server(workdir, port, csv_path)
    try:
        wait_for_health(base)
        fast = submit(base, MINE_PARAMS)
        wait_for_state(base, fast, {"done"})
        fast_csv = result_csv(base, fast)
        print(f"[2/5] job {fast} done ({len(fast_csv)} CSV bytes)")

        slow = submit(base, SLOW_PARAMS)
        wait_for_state(base, slow, {"running", "done"}, deadline=30.0)
        print(f"[3/5] SIGKILL while job {slow} is in flight")
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
    except BaseException:
        server.kill()
        raise

    server = start_server(workdir, port, csv_path)
    try:
        health = wait_for_health(base)
        journal = health["components"]["journal"]
        if not journal:
            fail("restarted server reports no journal component")

        replayed = wait_for_state(base, fast, {"done"}, deadline=10.0)
        if not replayed:
            fail(f"finished job {fast} lost across the crash")
        if result_csv(base, fast) != fast_csv:
            fail("cached CSV changed bytes across kill -9 + restart")
        print(f"[4/5] journal replay OK: {fast} still done, "
              f"CSV byte-identical")

        recovered = wait_for_state(base, slow, {"done", "failed"})
        if recovered["state"] != "done":
            fail(f"recovered job {slow} failed: {recovered['error']!r}")

        again = submit(base, MINE_PARAMS)
        wait_for_state(base, again, {"done"})
        _, result = get_json(f"{base}/v1/jobs/{again}/result")
        if result["cached"] is not True:
            fail("resubmitted params were recomputed, not cached")
        if result_csv(base, again) != fast_csv:
            fail("cache served different bytes after restart")
        print(f"[5/5] resubmission {again} served from cache, "
              f"byte-identical — PASS")
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    main()
