"""Chaos: the C toolchain disappears.

``native-compile-failure`` makes :func:`repro._native.load_suite`
behave as if every compiler invocation failed. The contract is the
numpy-fallback equivalence the kernel suite has guaranteed since it
landed: the served CSV must be byte-identical whether the native
kernels loaded or not, and ``native_status`` must say *why* they
did not.
"""

from __future__ import annotations

import pytest

import repro._native as native
from repro.testing import faults

from .conftest import make_manager, run_mine

pytestmark = [pytest.mark.chaos]


@pytest.fixture
def _fresh_kernel_memo():
    """Reset load_suite's memo so the fault point is reachable, and
    restore whatever was loaded afterwards."""
    saved = native._kernel, native._status
    native._kernel, native._status = "unset", "not loaded"
    yield
    native._kernel, native._status = saved


def test_numpy_fallback_serves_identical_bytes(_fresh_kernel_memo):
    baseline_manager = make_manager()
    baseline_csv = baseline_manager.result_csv(
        run_mine(baseline_manager).job_id)
    baseline_manager.close()

    faults.arm("native-compile-failure:1.0")
    native._kernel, native._status = "unset", "not loaded"
    assert native.load_suite() is None
    assert "fallback" in native.native_status()

    manager = make_manager()
    job = run_mine(manager)
    assert job.state == "done", job.error
    assert manager.result_csv(job.job_id) == baseline_csv
    manager.close()
