"""Chaos: journal replay after a simulated hard kill.

A process that dies without draining leaves its journal as the only
truth. Reopening the same journal (and the same artifact store) in a
fresh manager must reconstruct every job — finished ones stay
servable byte-for-byte, the in-flight/queued ones run to completion —
even with slow-write faults stretching every journal transaction.
"""

from __future__ import annotations

import pytest

from repro.service.journal import JobJournal
from repro.service.jobs import JobManager
from repro.service.registry import DatasetRegistry
from repro.service.store import ArtifactStore
from repro.testing import faults

from ..service.conftest import small_dataset
from .conftest import MINE_PARAMS

pytestmark = [pytest.mark.chaos]


def _manager(store_path, journal_path):
    registry = DatasetRegistry()
    registry.register("small", small_dataset())
    store = ArtifactStore(store_path)
    return JobManager(registry, store, workers=0,
                      journal=JobJournal(journal_path))


def test_replayed_jobs_serve_identical_bytes(tmp_path):
    store_path = str(tmp_path / "store.sqlite")
    journal_path = str(tmp_path / "store.sqlite.jobs")
    # Slow-write contention on every early journal/store transaction:
    # durability must not depend on writes being fast.
    faults.arm("sqlite-slow-write:1.0:4")

    first = _manager(store_path, journal_path)
    done = first.submit("mine", dict(MINE_PARAMS))
    first.process_pending()
    assert done.state == "done"
    csv_before = first.result_csv(done.job_id)
    queued = first.submit("mine", dict(MINE_PARAMS, min_sup=11))
    # Simulated kill -9: no close(), no drain — just abandon the
    # manager with one job finished and one sitting in the queue.

    second = _manager(store_path, journal_path)
    replayed = {job.job_id: job for job in second.jobs()}
    assert replayed[done.job_id].state == "done"
    assert replayed[queued.job_id].state == "queued"
    assert second.result_csv(done.job_id) == csv_before

    second.process_pending()
    recovered = {job.job_id: job for job in second.jobs()}
    assert recovered[queued.job_id].state == "done"
    events = [event["event"]
              for event in second._journal.events(queued.job_id)]
    assert "recovered" in events
    second.close()
