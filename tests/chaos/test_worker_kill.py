"""Chaos: SIGKILLed process workers.

The acceptance criterion from the resilience PR: a mine job that
loses process workers to injected kills recovers — under the
executor's retry policy, degrading through the breaker if the kills
never stop — and its exported CSV is **byte-identical** to a
fault-free run. When retries are exhausted, the failure is loud and
classified (:class:`~repro.parallel.RetryExhausted` with the attempt
count), never a silent partial result.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

import pytest

from repro.parallel import (
    CircuitBreaker,
    Executor,
    RetryExhausted,
    RetryPolicy,
    global_breaker,
)
from repro.testing import faults

from .conftest import make_manager, run_mine

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def _identity(value):
    return value


def test_recovered_mine_csv_is_byte_identical():
    baseline_manager = make_manager(backend="processes", n_jobs=2)
    baseline_job = run_mine(baseline_manager)
    assert baseline_job.state == "done"
    baseline_csv = baseline_manager.result_csv(baseline_job.job_id)
    baseline_manager.close()

    faults.arm("worker-kill:1.0:2")
    manager = make_manager(backend="processes", n_jobs=2)
    job = run_mine(manager)
    assert job.state == "done", job.error
    assert faults.fault_stats()["worker-kill"]["fires"] == 2
    assert manager.result_csv(job.job_id) == baseline_csv
    manager.close()


def test_unbounded_kills_degrade_and_still_converge():
    """With every process worker dying, the breaker walks the job
    down to threads (where there is nothing to kill) and the result
    is still byte-identical to the fault-free run."""
    baseline_manager = make_manager(backend="processes", n_jobs=2)
    baseline_csv = baseline_manager.result_csv(
        run_mine(baseline_manager).job_id)
    baseline_manager.close()

    faults.arm("worker-kill:1.0")
    manager = make_manager(backend="processes", n_jobs=2)
    job = run_mine(manager)
    assert job.state == "done", job.error
    assert global_breaker().state()["level"] >= 1
    assert manager.result_csv(job.job_id) == baseline_csv
    manager.close()


def test_exhausted_retries_fail_loudly_classified():
    """With the breaker held open (huge threshold) and a small retry
    budget, unbounded kills must exhaust — and the error names the
    attempt count instead of surfacing a bare pool crash."""
    faults.arm("worker-kill:1.0")
    executor = Executor("processes", n_jobs=2,
                        retry=RetryPolicy(max_attempts=2,
                                          base_delay=0.0),
                        breaker=CircuitBreaker(threshold=100))
    with pytest.raises(BrokenExecutor) as excinfo:
        executor.map_shards(_identity, [1, 2, 3])
    cause = excinfo.value.__cause__
    assert isinstance(cause, RetryExhausted)
    assert cause.attempts == 2
