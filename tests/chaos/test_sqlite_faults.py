"""Chaos: SQLITE_BUSY and slow writes against the artifact store.

The bounded busy retry (``run_with_busy_retry``) must absorb a burst
of lock contention without changing a single output byte — and when
contention never clears, the job must fail loudly with the storage
error classified on the record, not hang or half-write.
"""

from __future__ import annotations

import pytest

from repro.testing import faults

from .conftest import make_manager, run_mine

pytestmark = [pytest.mark.chaos]


def test_busy_burst_recovers_byte_identical():
    baseline_manager = make_manager()
    baseline_csv = baseline_manager.result_csv(
        run_mine(baseline_manager).job_id)
    baseline_manager.close()

    # Four consecutive injected BUSYs: inside the 5-attempt budget,
    # so the put succeeds on the final try.
    faults.arm("sqlite-busy:1.0:4")
    manager = make_manager()
    job = run_mine(manager)
    assert job.state == "done", job.error
    assert faults.fault_stats()["sqlite-busy"]["fires"] == 4
    assert manager.result_csv(job.job_id) == baseline_csv
    manager.close()


def test_unbounded_busy_fails_loudly_classified():
    faults.arm("sqlite-busy:1.0")
    manager = make_manager(max_retries=0)
    job = run_mine(manager)
    assert job.state == "failed"
    assert "storage error" in job.error
    assert "database is locked" in job.error
    assert job.traceback is not None
    manager.close()


def test_slow_writes_change_nothing_but_latency():
    baseline_manager = make_manager()
    baseline_csv = baseline_manager.result_csv(
        run_mine(baseline_manager).job_id)
    baseline_manager.close()

    faults.arm("sqlite-slow-write:1.0:2")
    manager = make_manager()
    job = run_mine(manager)
    assert job.state == "done", job.error
    assert manager.result_csv(job.job_id) == baseline_csv
    manager.close()
