"""Chaos: the CI-armed ``REPRO_FAULTS`` profile, end to end.

The CI chaos job runs this suite three times — ``worker-kill:0.2``,
``sqlite-busy:1.0:3``, ``native-compile-failure:1.0`` — and this
module is the test that actually runs a whole mine job under
whatever profile the environment armed (defaulting to the
acceptance-criterion profile, ``worker-kill:0.2``, when none is).

The assertion is deliberately profile-agnostic, because it *is* the
resilience contract: the job either finishes with a CSV
byte-identical to the fault-free baseline, or fails loudly with a
classified error and the final traceback on the record.
"""

from __future__ import annotations

import pytest

import repro._native as native
from repro.testing import faults

from .conftest import env_profile, make_manager, run_mine

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def test_armed_profile_recovers_or_fails_loudly():
    profile = env_profile("worker-kill:0.2")

    baseline_manager = make_manager(backend="processes", n_jobs=2)
    baseline_job = run_mine(baseline_manager)
    assert baseline_job.state == "done"
    baseline_csv = baseline_manager.result_csv(baseline_job.job_id)
    baseline_manager.close()

    plan = faults.arm(profile)
    if "native-compile-failure" in plan:
        # Make the injection point reachable: load_suite memoises.
        saved = native._kernel, native._status
        native._kernel, native._status = "unset", "not loaded"
    try:
        manager = make_manager(backend="processes", n_jobs=2,
                               max_retries=3)
        job = run_mine(manager)
        if job.state == "done":
            assert manager.result_csv(job.job_id) == baseline_csv
        else:
            # Exhaustion is allowed — silence is not.
            assert job.state == "failed"
            assert job.error
            assert job.traceback
        manager.close()
    finally:
        if "native-compile-failure" in plan:
            native._kernel, native._status = saved
