"""Chaos: a process worker hangs instead of crashing.

A hang is the nastiest failure mode — nothing raises, nothing exits.
The executor's per-unit ``deadline`` is the only recovery path: the
overrun unit surfaces as a transient
:class:`~repro.errors.DeadlineExceeded`, the hung workers are
terminated, and the retried wave (with the fault's fire budget spent)
produces exactly the fault-free results.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import DeadlineExceeded
from repro.parallel import (
    CircuitBreaker,
    Executor,
    RetryExhausted,
    RetryPolicy,
)
from repro.testing import faults

pytestmark = [pytest.mark.chaos, pytest.mark.slow]


def _double(value):
    return 2 * value


def test_deadline_recovers_single_hang(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS_HANG", "10")
    faults.arm("executor-hang:1.0:1")
    executor = Executor("processes", n_jobs=2, deadline=0.75,
                        retry=RetryPolicy(base_delay=0.0),
                        breaker=CircuitBreaker(threshold=100))
    start = time.monotonic()
    assert executor.map_shards(_double, [1, 2, 3]) == [2, 4, 6]
    # Recovery must not wait out the 10s hang: the deadline fired.
    assert time.monotonic() - start < 8.0
    assert executor.stats["retries"] >= 1


def test_endless_hangs_exhaust_loudly(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS_HANG", "10")
    faults.arm("executor-hang:1.0")
    executor = Executor("processes", n_jobs=2, deadline=0.5,
                        retry=RetryPolicy(max_attempts=2,
                                          base_delay=0.0),
                        breaker=CircuitBreaker(threshold=100))
    with pytest.raises(DeadlineExceeded) as excinfo:
        executor.map_shards(_double, [1, 2])
    assert isinstance(excinfo.value.__cause__, RetryExhausted)
