"""Fixtures for the chaos suite.

Every test in this directory asserts one contract: an injected fault
either **recovers to byte-identical output** or **fails loudly with a
classified error** — never a silent wrong answer, never a hang.

Tests arm their own deterministic fault plans through
:mod:`repro.testing.faults`, so the suite is self-contained and runs
green inside tier-1 with no environment set. The CI chaos job
additionally re-runs it under three ``REPRO_FAULTS`` profiles
(worker-kill, sqlite-busy, native-compile-failure);
``test_profile.py`` picks the armed profile up from the environment
and drives a whole mine job under it.

The autouse hygiene fixture suspends whatever plan the environment
armed (each test re-arms exactly what it exercises) and resets the
process-wide circuit breaker on both sides, so degradation state
cannot leak between tests — or out into the rest of the test run.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import global_breaker
from repro.service.jobs import JobManager
from repro.service.registry import DatasetRegistry
from repro.service.store import ArtifactStore
from repro.testing import faults

from ..service.conftest import small_dataset

#: A mine job whose correction actually fans permutations out through
#: the executor — the processes backend is where worker-kill and
#: executor-hang live.
MINE_PARAMS = {
    "dataset": "small",
    "min_sup": 10,
    "correction": "permutation-fdr",
    "n_permutations": 20,
}


@pytest.fixture(autouse=True)
def _fault_hygiene():
    """Suspend any environment-armed plan and reset the breaker."""
    global_breaker().reset()
    with faults.suspended():
        yield
    global_breaker().reset()


def make_manager(db_path: str = ":memory:", journal=None,
                 **kwargs) -> JobManager:
    """A workers=0 JobManager over a fresh registry + store."""
    registry = DatasetRegistry()
    registry.register("small", small_dataset())
    store = ArtifactStore(db_path)
    kwargs.setdefault("workers", 0)
    return JobManager(registry, store, journal=journal, **kwargs)


def run_mine(manager: JobManager, **overrides):
    """Submit one mine job, drain the queue, return the Job."""
    params = dict(MINE_PARAMS)
    params.update(overrides)
    job = manager.submit("mine", params)
    manager.process_pending()
    return job


def env_profile(default: str) -> str:
    """The CI-armed ``REPRO_FAULTS`` profile, or ``default``."""
    return os.environ.get("REPRO_FAULTS", "").strip() or default
