"""Unit tests for deterministic shard seeding."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import ReproError
from repro.parallel import (
    root_sequence,
    sequence_from_legacy_rng,
    shard_slices,
    slice_sequences,
    spawn_sequences,
)


def _generators(root, n):
    return [np.random.default_rng(child)
            for child in spawn_sequences(root, n)]


class TestShardSlices:
    def test_partitions_exactly(self):
        for n_items in (0, 1, 7, 16, 100):
            for n_shards in (1, 3, 4, 16):
                slices = shard_slices(n_items, n_shards)
                covered = [i for start, stop in slices
                           for i in range(start, stop)]
                assert covered == list(range(n_items))

    def test_balanced_within_one(self):
        sizes = [stop - start for start, stop in shard_slices(10, 4)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 10

    def test_never_more_shards_than_items(self):
        assert len(shard_slices(3, 16)) == 3
        assert shard_slices(0, 4) == []

    def test_invalid_shard_count(self):
        with pytest.raises(ReproError):
            shard_slices(10, 0)


class TestSpawning:
    def test_same_seed_same_streams(self):
        a = _generators(root_sequence(42), 5)
        b = _generators(root_sequence(42), 5)
        for ga, gb in zip(a, b):
            assert (ga.permutation(20) == gb.permutation(20)).all()

    def test_children_differ_from_each_other(self):
        gens = _generators(root_sequence(0), 3)
        draws = [tuple(g.permutation(50)) for g in gens]
        assert len(set(draws)) == 3

    def test_unit_seed_independent_of_shard_layout(self):
        """Unit t's child is the same whether sliced into 1 or 4
        shards — the invariant behind worker-count determinism."""
        children = spawn_sequences(root_sequence(7), 12)
        one = slice_sequences(children, shard_slices(12, 1))
        four = slice_sequences(children, shard_slices(12, 4))
        flat_four = [seq for shard in four for seq in shard]
        for a, b in zip(one[0], flat_four):
            assert a.entropy == b.entropy
            assert a.spawn_key == b.spawn_key

    def test_negative_spawn_rejected(self):
        with pytest.raises(ReproError):
            spawn_sequences(root_sequence(0), -1)


class TestLegacyShim:
    def test_seeded_legacy_rng_is_deterministic(self):
        a = sequence_from_legacy_rng(random.Random(5))
        b = sequence_from_legacy_rng(random.Random(5))
        assert a.entropy == b.entropy
        ga = np.random.default_rng(a)
        gb = np.random.default_rng(b)
        assert (ga.permutation(30) == gb.permutation(30)).all()

    def test_different_legacy_seeds_diverge(self):
        a = sequence_from_legacy_rng(random.Random(5))
        b = sequence_from_legacy_rng(random.Random(6))
        assert a.entropy != b.entropy
