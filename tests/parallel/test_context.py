"""The hoisted wave context: shipped once per worker, never per task.

The ``context=`` keyword of :meth:`Executor.map_shards` exists so the
processes backend installs the shared payload (dataset, engine, config)
through the pool initializer instead of closing over it in the task
function — submissions and retries then carry only ``(index, shard)``.
The pins here prove that: an *unpicklable* context still fans out under
the fork start method, including across retries, which is impossible if
any per-task submission embedded the context.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.parallel import Executor, RetryPolicy, TransientError
from repro.parallel.resilience import CircuitBreaker


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
        return True
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return False


class _RefusesPickling:
    """A context payload that detonates if anything tries to pickle it."""

    def __init__(self, factor: int) -> None:
        self.factor = factor

    def __getstate__(self):
        raise AssertionError(
            "wave context was pickled; it must ride the pool "
            "initializer (inherited under fork), not the task payload")


def _scale(context, shard):
    return context.factor * shard


def _flaky_scale(context, shard):
    # Fails transiently once per shard, keyed by a cross-process
    # marker file so forked workers observe prior attempts.
    marker = f"{context.marker_dir}/shard-{shard}"
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise TransientError(f"first attempt on shard {shard}")
    return context.factor * shard


class _FlakyContext(_RefusesPickling):
    def __init__(self, factor: int, marker_dir: str) -> None:
        super().__init__(factor)
        self.marker_dir = marker_dir


class TestContextFanOut:
    @pytest.mark.parametrize("backend", ["serial", "threads",
                                         "processes"])
    def test_context_threaded_through(self, backend):
        if backend == "processes" and not _fork_available():
            pytest.skip("fork start method unavailable")
        ex = Executor(backend=backend, n_jobs=2)
        got = ex.map_shards(_scale, [1, 2, 3, 4],
                            context=_RefusesPickling(10))
        assert got == [10, 20, 30, 40]

    def test_no_context_keeps_single_arg_signature(self):
        ex = Executor(backend="serial", n_jobs=1)
        assert ex.map_shards(lambda s: s + 1, [1, 2]) == [2, 3]

    def test_retries_reship_units_not_context(self, tmp_path):
        if not _fork_available():
            pytest.skip("fork start method unavailable")
        # A private breaker: the injected transients must not degrade
        # the process-wide backend for whatever test runs next.
        ex = Executor(backend="processes", n_jobs=2,
                      retry=RetryPolicy(max_attempts=3, base_delay=0.0),
                      breaker=CircuitBreaker())
        context = _FlakyContext(7, str(tmp_path))
        got = ex.map_shards(_flaky_scale, [1, 2, 3], context=context)
        assert got == [7, 14, 21]
        assert ex.stats["retries"] >= 1

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_results_identical_across_backends(self, backend):
        reference = Executor(backend="serial", n_jobs=1).map_shards(
            _scale, list(range(8)), context=_RefusesPickling(3))
        got = Executor(backend=backend, n_jobs=3).map_shards(
            _scale, list(range(8)), context=_RefusesPickling(3))
        assert got == reference
