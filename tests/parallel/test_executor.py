"""Unit tests for the pluggable execution backends."""

from __future__ import annotations

import multiprocessing
import traceback

import pytest

from repro.errors import ReproError
from repro.parallel import (
    BACKENDS,
    Executor,
    WorkerError,
    get_executor,
    validate_backend,
)


def _square(x):
    return x * x


def _boom_worker(x):
    if x == 3:
        raise ValueError(f"bad shard {x}")
    return x


def _raise_unpicklable(x):
    raise _Unpicklable("cannot cross the pickle boundary")


class _Unpicklable(Exception):
    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


class TestConstruction:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown parallel backend"):
            get_executor("gpu", 2)
        with pytest.raises(ReproError):
            validate_backend("cluster")

    def test_bad_n_jobs_rejected(self):
        for bad in (0, -2, 1.5, "four"):
            with pytest.raises(ReproError, match="n_jobs"):
                get_executor("serial", bad)

    def test_minus_one_means_all_cores(self):
        ex = get_executor("threads", -1)
        assert ex.n_jobs == multiprocessing.cpu_count()

    def test_all_backends_constructible(self):
        for backend in BACKENDS:
            assert Executor(backend, 2).backend == backend


class TestMapShards:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_shard_order(self, backend):
        ex = get_executor(backend, 4)
        shards = list(range(23))
        assert ex.map_shards(_square, shards) == [x * x for x in shards]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_input(self, backend):
        assert get_executor(backend, 4).map_shards(_square, []) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_more_workers_than_shards(self, backend):
        ex = get_executor(backend, 16)
        assert ex.map_shards(_square, [7]) == [49]

    def test_n_jobs_one_degenerates_to_serial(self):
        # Even the processes backend must not spin up a pool for one
        # worker; closures work, proving the serial path was taken.
        ex = get_executor("processes", 1)
        seen = []
        assert ex.map_shards(lambda x: seen.append(x) or x, [1, 2]) \
            == [1, 2]
        assert seen == [1, 2]


class TestExceptionPropagation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_original_exception_type(self, backend):
        ex = get_executor(backend, 2)
        with pytest.raises(ValueError, match="bad shard 3"):
            ex.map_shards(_boom_worker, [1, 2, 3, 4])

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_in_process_traceback_reaches_caller(self, backend):
        ex = get_executor(backend, 2)
        try:
            ex.map_shards(_boom_worker, [3])
        except ValueError as exc:
            frames = "".join(traceback.format_tb(exc.__traceback__))
            assert "_boom_worker" in frames
        else:  # pragma: no cover
            pytest.fail("worker exception was swallowed")

    def test_process_traceback_carried_by_cause(self):
        ex = get_executor("processes", 2)
        try:
            ex.map_shards(_boom_worker, [1, 3])
        except ValueError as exc:
            assert isinstance(exc.__cause__, WorkerError)
            # The remote traceback text names the failing frame and
            # the shard index it ran as.
            assert "_boom_worker" in str(exc.__cause__)
            assert "shard 1 raised in worker" in str(exc.__cause__)
        else:  # pragma: no cover
            pytest.fail("worker exception was swallowed")

    def test_unpicklable_exception_downgraded_not_lost(self):
        # Two shards so the pool actually spins up (one shard
        # degenerates to the in-process serial path by design).
        ex = get_executor("processes", 2)
        with pytest.raises(WorkerError, match="_Unpicklable"):
            ex.map_shards(_raise_unpicklable, [0, 1])
