"""Tests for the resilience layer: retry policy, failure
classification, circuit breaker, deadlines, and executor retries."""

from __future__ import annotations

import pickle
import sqlite3
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.errors import DeadlineExceeded, ReproError, TransientError
from repro.parallel import (
    DEGRADATION_ORDER,
    CircuitBreaker,
    Executor,
    RetryExhausted,
    RetryPolicy,
    WorkerError,
    global_breaker,
    is_transient,
)
from repro.testing import faults

pytestmark = pytest.mark.usefixtures("_disarm_faults")


@pytest.fixture
def _disarm_faults():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture
def breaker():
    return CircuitBreaker()


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------


class TestIsTransient:
    @pytest.mark.parametrize("exc", [
        TransientError("injected"),
        DeadlineExceeded("too slow"),
        BrokenExecutor("worker died"),
        TimeoutError("timed out"),
        ConnectionResetError("peer gone"),
        BrokenPipeError("pipe"),
        InterruptedError("signal"),
        sqlite3.OperationalError("database is locked"),
        sqlite3.OperationalError("database table is busy"),
    ])
    def test_transient(self, exc):
        assert is_transient(exc)

    @pytest.mark.parametrize("exc", [
        ValueError("bad input"),
        KeyError("missing"),
        ReproError("misuse"),
        ZeroDivisionError(),
        sqlite3.OperationalError("no such table: artifacts"),
        MemoryError(),
    ])
    def test_fatal(self, exc):
        assert not is_transient(exc)


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.schedule() == (0.02, 0.04, 0.08)

    def test_cap(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.1,
                             multiplier=3.0, max_delay=0.5)
        schedule = policy.schedule()
        assert schedule[0] == pytest.approx(0.1)
        assert schedule[-1] == 0.5
        assert all(delay <= 0.5 for delay in schedule)

    def test_deterministic(self):
        assert RetryPolicy().schedule() == RetryPolicy().schedule()

    def test_no_delay_before_first_failure(self):
        assert RetryPolicy().delay(0) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay": -0.1},
        {"max_delay": -1.0},
        {"multiplier": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            RetryPolicy(**kwargs)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_starts_closed(self, breaker):
        for backend in DEGRADATION_ORDER:
            assert breaker.active_backend(backend) == backend
        assert breaker.level == 0

    def test_degrades_after_threshold(self, breaker):
        assert breaker.record_transient("processes") is None
        assert breaker.record_transient("processes") is None
        assert breaker.record_transient("processes") == "threads"
        assert breaker.active_backend("processes") == "threads"
        assert breaker.active_backend("threads") == "threads"

    def test_degrades_to_serial_and_stops(self, breaker):
        for _ in range(3):
            breaker.record_transient("processes")
        for _ in range(3):
            breaker.record_transient("threads")
        assert breaker.active_backend("processes") == "serial"
        # serial is the floor: further failures do not move the level
        level = breaker.level
        for _ in range(10):
            breaker.record_transient("serial")
        assert breaker.level == level

    def test_success_resets_streak_not_level(self, breaker):
        breaker.record_transient("processes")
        breaker.record_transient("processes")
        breaker.record_success()
        assert breaker.record_transient("processes") is None
        assert breaker.level == 0
        # now trip it, then succeed: level must stay degraded
        for _ in range(3):
            breaker.record_transient("processes")
        assert breaker.level == 1
        breaker.record_success()
        assert breaker.level == 1
        assert breaker.active_backend("processes") == "threads"

    def test_reset_clears_everything(self, breaker):
        for _ in range(6):
            breaker.record_transient("processes")
        breaker.reset()
        assert breaker.level == 0
        assert breaker.active_backend("processes") == "processes"
        assert breaker.state()["total_transient"] == 0

    def test_state_snapshot(self, breaker):
        for _ in range(3):
            breaker.record_transient("processes", error="SIGKILL")
        state = breaker.state()
        assert state["level"] == 1
        assert state["active"]["processes"] == "threads"
        assert state["degradations"][0]["requested"] == "processes"
        assert state["degradations"][0]["error"] == "SIGKILL"

    def test_picklable(self, breaker):
        for _ in range(3):
            breaker.record_transient("processes")
        clone = pickle.loads(pickle.dumps(breaker))
        assert clone.level == breaker.level
        assert clone.active_backend("processes") == "threads"
        # the clone is independent and has a working lock
        clone.record_transient("threads")
        assert breaker.state() != clone.state()

    def test_threshold_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(threshold=0)

    def test_global_breaker_is_shared(self):
        assert global_breaker() is global_breaker()


# ----------------------------------------------------------------------
# executor retry semantics (per-backend)
# ----------------------------------------------------------------------


_FLAKY_CALLS = {"count": 0}


def _flaky_then_ok(x):
    # Transiently fail the first two times shard 2 runs.
    if x == 2 and _FLAKY_CALLS["count"] < 2:
        _FLAKY_CALLS["count"] += 1
        raise TransientError(f"flaky shard {x}")
    return x * 10


def _always_transient(x):
    raise TransientError(f"never recovers on shard {x}")


def _fatal(x):
    if x == 1:
        raise ValueError(f"deterministic failure on {x}")
    return x


class TestExecutorRetries:
    def setup_method(self):
        _FLAKY_CALLS["count"] = 0

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_transient_failures_retried(self, backend, breaker):
        policy = RetryPolicy(max_attempts=4, base_delay=0.0)
        ex = Executor(backend=backend, n_jobs=2, retry=policy,
                      breaker=breaker)
        assert ex.map_shards(_flaky_then_ok, [1, 2, 3]) == [10, 20, 30]
        assert ex.stats["retries"] == 2
        assert ex.stats["transient_failures"] == 2

    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_exhaustion_raises_with_attempt_count(self, backend,
                                                  breaker):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        ex = Executor(backend=backend, n_jobs=2, retry=policy,
                      breaker=breaker)
        with pytest.raises(TransientError) as info:
            ex.map_shards(_always_transient, [0])
        cause = info.value.__cause__
        assert isinstance(cause, RetryExhausted)
        assert isinstance(cause, WorkerError)
        assert cause.attempts == 3
        assert "3 of 3" in str(cause)
        # the final error carries the last attempt's traceback
        assert "_always_transient" in cause.last_traceback
        assert "never recovers" in cause.last_traceback
        assert "_always_transient" in str(cause)

    def test_fatal_errors_never_retried(self, breaker):
        calls = []

        def fn(x):
            calls.append(x)
            if x == 1:
                raise ValueError("fatal")
            return x

        ex = Executor(backend="serial", n_jobs=1,
                      retry=RetryPolicy(max_attempts=5,
                                        base_delay=0.0),
                      breaker=breaker)
        with pytest.raises(ValueError):
            ex.map_shards(fn, [0, 1, 2])
        assert calls == [0, 1]  # one try each, eager stop after fatal

    def test_max_attempts_one_disables_retry(self, breaker):
        ex = Executor(backend="serial", n_jobs=1,
                      retry=RetryPolicy(max_attempts=1),
                      breaker=breaker)
        with pytest.raises(TransientError) as info:
            ex.map_shards(_always_transient, [0])
        assert isinstance(info.value.__cause__, RetryExhausted)
        assert info.value.__cause__.attempts == 1

    def test_retried_results_identical_to_fault_free(self, breaker):
        # The determinism contract: a run that recovered from
        # transient failures returns exactly what a clean run returns.
        _FLAKY_CALLS["count"] = 0
        flaky = Executor(backend="serial", n_jobs=1,
                         retry=RetryPolicy(max_attempts=4,
                                           base_delay=0.0),
                         breaker=breaker).map_shards(
                             _flaky_then_ok, [1, 2, 3])
        clean = Executor(backend="serial", n_jobs=1,
                         breaker=CircuitBreaker()).map_shards(
                             _flaky_then_ok, [1, 2, 3])
        assert flaky == clean

    def test_breaker_degrades_executor_backend(self, breaker):
        policy = RetryPolicy(max_attempts=6, base_delay=0.0)
        ex = Executor(backend="threads", n_jobs=2, retry=policy,
                      breaker=breaker)
        with pytest.raises(TransientError):
            ex.map_shards(_always_transient, [0])
        # threshold=3 < max_attempts=6: the breaker tripped mid-call
        assert breaker.level >= 1
        assert breaker.active_backend("threads") == "serial"

    def test_deadline_validation(self):
        with pytest.raises(ReproError):
            Executor(backend="processes", n_jobs=2, deadline=0.0)
        with pytest.raises(ReproError):
            Executor(backend="processes", n_jobs=2, deadline=-5)


# ----------------------------------------------------------------------
# process-backend faults: worker kill, deadline on a hung worker
# ----------------------------------------------------------------------


def _sleep_by_shard(x):
    time.sleep(float(x))
    return x


@pytest.mark.slow
class TestProcessFaults:
    def test_worker_kill_recovers_byte_identical(self, breaker):
        faults.arm("worker-kill:1.0:2")  # kill exactly two workers
        try:
            ex = Executor(backend="processes", n_jobs=2,
                          retry=RetryPolicy(max_attempts=4,
                                            base_delay=0.0),
                          breaker=breaker)
            result = ex.map_shards(_flaky_then_ok, [1, 3, 4])
        finally:
            faults.disarm()
        assert result == [10, 30, 40]
        assert ex.stats["transient_failures"] > 0

    def test_worker_kill_every_attempt_degrades_to_threads(self,
                                                           breaker):
        # p=1.0 unlimited: the processes backend can never finish a
        # wave, so the breaker must degrade to threads (where the
        # kill point does not exist) and the call still succeeds.
        faults.arm("worker-kill:1.0")
        try:
            ex = Executor(backend="processes", n_jobs=2,
                          retry=RetryPolicy(max_attempts=10,
                                            base_delay=0.0),
                          breaker=breaker)
            result = ex.map_shards(_square_local, [2, 3])
        finally:
            faults.disarm()
        assert result == [4, 9]
        assert breaker.level >= 1

    def test_deadline_times_out_hung_worker(self, breaker):
        ex = Executor(backend="processes", n_jobs=2, deadline=0.5,
                      retry=RetryPolicy(max_attempts=2,
                                        base_delay=0.0),
                      breaker=breaker)
        started = time.monotonic()
        with pytest.raises(TransientError) as info:
            ex.map_shards(_sleep_by_shard, [30.0])
        elapsed = time.monotonic() - started
        assert isinstance(info.value.__cause__, RetryExhausted)
        assert elapsed < 20.0  # did not wait out the 30s sleep
        assert "deadline" in str(info.value).lower()


def _square_local(x):
    return x * x
