"""Baseline ratchet: new findings fail, stale debt expires visibly."""

import json

import pytest

from repro.analysis import Baseline, Finding
from repro.errors import AnalysisError


def _finding(rule="r", path="repro/x.py", line=1, message="m"):
    return Finding(path=path, line=line, col=0, rule=rule,
                   message=message)


class TestDiff:
    def test_matched_passes_gate(self):
        f = _finding()
        base = Baseline.from_findings([f])
        diff = base.diff([f])
        assert diff.gate_passes
        assert diff.matched == [f]
        assert diff.new == [] and diff.stale == []

    def test_new_finding_fails_gate(self):
        base = Baseline.from_findings([_finding()])
        extra = _finding(rule="other")
        diff = base.diff([_finding(), extra])
        assert not diff.gate_passes
        assert diff.new == [extra]

    def test_line_drift_still_matches(self):
        base = Baseline.from_findings([_finding(line=10)])
        diff = base.diff([_finding(line=99)])
        assert diff.gate_passes

    def test_duplicates_matched_by_count(self):
        two = [_finding(line=1), _finding(line=2)]
        base = Baseline.from_findings(two)
        assert base.diff(two).gate_passes
        three = two + [_finding(line=3)]
        diff = base.diff(three)
        assert not diff.gate_passes
        assert len(diff.new) == 1

    def test_fixed_debt_reported_stale(self):
        base = Baseline.from_findings([_finding(), _finding(rule="q")])
        diff = base.diff([_finding()])
        assert diff.gate_passes  # stale debt never fails the gate
        assert len(diff.stale) == 1
        assert diff.stale[0]["rule"] == "q"

    def test_empty_baseline_everything_new(self):
        diff = Baseline().diff([_finding()])
        assert not diff.gate_passes


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        target = tmp_path / "baseline.json"
        base = Baseline.from_findings(
            [_finding(), _finding(rule="q", line=5)])
        base.save(target)
        loaded = Baseline.load(target)
        assert len(loaded) == 2
        assert loaded.diff([_finding()]).gate_passes

    def test_saved_format_is_stable(self, tmp_path):
        target = tmp_path / "baseline.json"
        Baseline.from_findings([_finding()]).save(target)
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert payload["findings"][0]["rule"] == "r"
        assert target.read_text().endswith("\n")

    def test_update_cycle_add_then_expire(self, tmp_path):
        # The --update-baseline lifecycle: debt enters, gets fixed,
        # and a re-snapshot removes it.
        target = tmp_path / "baseline.json"
        Baseline.from_findings([_finding(), _finding(rule="q")]).save(
            target)
        current = [_finding()]  # "q" got fixed
        diff = Baseline.load(target).diff(current)
        assert diff.gate_passes and len(diff.stale) == 1
        Baseline.from_findings(current).save(target)
        refreshed = Baseline.load(target)
        assert len(refreshed) == 1
        assert refreshed.diff(current).stale == []

    def test_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError, match="not found"):
            Baseline.load(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            Baseline.load(bad)

    def test_missing_findings_key(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 1}')
        with pytest.raises(AnalysisError, match="findings"):
            Baseline.load(bad)

    def test_wrong_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "findings": []}')
        with pytest.raises(AnalysisError, match="version"):
            Baseline.load(bad)

    def test_entry_missing_field(self):
        with pytest.raises(AnalysisError, match="message"):
            Baseline([{"rule": "r", "path": "p"}])
