"""CLI drivers: ``python -m repro.analysis`` and ``repro lint``."""

import io
import json
import textwrap

import pytest

from repro.analysis.cli import main as analysis_main
from repro.cli import main as repro_main

CLEAN = "X = 1\n"
DIRTY = textwrap.dedent("""\
    _CACHE = {}

    def put(key, value):
        _CACHE[key] = value
    """)


@pytest.fixture
def tree(tmp_path, monkeypatch):
    # A miniature src tree; chdir so the default-baseline lookup and
    # canonical paths behave like a repo checkout.
    pkg = tmp_path / "src" / "repro" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "clean.py").write_text(CLEAN)
    (pkg / "dirty.py").write_text(DIRTY)
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestAnalysisMain:
    def test_findings_exit_1(self, tree):
        out = io.StringIO()
        assert analysis_main(["src", "--no-baseline"], out=out) == 1
        assert "unlocked-shared-state" in out.getvalue()

    def test_clean_select_exit_0(self, tree):
        out = io.StringIO()
        assert analysis_main(
            ["src", "--no-baseline", "--select", "no-stdlib-rng"],
            out=out) == 0
        assert "clean" in out.getvalue()

    def test_update_then_gate(self, tree):
        out = io.StringIO()
        assert analysis_main(["src", "--update-baseline"], out=out) == 0
        assert (tree / "lint-baseline.json").exists()
        # Baseline auto-loaded from cwd: gate now passes.
        assert analysis_main(["src"], out=io.StringIO()) == 0
        # A fresh violation still fails.
        (tree / "src" / "repro" / "pkg" / "new.py").write_text(DIRTY)
        assert analysis_main(["src"], out=io.StringIO()) == 1

    def test_json_format(self, tree):
        out = io.StringIO()
        analysis_main(["src", "--no-baseline", "--format", "json"],
                      out=out)
        payload = json.loads(out.getvalue())
        assert payload["new"]
        assert payload["new"][0]["rule"] == "unlocked-shared-state"
        assert payload["summary"]["new"] == len(payload["new"])

    def test_list_rules(self, tree):
        out = io.StringIO()
        assert analysis_main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        assert "no-stdlib-rng" in text and "invariant:" in text

    def test_unknown_rule_exit_2(self, tree):
        assert analysis_main(
            ["src", "--select", "not-a-rule"], out=io.StringIO()) == 2

    def test_missing_path_exit_2(self, tree):
        assert analysis_main(["nowhere"], out=io.StringIO()) == 2


class TestReproLintSubcommand:
    def test_lint_dispatch(self, tree):
        out = io.StringIO()
        assert repro_main(["lint", "src", "--no-baseline"], out=out) == 1
        assert "unlocked-shared-state" in out.getvalue()

    def test_lint_list_rules(self, tree):
        out = io.StringIO()
        assert repro_main(["lint", "--list-rules"], out=out) == 0
        assert "bitset-quarantine" in out.getvalue()

    def test_lint_clean_with_baseline(self, tree):
        assert repro_main(["lint", "src", "--update-baseline"],
                          out=io.StringIO()) == 0
        assert repro_main(["lint", "src"], out=io.StringIO()) == 0
