"""Self-application: the shipped tree passes its own lint gate.

This is the same check CI runs; keeping it in the suite means a PR
cannot introduce a new invariant violation (or silently grow the
baseline) without a test failing locally first.
"""

from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths, available_rules

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
BASELINE = REPO / "lint-baseline.json"


@pytest.fixture(scope="module")
def findings():
    return analyze_paths([SRC])


def test_all_rules_run(findings):
    assert len(available_rules()) >= 8


def test_zero_non_baselined_findings(findings):
    diff = Baseline.load(BASELINE).diff(findings)
    assert diff.gate_passes, (
        "new lint findings:\n  "
        + "\n  ".join(f.describe() for f in diff.new))


def test_no_stale_baseline_entries(findings):
    # Fixed debt must graduate out via --update-baseline, so the
    # committed file always reflects reality.
    diff = Baseline.load(BASELINE).diff(findings)
    assert diff.stale == [], (
        "stale baseline entries (run --update-baseline):\n  "
        + "\n  ".join(str(e) for e in diff.stale))


def test_migrated_rng_sites_stay_clean(findings):
    # The PR that introduced the linter also migrated these files off
    # random.Random; they must not regress into the baseline.
    migrated = ("repro/evaluation/runner.py",
                "repro/classify/evaluate.py",
                "repro/stats/sequential.py")
    regressions = [f for f in findings
                   if f.rule == "no-stdlib-rng" and f.path in migrated]
    assert regressions == [], [f.describe() for f in regressions]


def test_bitset_quarantine_clean(findings):
    violations = [f for f in findings if f.rule == "bitset-quarantine"]
    assert violations == [], [f.describe() for f in violations]
