"""Rule-registry semantics: the corrections/miners registry contract."""

import pytest

from repro.analysis import (
    Rule,
    available_rules,
    get_rule,
    register_rule,
    resolve_rule,
    rule_names,
    unregister_rule,
)
from repro.errors import AnalysisError


def _noop(tree, ctx):
    return ()


@pytest.fixture
def scratch_rule():
    spec = Rule(name="scratch-rule", check_fn=_noop,
                aliases=("scratch", "sr"),
                description="test-only rule")
    yield spec
    for name in ("scratch-rule", "scratch-rule-2"):
        try:
            unregister_rule(name)
        except AnalysisError:
            pass


class TestRegisterResolve:
    def test_round_trip(self, scratch_rule):
        register_rule(scratch_rule)
        assert resolve_rule("scratch-rule") is scratch_rule
        assert get_rule("scratch-rule") is scratch_rule
        assert "scratch-rule" in rule_names()

    def test_alias_and_case_insensitive(self, scratch_rule):
        register_rule(scratch_rule)
        assert resolve_rule("scratch") is scratch_rule
        assert resolve_rule("SR") is scratch_rule
        assert resolve_rule("Scratch-Rule") is scratch_rule

    def test_unregister_removes_all_spellings(self, scratch_rule):
        register_rule(scratch_rule)
        unregister_rule("sr")  # any spelling works
        with pytest.raises(AnalysisError):
            resolve_rule("scratch-rule")
        with pytest.raises(AnalysisError):
            resolve_rule("scratch")

    def test_collision_rejected(self, scratch_rule):
        register_rule(scratch_rule)
        clash = Rule(name="scratch-rule", check_fn=_noop)
        with pytest.raises(AnalysisError, match="already registered"):
            register_rule(clash)
        alias_clash = Rule(name="scratch-rule-2", check_fn=_noop,
                           aliases=("scratch",))
        with pytest.raises(AnalysisError, match="already registered"):
            register_rule(alias_clash)

    def test_overwrite_replaces_wholesale(self, scratch_rule):
        register_rule(scratch_rule)
        replacement = Rule(name="scratch-rule", check_fn=_noop,
                           aliases=("scratch2",))
        register_rule(replacement, overwrite=True)
        assert resolve_rule("scratch-rule") is replacement
        assert resolve_rule("scratch2") is replacement
        # The old spec's aliases are gone, not orphaned.
        with pytest.raises(AnalysisError):
            resolve_rule("scratch")

    def test_empty_name_rejected(self):
        with pytest.raises(AnalysisError, match="non-empty"):
            register_rule(Rule(name="", check_fn=_noop))

    def test_did_you_mean(self):
        with pytest.raises(AnalysisError, match="no-stdlib-rng"):
            resolve_rule("no-stdlib-rgn")

    def test_unknown_lists_valid_names(self):
        with pytest.raises(AnalysisError, match="bitset-quarantine"):
            resolve_rule("definitely-not-a-rule")


class TestBuiltinCatalog:
    def test_all_eight_rules_registered(self):
        names = set(rule_names())
        assert {
            "no-stdlib-rng", "no-global-numpy-rng",
            "bitset-quarantine", "unlocked-shared-state",
            "pickle-unsafe-worker", "float-equality-in-stats",
            "unordered-iteration-to-output", "uint64-dtype-promotion",
        } <= names

    def test_every_rule_documents_its_invariant(self):
        for spec in available_rules():
            assert spec.description, spec.name
            assert spec.invariant, spec.name
