"""Engine behavior: canonical paths, suppressions, file discovery."""

import textwrap

import pytest

from repro.analysis import FileContext, Finding, analyze_source
from repro.analysis.engine import _canonical_path, iter_python_files
from repro.errors import AnalysisError
from pathlib import Path


class TestCanonicalPath:
    @pytest.mark.parametrize("raw, expected", [
        ("/any/prefix/src/repro/stats/fisher.py",
         "repro/stats/fisher.py"),
        ("src/repro/cli.py", "repro/cli.py"),
        ("repro/cli.py", "repro/cli.py"),
        ("/x/tests/stats/test_fisher.py", "tests/stats/test_fisher.py"),
        ("benchmarks/bench_mine.py", "benchmarks/bench_mine.py"),
    ])
    def test_rooted_at_package(self, raw, expected):
        assert _canonical_path(Path(raw)) == expected

    def test_identical_fingerprint_any_prefix(self):
        a = _canonical_path(Path("/home/a/src/repro/stats/chi2.py"))
        b = _canonical_path(Path("/ci/build/repro/stats/chi2.py"))
        assert a == b == "repro/stats/chi2.py"


class TestSuppression:
    SRC = """\
        _CACHE = dict()

        def put(key, value):
            _CACHE[key] = value@PRAGMA@
        """

    def _hits(self, pragma=""):
        source = textwrap.dedent(self.SRC).replace("@PRAGMA@", pragma)
        return analyze_source("repro/pkg/mod.py", source,
                              select=["unlocked-shared-state"])

    def test_unsuppressed_baseline(self):
        assert len(self._hits()) == 1

    def test_line_pragma(self):
        assert self._hits(
            "  # repro-lint: disable=unlocked-shared-state") == []

    def test_line_pragma_all(self):
        assert self._hits("  # repro-lint: disable=all") == []

    def test_line_pragma_other_rule_does_not_mask(self):
        assert len(self._hits(
            "  # repro-lint: disable=no-stdlib-rng")) == 1

    def test_file_pragma(self):
        src = ("# repro-lint: disable-file=unlocked-shared-state\n"
               + textwrap.dedent(self.SRC).replace("@PRAGMA@", ""))
        assert analyze_source("repro/pkg/mod.py", src,
                              select=["unlocked-shared-state"]) == []

    def test_pragma_in_string_literal_is_inert(self):
        src = textwrap.dedent("""\
            _CACHE = {}
            NOTE = "# repro-lint: disable-file=all"

            def put(key, value):
                _CACHE[key] = value
            """)
        assert len(analyze_source("repro/pkg/mod.py", src,
                                  select=["unlocked-shared-state"])) == 1


class TestFindings:
    def test_describe_format(self):
        f = Finding(path="repro/x.py", line=3, col=4,
                    rule="r", message="m")
        assert f.describe() == "repro/x.py:3:5: r: m"

    def test_key_ignores_position(self):
        a = Finding(path="p", line=3, col=0, rule="r", message="m")
        b = Finding(path="p", line=9, col=4, rule="r", message="m")
        assert a.key() == b.key()

    def test_syntax_error_raises_analysis_error(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            FileContext("repro/x.py", source="def broken(:\n")


class TestIterPythonFiles:
    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError, match="no such file"):
            iter_python_files(["definitely/not/here"])

    def test_expands_and_dedupes(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("x = 1\n")
        (pkg / "b.txt").write_text("not python\n")
        files = iter_python_files([pkg, pkg / "a.py"])
        assert [p.name for p in files] == ["a.py"]

    def test_unknown_rule_select(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            analyze_source("repro/x.py", "x = 1\n",
                           select=["not-a-rule"])
