"""True-positive / true-negative fixture pairs for every shipped rule.

Each fixture is an in-memory source blob analyzed under a virtual
canonical path, so the path-scoped rules (``float-equality-in-stats``
under ``repro/stats/``, the output rules under the reporting modules)
see the file exactly as they would on disk.
"""

import textwrap

from repro.analysis import analyze_source


def _run(rule, path, source):
    findings = analyze_source(path, textwrap.dedent(source),
                              select=[rule])
    return [f for f in findings if f.rule == rule]


class TestNoStdlibRng:
    RULE = "no-stdlib-rng"

    def test_tp_random_random_call(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import random

            def f(seed):
                rng = random.Random(seed)
                return random.uniform(0.0, 1.0)
            """)
        assert len(hits) == 2  # constructor and draw
        assert all(h.rule == self.RULE for h in hits)

    def test_tp_from_import(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            from random import shuffle
            """)
        assert len(hits) == 1
        assert "from random import shuffle" in hits[0].message

    def test_tp_aliased_module(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import random as rnd

            def f():
                return rnd.randint(0, 10)
            """)
        assert len(hits) == 1

    def test_tn_import_for_isinstance_shim(self):
        # `import random` + isinstance only: the deprecation-shim
        # idiom (Dataset.permuted) must stay legal.
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import random

            def f(rng):
                if isinstance(rng, random.Random):
                    return "legacy"
                return "generator"
            """)
        assert hits == []

    def test_tn_whitelisted_shim_file(self):
        hits = _run(self.RULE, "src/repro/data/dataset.py", """\
            import random

            def f(seed):
                return random.Random(seed)
            """)
        assert hits == []

    def test_tn_tests_are_out_of_scope(self):
        hits = _run(self.RULE, "tests/test_x.py", """\
            import random
            r = random.Random(0)
            """)
        assert hits == []


class TestNoGlobalNumpyRng:
    RULE = "no-global-numpy-rng"

    def test_tp_np_random_seed(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import numpy as np

            def f():
                np.random.seed(0)
                return np.random.rand(3)
            """)
        assert len(hits) == 2

    def test_tp_from_numpy_random_import(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            from numpy.random import shuffle
            """)
        assert len(hits) == 1

    def test_tn_default_rng(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import numpy as np
            from numpy.random import default_rng, SeedSequence

            def f(seed):
                return np.random.default_rng(seed).random(3)
            """)
        assert hits == []


class TestBitsetQuarantine:
    RULE = "bitset-quarantine"

    def test_tp_absolute_import(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            from repro import bitset
            """)
        assert len(hits) == 1
        assert "interop shim" in hits[0].message

    def test_tp_relative_import(self):
        hits = _run(self.RULE, "repro/mining/newminer.py", """\
            from .. import bitset as bs
            """)
        assert len(hits) == 1

    def test_tn_whitelisted_bridge(self):
        hits = _run(self.RULE, "src/repro/bitmat.py", """\
            from . import bitset as bs
            """)
        assert hits == []

    def test_tn_tests_oracle(self):
        hits = _run(self.RULE, "tests/test_bitset.py", """\
            from repro import bitset
            """)
        assert hits == []

    def test_tn_tidvector_import(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            from repro.tidvector import TidVector
            """)
        assert hits == []


class TestUnlockedSharedState:
    RULE = "unlocked-shared-state"

    def test_tp_module_dict_mutated_in_function(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value
            """)
        assert len(hits) == 1
        assert "_CACHE" in hits[0].message

    def test_tp_class_level_list_append(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            class Registry:
                entries = []

                def add(self, item):
                    self.entries.append(item)
            """)
        assert len(hits) == 1

    def test_tn_mutation_under_lock(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import threading

            _CACHE = {}
            _LOCK = threading.Lock()

            def put(key, value):
                with _LOCK:
                    _CACHE[key] = value
            """)
        assert hits == []

    def test_tn_instance_state(self):
        # The LogFactorialBuffer fix: per-instance containers are
        # out of scope.
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            class Buffer:
                def __init__(self):
                    self.table = []

                def grow(self, x):
                    self.table.append(x)
            """)
        assert hits == []

    def test_tn_import_time_mutation(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            _TABLE = {}
            _TABLE["a"] = 1
            for k in ("b", "c"):
                _TABLE[k] = 2
            """)
        assert hits == []

    def test_suppression_pragma(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value  # repro-lint: disable=unlocked-shared-state
            """)
        assert hits == []


class TestPickleUnsafeWorker:
    RULE = "pickle-unsafe-worker"

    def test_tp_lock_without_getstate(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
            """)
        assert len(hits) == 1
        assert "locks do not pickle" in hits[0].message

    def test_tp_generator_attribute(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import numpy as np

            class Sampler:
                def __init__(self, seed):
                    self._rng = np.random.default_rng(seed)
            """)
        assert len(hits) == 1
        assert "forks its stream" in hits[0].message

    def test_tn_getstate_defined(self):
        # The LogFactorialBuffer model: lock dropped in __getstate__.
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            import threading

            class Buffer:
                def __init__(self):
                    self._grow_lock = threading.Lock()

                def __getstate__(self):
                    state = self.__dict__.copy()
                    del state["_grow_lock"]
                    return state
            """)
        assert hits == []

    def test_tn_plain_class(self):
        hits = _run(self.RULE, "repro/pkg/mod.py", """\
            class Point:
                def __init__(self, x):
                    self.x = x
            """)
        assert hits == []


class TestFloatEqualityInStats:
    RULE = "float-equality-in-stats"

    def test_tp_division_compared(self):
        hits = _run(self.RULE, "repro/stats/newtest.py", """\
            def f(a, b, n):
                return a / n == b / n
            """)
        assert len(hits) == 1

    def test_tp_float_literal(self):
        hits = _run(self.RULE, "repro/stats/newtest.py", """\
            def f(p):
                return p != 0.5
            """)
        assert len(hits) == 1

    def test_tn_integer_comparison(self):
        hits = _run(self.RULE, "repro/stats/newtest.py", """\
            def f(k, n):
                return k == n
            """)
        assert hits == []

    def test_tn_out_of_scope_module(self):
        # Scoped to repro/stats/: identical code elsewhere passes.
        hits = _run(self.RULE, "repro/mining/mod.py", """\
            def f(p):
                return p == 0.5
            """)
        assert hits == []

    def test_tn_inequality_ordering(self):
        hits = _run(self.RULE, "repro/stats/newtest.py", """\
            def f(p):
                return p <= 0.5
            """)
        assert hits == []


class TestUnorderedIterationToOutput:
    RULE = "unordered-iteration-to-output"

    def test_tp_for_over_set(self):
        hits = _run(self.RULE, "repro/evaluation/reporting.py", """\
            def render(rows):
                names = {r.name for r in rows}
                for name in names:
                    print(name)
            """)
        assert len(hits) == 1
        assert "PYTHONHASHSEED" in hits[0].message

    def test_tp_join_over_set_literal(self):
        hits = _run(self.RULE, "repro/evaluation/export.py", """\
            def header(cols):
                return ",".join(set(cols))
            """)
        assert len(hits) == 1

    def test_tn_sorted_iteration(self):
        hits = _run(self.RULE, "repro/evaluation/reporting.py", """\
            def render(rows):
                names = {r.name for r in rows}
                for name in sorted(names):
                    print(name)
            """)
        assert hits == []

    def test_tn_order_free_consumers(self):
        hits = _run(self.RULE, "repro/evaluation/reporting.py", """\
            def count(rows):
                names = {r.name for r in rows}
                return len(names), max(names)
            """)
        assert hits == []

    def test_tn_out_of_scope_module(self):
        hits = _run(self.RULE, "repro/mining/mod.py", """\
            def f(names):
                for n in set(names):
                    print(n)
            """)
        assert hits == []


class TestUint64DtypePromotion:
    RULE = "uint64-dtype-promotion"

    def test_tp_true_division(self):
        hits = _run(self.RULE, "repro/tidvector.py", """\
            import numpy as np

            def density(words, n):
                counts = np.zeros(4, dtype=np.uint64)
                return counts / n
            """)
        assert len(hits) == 1
        assert "float64" in hits[0].message

    def test_tp_mixing_with_signed_numpy(self):
        hits = _run(self.RULE, "repro/tidvector.py", """\
            import numpy as np

            def shift(words):
                packed = np.zeros(4, dtype="uint64")
                return packed + np.arange(4)
            """)
        assert len(hits) == 1

    def test_tn_bitwise_ops(self):
        hits = _run(self.RULE, "repro/tidvector.py", """\
            import numpy as np

            def intersect(n):
                a = np.zeros(n, dtype=np.uint64)
                b = np.ones(n, dtype=np.uint64)
                return a & b | (a ^ b)
            """)
        assert hits == []

    def test_tn_python_int_scalar(self):
        # Weak promotion: uint64 + python int stays uint64.
        hits = _run(self.RULE, "repro/tidvector.py", """\
            import numpy as np

            def bump(n):
                words = np.zeros(n, dtype=np.uint64)
                return words + 1
            """)
        assert hits == []

    def test_tn_out_of_scope_module(self):
        hits = _run(self.RULE, "repro/stats/mod.py", """\
            import numpy as np

            def f(n):
                counts = np.zeros(4, dtype=np.uint64)
                return counts / n
            """)
        assert hits == []


class TestSwallowedWorkerException:
    RULE = "swallowed-worker-exception"

    def test_tp_bare_except_without_reraise(self):
        hits = _run(self.RULE, "repro/parallel/worker.py", """\
            def loop(queue):
                try:
                    queue.get()
                except:
                    return None
            """)
        assert len(hits) == 1
        assert "bare 'except:'" in hits[0].message

    def test_tp_broad_except_pass(self):
        hits = _run(self.RULE, "repro/service/worker.py", """\
            def drain(jobs):
                for job in jobs:
                    try:
                        job.run()
                    except Exception:
                        pass
            """)
        assert len(hits) == 1
        assert "silently discards" in hits[0].message

    def test_tp_base_exception_continue_in_tuple(self):
        hits = _run(self.RULE, "repro/parallel/pool.py", """\
            def reap(workers):
                for worker in workers:
                    try:
                        worker.join()
                    except (OSError, BaseException):
                        continue
            """)
        assert len(hits) == 1

    def test_tn_broad_except_that_records(self):
        # The sanctioned worker-loop catch-all: the failure lands on
        # the job record with its traceback.
        hits = _run(self.RULE, "repro/service/jobs.py", """\
            import traceback

            def worker_loop(job):
                try:
                    job.run()
                except Exception:
                    job.traceback = traceback.format_exc()
                    job.state = "failed"
            """)
        assert hits == []

    def test_tn_bare_except_with_reraise(self):
        hits = _run(self.RULE, "repro/parallel/executor.py", """\
            def guarded(fn):
                try:
                    return fn()
                except:
                    cleanup()
                    raise
            """)
        assert hits == []

    def test_tn_narrow_type_swallow(self):
        # Narrowed catches are the sanctioned fix for deliberate
        # swallows (terminating already-dead workers).
        hits = _run(self.RULE, "repro/parallel/executor.py", """\
            def terminate(workers):
                for worker in workers:
                    try:
                        worker.terminate()
                    except (OSError, ValueError):
                        continue
            """)
        assert hits == []

    def test_tn_out_of_scope_module(self):
        hits = _run(self.RULE, "repro/stats/fisher.py", """\
            def probe():
                try:
                    risky()
                except Exception:
                    pass
            """)
        assert hits == []


class TestArenaLifetime:
    RULE = "arena-lifetime"

    def test_tp_view_used_after_with_exit(self):
        hits = _run(self.RULE, "repro/data/consumer.py", """\
            from repro.data.arena import ArenaFile

            def supports(path):
                with ArenaFile(path) as af:
                    words = af.whole_words()
                return words.sum()
            """)
        assert len(hits) == 1
        assert "after the arena is closed" in hits[0].message

    def test_tp_view_returned_from_with_body(self):
        hits = _run(self.RULE, "repro/mining/reader.py", """\
            from repro.data.arena import ArenaFile

            def word_block(path, i):
                with ArenaFile(path) as af:
                    seg = af.segment_words(i)
                    return seg
            """)
        assert len(hits) == 1
        assert "escapes the with block" in hits[0].message

    def test_tp_slice_survives_explicit_close(self):
        # Slices of a view alias the same mapping as the view itself.
        hits = _run(self.RULE, "repro/data/consumer.py", """\
            from repro.data.arena import ArenaFile

            def head(path):
                af = ArenaFile(path)
                block = af.whole_words()[:4]
                af.close()
                return block
            """)
        assert len(hits) == 1

    def test_tp_view_stored_on_self(self):
        hits = _run(self.RULE, "repro/data/cache.py", """\
            from repro.data.arena import ArenaFile

            class Cache:
                def load(self, path):
                    with ArenaFile(path) as af:
                        self.words = af.whole_words()
            """)
        assert len(hits) == 1
        assert "stored on self" in hits[0].message

    def test_tn_copy_before_close(self):
        # np.array(...) materializes; the copy may outlive the arena.
        hits = _run(self.RULE, "repro/data/consumer.py", """\
            import numpy as np

            from repro.data.arena import ArenaFile

            def supports(path):
                with ArenaFile(path) as af:
                    words = np.array(af.whole_words())
                return words.sum()
            """)
        assert hits == []

    def test_tn_use_inside_with(self):
        hits = _run(self.RULE, "repro/data/consumer.py", """\
            from repro.data.arena import ArenaFile

            def supports(path):
                with ArenaFile(path) as af:
                    words = af.whole_words()
                    total = int(words.sum())
                return total
            """)
        assert hits == []

    def test_tn_arena_kept_open(self):
        # No close event in the function: the mapping's lifetime is
        # managed elsewhere (the Dataset.open_arena idiom).
        hits = _run(self.RULE, "repro/data/dataset_like.py", """\
            from repro.data.arena import ArenaFile

            def open_words(path):
                af = ArenaFile(path)
                return af, af.whole_words()
            """)
        assert hits == []

    def test_tn_out_of_scope_module(self):
        hits = _run(self.RULE, "repro/service/core.py", """\
            from repro.data.arena import ArenaFile

            def supports(path):
                with ArenaFile(path) as af:
                    words = af.whole_words()
                return words.sum()
            """)
        assert hits == []
