"""Tests for the extension method keys in the experiment runner."""

from __future__ import annotations

import pytest

from repro.data import GeneratorConfig
from repro.errors import EvaluationError
from repro.evaluation import ExperimentRunner
from repro.evaluation.runner import METHOD_KEYS

EXTENSION_KEYS = ("Holm", "Hochberg", "Sidak", "Storey", "BKY",
                  "Perm_FWER_SD")

CONFIG = GeneratorConfig(
    n_records=240, n_attributes=8, min_values=2, max_values=3,
    n_rules=1, min_length=2, max_length=2,
    min_coverage=48, max_coverage=48,
    min_confidence=0.9, max_confidence=0.9)


class TestExtensionMethodKeys:
    def test_all_registered(self):
        for key in EXTENSION_KEYS:
            assert key in METHOD_KEYS

    def test_unknown_key_rejected(self):
        with pytest.raises(EvaluationError):
            ExperimentRunner(methods=("BC", "NotAMethod"))

    def test_extension_methods_produce_outcomes(self):
        runner = ExperimentRunner(methods=("BC",) + EXTENSION_KEYS,
                                  n_permutations=30)
        result = runner.run(CONFIG, min_sup=20, n_replicates=3, seed=8)
        for key in ("BC",) + EXTENSION_KEYS:
            aggregate = result.aggregates[key]
            assert 0.0 <= aggregate.power <= 1.0
            assert 0.0 <= aggregate.fwer <= 1.0

    def test_orderings_hold_through_runner(self):
        runner = ExperimentRunner(
            methods=("BC", "Holm", "Hochberg", "BH", "Storey"),
            n_permutations=30)
        result = runner.run(CONFIG, min_sup=20, n_replicates=3, seed=8)
        sig = {key: result.aggregates[key].avg_significant
               for key in ("BC", "Holm", "Hochberg", "BH", "Storey")}
        assert sig["BC"] <= sig["Holm"] <= sig["Hochberg"]
        assert sig["BH"] <= sig["Storey"]

    def test_permutation_engine_shared_with_stepdown(self):
        """Perm_FWER and Perm_FWER_SD must reuse one permutation pass
        (the runner's shared-engine optimization)."""
        runner = ExperimentRunner(
            methods=("Perm_FWER", "Perm_FWER_SD"), n_permutations=30)
        record = runner.run_replicate(CONFIG, min_sup=20, seed=77)
        single = record.outcomes["Perm_FWER"]
        stepdown = record.outcomes["Perm_FWER_SD"]
        # Step-down rejects a superset, so its counts dominate.
        assert stepdown.n_significant >= single.n_significant
