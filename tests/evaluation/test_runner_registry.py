"""ExperimentRunner method keys resolve through the correction
registry: canonical names, Table 3 abbreviations and aliases are
interchangeable."""

from __future__ import annotations

import pytest

from repro.data import GeneratorConfig
from repro.errors import EvaluationError
from repro.evaluation import ExperimentRunner

CONFIG = GeneratorConfig(
    n_records=200, n_attributes=8, min_values=2, max_values=3,
    n_rules=1, min_length=2, max_length=2,
    min_coverage=40, max_coverage=40,
    min_confidence=0.9, max_confidence=0.9)


def test_canonical_and_abbreviation_agree():
    by_abbrev = ExperimentRunner(methods=("BC", "BH")).run(
        CONFIG, min_sup=20, n_replicates=2, seed=7)
    by_name = ExperimentRunner(methods=("bonferroni", "bh")).run(
        CONFIG, min_sup=20, n_replicates=2, seed=7)
    assert by_abbrev.aggregates["BC"].row() == \
        by_name.aggregates["bonferroni"].row()
    assert by_abbrev.aggregates["BH"].row() == \
        by_name.aggregates["bh"].row()


def test_results_keyed_by_requested_spelling():
    result = ExperimentRunner(methods=("no correction",)).run(
        CONFIG, min_sup=20, n_replicates=1, seed=1)
    assert set(result.aggregates) == {"no correction"}


def test_unknown_method_error_lists_registry_names():
    with pytest.raises(EvaluationError) as excinfo:
        ExperimentRunner(methods=("BC", "Unknown"))
    assert "valid names" in str(excinfo.value)


def test_near_miss_method_gets_suggestion():
    with pytest.raises(EvaluationError, match="did you mean"):
        ExperimentRunner(methods=("Perm_FWRE",))
