"""Unit tests for power/FWER/FDR metrics (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.corrections import bonferroni, no_correction
from repro.data import GeneratorConfig, generate
from repro.errors import EvaluationError
from repro.evaluation import (
    AggregateMetrics,
    DatasetOutcome,
    aggregate,
    evaluate_result,
)
from repro.mining import mine_class_rules


def _outcome(method="X", significant=0, tp=0, fp=0, by=0, embedded=1,
             detected=0):
    return DatasetOutcome(
        method=method, n_significant=significant, n_true_positives=tp,
        n_false_positives=fp, n_byproducts=by, n_embedded=embedded,
        n_detected=detected, threshold=0.01)


class TestDatasetOutcome:
    def test_fwer_indicator(self):
        assert _outcome(fp=0).fwer_indicator == 0
        assert _outcome(fp=3).fwer_indicator == 1

    def test_fdr_proportion(self):
        assert _outcome(significant=10, fp=2).fdr == pytest.approx(0.2)

    def test_fdr_zero_when_nothing_reported(self):
        assert _outcome(significant=0, fp=0).fdr == 0.0

    def test_power_single_rule(self):
        assert _outcome(embedded=1, detected=1).power == 1.0
        assert _outcome(embedded=1, detected=0).power == 0.0

    def test_power_multiple_rules(self):
        assert _outcome(embedded=4, detected=3).power == pytest.approx(0.75)

    def test_power_no_embedded(self):
        assert _outcome(embedded=0).power == 0.0


class TestAggregate:
    def test_averages(self):
        outcomes = [
            _outcome(significant=10, fp=1, detected=1),
            _outcome(significant=0, fp=0, detected=0),
            _outcome(significant=5, fp=5, detected=1),
        ]
        agg = aggregate(outcomes)
        assert agg.n_datasets == 3
        assert agg.fwer == pytest.approx(2 / 3)
        assert agg.power == pytest.approx(2 / 3)
        assert agg.fdr == pytest.approx((0.1 + 0.0 + 1.0) / 3)
        assert agg.avg_false_positives == pytest.approx(2.0)
        assert agg.avg_significant == pytest.approx(5.0)

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            aggregate([])

    def test_mixed_methods_rejected(self):
        with pytest.raises(EvaluationError):
            aggregate([_outcome(method="A"), _outcome(method="B")])

    def test_row_shape(self):
        agg = aggregate([_outcome(significant=2, fp=1)])
        row = agg.row()
        assert row[0] == "X"
        assert len(row) == 7


class TestEvaluateResult:
    @pytest.fixture(scope="class")
    def planted(self):
        config = GeneratorConfig(
            n_records=400, n_attributes=12, min_values=2, max_values=3,
            n_rules=1, min_length=2, max_length=2,
            min_coverage=80, max_coverage=80,
            min_confidence=0.95, max_confidence=0.95)
        data = generate(config, seed=95)
        ruleset = mine_class_rules(data.dataset, min_sup=30)
        return data, ruleset

    def test_strong_rule_detected_by_bonferroni(self, planted):
        data, ruleset = planted
        result = bonferroni(ruleset, 0.05)
        outcome = evaluate_result(result, data.embedded_rules,
                                  data.dataset)
        assert outcome.power == 1.0
        assert outcome.method == "BC"

    def test_counts_partition_significant(self, planted):
        data, ruleset = planted
        result = no_correction(ruleset, 0.05)
        outcome = evaluate_result(result, data.embedded_rules,
                                  data.dataset)
        assert (outcome.n_true_positives + outcome.n_false_positives
                + outcome.n_byproducts) == outcome.n_significant

    def test_random_data_everything_fp(self):
        config = GeneratorConfig(n_records=200, n_attributes=8,
                                 min_values=2, max_values=2, n_rules=0)
        data = generate(config, seed=96)
        ruleset = mine_class_rules(data.dataset, min_sup=20)
        result = no_correction(ruleset, 0.05)
        outcome = evaluate_result(result, [], data.dataset)
        assert outcome.n_false_positives == outcome.n_significant
        assert outcome.power == 0.0
