"""Unit tests for the replicated experiment runner."""

from __future__ import annotations

import pytest

from repro.data import GeneratorConfig
from repro.errors import EvaluationError
from repro.evaluation import (
    FDR_METHODS,
    FWER_METHODS,
    METHOD_KEYS,
    ExperimentRunner,
)

CONFIG = GeneratorConfig(
    n_records=300, n_attributes=10, min_values=2, max_values=3,
    n_rules=1, min_length=2, max_length=2,
    min_coverage=60, max_coverage=60,
    min_confidence=0.9, max_confidence=0.9)


class TestConstruction:
    def test_unknown_method_rejected(self):
        with pytest.raises(EvaluationError):
            ExperimentRunner(methods=["BC", "Unknown"])

    def test_method_panels_are_subsets(self):
        assert set(FWER_METHODS) <= set(METHOD_KEYS)
        assert set(FDR_METHODS) <= set(METHOD_KEYS)


class TestSmallRun:
    @pytest.fixture(scope="class")
    def result(self):
        runner = ExperimentRunner(
            methods=("No correction", "BC", "Perm_FWER", "HD_BC",
                     "RH_BC"),
            n_permutations=60)
        return runner.run(CONFIG, min_sup=25, n_replicates=3, seed=1)

    def test_all_methods_aggregated(self, result):
        assert set(result.aggregates) == {
            "No correction", "BC", "Perm_FWER", "HD_BC", "RH_BC"}

    def test_replicate_count(self, result):
        assert result.n_replicates == 3
        assert len(result.replicates) == 3

    def test_tested_counts_present(self, result):
        assert "whole dataset" in result.mean_tested
        assert "HD_exploratory" in result.mean_tested
        assert "HD_evaluation" in result.mean_tested
        assert "RH_exploratory" in result.mean_tested

    def test_candidates_fewer_than_exploratory(self, result):
        assert result.mean_tested["HD_evaluation"] <= \
            result.mean_tested["HD_exploratory"]

    def test_no_correction_upper_bounds_bc(self, result):
        assert result.aggregates["BC"].avg_significant <= \
            result.aggregates["No correction"].avg_significant

    def test_strong_rule_detected_by_everything(self, result):
        # conf=0.9 with coverage 60 in n=300 is overwhelming evidence.
        for method in ("No correction", "BC", "Perm_FWER"):
            assert result.aggregates[method].power == 1.0

    def test_series_extraction(self, result):
        series = result.series("power", ("BC", "Perm_FWER"))
        assert set(series) == {"BC", "Perm_FWER"}

    def test_series_skips_missing(self, result):
        series = result.series("power", ("BC", "BH"))
        assert "BH" not in series

    def test_determinism(self):
        runner = ExperimentRunner(methods=("BC",), n_permutations=10)
        a = runner.run(CONFIG, min_sup=25, n_replicates=2, seed=5)
        b = runner.run(CONFIG, min_sup=25, n_replicates=2, seed=5)
        assert a.aggregates["BC"].avg_significant == \
            b.aggregates["BC"].avg_significant

    def test_invalid_replicates(self):
        runner = ExperimentRunner(methods=("BC",))
        with pytest.raises(EvaluationError):
            runner.run(CONFIG, min_sup=25, n_replicates=0)


class TestRandomData:
    def test_corrections_control_fwer(self):
        """On null data BC should essentially never report anything."""
        config = GeneratorConfig(n_records=200, n_attributes=8,
                                 min_values=2, max_values=2, n_rules=0)
        runner = ExperimentRunner(methods=("No correction", "BC"),
                                  n_permutations=10)
        result = runner.run(config, min_sup=20, n_replicates=5, seed=9)
        assert result.aggregates["BC"].fwer <= 0.2
        assert result.aggregates["No correction"].fwer >= 0.8
