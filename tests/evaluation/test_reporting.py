"""Unit tests for report formatting (Tables 3, 4; Figures 3, 15)."""

from __future__ import annotations

import pytest

from repro.evaluation import (
    ABBREVIATIONS,
    confidence_pvalue_bins,
    default_pvalue_grid,
    format_binned_table,
    format_series,
    format_table,
    pvalue_cdf,
)
from repro.mining import ClassRule


def _rule(confidence, p_value):
    return ClassRule(pattern_id=0, items=frozenset({0}), class_index=0,
                     coverage=100, support=int(confidence * 100),
                     confidence=confidence, p_value=p_value)


class TestAbbreviations:
    def test_table3_entries_present(self):
        for key in ("BC", "BH", "Perm_FWER", "Perm_FDR", "HD_BC",
                    "HD_BH", "RH_BC", "RH_BH", "HD", "RH"):
            assert key in ABBREVIATIONS

    def test_descriptions_non_empty(self):
        assert all(ABBREVIATIONS.values())


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"],
                            [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        # The second column starts at the same offset in every line.
        offset = lines[0].index("long_header")
        assert lines[3].startswith("333")
        assert lines[2][offset] == "2"
        assert lines[3][offset] == "4"

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000012345], [0.5], [0.0]])
        assert "1.23e-05" in text
        assert "0.5" in text


class TestFormatSeries:
    def test_columns(self):
        text = format_series("min_sup", [100, 200],
                             {"BC": [0.1, 0.2], "BH": [0.3, 0.4]})
        lines = text.splitlines()
        assert "min_sup" in lines[0]
        assert "BC" in lines[0]
        assert "0.3" in text

    def test_short_series_padded(self):
        text = format_series("x", [1, 2], {"s": [9.0]})
        assert text  # must not raise


class TestPvalueCdf:
    def test_counts_monotone(self):
        p = [1e-10, 1e-5, 0.003, 0.2, 0.9]
        cdf = pvalue_cdf(p)
        counts = [c for _, c in cdf]
        assert counts == sorted(counts)
        assert counts[-1] == 5.0

    def test_normalized(self):
        cdf = pvalue_cdf([0.5, 0.9], normalized=True)
        assert cdf[-1][1] == pytest.approx(1.0)

    def test_custom_grid(self):
        cdf = pvalue_cdf([0.04, 0.5], grid=[0.05, 1.0])
        assert cdf == [(0.05, 1.0), (1.0, 2.0)]

    def test_default_grid_span(self):
        grid = default_pvalue_grid()
        assert grid[0] == pytest.approx(1e-12)
        assert grid[-1] == pytest.approx(1.0)


class TestTable4Binning:
    def test_bin_placement(self):
        rules = [
            _rule(0.80, 0.2),     # conf bin 0, p bin (0.05, 1]
            _rule(0.80, 0.03),    # conf bin 0, p bin (0.01, 0.05]
            _rule(0.87, 0.005),   # conf bin 1, p bin (0.001, 0.01]
            _rule(0.92, 5e-5),    # conf bin 2, p bin (1e-5, 1e-4]
            _rule(0.99, 1e-9),    # conf bin 3, p bin (0, 1e-8]
        ]
        matrix = confidence_pvalue_bins(rules)
        assert matrix[0][0] == 1
        assert matrix[1][0] == 1
        assert matrix[2][1] == 1
        assert matrix[4][2] == 1
        assert matrix[8][3] == 1
        assert sum(sum(row) for row in matrix) == 5

    def test_low_confidence_excluded(self):
        matrix = confidence_pvalue_bins([_rule(0.5, 0.01)])
        assert sum(sum(row) for row in matrix) == 0

    def test_confidence_one_included(self):
        matrix = confidence_pvalue_bins([_rule(1.0, 1e-9)])
        assert matrix[8][3] == 1

    def test_zero_pvalue_lands_in_bottom_bin(self):
        matrix = confidence_pvalue_bins([_rule(0.8, 0.0)])
        assert matrix[8][0] == 1

    def test_format_binned_table(self):
        matrix = confidence_pvalue_bins([_rule(0.8, 0.2)])
        text = format_binned_table(matrix, title="Table 4")
        assert "p-value / conf" in text
        assert "[0.75, 0.85)" in text
        assert "(0.05, 1]" in text
        assert "10^-8" in text


class TestExtensionAbbreviations:
    def test_every_runner_method_key_has_a_description(self):
        from repro.evaluation import (
            ABBREVIATIONS,
            EXTENSION_ABBREVIATIONS,
        )
        from repro.evaluation.runner import METHOD_KEYS
        described = (set(ABBREVIATIONS) | set(EXTENSION_ABBREVIATIONS)
                     | {"No correction"})
        for key in METHOD_KEYS:
            assert key in described, key

    def test_no_overlap_with_table3(self):
        from repro.evaluation import (
            ABBREVIATIONS,
            EXTENSION_ABBREVIATIONS,
        )
        assert not set(ABBREVIATIONS) & set(EXTENSION_ABBREVIATIONS)
