"""Unit tests for the Section 5.2 false-positive definition."""

from __future__ import annotations

import pytest

from repro.data import GeneratorConfig, generate
from repro.evaluation import (
    RuleStatus,
    adjusted_p_value,
    classify_rules,
    matches_embedded,
    restrict_embedded,
)
from repro.mining import mine_class_rules
from repro.stats import BufferCache


@pytest.fixture(scope="module")
def planted():
    config = GeneratorConfig(
        n_records=400, n_attributes=12, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=80, max_coverage=80,
        min_confidence=0.95, max_confidence=0.95)
    data = generate(config, seed=91)
    ruleset = mine_class_rules(data.dataset, min_sup=30)
    return data, ruleset


class TestMatching:
    def test_planted_rule_matches_itself(self, planted):
        data, ruleset = planted
        e = data.embedded_rules[0]
        target = data.dataset.pattern_tidset(e.item_ids)
        hits = [r for r in ruleset.rules
                if matches_embedded(r, e, data.dataset)]
        assert hits
        for rule in hits:
            assert data.dataset.pattern_tidset(rule.items) == target

    def test_wrong_class_does_not_match(self, planted):
        data, ruleset = planted
        e = data.embedded_rules[0]
        hit = next(r for r in ruleset.rules
                   if matches_embedded(r, e, data.dataset))
        import dataclasses
        flipped = dataclasses.replace(hit,
                                      class_index=1 - hit.class_index)
        assert not matches_embedded(flipped, e, data.dataset)


class TestAdjustedPValue:
    def test_disjoint_rule_returns_none(self, planted):
        data, ruleset = planted
        e = data.embedded_rules[0]
        target = data.dataset.pattern_tidset(e.item_ids)
        cache = BufferCache(data.dataset.n_records,
                            data.dataset.class_support(0), min_sup=1)
        disjoint = [r for r in ruleset.rules
                    if data.dataset.pattern_tidset(r.items) & target == 0]
        if not disjoint:
            pytest.skip("no disjoint rule at this seed")
        rule = disjoint[0]
        cache = BufferCache(data.dataset.n_records,
                            data.dataset.class_support(rule.class_index),
                            min_sup=1)
        assert adjusted_p_value(rule, e, data.dataset, cache) is None

    def test_planted_rule_itself_adjusts_to_high_p(self, planted):
        """Discounting Rt from Rt itself must destroy its significance."""
        data, ruleset = planted
        e = data.embedded_rules[0]
        rule = next(r for r in ruleset.rules
                    if matches_embedded(r, e, data.dataset))
        cache = BufferCache(data.dataset.n_records,
                            data.dataset.class_support(rule.class_index),
                            min_sup=1)
        adjusted = adjusted_p_value(rule, e, data.dataset, cache)
        assert adjusted is not None
        assert adjusted > 0.01
        assert adjusted > rule.p_value

    def test_independent_overlapping_rule_keeps_its_p(self, planted):
        """A rule overlapping Rt only slightly barely moves."""
        data, ruleset = planted
        e = data.embedded_rules[0]
        target = data.dataset.pattern_tidset(e.item_ids)
        from repro import bitset as bs
        candidates = [
            r for r in ruleset.rules
            if 0 < bs.popcount(
                data.dataset.pattern_tidset(r.items) & target) <= 3
            and r.coverage >= 50
        ]
        if not candidates:
            pytest.skip("no slightly-overlapping rule at this seed")
        rule = candidates[0]
        cache = BufferCache(data.dataset.n_records,
                            data.dataset.class_support(rule.class_index),
                            min_sup=1)
        adjusted = adjusted_p_value(rule, e, data.dataset, cache)
        assert adjusted is not None
        # Discounting at most 3 records cannot change the p-value by
        # many orders of magnitude.
        import math
        if rule.p_value > 1e-290:
            assert abs(math.log10(max(adjusted, 1e-300))
                       - math.log10(rule.p_value)) < 3


class TestClassification:
    def test_no_embedded_rules_all_fp(self, planted):
        _, ruleset = planted
        significant = ruleset.rules[:5]
        classified = classify_rules(significant, [], ruleset.dataset,
                                    threshold=0.05)
        assert all(c.status == RuleStatus.FALSE_POSITIVE
                   for c in classified)

    def test_planted_rule_classified_tp(self, planted):
        data, ruleset = planted
        e = data.embedded_rules[0]
        significant = [r for r in ruleset.rules if r.p_value <= 1e-6]
        classified = classify_rules(significant, [e], data.dataset,
                                    threshold=1e-6)
        by_status = {}
        for c in classified:
            by_status.setdefault(c.status, []).append(c)
        assert RuleStatus.TRUE_POSITIVE in by_status

    def test_byproducts_present(self, planted):
        """Sub/super-patterns of Xt should be excused, not counted FP."""
        data, ruleset = planted
        e = data.embedded_rules[0]
        significant = [r for r in ruleset.rules if r.p_value <= 1e-6]
        classified = classify_rules(significant, [e], data.dataset,
                                    threshold=1e-6)
        statuses = {c.status for c in classified}
        if len(significant) > 1:
            assert RuleStatus.BYPRODUCT in statuses

    def test_threshold_zero_vacuous(self, planted):
        data, ruleset = planted
        classified = classify_rules([], data.embedded_rules,
                                    data.dataset, threshold=0.0)
        assert classified == []

    def test_negative_threshold_rejected(self, planted):
        data, ruleset = planted
        from repro.errors import EvaluationError
        with pytest.raises(EvaluationError):
            classify_rules([], data.embedded_rules, data.dataset,
                           threshold=-0.1)

    def test_lower_threshold_fewer_fp(self, planted):
        """A stricter excusal threshold can only move FP -> byproduct."""
        data, ruleset = planted
        e = data.embedded_rules[0]
        significant = [r for r in ruleset.rules if r.p_value <= 1e-4]
        loose = classify_rules(significant, [e], data.dataset,
                               threshold=1e-2)
        strict = classify_rules(significant, [e], data.dataset,
                                threshold=1e-8)
        n_fp_loose = sum(1 for c in loose
                         if c.status == RuleStatus.FALSE_POSITIVE)
        n_fp_strict = sum(1 for c in strict
                          if c.status == RuleStatus.FALSE_POSITIVE)
        assert n_fp_strict <= n_fp_loose


class TestRestrictEmbedded:
    def test_tidset_recomputed_on_subset(self, planted):
        data, _ = planted
        half = data.dataset.subset(range(200))
        restricted = restrict_embedded(data.embedded_rules, half)
        e = restricted[0]
        assert e.tidset == half.pattern_tidset(e.item_ids)
        assert e.item_ids == data.embedded_rules[0].item_ids

    def test_coverage_roughly_halved(self, planted):
        data, _ = planted
        half = data.dataset.subset(range(200))
        original = data.embedded_rules[0]
        restricted = restrict_embedded([original], half)[0]
        assert restricted.coverage <= original.coverage
