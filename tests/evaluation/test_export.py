"""Unit tests for CSV export of mined rules."""

from __future__ import annotations

import csv

import pytest

from repro.corrections import bonferroni
from repro.errors import EvaluationError
from repro.evaluation import rule_rows, rules_to_csv
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def mined():
    from repro.data import GeneratorConfig, generate
    config = GeneratorConfig(
        n_records=300, n_attributes=8, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    dataset = generate(config, seed=23).dataset
    return dataset, mine_class_rules(dataset, 25)


class TestRuleRows:
    def test_sorted_by_p_value(self, mined):
        dataset, ruleset = mined
        rows = rule_rows(ruleset.rules, dataset)
        p_values = [row[6] for row in rows]
        assert p_values == sorted(p_values)

    def test_row_contents_match_rule(self, mined):
        dataset, ruleset = mined
        best = ruleset.sorted_by_p()[0]
        row = rule_rows(ruleset.rules, dataset)[0]
        assert row[1] == dataset.class_names[best.class_index]
        assert row[3] == best.coverage
        assert row[4] == best.support
        assert row[6] == best.p_value

    def test_measure_columns_appended(self, mined):
        dataset, ruleset = mined
        rows = rule_rows(ruleset.rules, dataset,
                         measures=("lift", "jaccard"))
        assert all(len(row) == 9 for row in rows)
        assert all(0.0 <= row[8] <= 1.0 for row in rows)  # jaccard

    def test_unknown_measure_rejected(self, mined):
        dataset, ruleset = mined
        with pytest.raises(EvaluationError):
            rule_rows(ruleset.rules, dataset, measures=("bogus",))


class TestRulesToCsv:
    def test_roundtrip(self, mined, tmp_path):
        dataset, ruleset = mined
        path = tmp_path / "rules.csv"
        written = rules_to_csv(ruleset.rules, dataset, path,
                               measures=("lift",))
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["rule", "class", "length", "coverage",
                           "support", "confidence", "p_value", "lift"]
        assert len(rows) - 1 == written == len(ruleset.rules)

    def test_threshold_filter(self, mined, tmp_path):
        dataset, ruleset = mined
        result = bonferroni(ruleset, 0.05)
        path = tmp_path / "significant.csv"
        written = rules_to_csv(ruleset.rules, dataset, path,
                               threshold=result.threshold)
        assert written == result.n_significant
        rows = list(csv.reader(path.open()))
        for row in rows[1:]:
            assert float(row[6]) <= result.threshold

    def test_empty_rule_list(self, mined, tmp_path):
        dataset, _ruleset = mined
        path = tmp_path / "empty.csv"
        assert rules_to_csv([], dataset, path) == 0
        rows = list(csv.reader(path.open()))
        assert len(rows) == 1  # header only
