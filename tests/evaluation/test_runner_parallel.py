"""Parallel replicate-grid execution in the experiment runner."""

from __future__ import annotations

import pytest

from repro.data.synthetic import GeneratorConfig
from repro.errors import ReproError
from repro.evaluation.runner import ExperimentRunner

METHODS = ("No correction", "BC", "BH", "Perm_FWER", "HD_BC")


@pytest.fixture(scope="module")
def config():
    return GeneratorConfig(
        n_records=400, n_attributes=10, n_rules=1,
        min_coverage=80, max_coverage=80,
        min_confidence=0.8, max_confidence=0.8)


@pytest.fixture(scope="module")
def serial_result(config):
    runner = ExperimentRunner(methods=METHODS, n_permutations=30)
    return runner.run(config, min_sup=40, n_replicates=4, seed=0)


class TestGridFanOut:
    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_aggregates_identical_to_serial(self, config, serial_result,
                                            backend):
        runner = ExperimentRunner(methods=METHODS, n_permutations=30,
                                  n_jobs=4, backend=backend)
        parallel = runner.run(config, min_sup=40, n_replicates=4,
                              seed=0)
        for method in METHODS:
            assert parallel.aggregates[method].row() == \
                serial_result.aggregates[method].row()
        assert parallel.mean_tested == serial_result.mean_tested

    def test_replicates_keep_seed_order(self, config, serial_result):
        runner = ExperimentRunner(methods=METHODS, n_permutations=30,
                                  n_jobs=4, backend="processes")
        parallel = runner.run(config, min_sup=40, n_replicates=4,
                              seed=0)
        assert [r.seed for r in parallel.replicates] == \
            [r.seed for r in serial_result.replicates]
        for ours, theirs in zip(parallel.replicates,
                                serial_result.replicates):
            assert ours.n_rules_tested == theirs.n_rules_tested
            for method in METHODS:
                assert ours.outcomes[method] == theirs.outcomes[method]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ReproError):
            ExperimentRunner(methods=("BH",), backend="mpi")
        with pytest.raises(ReproError):
            ExperimentRunner(methods=("BH",), n_jobs=-3)
