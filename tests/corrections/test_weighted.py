"""Unit tests for weighted Bonferroni / BH procedures."""

from __future__ import annotations

import pytest

from repro.corrections import benjamini_hochberg, bonferroni
from repro.corrections import testability_weights as coverage_weights
from repro.corrections import weighted_bh, weighted_bonferroni
from repro.errors import CorrectionError
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def ruleset():
    from repro.data import GeneratorConfig, generate
    config = GeneratorConfig(
        n_records=400, n_attributes=10, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=80, max_coverage=80,
        min_confidence=0.85, max_confidence=0.85)
    dataset = generate(config, seed=41).dataset
    return mine_class_rules(dataset, 20)


class TestTestabilityWeights:
    def test_one_weight_per_rule(self, ruleset):
        weights = coverage_weights(ruleset)
        assert len(weights) == ruleset.n_tests
        assert all(w >= 0 for w in weights)

    def test_monotone_in_coverage(self, ruleset):
        """Within one class margin, higher coverage never gets less
        weight (below the margin's saturation point)."""
        weights = coverage_weights(ruleset)
        n_c = ruleset.dataset.class_support(0)
        pairs = sorted(
            (r.coverage, w)
            for r, w in zip(ruleset.rules, weights)
            if r.class_index == 0 and r.coverage <= n_c)
        for (cov_a, w_a), (cov_b, w_b) in zip(pairs, pairs[1:]):
            if cov_a < cov_b:
                assert w_a <= w_b + 1e-9


class TestWeightedBonferroni:
    def test_uniform_weights_reduce_to_bonferroni(self, ruleset):
        uniform = [1.0] * ruleset.n_tests
        weighted = weighted_bonferroni(ruleset, 0.05, weights=uniform)
        plain = bonferroni(ruleset, 0.05)
        assert weighted.n_significant == plain.n_significant

    def test_weight_scale_does_not_matter(self, ruleset):
        """Weights are normalised to mean 1, so scaling is a no-op."""
        base = coverage_weights(ruleset)
        scaled = [w * 37.0 for w in base]
        a = weighted_bonferroni(ruleset, 0.05, weights=base)
        b = weighted_bonferroni(ruleset, 0.05, weights=scaled)
        assert a.n_significant == b.n_significant

    def test_per_rule_levels_sum_to_alpha(self, ruleset):
        """The union bound: sum of per-rule levels == alpha."""
        from repro.corrections.weighted import _validate_weights
        weights = _validate_weights(coverage_weights(ruleset),
                                    ruleset.n_tests)
        total = sum(w * 0.05 / ruleset.n_tests for w in weights)
        assert total == pytest.approx(0.05)

    def test_zero_weight_rules_never_rejected(self, ruleset):
        weights = [0.0] * ruleset.n_tests
        weights[0] = 1.0
        result = weighted_bonferroni(ruleset, 0.05, weights=weights)
        rejected_ids = {id(r) for r in result.significant}
        for rule in ruleset.rules[1:]:
            assert id(rule) not in rejected_ids

    def test_weight_validation(self, ruleset):
        with pytest.raises(CorrectionError):
            weighted_bonferroni(ruleset, weights=[1.0])
        with pytest.raises(CorrectionError):
            weighted_bonferroni(ruleset,
                                weights=[-1.0] * ruleset.n_tests)
        with pytest.raises(CorrectionError):
            weighted_bonferroni(ruleset,
                                weights=[0.0] * ruleset.n_tests)

    def test_method_fields(self, ruleset):
        result = weighted_bonferroni(ruleset)
        assert result.method == "wBC"
        assert result.control == "fwer"
        assert result.details["weights"] == "testability"


class TestWeightedBH:
    def test_uniform_weights_reduce_to_bh(self, ruleset):
        uniform = [1.0] * ruleset.n_tests
        weighted = weighted_bh(ruleset, 0.05, weights=uniform)
        plain = benjamini_hochberg(ruleset, 0.05)
        assert weighted.n_significant == plain.n_significant

    def test_detects_planted_signal(self, ruleset):
        result = weighted_bh(ruleset, 0.05)
        assert result.n_significant >= 1

    def test_near_zero_rejections_on_random_data(self):
        from repro.data import GeneratorConfig, generate
        config = GeneratorConfig(n_records=300, n_attributes=8,
                                 min_values=2, max_values=3, n_rules=0)
        dataset = generate(config, seed=61).dataset
        null_ruleset = mine_class_rules(dataset, 20)
        result = weighted_bh(null_ruleset, 0.05)
        assert result.n_significant <= 2

    def test_method_fields(self, ruleset):
        result = weighted_bh(ruleset)
        assert result.method == "wBH"
        assert result.control == "fdr"
