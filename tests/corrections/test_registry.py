"""The pluggable correction registry: resolution, round-trips,
registration, and error reporting."""

from __future__ import annotations

import pytest

from repro import CORRECTIONS, mine_significant_rules
from repro.corrections import (
    Correction,
    available_corrections,
    bonferroni,
    correction_names,
    get_correction,
    register_correction,
    resolve_correction,
    unregister_correction,
)
from repro.errors import CorrectionError

EXPECTED_CANONICAL = {
    "none", "bonferroni", "holm", "hochberg", "sidak",
    "weighted-bonferroni", "weighted-bh",
    "bh", "by", "storey", "bky", "lamp",
    "permutation-fwer", "permutation-fwer-stepdown", "permutation-fdr",
    "holdout-fwer", "holdout-fdr", "layered",
}

#: Table 3 abbreviation -> canonical name, the mapping the experiment
#: runner's method keys rely on.
TABLE3 = {
    "No correction": "none",
    "BC": "bonferroni",
    "BH": "bh",
    "Perm_FWER": "permutation-fwer",
    "Perm_FDR": "permutation-fdr",
    "Perm_FWER_SD": "permutation-fwer-stepdown",
    "HD_BC": "holdout-fwer",
    "HD_BH": "holdout-fdr",
    "RH_BC": "holdout-fwer",
    "RH_BH": "holdout-fdr",
    "Layered": "layered",
    "BY": "by",
    "LAMP": "lamp",
    "Holm": "holm",
    "Hochberg": "hochberg",
    "Sidak": "sidak",
    "Storey": "storey",
    "BKY": "bky",
    "wBC": "weighted-bonferroni",
    "wBH": "weighted-bh",
}


@pytest.fixture
def custom_correction():
    """Register a throwaway correction; always unregister afterwards."""
    spec = Correction(
        name="test-custom", abbreviation="TC", family="fwer",
        apply_fn=lambda ruleset, alpha, ctx: bonferroni(ruleset, alpha),
        aliases=("tc-alias",))
    register_correction(spec)
    yield spec
    unregister_correction("test-custom")


class TestCatalogue:
    def test_all_expected_corrections_registered(self):
        assert EXPECTED_CANONICAL <= set(correction_names())

    def test_corrections_view_matches_registry(self):
        assert set(CORRECTIONS) == set(correction_names())

    def test_every_table3_abbreviation_resolves(self):
        for abbreviation, canonical in TABLE3.items():
            assert resolve_correction(abbreviation).name == canonical


class TestRoundTrips:
    @pytest.mark.parametrize(
        "spec", available_corrections(), ids=lambda s: s.name)
    def test_name_abbreviation_alias_roundtrip(self, spec):
        assert resolve_correction(spec.name).name == spec.name
        assert resolve_correction(spec.abbreviation).name == spec.name
        for alias in spec.aliases:
            assert resolve_correction(alias).name == spec.name
        for variant in spec.variants:
            assert resolve_correction(variant).name == spec.name

    @pytest.mark.parametrize(
        "spec", available_corrections(), ids=lambda s: s.name)
    def test_case_insensitive(self, spec):
        assert resolve_correction(spec.name.upper()).name == spec.name
        assert resolve_correction(
            spec.abbreviation.lower()).name == spec.name

    def test_variant_overrides_bound(self):
        assert resolve_correction("HD_BC").overrides == {
            "holdout_split": "structured"}
        assert resolve_correction("RH_BH").overrides == {
            "holdout_split": "random"}

    def test_get_correction_returns_spec(self):
        assert get_correction("BH") is get_correction("bh")


class TestErrors:
    def test_unknown_name_lists_valid_names(self):
        with pytest.raises(CorrectionError) as excinfo:
            resolve_correction("voodoo")
        message = str(excinfo.value)
        assert "bh" in message
        assert "Perm_FWER" in message  # abbreviations included
        assert "benjamini-hochberg" in message  # aliases included

    def test_did_you_mean_suggestion(self):
        with pytest.raises(CorrectionError,
                           match="did you mean 'bonferroni'"):
            resolve_correction("bonferonni")

    def test_did_you_mean_abbreviation(self):
        with pytest.raises(CorrectionError, match="did you mean"):
            resolve_correction("perm_fwer_s")

    def test_non_string_rejected(self):
        with pytest.raises(CorrectionError, match="must be a string"):
            resolve_correction(3)

    def test_miner_error_comes_from_registry(self):
        with pytest.raises(CorrectionError, match="valid names"):
            mine_significant_rules(None, 10, correction="nope")


class TestRegistration:
    def test_duplicate_name_rejected(self, custom_correction):
        clash = Correction(
            name="test-custom", abbreviation="XX", family="fwer",
            apply_fn=lambda ruleset, alpha, ctx: None)
        with pytest.raises(CorrectionError, match="already registered"):
            register_correction(clash)

    def test_duplicate_alias_rejected(self, custom_correction):
        clash = Correction(
            name="test-other", abbreviation="TO", family="fwer",
            apply_fn=lambda ruleset, alpha, ctx: None,
            aliases=("tc-alias",))
        with pytest.raises(CorrectionError, match="already registered"):
            register_correction(clash)

    def test_clash_with_builtin_abbreviation_rejected(self):
        clash = Correction(
            name="test-bh-clash", abbreviation="BH", family="fdr",
            apply_fn=lambda ruleset, alpha, ctx: None)
        with pytest.raises(CorrectionError, match="already registered"):
            register_correction(clash)

    def test_bad_family_rejected(self):
        with pytest.raises(CorrectionError, match="family"):
            register_correction(Correction(
                name="test-bad-family", abbreviation="BF",
                family="banana",
                apply_fn=lambda ruleset, alpha, ctx: None))

    def test_unregister_removes_all_spellings(self, custom_correction):
        unregister_correction("TC")
        for spelling in ("test-custom", "TC", "tc-alias"):
            with pytest.raises(CorrectionError):
                resolve_correction(spelling)
        # Re-register so the fixture teardown has something to remove.
        register_correction(custom_correction)

    def test_registered_correction_appears_in_view(self,
                                                   custom_correction):
        assert CORRECTIONS["test-custom"] == "TC"
        assert "test-custom" in set(CORRECTIONS)

    def test_failed_overwrite_preserves_original(self):
        clash = Correction(
            name="bh", abbreviation="Holm", family="fdr",
            apply_fn=lambda ruleset, alpha, ctx: None)
        with pytest.raises(CorrectionError, match="already registered"):
            register_correction(clash, overwrite=True)
        # The built-in BH must survive the rejected overwrite.
        assert resolve_correction("bh").name == "bh"
        assert resolve_correction("BH").name == "bh"

    def test_successful_overwrite_replaces_spellings(
            self, custom_correction):
        replacement = Correction(
            name="test-custom", abbreviation="TC2", family="fdr",
            apply_fn=lambda ruleset, alpha, ctx: None)
        register_correction(replacement, overwrite=True)
        assert resolve_correction("TC2").name == "test-custom"
        assert get_correction("test-custom").family == "fdr"
        with pytest.raises(CorrectionError):
            resolve_correction("tc-alias")  # old alias dropped

    def test_overwrite_through_alias_rejected(self, custom_correction):
        # Overwrite replaces only a matching *canonical* name; hitting
        # another spec through one of its aliases is a collision, not
        # a licence to delete that spec wholesale.
        hijack = Correction(
            name="tc-alias", abbreviation="HJ", family="fwer",
            apply_fn=lambda ruleset, alpha, ctx: None)
        with pytest.raises(CorrectionError, match="already registered"):
            register_correction(hijack, overwrite=True)
        assert resolve_correction("test-custom").name == "test-custom"
        assert resolve_correction("tc-alias").name == "test-custom"

    def test_overwrite_by_case_variant(self, custom_correction):
        # Resolution is case-insensitive, so overwrite lookup is too.
        replacement = Correction(
            name="TEST-CUSTOM", abbreviation="TC3", family="fdr",
            apply_fn=lambda ruleset, alpha, ctx: None)
        register_correction(replacement, overwrite=True)
        assert resolve_correction("test-custom").name == "TEST-CUSTOM"
        assert resolve_correction("TC3").name == "TEST-CUSTOM"


class TestCustomCorrectionEndToEnd:
    def test_custom_correction_mines(self, custom_correction,
                                     small_random_dataset):
        report = mine_significant_rules(
            small_random_dataset, min_sup=10, correction="tc-alias")
        assert report.correction == "test-custom"
        baseline = mine_significant_rules(
            small_random_dataset, min_sup=10, correction="bonferroni")
        assert report.result.threshold == baseline.result.threshold

    def test_custom_correction_in_runner(self, custom_correction):
        from repro.data.synthetic import GeneratorConfig
        from repro.evaluation.runner import ExperimentRunner

        config = GeneratorConfig(
            n_records=200, n_attributes=8, min_values=2, max_values=3,
            n_rules=1, min_length=2, max_length=2,
            min_coverage=40, max_coverage=40,
            min_confidence=0.9, max_confidence=0.9)
        runner = ExperimentRunner(methods=("BC", "TC"))
        result = runner.run(config, min_sup=20, n_replicates=2, seed=3)
        assert result.aggregates["TC"].row() == \
            result.aggregates["BC"].row()

    def test_custom_holdout_correction_without_shared_run(self):
        """A needs_holdout plugin that manages its own split must not
        crash the runner's decision-dataset lookup."""
        from repro.corrections import no_correction
        from repro.data.synthetic import GeneratorConfig
        from repro.evaluation.runner import ExperimentRunner

        spec = Correction(
            name="test-own-holdout", abbreviation="TOH", family="fwer",
            apply_fn=lambda ruleset, alpha, ctx: no_correction(ruleset,
                                                               alpha),
            needs_holdout=True)
        register_correction(spec)
        try:
            config = GeneratorConfig(
                n_records=200, n_attributes=8, min_values=2,
                max_values=3, n_rules=1, min_length=2, max_length=2,
                min_coverage=40, max_coverage=40,
                min_confidence=0.9, max_confidence=0.9)
            runner = ExperimentRunner(methods=("TOH",))
            result = runner.run(config, min_sup=20, n_replicates=1,
                                seed=3)
            assert "TOH" in result.aggregates
        finally:
            unregister_correction("test-own-holdout")
