"""Unit tests for adaptive FDR control (Storey q-values, two-stage BH)."""

from __future__ import annotations

import pytest

from repro.corrections import (
    benjamini_hochberg,
    estimate_pi0,
    q_values,
    storey_fdr,
    two_stage_bh,
)
from repro.errors import CorrectionError
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def german_ruleset():
    from repro.data import make_german
    return mine_class_rules(make_german(), min_sup=150)


@pytest.fixture(scope="module")
def random_ruleset():
    from repro.data import GeneratorConfig, generate
    config = GeneratorConfig(n_records=300, n_attributes=10,
                             min_values=2, max_values=3, n_rules=0)
    ds = generate(config, seed=55).dataset
    return mine_class_rules(ds, min_sup=20)


class TestEstimatePi0:
    def test_uniform_p_values_give_pi0_near_one(self):
        uniform = [i / 1000 for i in range(1, 1001)]
        assert estimate_pi0(uniform) == pytest.approx(1.0, abs=0.01)

    def test_all_tiny_p_values_give_small_pi0(self):
        tiny = [1e-10] * 200
        assert estimate_pi0(tiny) == pytest.approx(1.0 / 200)

    def test_clamped_to_at_most_one(self):
        # Everything above lambda: raw estimate would be 2.
        concentrated = [0.9] * 50
        assert estimate_pi0(concentrated, lam=0.5) == 1.0

    def test_empty_input(self):
        assert estimate_pi0([]) == 1.0

    def test_lambda_validation(self):
        with pytest.raises(CorrectionError):
            estimate_pi0([0.5], lam=0.0)
        with pytest.raises(CorrectionError):
            estimate_pi0([0.5], lam=1.0)

    def test_real_data_pi0_below_random_data_pi0(self, german_ruleset,
                                                 random_ruleset):
        real = estimate_pi0(german_ruleset.p_values())
        random_ = estimate_pi0(random_ruleset.p_values())
        assert real < random_


class TestQValues:
    def test_monotone_in_p(self):
        ps = [0.001, 0.01, 0.2, 0.5, 0.9]
        qs = q_values(ps, pi0=1.0)
        assert qs == sorted(qs)

    def test_with_pi0_one_matches_bh_adjusted(self):
        ps = [0.001, 0.008, 0.039, 0.041, 0.6]
        qs = q_values(ps, pi0=1.0)
        m = len(ps)
        # BH adjusted p-values with the trailing-min convention.
        order = sorted(range(m), key=lambda i: ps[i])
        expected = [0.0] * m
        running = 1.0
        for rank in range(m, 0, -1):
            i = order[rank - 1]
            running = min(running, m * ps[i] / rank)
            expected[i] = running
        assert qs == pytest.approx(expected)

    def test_q_never_below_scaled_p(self):
        ps = [0.02, 0.5, 0.001, 0.3]
        for q, p in zip(q_values(ps, pi0=0.5), ps):
            assert q >= 0.5 * p - 1e-15

    def test_preserves_input_order(self):
        ps = [0.5, 0.001, 0.3]
        qs = q_values(ps, pi0=1.0)
        assert qs[1] == min(qs)

    def test_empty(self):
        assert q_values([], pi0=1.0) == []

    def test_pi0_validation(self):
        with pytest.raises(CorrectionError):
            q_values([0.5], pi0=0.0)
        with pytest.raises(CorrectionError):
            q_values([0.5], pi0=1.5)


class TestStoreyFdr:
    def test_rejects_at_least_bh(self, german_ruleset):
        bh = benjamini_hochberg(german_ruleset, 0.05)
        st = storey_fdr(german_ruleset, 0.05)
        assert st.n_significant >= bh.n_significant
        assert {id(r) for r in bh.significant} \
            <= {id(r) for r in st.significant}

    def test_equals_bh_when_pi0_is_one(self, random_ruleset):
        # Random data should estimate pi0 at (or extremely near) 1.
        pi0 = estimate_pi0(random_ruleset.p_values())
        st = storey_fdr(random_ruleset, 0.05)
        bh = benjamini_hochberg(random_ruleset, 0.05)
        if pi0 == 1.0:
            assert st.n_significant == bh.n_significant

    def test_details_carry_pi0(self, german_ruleset):
        result = storey_fdr(german_ruleset, 0.05)
        assert 0.0 < result.details["pi0"] <= 1.0
        assert result.details["lambda"] == 0.5

    def test_control_field(self, german_ruleset):
        result = storey_fdr(german_ruleset)
        assert result.control == "fdr"
        assert result.method == "Storey"

    def test_alpha_validation(self, german_ruleset):
        with pytest.raises(CorrectionError):
            storey_fdr(german_ruleset, 0.0)


class TestTwoStageBH:
    def test_rejects_at_least_plain_bh_on_signal(self, german_ruleset):
        """BKY's inflated stage-2 level beats BH at the same alpha when
        stage 1 finds many rejections."""
        bh = benjamini_hochberg(german_ruleset, 0.05)
        bky = two_stage_bh(german_ruleset, 0.05)
        assert bky.n_significant >= bh.n_significant

    def test_no_rejections_without_signal(self, random_ruleset):
        result = two_stage_bh(random_ruleset, 0.05)
        assert result.n_significant <= 2

    def test_stage1_details(self, german_ruleset):
        result = two_stage_bh(german_ruleset, 0.05)
        assert result.details["stage1_rejections"] >= 0
        assert result.details["stage1_rejections"] \
            <= german_ruleset.n_tests

    def test_stage1_uses_deflated_alpha(self, german_ruleset):
        result = two_stage_bh(german_ruleset, 0.05)
        from repro.corrections import bh_step_up
        expected = bh_step_up(german_ruleset.p_values(),
                              0.05 / 1.05)
        assert result.details["stage1_threshold"] \
            == pytest.approx(expected)

    def test_method_field(self, german_ruleset):
        assert two_stage_bh(german_ruleset).method == "BKY"
