"""Unit tests for the permutation-based approach (Section 4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.corrections import PermutationEngine, permutation_fdr, \
    permutation_fwer
from repro.data import GeneratorConfig, generate
from repro.errors import CorrectionError
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def random_ruleset():
    config = GeneratorConfig(n_records=200, n_attributes=8,
                             min_values=2, max_values=3, n_rules=0)
    ds = generate(config, seed=61).dataset
    return mine_class_rules(ds, min_sup=15)


@pytest.fixture(scope="module")
def planted_ruleset():
    config = GeneratorConfig(
        n_records=300, n_attributes=10, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.95, max_confidence=0.95)
    data = generate(config, seed=62)
    return data, mine_class_rules(data.dataset, min_sup=20)


class TestConstruction:
    def test_invalid_parameters(self, random_ruleset):
        with pytest.raises(CorrectionError):
            PermutationEngine(random_ruleset, n_permutations=0)
        with pytest.raises(CorrectionError):
            PermutationEngine(random_ruleset, policy="nope")
        with pytest.raises(CorrectionError):
            PermutationEngine(random_ruleset, pvalue_mode="nope")

    def test_seed_rng_conflict(self, random_ruleset):
        import random as pyrandom
        with pytest.raises(CorrectionError):
            PermutationEngine(random_ruleset, seed=1,
                              rng=pyrandom.Random(2))


class TestDeterminism:
    def test_same_seed_same_result(self, random_ruleset):
        a = PermutationEngine(random_ruleset, 50, seed=3).fwer(0.05)
        b = PermutationEngine(random_ruleset, 50, seed=3).fwer(0.05)
        assert a.threshold == b.threshold
        assert a.n_significant == b.n_significant

    def test_run_is_idempotent(self, random_ruleset):
        engine = PermutationEngine(random_ruleset, 30, seed=4)
        engine.run()
        first = engine.min_p_distribution()
        engine.run()
        assert (engine.min_p_distribution() == first).all()


class TestPvalueModesAgree:
    """vectorized, cache and direct modes must produce identical scores."""

    def test_modes_identical(self, random_ruleset):
        results = {}
        for mode in ("vectorized", "cache", "direct"):
            engine = PermutationEngine(random_ruleset, 20, seed=5,
                                       pvalue_mode=mode)
            results[mode] = engine.min_p_distribution()
        assert results["vectorized"] == pytest.approx(
            results["cache"], rel=1e-9)
        assert results["vectorized"] == pytest.approx(
            results["direct"], rel=1e-9)

    def test_policies_identical(self, random_ruleset):
        results = {}
        for policy in ("bitset", "diffsets", "full"):
            engine = PermutationEngine(random_ruleset, 20, seed=6,
                                       policy=policy)
            results[policy] = engine.min_p_distribution()
        assert results["bitset"] == pytest.approx(results["diffsets"])
        assert results["bitset"] == pytest.approx(results["full"])


class TestFwer:
    def test_threshold_is_quantile(self, random_ruleset):
        engine = PermutationEngine(random_ruleset, 100, seed=7)
        result = engine.fwer(0.05)
        min_p = engine.min_p_distribution()
        assert result.threshold == pytest.approx(float(min_p[4]))

    def test_too_few_permutations_conservative(self, random_ruleset):
        engine = PermutationEngine(random_ruleset, 10, seed=8)
        result = engine.fwer(0.05)  # floor(0.5) = 0 -> nothing passes
        assert result.threshold == 0.0
        assert result.n_significant == 0

    def test_method_name(self, random_ruleset):
        assert PermutationEngine(random_ruleset, 20, seed=9).fwer(
            0.05).method == "Perm_FWER"

    def test_detects_planted_rule(self, planted_ruleset):
        data, ruleset = planted_ruleset
        result = permutation_fwer(ruleset, 0.05, n_permutations=100,
                                  seed=10)
        planted = data.embedded_rules[0]
        target = data.dataset.pattern_tidset(planted.item_ids)
        hits = [r for r in result.significant
                if data.dataset.pattern_tidset(r.items) == target]
        assert hits

    def test_details_populated(self, random_ruleset):
        result = permutation_fwer(random_ruleset, 0.05,
                                  n_permutations=40, seed=11)
        assert result.details["n_permutations"] == 40
        assert "min_p_quantiles" in result.details


class TestFdr:
    def test_empirical_pvalues_are_probabilities(self, random_ruleset):
        engine = PermutationEngine(random_ruleset, 30, seed=12)
        empirical = engine.empirical_p_values()
        assert len(empirical) == random_ruleset.n_tests
        assert all(0.0 <= p <= 1.0 for p in empirical)

    def test_empirical_monotone_in_observed(self, random_ruleset):
        engine = PermutationEngine(random_ruleset, 30, seed=13)
        empirical = engine.empirical_p_values()
        observed = random_ruleset.p_values()
        paired = sorted(zip(observed, empirical))
        for (_, e1), (_, e2) in zip(paired, paired[1:]):
            assert e1 <= e2 + 1e-12

    def test_fdr_result(self, random_ruleset):
        result = permutation_fdr(random_ruleset, 0.05,
                                 n_permutations=30, seed=14)
        assert result.method == "Perm_FDR"
        assert result.control == "fdr"

    def test_fdr_detects_planted_rule(self, planted_ruleset):
        data, ruleset = planted_ruleset
        result = permutation_fdr(ruleset, 0.05, n_permutations=100,
                                 seed=15)
        planted = data.embedded_rules[0]
        target = data.dataset.pattern_tidset(planted.item_ids)
        hits = [r for r in result.significant
                if data.dataset.pattern_tidset(r.items) == target]
        assert hits

    def test_shared_engine_cheaper_than_two(self, random_ruleset):
        engine = PermutationEngine(random_ruleset, 25, seed=16)
        fwer = engine.fwer(0.05)
        fdr = engine.fdr(0.05)
        # Both results must come from the same permutation pass.
        assert fwer.details["n_permutations"] == \
            fdr.details["n_permutations"]


class TestStatisticalBehaviour:
    def test_fwer_near_alpha_on_null(self):
        """On random data the permutation FWER should be near alpha."""
        false_hits = 0
        trials = 30
        for seed in range(trials):
            config = GeneratorConfig(n_records=120, n_attributes=6,
                                     min_values=2, max_values=2,
                                     n_rules=0)
            ds = generate(config, seed=1000 + seed).dataset
            ruleset = mine_class_rules(ds, min_sup=12)
            result = permutation_fwer(ruleset, 0.05, n_permutations=60,
                                      seed=seed)
            if result.n_significant > 0:
                false_hits += 1
        assert false_hits / trials <= 0.2
