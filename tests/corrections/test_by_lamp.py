"""Unit tests for the BY and LAMP extension corrections."""

from __future__ import annotations

import math

import pytest

from repro.corrections import (
    benjamini_hochberg,
    benjamini_yekutieli,
    bonferroni,
    harmonic_number,
    lamp_bonferroni,
)
from repro.data import GeneratorConfig, generate
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def random_ruleset():
    config = GeneratorConfig(n_records=300, n_attributes=10,
                             min_values=2, max_values=3, n_rules=0)
    ds = generate(config, seed=131).dataset
    return mine_class_rules(ds, min_sup=8)


@pytest.fixture(scope="module")
def planted_ruleset():
    config = GeneratorConfig(
        n_records=400, n_attributes=12, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=80, max_coverage=80,
        min_confidence=0.95, max_confidence=0.95)
    data = generate(config, seed=132)
    return data, mine_class_rules(data.dataset, min_sup=20)


class TestHarmonicNumber:
    def test_small_values(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(25 / 12)

    def test_zero(self):
        assert harmonic_number(0) == 0.0

    def test_asymptotic_branch_close_to_exact(self):
        exact = sum(1.0 / i for i in range(1, 1_000_001))
        assert harmonic_number(1_000_000) == pytest.approx(exact,
                                                           rel=1e-9)


class TestBenjaminiYekutieli:
    def test_more_conservative_than_bh(self, random_ruleset):
        bh = benjamini_hochberg(random_ruleset, 0.05)
        by = benjamini_yekutieli(random_ruleset, 0.05)
        assert by.n_significant <= bh.n_significant
        assert by.threshold <= bh.threshold

    def test_still_detects_overwhelming_rule(self, planted_ruleset):
        data, ruleset = planted_ruleset
        by = benjamini_yekutieli(ruleset, 0.05)
        target = data.dataset.pattern_tidset(
            data.embedded_rules[0].item_ids)
        assert any(data.dataset.pattern_tidset(r.items) == target
                   for r in by.significant)

    def test_details_factor(self, random_ruleset):
        by = benjamini_yekutieli(random_ruleset, 0.05)
        expected = harmonic_number(random_ruleset.n_tests)
        assert by.details["harmonic_factor"] == pytest.approx(expected)

    def test_method_metadata(self, random_ruleset):
        by = benjamini_yekutieli(random_ruleset)
        assert by.method == "BY"
        assert by.control == "fdr"


class TestLampBonferroni:
    def test_never_less_powerful_than_bonferroni(self, random_ruleset):
        bc = bonferroni(random_ruleset, 0.05)
        lamp = lamp_bonferroni(random_ruleset, 0.05)
        if lamp.n_tests > 0:
            assert lamp.threshold >= bc.threshold
        bc_set = {id(r) for r in bc.significant}
        lamp_set = {id(r) for r in lamp.significant}
        assert bc_set <= lamp_set

    def test_testable_count_not_exceeding_total(self, random_ruleset):
        lamp = lamp_bonferroni(random_ruleset, 0.05)
        assert lamp.n_tests <= random_ruleset.n_tests
        assert lamp.details["n_total"] == random_ruleset.n_tests

    def test_prunes_untestable_low_coverage(self, random_ruleset):
        """At min_sup=8 on 300 records, plenty of rules cannot ever be
        significant — LAMP must find a strictly smaller denominator."""
        lamp = lamp_bonferroni(random_ruleset, 0.05)
        assert lamp.n_tests < random_ruleset.n_tests

    def test_significant_rules_testable(self, random_ruleset):
        from repro.stats import min_attainable_p_value
        lamp = lamp_bonferroni(random_ruleset, 0.05)
        ds = random_ruleset.dataset
        for rule in lamp.significant:
            floor = min_attainable_p_value(
                ds.n_records, ds.class_support(rule.class_index),
                rule.coverage)
            assert floor <= lamp.threshold
            assert rule.p_value <= lamp.threshold

    def test_fwer_still_controlled_on_nulls(self):
        false_hits = 0
        trials = 25
        for seed in range(trials):
            config = GeneratorConfig(n_records=150, n_attributes=6,
                                     min_values=2, max_values=2,
                                     n_rules=0)
            ds = generate(config, seed=3000 + seed).dataset
            rs = mine_class_rules(ds, min_sup=8)
            if lamp_bonferroni(rs, 0.05).n_significant:
                false_hits += 1
        assert false_hits / trials <= 0.16

    def test_detects_planted_rule(self, planted_ruleset):
        data, ruleset = planted_ruleset
        lamp = lamp_bonferroni(ruleset, 0.05)
        target = data.dataset.pattern_tidset(
            data.embedded_rules[0].item_ids)
        assert any(data.dataset.pattern_tidset(r.items) == target
                   for r in lamp.significant)

    def test_sigma_reported(self, random_ruleset):
        lamp = lamp_bonferroni(random_ruleset, 0.05)
        if lamp.details["n_testable"]:
            assert lamp.details["sigma"] >= random_ruleset.min_sup
