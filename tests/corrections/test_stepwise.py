"""Unit tests for the stepwise FWER procedures (Holm, Hochberg, Šidák)."""

from __future__ import annotations

import math

import pytest

from repro.corrections import bonferroni, hochberg, holm, sidak
from repro.corrections.stepwise import sidak_threshold
from repro.errors import CorrectionError
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def german_ruleset():
    from repro.data import make_german
    return mine_class_rules(make_german(), min_sup=150)


@pytest.fixture(scope="module")
def random_ruleset():
    from repro.data import GeneratorConfig, generate
    config = GeneratorConfig(n_records=300, n_attributes=10,
                             min_values=2, max_values=3, n_rules=0)
    ds = generate(config, seed=55).dataset
    return mine_class_rules(ds, min_sup=20)


class TestHolm:
    def test_rejects_at_least_bonferroni(self, german_ruleset):
        bc = bonferroni(german_ruleset, 0.05)
        hl = holm(german_ruleset, 0.05)
        assert hl.n_significant >= bc.n_significant
        bc_ids = {id(r) for r in bc.significant}
        hl_ids = {id(r) for r in hl.significant}
        assert bc_ids <= hl_ids

    def test_stepdown_bound_holds_at_every_rank(self, german_ruleset):
        result = holm(german_ruleset, 0.05)
        accepted = sorted(r.p_value for r in result.significant)
        n = german_ruleset.n_tests
        for i, p in enumerate(accepted, start=1):
            assert p <= 0.05 / (n - i + 1)

    def test_stops_at_first_failure(self, german_ruleset):
        """No accepted p-value may exceed a rejected one."""
        result = holm(german_ruleset, 0.05)
        rejected = [r.p_value for r in german_ruleset.rules
                    if r.p_value > result.threshold]
        if result.significant and rejected:
            assert max(r.p_value for r in result.significant) \
                < min(rejected) or result.threshold >= min(rejected)

    def test_random_data_rejects_nothing_spurious(self, random_ruleset):
        result = holm(random_ruleset, 0.05)
        # Random data: Holm should behave like Bonferroni (almost
        # nothing passes); definitely no more than a handful.
        assert result.n_significant <= 2

    def test_control_and_method_fields(self, german_ruleset):
        result = holm(german_ruleset)
        assert result.control == "fwer"
        assert result.method == "Holm"
        assert result.n_tests == german_ruleset.n_tests

    def test_alpha_validation(self, german_ruleset):
        with pytest.raises(CorrectionError):
            holm(german_ruleset, 0.0)
        with pytest.raises(CorrectionError):
            holm(german_ruleset, 1.5)


class TestHochberg:
    def test_rejects_at_least_holm(self, german_ruleset):
        hl = holm(german_ruleset, 0.05)
        hb = hochberg(german_ruleset, 0.05)
        assert hb.n_significant >= hl.n_significant
        assert {id(r) for r in hl.significant} \
            <= {id(r) for r in hb.significant}

    def test_threshold_is_observed_p_or_zero(self, german_ruleset):
        result = hochberg(german_ruleset, 0.05)
        observed = set(german_ruleset.p_values())
        assert result.threshold == 0.0 or result.threshold in observed

    def test_stepup_bound_at_acceptance_rank(self, german_ruleset):
        result = hochberg(german_ruleset, 0.05)
        if result.threshold == 0.0:
            return
        ordered = sorted(german_ruleset.p_values())
        n = german_ruleset.n_tests
        k = sum(1 for p in ordered if p <= result.threshold)
        assert ordered[k - 1] <= 0.05 / (n - k + 1)

    def test_nothing_significant_on_uniform_p(self, random_ruleset):
        result = hochberg(random_ruleset, 0.05)
        assert result.n_significant <= 2

    def test_method_field(self, german_ruleset):
        assert hochberg(german_ruleset).method == "Hochberg"


class TestSidak:
    def test_threshold_formula(self, german_ruleset):
        result = sidak(german_ruleset, 0.05)
        n = german_ruleset.n_tests
        assert result.threshold == pytest.approx(
            1.0 - (1.0 - 0.05) ** (1.0 / n))

    def test_slightly_more_liberal_than_bonferroni(self, german_ruleset):
        n = german_ruleset.n_tests
        assert sidak_threshold(0.05, n) >= 0.05 / n
        bc = bonferroni(german_ruleset, 0.05)
        sk = sidak(german_ruleset, 0.05)
        assert sk.n_significant >= bc.n_significant

    def test_threshold_helper_edge_cases(self):
        assert sidak_threshold(0.05, 0) == 0.0
        assert sidak_threshold(0.05, 1) == pytest.approx(0.05)
        with pytest.raises(CorrectionError):
            sidak_threshold(0.0, 10)

    def test_no_underflow_at_large_n(self):
        threshold = sidak_threshold(0.05, 10**9)
        assert threshold > 0.0
        assert math.isfinite(threshold)
        # Asymptotically -log(1 - alpha) / n, slightly above alpha / n.
        assert threshold == pytest.approx(-math.log1p(-0.05) / 10**9,
                                          rel=1e-6)
        assert threshold >= 0.05 / 10**9

    def test_method_field(self, german_ruleset):
        assert sidak(german_ruleset).method == "Sidak"


class TestOrderingAcrossProcedures:
    def test_power_ordering(self, german_ruleset):
        """BC <= Sidak and BC <= Holm <= Hochberg (rejection counts)."""
        counts = {
            "bc": bonferroni(german_ruleset, 0.05).n_significant,
            "sidak": sidak(german_ruleset, 0.05).n_significant,
            "holm": holm(german_ruleset, 0.05).n_significant,
            "hochberg": hochberg(german_ruleset, 0.05).n_significant,
        }
        assert counts["bc"] <= counts["sidak"]
        assert counts["bc"] <= counts["holm"] <= counts["hochberg"]

    def test_all_selected_rules_clear_threshold(self, german_ruleset):
        for procedure in (holm, hochberg, sidak):
            result = procedure(german_ruleset, 0.05)
            assert all(r.p_value <= result.threshold
                       for r in result.significant)
