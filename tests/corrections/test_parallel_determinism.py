"""Backend/worker-count determinism of the permutation engine.

The property the parallel-determinism CI job guards end-to-end: for a
fixed seed, every backend at every worker count returns an *identical*
``CorrectionResult`` — same threshold, same significant rules in the
same order, same diagnostics — because permutation ``t`` always draws
its labelling from the ``t``-th spawned seed and the shard merge is
order-independent.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.corrections import PermutationEngine
from repro.data import GeneratorConfig, generate
from repro.mining import mine_class_rules

BACKENDS = ("serial", "threads", "processes")


@pytest.fixture(scope="module")
def ruleset():
    config = GeneratorConfig(
        n_records=300, n_attributes=10, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    return mine_class_rules(generate(config, seed=62).dataset,
                            min_sup=20)


def _result_fingerprint(result):
    return (result.method, result.threshold, result.n_significant,
            [(r.items, r.class_index, r.p_value)
             for r in result.significant])


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_jobs", (2, 4))
    def test_fwer_identical(self, ruleset, backend, n_jobs):
        serial = PermutationEngine(ruleset, 60, seed=3).fwer(0.05)
        parallel = PermutationEngine(ruleset, 60, seed=3,
                                     n_jobs=n_jobs,
                                     backend=backend).fwer(0.05)
        assert _result_fingerprint(parallel) == \
            _result_fingerprint(serial)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fdr_and_stepdown_identical(self, ruleset, backend):
        serial = PermutationEngine(ruleset, 40, seed=9)
        parallel = PermutationEngine(ruleset, 40, seed=9, n_jobs=4,
                                     backend=backend)
        assert _result_fingerprint(parallel.fdr(0.05)) == \
            _result_fingerprint(serial.fdr(0.05))
        assert _result_fingerprint(parallel.fwer_stepdown(0.05)) == \
            _result_fingerprint(serial.fwer_stepdown(0.05))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_shared_statistics_bitwise_identical(self, ruleset, backend):
        serial = PermutationEngine(ruleset, 30, seed=5)
        parallel = PermutationEngine(ruleset, 30, seed=5, n_jobs=3,
                                     backend=backend)
        assert (parallel.min_p_distribution()
                == serial.min_p_distribution()).all()
        assert parallel.empirical_p_values() == \
            serial.empirical_p_values()
        assert parallel.stepdown_adjusted_p_values() == \
            serial.stepdown_adjusted_p_values()

    @pytest.mark.parametrize("mode", ("cache", "direct"))
    def test_nondefault_pvalue_modes_stay_identical(self, ruleset, mode):
        """The cache/direct modes score through shared mutable caches:
        threads must fall back to serial (silent corruption otherwise)
        and processes (per-worker copies) must still match serial."""
        serial = PermutationEngine(ruleset, 15, seed=5,
                                   pvalue_mode=mode)
        threads = PermutationEngine(ruleset, 15, seed=5,
                                    pvalue_mode=mode, n_jobs=4,
                                    backend="threads")
        procs = PermutationEngine(ruleset, 15, seed=5,
                                  pvalue_mode=mode, n_jobs=4,
                                  backend="processes")
        reference = serial.min_p_distribution()
        assert (threads.min_p_distribution() == reference).all()
        assert (procs.min_p_distribution() == reference).all()

    def test_worker_count_does_not_matter(self, ruleset):
        baseline = None
        for n_jobs in (1, 2, 4, 16):
            engine = PermutationEngine(ruleset, 50, seed=11,
                                       n_jobs=n_jobs,
                                       backend="processes")
            fingerprint = _result_fingerprint(engine.fwer(0.05))
            if baseline is None:
                baseline = fingerprint
            assert fingerprint == baseline


class TestSeedScheme:
    def test_legacy_rng_shim_deterministic(self, ruleset):
        a = PermutationEngine(ruleset, 25,
                              rng=random.Random(7)).fwer(0.05)
        b = PermutationEngine(ruleset, 25,
                              rng=random.Random(7)).fwer(0.05)
        assert _result_fingerprint(a) == _result_fingerprint(b)

    def test_legacy_rng_matches_equivalent_seed_sequence(self, ruleset):
        """The shim seeds a SeedSequence with the rng's next 128 bits."""
        entropy = random.Random(7).getrandbits(128)
        via_rng = PermutationEngine(ruleset, 25, rng=random.Random(7))
        direct = PermutationEngine(ruleset, 25, seed=entropy)
        assert (via_rng.min_p_distribution()
                == direct.min_p_distribution()).all()

    def test_prefix_property(self, ruleset):
        """The first N permutations of a longer run are the same
        permutations — seeds attach to indices, not to the count."""
        short = PermutationEngine(ruleset, 10, seed=13)
        long = PermutationEngine(ruleset, 30, seed=13)
        short_parts = short._score_shard(
            np.random.SeedSequence(13).spawn(10),
            np.argsort(short._observed_p, kind="stable"),
            np.sort(short._observed_p))
        long_parts = long._score_shard(
            np.random.SeedSequence(13).spawn(30)[:10],
            np.argsort(long._observed_p, kind="stable"),
            np.sort(long._observed_p))
        assert (short_parts[0] == long_parts[0]).all()

    def test_engine_reports_executor_configuration(self, ruleset):
        engine = PermutationEngine(ruleset, 10, seed=1, n_jobs=2,
                                   backend="threads")
        assert engine.n_jobs == 2
        assert engine.backend == "threads"
