"""Batched packed scoring is byte-identical to everything else.

The PR-4 guarantee on top of the PR-2 one: the *batched* permutation
pass (packed uint64 kernel, block-sized scoring, 2-D p-value lookup)
produces byte-identical ``Perm_FWER`` / ``Perm_FWER_SD`` / ``Perm_FDR``
CSV output at any worker count, on every backend, under every forest
policy, and for any block budget. The CSVs are written through the real
CLI so the comparison covers the full stack, exactly like the
``parallel-determinism`` CI job.
"""

from __future__ import annotations

import filecmp

import numpy as np
import pytest

from repro.cli import main
from repro.corrections import PermutationEngine
from repro.data import GeneratorConfig, generate, save_csv
from repro.mining import mine_class_rules

CORRECTIONS = ("Perm_FWER", "Perm_FWER_SD", "Perm_FDR")


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("packed") / "dataset.csv"
    config = GeneratorConfig(
        n_records=400, n_attributes=10, n_rules=2,
        min_coverage=60, max_coverage=90,
        min_confidence=0.8, max_confidence=0.9)
    save_csv(generate(config, seed=31).dataset, str(path))
    return path


def _mine_csv(dataset_csv, out_path, correction, **options):
    argv = ["mine", str(dataset_csv), "--min-sup", "30",
            "--correction", correction, "--permutations", "60",
            "--seed", "0", "--csv-out", str(out_path)]
    for flag, value in options.items():
        argv += [f"--{flag}", str(value)]
    assert main(argv, out=open(out_path.with_suffix(".log"), "w")) == 0
    return out_path


class TestCsvByteIdentity:
    @pytest.mark.parametrize("correction", CORRECTIONS)
    def test_jobs_and_backends_byte_identical(self, dataset_csv,
                                              tmp_path, correction):
        baseline = _mine_csv(dataset_csv, tmp_path / "base.csv",
                             correction, policy="packed",
                             jobs=1, backend="serial")
        for jobs, backend in ((4, "threads"), (4, "processes")):
            other = _mine_csv(
                dataset_csv, tmp_path / f"{backend}.csv", correction,
                policy="packed", jobs=jobs, backend=backend)
            assert filecmp.cmp(baseline, other, shallow=False), \
                f"{correction} differs at --jobs {jobs} --backend " \
                f"{backend}"

    @pytest.mark.parametrize("correction", CORRECTIONS)
    def test_packed_matches_bigint_policies(self, dataset_csv,
                                            tmp_path, correction):
        packed = _mine_csv(dataset_csv, tmp_path / "packed.csv",
                           correction, policy="packed")
        for policy in ("bitset", "diffsets", "full"):
            other = _mine_csv(dataset_csv, tmp_path / f"{policy}.csv",
                              correction, policy=policy)
            assert filecmp.cmp(packed, other, shallow=False), \
                f"{correction} differs between packed and {policy}"


class TestEngineStatistics:
    @pytest.fixture(scope="class")
    def ruleset(self):
        config = GeneratorConfig(
            n_records=300, n_attributes=10, n_rules=1,
            min_coverage=60, max_coverage=60,
            min_confidence=0.9, max_confidence=0.9)
        return mine_class_rules(generate(config, seed=62).dataset,
                                min_sup=20)

    def _statistics(self, engine):
        return (engine.min_p_distribution(),
                engine.empirical_p_values(),
                engine.stepdown_adjusted_p_values())

    def test_block_sizing_never_changes_results(self, ruleset):
        reference = self._statistics(
            PermutationEngine(ruleset, 40, seed=9, policy="packed"))
        # batch_bytes=1 degenerates to one permutation per block — the
        # maximally split schedule must still be bit-identical.
        for batch_bytes in (1, 10_000, 10**9):
            tiny = self._statistics(PermutationEngine(
                ruleset, 40, seed=9, policy="packed",
                batch_bytes=batch_bytes))
            assert (tiny[0] == reference[0]).all()
            assert tiny[1] == reference[1]
            assert tiny[2] == reference[2]

    def test_batched_matches_sequential_cache_mode(self, ruleset):
        """The cache mode still scores permutation-at-a-time through
        Python buffers; the batched packed path must reproduce its
        statistics exactly."""
        batched = self._statistics(
            PermutationEngine(ruleset, 30, seed=5, policy="packed"))
        sequential = self._statistics(
            PermutationEngine(ruleset, 30, seed=5, policy="bitset",
                              pvalue_mode="cache"))
        assert (batched[0] == sequential[0]).all()
        assert batched[1] == sequential[1]
        assert batched[2] == sequential[2]

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_policy_and_backend_cross_product(self, ruleset, backend):
        reference = self._statistics(
            PermutationEngine(ruleset, 30, seed=5, policy="packed"))
        for policy in ("packed", "bitset"):
            parallel = self._statistics(PermutationEngine(
                ruleset, 30, seed=5, policy=policy, n_jobs=3,
                backend=backend))
            assert (parallel[0] == reference[0]).all()
            assert parallel[1] == reference[1]
            assert parallel[2] == reference[2]

    def test_multiclass_batched_supports_match_sequential(self):
        config = GeneratorConfig(
            n_records=240, n_attributes=8, n_rules=1, n_classes=3,
            min_coverage=40, max_coverage=60,
            min_confidence=0.8, max_confidence=0.9)
        ruleset = mine_class_rules(generate(config, seed=77).dataset,
                                   min_sup=15)
        engine = PermutationEngine(ruleset, 10, seed=2,
                                   policy="packed")
        rng = np.random.default_rng(3)
        labels = np.stack([rng.permutation(engine._labels)
                           for _ in range(5)])
        batched = engine._rule_supports_batch(labels)
        for row in range(labels.shape[0]):
            assert (batched[row]
                    == engine._rule_supports(labels[row])).all()
