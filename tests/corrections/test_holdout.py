"""Unit tests for the holdout approach (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.corrections import HoldoutRun, holdout
from repro.data import GeneratorConfig, generate_paired
from repro.errors import CorrectionError


@pytest.fixture(scope="module")
def paired_data():
    config = GeneratorConfig(
        n_records=600, n_attributes=12, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=120, max_coverage=120,
        min_confidence=0.95, max_confidence=0.95)
    return generate_paired(config, seed=71)


class TestSplitMechanics:
    def test_structured_split_uses_boundary(self, paired_data):
        run = HoldoutRun(paired_data.dataset, min_sup=40,
                         boundary=paired_data.half_boundary)
        assert run.exploratory.n_records == 300
        assert run.evaluation.n_records == 300

    def test_exploratory_min_sup_halved(self, paired_data):
        run = HoldoutRun(paired_data.dataset, min_sup=40,
                         boundary=paired_data.half_boundary)
        assert run.exploratory_rules.min_sup == 20

    def test_random_split_seeded(self, paired_data):
        a = HoldoutRun(paired_data.dataset, min_sup=40, split="random",
                       seed=5)
        b = HoldoutRun(paired_data.dataset, min_sup=40, split="random",
                       seed=5)
        assert a.exploratory.class_labels == b.exploratory.class_labels

    def test_invalid_split(self, paired_data):
        with pytest.raises(CorrectionError):
            HoldoutRun(paired_data.dataset, min_sup=40, split="thirds")

    def test_min_sup_too_small(self, paired_data):
        with pytest.raises(CorrectionError):
            HoldoutRun(paired_data.dataset, min_sup=1)


class TestCandidates:
    def test_candidates_pass_alpha_on_exploratory(self, paired_data):
        run = HoldoutRun(paired_data.dataset, min_sup=40,
                         boundary=paired_data.half_boundary)
        assert all(rule.p_value <= run.alpha for rule in run.candidates)

    def test_candidate_count_much_smaller(self, paired_data):
        run = HoldoutRun(paired_data.dataset, min_sup=40,
                         boundary=paired_data.half_boundary)
        assert len(run.candidates) < run.exploratory_rules.n_tests

    def test_evaluated_statistics_from_evaluation_half(self, paired_data):
        run = HoldoutRun(paired_data.dataset, min_sup=40,
                         boundary=paired_data.half_boundary)
        for candidate, scored in run.evaluated:
            assert scored.items == candidate.items
            assert scored.coverage == run.evaluation.pattern_support(
                candidate.items)

    def test_unobservable_pattern_gets_p_one(self, paired_data):
        # A pattern absent from the evaluation half can never validate.
        run = HoldoutRun(paired_data.dataset, min_sup=40,
                         boundary=paired_data.half_boundary)
        for _, scored in run.evaluated:
            if scored.coverage == 0:
                assert scored.p_value == 1.0


class TestErrorControl:
    def test_bonferroni_uses_candidate_count(self, paired_data):
        run = HoldoutRun(paired_data.dataset, min_sup=40,
                         boundary=paired_data.half_boundary)
        result = run.bonferroni()
        if run.candidates:
            assert result.threshold == pytest.approx(
                0.05 / len(run.candidates))
        assert result.n_tests == len(run.candidates)

    def test_method_names(self, paired_data):
        hd = HoldoutRun(paired_data.dataset, min_sup=40,
                        boundary=paired_data.half_boundary)
        assert hd.bonferroni().method == "HD_BC"
        assert hd.benjamini_hochberg().method == "HD_BH"
        rh = HoldoutRun(paired_data.dataset, min_sup=40, split="random",
                        seed=1)
        assert rh.bonferroni().method == "RH_BC"
        assert rh.benjamini_hochberg().method == "RH_BH"

    def test_bh_no_stricter_than_bc(self, paired_data):
        run = HoldoutRun(paired_data.dataset, min_sup=40,
                         boundary=paired_data.half_boundary)
        assert run.benjamini_hochberg().n_significant >= \
            run.bonferroni().n_significant

    def test_detects_strong_planted_rule(self, paired_data):
        result = holdout(paired_data.dataset, min_sup=40, control="fwer",
                         boundary=paired_data.half_boundary)
        planted = paired_data.embedded_rules[0]
        # Compare on the full dataset via item ids.
        ds = paired_data.dataset
        target = ds.pattern_tidset(planted.item_ids)
        hits = [r for r in result.significant
                if ds.pattern_tidset(r.items) & target == target
                or ds.pattern_tidset(r.items) == target]
        assert hits

    def test_one_shot_controls(self, paired_data):
        fwer = holdout(paired_data.dataset, min_sup=40, control="fwer",
                       boundary=paired_data.half_boundary)
        fdr = holdout(paired_data.dataset, min_sup=40, control="fdr",
                      boundary=paired_data.half_boundary)
        assert fwer.control == "fwer"
        assert fdr.control == "fdr"

    def test_unknown_control(self, paired_data):
        with pytest.raises(CorrectionError):
            holdout(paired_data.dataset, min_sup=40, control="fnord")

    def test_details_counts(self, paired_data):
        result = holdout(paired_data.dataset, min_sup=40, control="fwer",
                         boundary=paired_data.half_boundary)
        details = result.details
        assert details["exploratory_records"] == 300
        assert details["n_candidates"] == result.n_tests
