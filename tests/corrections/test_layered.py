"""Unit tests for layered critical values (Webb 2008 extension)."""

from __future__ import annotations

import pytest

from repro.corrections import bonferroni, layered_critical_values
from repro.data import GeneratorConfig, generate
from repro.errors import CorrectionError
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def ruleset():
    config = GeneratorConfig(n_records=300, n_attributes=10,
                             min_values=2, max_values=3, n_rules=0)
    ds = generate(config, seed=81).dataset
    return mine_class_rules(ds, min_sup=20)


class TestBudgets:
    def test_uniform_budget_sums_to_alpha(self, ruleset):
        result = layered_critical_values(ruleset, 0.05, budget="uniform")
        critical = result.details["critical_values"]
        by_length = {}
        for rule in ruleset.rules:
            by_length[rule.length] = by_length.get(rule.length, 0) + 1
        total = sum(critical[length] * count
                    for length, count in by_length.items())
        assert total == pytest.approx(0.05)

    def test_geometric_budget_sums_to_alpha(self, ruleset):
        result = layered_critical_values(ruleset, 0.05,
                                         budget="geometric")
        critical = result.details["critical_values"]
        by_length = {}
        for rule in ruleset.rules:
            by_length[rule.length] = by_length.get(rule.length, 0) + 1
        total = sum(critical[length] * count
                    for length, count in by_length.items())
        assert total == pytest.approx(0.05)

    def test_geometric_favors_short_rules(self, ruleset):
        result = layered_critical_values(ruleset, 0.05,
                                         budget="geometric")
        critical = result.details["critical_values"]
        lengths = sorted(critical)
        if len(lengths) >= 2:
            by_length = {}
            for rule in ruleset.rules:
                by_length[rule.length] = by_length.get(rule.length, 0) + 1
            # Per-layer *total* budget decreases with length.
            budgets = [critical[length] * by_length[length]
                       for length in lengths]
            assert budgets == sorted(budgets, reverse=True)

    def test_unknown_budget(self, ruleset):
        with pytest.raises(CorrectionError):
            layered_critical_values(ruleset, 0.05, budget="harmonic")


class TestBehaviour:
    def test_short_rules_easier_than_bonferroni(self, ruleset):
        """Layered critical values for the shortest layer exceed the
        flat Bonferroni threshold whenever that layer is small."""
        layered = layered_critical_values(ruleset, 0.05)
        flat = bonferroni(ruleset, 0.05)
        critical = layered.details["critical_values"]
        shortest = min(critical)
        count_shortest = sum(1 for r in ruleset.rules
                             if r.length == shortest)
        n_layers = len(critical)
        if count_shortest * n_layers < ruleset.n_tests:
            assert critical[shortest] > flat.threshold

    def test_selected_rules_respect_their_layer(self, ruleset):
        result = layered_critical_values(ruleset, 0.05)
        critical = result.details["critical_values"]
        for rule in result.significant:
            assert rule.p_value <= critical[rule.length]

    def test_fwer_still_controlled_on_nulls(self):
        false_hits = 0
        trials = 25
        for seed in range(trials):
            config = GeneratorConfig(n_records=150, n_attributes=6,
                                     min_values=2, max_values=2,
                                     n_rules=0)
            ds = generate(config, seed=2000 + seed).dataset
            rs = mine_class_rules(ds, min_sup=15)
            if layered_critical_values(rs, 0.05).n_significant:
                false_hits += 1
        assert false_hits / trials <= 0.16

    def test_empty_ruleset(self):
        from repro.data import GeneratorConfig, generate
        config = GeneratorConfig(n_records=50, n_attributes=4,
                                 min_values=2, max_values=2, n_rules=0)
        ds = generate(config, seed=3).dataset
        rs = mine_class_rules(ds, min_sup=50)
        result = layered_critical_values(rs, 0.05)
        assert result.n_significant == 0
