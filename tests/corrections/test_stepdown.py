"""Unit tests for Westfall–Young step-down minP permutation control."""

from __future__ import annotations

import pytest

from repro.corrections import (
    PermutationEngine,
    permutation_fwer_stepdown,
)
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def embedded_ruleset():
    from repro.data import GeneratorConfig, generate
    config = GeneratorConfig(
        n_records=400, n_attributes=12, min_values=2, max_values=4,
        n_rules=1, min_length=2, max_length=3,
        min_coverage=80, max_coverage=80,
        min_confidence=0.9, max_confidence=0.9,
    )
    ds = generate(config, seed=11).dataset
    return mine_class_rules(ds, min_sup=30)


@pytest.fixture(scope="module")
def engine(embedded_ruleset):
    return PermutationEngine(embedded_ruleset, n_permutations=120, seed=3)


class TestStepdownAdjustedPValues:
    def test_length_and_range(self, engine):
        adjusted = engine.stepdown_adjusted_p_values()
        assert len(adjusted) == engine.n_tests
        assert all(0.0 <= p <= 1.0 for p in adjusted)

    def test_monotone_with_observed_ranking(self, engine):
        """Sorting rules by observed p must sort adjusted p too."""
        adjusted = engine.stepdown_adjusted_p_values()
        observed = engine.ruleset.p_values()
        paired = sorted(zip(observed, adjusted))
        adjusted_in_rank_order = [a for _o, a in paired]
        assert adjusted_in_rank_order == sorted(adjusted_in_rank_order)

    def test_adjusted_at_least_single_step_rate(self, engine):
        """Rank 1's adjusted value equals the single-step min-p rate."""
        adjusted = engine.stepdown_adjusted_p_values()
        observed = engine.ruleset.p_values()
        best = min(range(len(observed)), key=lambda i: observed[i])
        min_p = engine.min_p_distribution()
        single_step_rate = (min_p <= observed[best]).mean()
        assert adjusted[best] == pytest.approx(single_step_rate)


class TestStepdownControl:
    def test_rejects_superset_of_single_step(self, engine):
        single = engine.fwer(0.05)
        stepdown = engine.fwer_stepdown(0.05)
        assert stepdown.n_significant >= single.n_significant
        assert {id(r) for r in single.significant} \
            <= {id(r) for r in stepdown.significant}

    def test_detects_planted_signal(self, engine):
        result = engine.fwer_stepdown(0.05)
        assert result.n_significant >= 1

    def test_threshold_consistent_with_selection(self, engine):
        result = engine.fwer_stepdown(0.05)
        assert all(r.p_value <= result.threshold
                   for r in result.significant)
        assert result.details["n_rejected"] == result.n_significant

    def test_method_and_control_fields(self, engine):
        result = engine.fwer_stepdown(0.05)
        assert result.method == "Perm_FWER_SD"
        assert result.control == "fwer"

    def test_monotone_in_alpha(self, engine):
        loose = engine.fwer_stepdown(0.10)
        tight = engine.fwer_stepdown(0.01)
        assert tight.n_significant <= loose.n_significant

    def test_one_shot_wrapper(self, embedded_ruleset):
        result = permutation_fwer_stepdown(
            embedded_ruleset, 0.05, n_permutations=60, seed=9)
        assert result.method == "Perm_FWER_SD"
        assert result.n_tests == embedded_ruleset.n_tests


class TestStepdownOnNullData:
    def test_near_zero_rejections_on_random_data(self):
        from repro.data import GeneratorConfig, generate
        config = GeneratorConfig(n_records=200, n_attributes=8,
                                 min_values=2, max_values=3, n_rules=0)
        ds = generate(config, seed=21).dataset
        ruleset = mine_class_rules(ds, min_sup=20)
        engine = PermutationEngine(ruleset, n_permutations=80, seed=4)
        result = engine.fwer_stepdown(0.05)
        # On pure noise the step-down procedure should reject (almost)
        # nothing — a strict FWER guarantee at 5%.
        assert result.n_significant <= 1
