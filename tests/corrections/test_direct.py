"""Unit tests for the direct adjustment approach (Section 4.1)."""

from __future__ import annotations

import pytest

from repro.corrections import (
    benjamini_hochberg,
    bh_step_up,
    bonferroni,
    no_correction,
)
from repro.errors import CorrectionError
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def random_ruleset():
    from repro.data import GeneratorConfig, generate
    config = GeneratorConfig(n_records=300, n_attributes=10,
                             min_values=2, max_values=3, n_rules=0)
    ds = generate(config, seed=55).dataset
    return mine_class_rules(ds, min_sup=20)


class TestNoCorrection:
    def test_threshold_is_alpha(self, random_ruleset):
        result = no_correction(random_ruleset, 0.05)
        assert result.threshold == 0.05
        assert all(r.p_value <= 0.05 for r in result.significant)

    def test_counts_match_selection(self, random_ruleset):
        result = no_correction(random_ruleset, 0.05)
        expected = sum(1 for p in random_ruleset.p_values() if p <= 0.05)
        assert result.n_significant == expected

    def test_alpha_validation(self, random_ruleset):
        with pytest.raises(CorrectionError):
            no_correction(random_ruleset, 0.0)
        with pytest.raises(CorrectionError):
            no_correction(random_ruleset, 1.0)

    def test_summary_runs(self, random_ruleset):
        assert "No correction" in no_correction(random_ruleset).summary()


class TestBonferroni:
    def test_threshold_divides_by_n_tests(self, random_ruleset):
        result = bonferroni(random_ruleset, 0.05)
        assert result.threshold == pytest.approx(
            0.05 / random_ruleset.n_tests)

    def test_stricter_than_no_correction(self, random_ruleset):
        plain = no_correction(random_ruleset, 0.05)
        corrected = bonferroni(random_ruleset, 0.05)
        assert corrected.n_significant <= plain.n_significant

    def test_control_field(self, random_ruleset):
        assert bonferroni(random_ruleset).control == "fwer"

    def test_monotone_in_alpha(self, random_ruleset):
        strict = bonferroni(random_ruleset, 0.01)
        loose = bonferroni(random_ruleset, 0.10)
        assert strict.n_significant <= loose.n_significant


class TestBenjaminiHochberg:
    def test_between_bonferroni_and_none(self, random_ruleset):
        bc = bonferroni(random_ruleset, 0.05)
        bh = benjamini_hochberg(random_ruleset, 0.05)
        plain = no_correction(random_ruleset, 0.05)
        assert bc.n_significant <= bh.n_significant <= plain.n_significant

    def test_control_field(self, random_ruleset):
        assert benjamini_hochberg(random_ruleset).control == "fdr"

    def test_selected_rules_below_threshold(self, random_ruleset):
        result = benjamini_hochberg(random_ruleset, 0.05)
        for rule in result.significant:
            assert rule.p_value <= result.threshold


class TestBhStepUp:
    def test_textbook_example(self):
        # Classic BH worked example: m=10, alpha=0.05.
        p = [0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205,
             0.212, 0.216]
        threshold = bh_step_up(p, 0.05)
        # k=2 is the largest i with p_i <= i*0.05/10 (0.041 > 0.015,
        # 0.039 > 0.015 ... check: i=3 bound 0.015 < 0.039 fails).
        assert threshold == pytest.approx(0.008)

    def test_accepts_everything_when_uniform_small(self):
        p = [0.0001] * 5
        assert bh_step_up(p, 0.05) == pytest.approx(0.0001)

    def test_rejects_everything_when_large(self):
        assert bh_step_up([0.9, 0.95, 0.99], 0.05) == 0.0

    def test_step_up_not_step_down(self):
        # p_2 fails its bound but p_3 passes: step-up accepts all three.
        p = [0.01, 0.04, 0.045]
        threshold = bh_step_up(p, 0.05)
        assert threshold == pytest.approx(0.045)

    def test_external_n_tests(self):
        assert bh_step_up([0.001], 0.05, n_tests=1000) == \
            pytest.approx(0.001) if 0.001 <= 0.05 / 1000 else True
        # 0.001 > 0.05/1000 = 5e-5, so nothing is accepted.
        assert bh_step_up([0.001], 0.05, n_tests=1000) == 0.0

    def test_more_pvalues_than_tests_rejected(self):
        with pytest.raises(CorrectionError):
            bh_step_up([0.1, 0.2], 0.05, n_tests=1)

    def test_empty_pvalues(self):
        assert bh_step_up([], 0.05) == 0.0

    def test_bad_alpha(self):
        with pytest.raises(CorrectionError):
            bh_step_up([0.1], -0.5)


class TestFdrIsControlledEmpirically:
    def test_bh_on_uniform_nulls(self):
        """On pure-null p-values BH should rarely reject anything."""
        import random
        rng = random.Random(0)
        rejections = 0
        trials = 200
        for _ in range(trials):
            p = sorted(rng.random() for _ in range(50))
            if bh_step_up(p, 0.05) > 0.0:
                rejections += 1
        # Under independence the rejection (= any FP) probability is
        # about alpha; allow generous slack for dependence-free noise.
        assert rejections / trials < 0.15
