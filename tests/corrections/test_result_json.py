"""CorrectionResult JSON round-trips and CSV byte-identity.

The service's artifact cache persists results as JSON and re-renders
CSVs from the deserialized rules; these tests pin the property that
makes that safe: the round trip is lossless down to the float bits.
"""

from __future__ import annotations

import json

import pytest

from repro.corrections.base import RESULT_SCHEMA_VERSION, \
    CorrectionResult
from repro.core.pipeline import Pipeline
from repro.errors import CorrectionError
from repro.evaluation.export import rules_to_csv
from repro.mining.rules import ClassRule

from ..conftest import small_random_dataset  # noqa: F401


@pytest.fixture
def outcome(small_random_dataset):  # noqa: F811
    pipeline = Pipeline(min_sup=12, corrections=("bh", "bonferroni"),
                        seed=0)
    return pipeline.run(small_random_dataset)


def test_round_trip_lossless(outcome):
    result = outcome.results["bh"]
    document = json.loads(json.dumps(result.to_json()))
    rebuilt = CorrectionResult.from_json(document)
    assert rebuilt.method == result.method
    assert rebuilt.control == result.control
    assert rebuilt.alpha == result.alpha
    assert rebuilt.threshold == result.threshold
    assert rebuilt.n_tests == result.n_tests
    assert len(rebuilt.significant) == len(result.significant)
    for original, restored in zip(result.significant,
                                  rebuilt.significant):
        assert restored == original  # dataclass eq: every field exact


def test_csv_byte_identity_after_round_trip(outcome,
                                            small_random_dataset,  # noqa: F811
                                            tmp_path):
    result = outcome.results["bh"]
    rebuilt = CorrectionResult.from_json(
        json.loads(json.dumps(result.to_json())))
    original_path = tmp_path / "original.csv"
    rebuilt_path = tmp_path / "rebuilt.csv"
    rules_to_csv(result.significant, small_random_dataset,
                 original_path)
    rules_to_csv(rebuilt.significant, small_random_dataset,
                 rebuilt_path)
    assert original_path.read_bytes() == rebuilt_path.read_bytes()


def test_schema_version_enforced(outcome):
    document = outcome.results["bh"].to_json()
    assert document["schema_version"] == RESULT_SCHEMA_VERSION
    document["schema_version"] = 99
    with pytest.raises(CorrectionError, match="schema_version"):
        CorrectionResult.from_json(document)


def test_non_json_details_dropped(outcome):
    result = outcome.results["bonferroni"]
    result.details["diagnostic_handle"] = object()
    result.details["kept"] = 1.5
    document = result.to_json()
    assert "diagnostic_handle" not in document["details"]
    assert document["details"]["kept"] == 1.5


def test_class_rule_floats_exact():
    rule = ClassRule(pattern_id=3, items=frozenset((2, 5)),
                     class_index=1, coverage=17, support=11,
                     confidence=11 / 17, p_value=0.07230089175)
    restored = ClassRule.from_json(
        json.loads(json.dumps(rule.to_json())))
    assert restored == rule
    assert restored.confidence.hex() == rule.confidence.hex()
