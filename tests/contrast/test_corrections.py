"""Tests for the correction variants of contrast-set mining."""

from __future__ import annotations

import random

import pytest

from repro.contrast import find_contrast_sets
from repro.data import Dataset, GeneratorConfig, generate
from repro.errors import MiningError


@pytest.fixture
def contrasting_dataset():
    rng = random.Random(3)
    records = []
    labels = []
    for g, label in ((0, "treated"), (1, "control")):
        for __ in range(80):
            a = "a1" if (rng.random() < (0.75 if g == 0 else 0.25)) \
                else "a0"
            b = f"b{rng.randrange(3)}"
            c = f"c{rng.randrange(2)}"
            records.append([a, b, c])
            labels.append(label)
    return Dataset.from_records(records, labels, ["A", "B", "C"],
                                name="corrections")


class TestCorrectionVariants:
    def test_unknown_correction_rejected(self, contrasting_dataset):
        with pytest.raises(MiningError, match="correction"):
            find_contrast_sets(contrasting_dataset, correction="bh")

    def test_none_is_most_permissive(self, contrasting_dataset):
        naive = find_contrast_sets(contrasting_dataset,
                                   min_deviation=0.05,
                                   correction="none")
        stucco = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.05,
                                    correction="stucco")
        bonferroni = find_contrast_sets(contrasting_dataset,
                                        min_deviation=0.05,
                                        correction="bonferroni")
        assert naive.n_found >= stucco.n_found
        assert naive.n_found >= bonferroni.n_found

    def test_none_uses_flat_alpha(self, contrasting_dataset):
        naive = find_contrast_sets(contrasting_dataset,
                                   correction="none", alpha=0.05)
        assert all(level_alpha == 0.05
                   for level_alpha in naive.alpha_per_level.values())

    def test_bonferroni_uses_total_count(self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    correction="bonferroni",
                                    alpha=0.05)
        total = sum(result.candidates_per_level.values())
        assert all(level_alpha == pytest.approx(0.05 / total)
                   for level_alpha in result.alpha_per_level.values())

    def test_random_data_naive_vs_stucco(self):
        """The headline contrast: naive testing floods on random data,
        the layered correction stays quiet."""
        config = GeneratorConfig(n_records=400, n_attributes=12,
                                 n_rules=0)
        naive_total = 0
        stucco_total = 0
        for seed in range(3):
            data = generate(config, seed=seed + 70)
            naive_total += find_contrast_sets(
                data.dataset, min_deviation=0.02,
                correction="none").n_found
            stucco_total += find_contrast_sets(
                data.dataset, min_deviation=0.02,
                correction="stucco").n_found
        assert stucco_total <= 3
        assert naive_total > stucco_total

    def test_strong_contrast_survives_all_corrections(
            self, contrasting_dataset):
        for correction in ("none", "stucco", "bonferroni"):
            result = find_contrast_sets(contrasting_dataset,
                                        min_deviation=0.3,
                                        correction=correction)
            attributes = {
                contrasting_dataset.catalog.item(item).attribute
                for contrast in result.contrast_sets
                for item in contrast.items}
            assert "A" in attributes
