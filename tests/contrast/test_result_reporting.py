"""Reporting and bookkeeping details of ContrastSetResult."""

from __future__ import annotations

import random

import pytest

from repro.contrast import ContrastSet, ContrastSetResult, find_contrast_sets
from repro.data import Dataset


@pytest.fixture
def dataset():
    rng = random.Random(8)
    records = []
    labels = []
    for g in range(2):
        for __ in range(40):
            rate = 0.85 if g == 0 else 0.15
            a = "t" if rng.random() < rate else "f"
            records.append([a, f"n{rng.randrange(2)}"])
            labels.append(f"g{g}")
    return Dataset.from_records(records, labels, ["A", "B"],
                                name="reporting")


class TestSortedByDeviation:
    def test_descending_deviation(self, dataset):
        result = find_contrast_sets(dataset, min_deviation=0.05)
        ordered = result.sorted_by_deviation()
        for earlier, later in zip(ordered, ordered[1:]):
            assert earlier.deviation >= later.deviation

    def test_ties_break_by_p_value(self):
        a = ContrastSet(frozenset({0}), 10, (5, 5), (0.5, 0.1), 0.4,
                        8.0, 0.001)
        b = ContrastSet(frozenset({1}), 10, (5, 5), (0.5, 0.1), 0.4,
                        9.0, 0.0001)
        result = ContrastSetResult(
            dataset=None, min_deviation=0.1, alpha=0.05,
            contrast_sets=[a, b])
        assert result.sorted_by_deviation() == [b, a]


class TestDescribeTruncation:
    def test_limit_truncates_with_more_line(self, dataset):
        result = find_contrast_sets(dataset, min_deviation=0.02,
                                    correction="none")
        if result.n_found > 2:
            text = result.describe(limit=2)
            assert "more" in text

    def test_no_truncation_when_all_fit(self, dataset):
        result = find_contrast_sets(dataset, min_deviation=0.6)
        text = result.describe(limit=100)
        assert "more" not in text.splitlines()[-1] or \
            result.n_found <= 100


class TestContrastSetLevel:
    def test_level_is_item_count(self):
        contrast = ContrastSet(frozenset({3, 7, 9}), 5, (3, 2),
                               (0.3, 0.2), 0.1, 1.0, 0.5)
        assert contrast.level == 3


class TestAlphaAudit:
    def test_every_level_has_an_alpha(self, dataset):
        result = find_contrast_sets(dataset, min_deviation=0.05,
                                    max_length=3)
        assert set(result.alpha_per_level) == \
            set(result.candidates_per_level)

    def test_alphas_are_probabilities(self, dataset):
        result = find_contrast_sets(dataset, min_deviation=0.05)
        for value in result.alpha_per_level.values():
            assert 0.0 < value < 1.0
