"""Unit tests for STUCCO contrast-set mining."""

from __future__ import annotations

import random

import pytest

from repro.contrast import (
    find_contrast_sets,
    group_contingency,
    stucco_alpha_levels,
)
from repro.data import Dataset, GeneratorConfig, generate
from repro.errors import MiningError, StatsError


@pytest.fixture
def contrasting_dataset():
    """Attribute A separates the groups hard; B is pure noise."""
    rng = random.Random(0)
    records = []
    labels = []
    for g, label in ((0, "phd"), (1, "hs")):
        for __ in range(60):
            a = "a1" if (rng.random() < (0.8 if g == 0 else 0.2)) \
                else "a0"
            b = f"b{rng.randrange(2)}"
            records.append([a, b])
            labels.append(label)
    return Dataset.from_records(records, labels, ["A", "B"],
                                name="contrasting")


class TestAlphaLevels:
    def test_layered_halving(self):
        levels = stucco_alpha_levels(0.05, {1: 10, 2: 10})
        assert levels[1] == pytest.approx(0.05 / (2 * 10))
        assert levels[2] == pytest.approx(0.05 / (4 * 10))

    def test_never_loosens_with_depth(self):
        levels = stucco_alpha_levels(0.05, {1: 1000, 2: 1, 3: 1})
        assert levels[2] <= levels[1]
        assert levels[3] <= levels[2]

    def test_empty_level_counts_as_one(self):
        levels = stucco_alpha_levels(0.05, {1: 0})
        assert levels[1] == pytest.approx(0.05 / 2)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(StatsError):
            stucco_alpha_levels(0.0, {1: 5})
        with pytest.raises(StatsError):
            stucco_alpha_levels(1.0, {1: 5})


class TestGroupContingency:
    def test_counts_sum_to_group_sizes(self, contrasting_dataset):
        tidset = contrasting_dataset.item_tidsets[0]
        containing, missing = group_contingency(
            tidset, contrasting_dataset)
        for g in range(contrasting_dataset.n_classes):
            assert containing[g] + missing[g] == \
                contrasting_dataset.class_support(g)

    def test_empty_pattern_tidset(self, contrasting_dataset):
        containing, missing = group_contingency(
            0, contrasting_dataset)
        assert containing == [0, 0]
        assert sum(missing) == contrasting_dataset.n_records


class TestFindContrastSets:
    def test_finds_the_separating_attribute(self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.2)
        found_items = set()
        for contrast in result.contrast_sets:
            for item in contrast.items:
                found_items.add(
                    contrasting_dataset.catalog.item(item).attribute)
        assert "A" in found_items

    def test_noise_attribute_alone_never_survives(
            self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.2)
        for contrast in result.contrast_sets:
            attributes = {
                contrasting_dataset.catalog.item(i).attribute
                for i in contrast.items}
            assert attributes != {"B"}

    def test_deviation_matches_proportions(self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.2)
        for contrast in result.contrast_sets:
            expected = (max(contrast.group_proportions)
                        - min(contrast.group_proportions))
            assert contrast.deviation == pytest.approx(expected)

    def test_survivors_meet_both_filters(self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.25)
        for contrast in result.contrast_sets:
            assert contrast.deviation >= 0.25
            assert contrast.p_value <= \
                result.alpha_per_level[contrast.level]

    def test_rejection_bookkeeping_adds_up(self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.2)
        total_candidates = sum(result.candidates_per_level.values())
        assert (result.n_found + result.rejected_large
                + result.rejected_significant) == total_candidates

    def test_higher_deviation_threshold_finds_fewer(
            self, contrasting_dataset):
        loose = find_contrast_sets(contrasting_dataset,
                                   min_deviation=0.1)
        strict = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.5)
        assert strict.n_found <= loose.n_found

    def test_random_data_yields_nothing(self):
        config = GeneratorConfig(n_records=300, n_attributes=10,
                                 n_rules=0)
        data = generate(config, seed=5)
        result = find_contrast_sets(data.dataset, min_deviation=0.05)
        # The layered Bonferroni keeps false alarms near zero.
        assert result.n_found <= 1

    def test_max_length_caps_levels(self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.1, max_length=1)
        assert max(result.candidates_per_level) == 1
        assert all(c.level == 1 for c in result.contrast_sets)

    def test_min_sup_prunes_candidates(self, contrasting_dataset):
        low = find_contrast_sets(contrasting_dataset, min_sup=1)
        high = find_contrast_sets(contrasting_dataset, min_sup=30)
        assert (sum(high.candidates_per_level.values())
                <= sum(low.candidates_per_level.values()))

    def test_parameter_validation(self, contrasting_dataset):
        with pytest.raises(MiningError):
            find_contrast_sets(contrasting_dataset, min_deviation=1.5)
        with pytest.raises(MiningError):
            find_contrast_sets(contrasting_dataset, min_sup=0)


class TestMultiGroup:
    def test_three_groups(self):
        rng = random.Random(1)
        records = []
        labels = []
        rates = {"g0": 0.9, "g1": 0.5, "g2": 0.1}
        for label, rate in rates.items():
            for __ in range(50):
                a = "yes" if rng.random() < rate else "no"
                records.append([a])
                labels.append(label)
        dataset = Dataset.from_records(records, labels, ["A"],
                                       name="three-groups")
        result = find_contrast_sets(dataset, min_deviation=0.3)
        assert result.n_found >= 1
        top = result.sorted_by_deviation()[0]
        assert top.deviation > 0.5
        assert len(top.group_proportions) == 3


class TestDescribe:
    def test_result_describe(self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.2)
        text = result.describe()
        assert "contrast sets" in text
        assert "failed deviation" in text

    def test_contrast_describe_shows_groups(self, contrasting_dataset):
        result = find_contrast_sets(contrasting_dataset,
                                    min_deviation=0.2)
        if result.contrast_sets:
            text = result.contrast_sets[0].describe(
                contrasting_dataset)
            assert "phd=" in text and "hs=" in text
