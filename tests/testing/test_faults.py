"""Unit tests for the deterministic fault-injection harness."""

from __future__ import annotations

import time

import pytest

from repro.errors import ReproError
from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.disarm()
    yield
    faults.disarm()


class TestParsePlan:
    def test_single_point(self):
        plan = faults.parse_plan("worker-kill:0.25", seed=7)
        spec = plan["worker-kill"]
        assert spec.probability == 0.25
        assert spec.max_fires is None
        assert spec.seed == 7

    def test_fire_cap(self):
        plan = faults.parse_plan("sqlite-busy:1.0:3", seed=0)
        assert plan["sqlite-busy"].max_fires == 3

    def test_multiple_points(self):
        plan = faults.parse_plan(
            "worker-kill:0.2,sqlite-busy:0.5:2", seed=0)
        assert set(plan) == {"worker-kill", "sqlite-busy"}

    def test_blank_chunks_skipped(self):
        assert faults.parse_plan(" , worker-kill:0.1 ,", seed=0)

    @pytest.mark.parametrize("text", [
        "nonsense:0.5",            # unknown point
        "worker-kill",             # missing probability
        "worker-kill:high",        # non-numeric probability
        "worker-kill:1.5",         # probability out of range
        "worker-kill:0.5:-1",      # negative cap
        "worker-kill:0.5:1:9",     # too many fields
        "worker-kill:0.1,worker-kill:0.2",  # armed twice
    ])
    def test_rejects(self, text):
        with pytest.raises(ReproError):
            faults.parse_plan(text, seed=0)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = faults.parse_plan("sqlite-busy:0.3", seed=42)["sqlite-busy"]
        b = faults.parse_plan("sqlite-busy:0.3", seed=42)["sqlite-busy"]
        assert [a.should_fire() for _ in range(200)] \
            == [b.should_fire() for _ in range(200)]

    def test_different_seeds_differ(self):
        a = faults.parse_plan("sqlite-busy:0.5", seed=1)["sqlite-busy"]
        b = faults.parse_plan("sqlite-busy:0.5", seed=2)["sqlite-busy"]
        assert [a.should_fire() for _ in range(64)] \
            != [b.should_fire() for _ in range(64)]

    def test_rate_tracks_probability(self):
        spec = faults.parse_plan("sqlite-busy:0.2", seed=0)["sqlite-busy"]
        fires = sum(spec.should_fire() for _ in range(2000))
        assert 300 < fires < 500  # 0.2 ± generous tolerance

    def test_zero_probability_never_fires(self):
        spec = faults.parse_plan("worker-kill:0.0", seed=0)["worker-kill"]
        assert not any(spec.should_fire() for _ in range(100))

    def test_fire_cap_enforced(self):
        spec = faults.parse_plan("sqlite-busy:1.0:2", seed=0)["sqlite-busy"]
        assert sum(spec.should_fire() for _ in range(50)) == 2
        assert spec.stats() == {"checks": 50, "fires": 2}


class TestArming:
    def test_disarmed_is_inert(self):
        assert not faults.should_fire("worker-kill")
        assert faults.plan_description() == ""
        assert faults.fault_stats() == {}

    def test_arm_and_fire(self):
        faults.arm("sqlite-busy:1.0")
        assert faults.should_fire("sqlite-busy")
        assert not faults.should_fire("worker-kill")  # not armed

    def test_disarm(self):
        faults.arm("sqlite-busy:1.0")
        faults.disarm()
        assert not faults.should_fire("sqlite-busy")

    def test_plan_description_round_trips(self):
        faults.arm("worker-kill:0.2,sqlite-busy:1:3")
        text = faults.plan_description()
        assert faults.parse_plan(text).keys() == {
            "worker-kill", "sqlite-busy"}

    def test_suspended_restores(self):
        faults.arm("sqlite-busy:1.0")
        with faults.suspended():
            assert not faults.should_fire("sqlite-busy")
        assert faults.should_fire("sqlite-busy")

    def test_suspended_restores_after_error(self):
        faults.arm("sqlite-busy:1.0")
        with pytest.raises(RuntimeError):
            with faults.suspended():
                raise RuntimeError("boom")
        assert faults.should_fire("sqlite-busy")

    def test_stats_visible_through_module_api(self):
        faults.arm("sqlite-busy:1.0:1")
        faults.should_fire("sqlite-busy")
        faults.should_fire("sqlite-busy")
        stats = faults.fault_stats()
        assert stats["sqlite-busy"] == {"checks": 2, "fires": 1}


class TestHelpers:
    def test_sleep_if_fires(self):
        faults.arm("sqlite-slow-write:1.0")
        started = time.monotonic()
        assert faults.sleep_if("sqlite-slow-write", duration=0.01)
        assert time.monotonic() - started >= 0.01

    def test_sleep_if_disarmed_returns_fast(self):
        assert not faults.sleep_if("sqlite-slow-write", duration=10.0)

    def test_hang_seconds_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS_HANG", "1.5")
        assert faults.hang_seconds() == 1.5
        monkeypatch.setenv("REPRO_FAULTS_HANG", "garbage")
        assert faults.hang_seconds() == 30.0
        monkeypatch.delenv("REPRO_FAULTS_HANG")
        assert faults.hang_seconds() == 30.0

    def test_counters_shared_with_forked_children(self):
        # The check counter must be process-shared so forked workers
        # consume draw indices from the same sequence as the parent.
        import multiprocessing

        faults.arm("sqlite-busy:1.0:5", seed=0)
        ctx = multiprocessing.get_context("fork")

        def child() -> None:
            faults.should_fire("sqlite-busy")

        processes = [ctx.Process(target=child) for _ in range(3)]
        for proc in processes:
            proc.start()
        for proc in processes:
            proc.join()
        assert faults.fault_stats()["sqlite-busy"]["checks"] == 3
