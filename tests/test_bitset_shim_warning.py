"""The bitset shim's import-time quarantine warning.

The warning fires in the *importing module's* process the first time
``repro.bitset`` executes, so each scenario runs in a fresh
interpreter. Files under ``tests/`` (like this one) are sanctioned,
mirroring the ``bitset-quarantine`` lint rule's whitelist.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[1] / "src")

PROBE = """\
import warnings
with warnings.catch_warnings(record=True) as caught:
    warnings.simplefilter("always")
    import repro.bitset
hits = [w for w in caught
        if issubclass(w.category, DeprecationWarning)
        and "interop shim" in str(w.message)]
print("WARNED" if hits else "SILENT")
"""


def _probe(script_path: Path) -> str:
    script_path.write_text(PROBE)
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run([sys.executable, str(script_path)],
                          capture_output=True, text=True, env=env,
                          check=True)
    return proc.stdout.strip()


def test_unsanctioned_import_warns(tmp_path):
    assert _probe(tmp_path / "app.py") == "WARNED"


def test_tests_directory_sanctioned(tmp_path):
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir()
    assert _probe(tests_dir / "test_probe.py") == "SILENT"


def test_package_import_does_not_preload_shim():
    # The warning only works if `import repro` stays lazy about the
    # shim; a module-level import anywhere in the package would burn
    # the one-shot warning under a sanctioned frame.
    code = ("import sys, repro\n"
            "print('LOADED' if 'repro.bitset' in sys.modules "
            "else 'LAZY')\n")
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, env=env,
                          check=True)
    assert proc.stdout.strip() == "LAZY"


def test_in_suite_import_is_silent(recwarn):
    # Direct import from a tests/ file: sanctioned, no warning.
    import importlib

    import repro.bitset
    importlib.reload(repro.bitset)
    assert not [w for w in recwarn.list
                if issubclass(w.category, DeprecationWarning)
                and "interop shim" in str(w.message)]
