"""Edge-case tests for ScoredPattern and the scoring path."""

from __future__ import annotations

import pytest

from repro import bitset as bs
from repro.frequency import ScoredPattern, score_patterns
from repro.frequency.nullmodel import NullModel


class TestScoredPattern:
    def test_lift_normal(self):
        pattern = ScoredPattern(frozenset({1, 2}), support=50,
                                expected_support=25.0, p_value=1e-6)
        assert pattern.lift == pytest.approx(2.0)

    def test_lift_zero_expected_with_support(self):
        pattern = ScoredPattern(frozenset({1, 2}), support=3,
                                expected_support=0.0, p_value=0.0)
        assert pattern.lift == float("inf")

    def test_lift_zero_expected_no_support(self):
        pattern = ScoredPattern(frozenset({1, 2}), support=0,
                                expected_support=0.0, p_value=1.0)
        assert pattern.lift == 1.0

    def test_length(self):
        pattern = ScoredPattern(frozenset({1, 2, 5}), support=1,
                                expected_support=1.0, p_value=0.5)
        assert pattern.length == 3

    def test_frozen(self):
        pattern = ScoredPattern(frozenset({1}), support=1,
                                expected_support=1.0, p_value=0.5)
        with pytest.raises(AttributeError):
            pattern.support = 2


class TestScorePatternsEdges:
    def test_no_frequent_patterns(self):
        # Two items that never co-occur at min_sup 5.
        tidsets = [bs.bitset_from_indices([0]),
                   bs.bitset_from_indices([1])]
        assert score_patterns(tidsets, 4, min_sup=5) == []

    def test_max_length_respected(self):
        full = bs.universe(10)
        tidsets = [full, full, full, full]
        scored = score_patterns(tidsets, 10, min_sup=2, max_length=2)
        assert all(s.length == 2 for s in scored)

    def test_explicit_null_model_reused(self):
        full = bs.universe(8)
        half = bs.bitset_from_indices([0, 1, 2, 3])
        tidsets = [full, half, half]
        null = NullModel(tidsets, 8)
        scored = score_patterns(tidsets, 8, min_sup=2, null=null)
        by_items = {s.items: s for s in scored}
        pair = by_items[frozenset({1, 2})]
        # items 1 and 2 are identical: support 4, null expects 2.
        assert pair.support == 4
        assert pair.expected_support == pytest.approx(2.0)
        assert pair.p_value < 0.2

    def test_full_frequency_items_are_uninformative(self):
        full = bs.universe(8)
        tidsets = [full, full]
        scored = score_patterns(tidsets, 8, min_sup=2)
        pair = scored[0]
        # Everything contains the pair; the null expects exactly that.
        assert pair.p_value == pytest.approx(1.0)
