"""Unit tests for the item-independence null model."""

from __future__ import annotations

import random

import pytest

from repro import bitset as bs
from repro.errors import StatsError
from repro.frequency import (
    NullModel,
    item_frequencies,
    pattern_null_probability,
)


@pytest.fixture
def tidsets():
    # 10 records; item 0 in 5, item 1 in 8, item 2 in 2, item 3 empty.
    return [
        bs.bitset_from_indices([0, 1, 2, 3, 4]),
        bs.bitset_from_indices([0, 1, 2, 3, 4, 5, 6, 7]),
        bs.bitset_from_indices([8, 9]),
        0,
    ]


class TestItemFrequencies:
    def test_observed_marginals(self, tidsets):
        assert item_frequencies(tidsets, 10) == [0.5, 0.8, 0.2, 0.0]

    def test_rejects_empty_dataset(self):
        with pytest.raises(StatsError):
            item_frequencies([], 0)


class TestPatternNullProbability:
    def test_product_of_marginals(self, tidsets):
        frequencies = item_frequencies(tidsets, 10)
        assert pattern_null_probability(frequencies, [0, 1]) == \
            pytest.approx(0.4)

    def test_empty_pattern_is_certain(self):
        assert pattern_null_probability([0.5], []) == 1.0

    def test_zero_frequency_item_kills_the_pattern(self, tidsets):
        frequencies = item_frequencies(tidsets, 10)
        assert pattern_null_probability(frequencies, [0, 3]) == 0.0


class TestNullModel:
    def test_expected_support(self, tidsets):
        model = NullModel(tidsets, 10)
        assert model.expected_support([0, 1]) == pytest.approx(4.0)

    def test_p_value_of_expected_support_is_moderate(self, tidsets):
        model = NullModel(tidsets, 10)
        assert model.p_value(4, [0, 1]) > 0.3

    def test_p_value_of_maximal_support_is_small(self, tidsets):
        model = NullModel(tidsets, 10)
        assert model.p_value(10, [0, 1]) < 1e-3

    def test_p_value_antitone_in_support(self, tidsets):
        model = NullModel(tidsets, 10)
        values = [model.p_value(s, [0, 1]) for s in range(11)]
        for a, b in zip(values, values[1:]):
            assert a >= b

    def test_n_items(self, tidsets):
        assert NullModel(tidsets, 10).n_items == 4


class TestSampling:
    def test_sample_shape(self, tidsets):
        model = NullModel(tidsets, 10)
        sampled = model.sample_tidsets(random.Random(0))
        assert len(sampled) == len(tidsets)
        limit = bs.universe(10)
        for bits in sampled:
            assert bits & ~limit == 0

    def test_zero_frequency_item_stays_empty(self, tidsets):
        model = NullModel(tidsets, 10)
        sampled = model.sample_tidsets(random.Random(1))
        assert sampled[3] == 0

    def test_full_frequency_item_stays_full(self):
        model = NullModel([bs.universe(6)], 6)
        sampled = model.sample_tidsets(random.Random(2))
        assert sampled[0] == bs.universe(6)

    def test_marginals_preserved_in_expectation(self, tidsets):
        model = NullModel(tidsets, 10)
        rng = random.Random(3)
        totals = [0] * len(tidsets)
        rounds = 400
        for __ in range(rounds):
            for i, bits in enumerate(model.sample_tidsets(rng)):
                totals[i] += bs.popcount(bits)
        for i, frequency in enumerate(model.frequencies):
            observed = totals[i] / (rounds * 10)
            assert observed == pytest.approx(frequency, abs=0.05)

    def test_samples_differ_across_draws(self, tidsets):
        model = NullModel(tidsets, 10)
        rng = random.Random(4)
        first = model.sample_tidsets(rng)
        second = model.sample_tidsets(rng)
        assert first != second
