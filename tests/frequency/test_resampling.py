"""Unit tests for the Megiddo-Srikant resampling calibration."""

from __future__ import annotations

import random

import pytest

from repro import bitset as bs
from repro.errors import StatsError
from repro.frequency import (
    CalibrationResult,
    calibrate_cutoff,
    score_patterns,
    significant_frequent_patterns,
)


def _random_tidsets(n_records, n_items, frequency, rng):
    tidsets = []
    for __ in range(n_items):
        bits = 0
        for r in range(n_records):
            if rng.random() < frequency:
                bits |= 1 << r
        tidsets.append(bits)
    return tidsets


def _planted_pair_tidsets(n_records, n_items, rng):
    """Random items plus a pair (0, 1) that co-occurs far above null."""
    tidsets = _random_tidsets(n_records, n_items, 0.4, rng)
    together = 0
    for r in range(0, n_records, 2):
        together |= 1 << r
    tidsets[0] = together
    tidsets[1] = together
    return tidsets


class TestScorePatterns:
    def test_excludes_singletons(self):
        rng = random.Random(0)
        tidsets = _random_tidsets(60, 5, 0.5, rng)
        scored = score_patterns(tidsets, 60, min_sup=5)
        assert all(s.length >= 2 for s in scored)

    def test_planted_pair_scores_extreme(self):
        rng = random.Random(1)
        tidsets = _planted_pair_tidsets(100, 6, rng)
        scored = score_patterns(tidsets, 100, min_sup=10)
        pair = next(s for s in scored if s.items == frozenset({0, 1}))
        # items 0 and 1 each have frequency 0.5, co-occur in all 50.
        assert pair.support == 50
        assert pair.expected_support == pytest.approx(25.0)
        assert pair.p_value < 1e-6
        assert pair.lift == pytest.approx(2.0)

    def test_independent_pairs_score_moderate(self):
        rng = random.Random(2)
        tidsets = _random_tidsets(100, 4, 0.6, rng)
        scored = score_patterns(tidsets, 100, min_sup=5)
        moderate = [s for s in scored if s.p_value > 0.01]
        # With no planted structure most pairs should be unsurprising.
        assert len(moderate) >= len(scored) // 2


class TestCalibrateCutoff:
    def test_threshold_respects_budget(self):
        rng = random.Random(3)
        tidsets = _random_tidsets(80, 6, 0.5, rng)
        calibration = calibrate_cutoff(tidsets, 80, min_sup=8,
                                       n_resamples=5, seed=0)
        assert calibration.expected_false_positives(
            calibration.threshold) <= calibration.false_positive_budget

    def test_threshold_is_maximal(self):
        rng = random.Random(4)
        tidsets = _random_tidsets(80, 6, 0.5, rng)
        calibration = calibrate_cutoff(tidsets, 80, min_sup=8,
                                       n_resamples=5, seed=1)
        if calibration.threshold < 1.0:
            bumped = min(1.0, calibration.threshold * (1.0 + 1e-6))
            pooled = sorted(p for ps in calibration.null_p_values
                            for p in ps)
            next_above = [p for p in pooled if p > calibration.threshold]
            if next_above:
                bumped = next_above[0]
                assert calibration.expected_false_positives(bumped) \
                    > calibration.false_positive_budget

    def test_stricter_budget_lowers_threshold(self):
        rng = random.Random(5)
        tidsets = _random_tidsets(80, 8, 0.5, rng)
        loose = calibrate_cutoff(tidsets, 80, min_sup=8,
                                 n_resamples=5,
                                 false_positive_budget=2.0, seed=2)
        strict = calibrate_cutoff(tidsets, 80, min_sup=8,
                                  n_resamples=5,
                                  false_positive_budget=0.2, seed=2)
        assert strict.threshold <= loose.threshold

    def test_deterministic_with_seed(self):
        rng = random.Random(6)
        tidsets = _random_tidsets(60, 5, 0.5, rng)
        first = calibrate_cutoff(tidsets, 60, min_sup=6,
                                 n_resamples=4, seed=9)
        second = calibrate_cutoff(tidsets, 60, min_sup=6,
                                  n_resamples=4, seed=9)
        assert first.threshold == second.threshold
        assert first.null_p_values == second.null_p_values

    def test_parameter_validation(self):
        with pytest.raises(StatsError):
            calibrate_cutoff([0], 4, min_sup=1, n_resamples=0)
        with pytest.raises(StatsError):
            calibrate_cutoff([0], 4, min_sup=1,
                             false_positive_budget=0.0)

    def test_mean_null_patterns_diagnostic(self):
        result = CalibrationResult(
            threshold=0.5, n_resamples=2, false_positive_budget=1.0,
            null_p_values=[[0.1, 0.2], [0.3, 0.4, 0.5, 0.6]])
        assert result.mean_null_patterns == pytest.approx(3.0)
        assert result.expected_false_positives(0.25) == \
            pytest.approx(1.0)


class TestSignificantFrequentPatterns:
    def test_planted_pair_survives(self):
        rng = random.Random(7)
        tidsets = _planted_pair_tidsets(120, 6, rng)
        significant = significant_frequent_patterns(
            tidsets, 120, min_sup=12, n_resamples=5, seed=3)
        assert frozenset({0, 1}) in {s.items for s in significant}

    def test_random_data_yields_few_survivors(self):
        rng = random.Random(8)
        tidsets = _random_tidsets(100, 8, 0.5, rng)
        significant = significant_frequent_patterns(
            tidsets, 100, min_sup=10, n_resamples=8, seed=4)
        scored = score_patterns(tidsets, 100, min_sup=10)
        # The calibration should remove nearly everything on null data.
        assert len(significant) <= max(2, len(scored) // 10)

    def test_sorted_by_p_value(self):
        rng = random.Random(9)
        tidsets = _planted_pair_tidsets(120, 6, rng)
        significant = significant_frequent_patterns(
            tidsets, 120, min_sup=12, n_resamples=5, seed=5)
        p_values = [s.p_value for s in significant]
        assert p_values == sorted(p_values)
