"""Unit tests for Kirsch et al.'s support-threshold search."""

from __future__ import annotations

import random

import pytest

from repro.errors import StatsError
from repro.frequency import find_support_threshold
from repro.frequency.kirsch import _candidate_grid


def _random_tidsets(n_records, n_items, frequency, rng):
    tidsets = []
    for __ in range(n_items):
        bits = 0
        for r in range(n_records):
            if rng.random() < frequency:
                bits |= 1 << r
        tidsets.append(bits)
    return tidsets


def _structured_tidsets(n_records, n_items, rng):
    """Half the items are near-copies of item 0 -> many heavy pairs."""
    tidsets = _random_tidsets(n_records, n_items, 0.4, rng)
    base = tidsets[0]
    for i in range(1, n_items // 2):
        noisy = base
        for r in range(n_records):
            if rng.random() < 0.05:
                noisy ^= 1 << r
        tidsets[i] = noisy
    return tidsets


class TestCandidateGrid:
    def test_single_candidate_when_range_collapses(self):
        assert _candidate_grid([5, 5], 5, 10) == [5]

    def test_grid_spans_the_range(self):
        grid = _candidate_grid([10, 50], 10, 5)
        assert grid[0] == 10
        assert grid[-1] == 50
        assert grid == sorted(grid)

    def test_grid_handles_empty_supports(self):
        assert _candidate_grid([], 7, 4) == [7]


class TestFindSupportThreshold:
    def test_structured_data_yields_a_threshold(self):
        rng = random.Random(0)
        tidsets = _structured_tidsets(150, 10, rng)
        result = find_support_threshold(
            tidsets, 150, k=2, min_sup=15, n_null_samples=10, seed=1)
        assert result.found
        assert result.observed_count > 0
        assert result.fdr_bound < 0.5

    def test_random_data_usually_yields_none(self):
        rng = random.Random(2)
        found = 0
        for trial in range(5):
            tidsets = _random_tidsets(100, 8, 0.5, rng)
            result = find_support_threshold(
                tidsets, 100, k=2, min_sup=10, n_null_samples=10,
                seed=trial)
            found += 1 if result.found else 0
        # Bonferroni over the grid at 5% keeps false alarms rare.
        assert found <= 1

    def test_threshold_is_within_grid(self):
        rng = random.Random(3)
        tidsets = _structured_tidsets(150, 10, rng)
        result = find_support_threshold(
            tidsets, 150, k=2, min_sup=15, n_null_samples=10, seed=4)
        if result.found:
            assert result.threshold in result.candidates

    def test_describe_renders_decision_table(self):
        rng = random.Random(5)
        tidsets = _structured_tidsets(120, 8, rng)
        result = find_support_threshold(
            tidsets, 120, k=2, min_sup=12, n_null_samples=8, seed=6)
        text = result.describe()
        assert "null mean" in text
        if result.found:
            assert "s*" in text
        else:
            assert "no candidate" in text

    def test_deterministic_with_seed(self):
        rng = random.Random(7)
        tidsets = _structured_tidsets(120, 8, rng)
        first = find_support_threshold(tidsets, 120, k=2, min_sup=12,
                                       n_null_samples=6, seed=8)
        second = find_support_threshold(tidsets, 120, k=2, min_sup=12,
                                        n_null_samples=6, seed=8)
        assert first.threshold == second.threshold
        assert first.candidates == second.candidates

    def test_fdr_bound_is_null_mean_over_observed(self):
        rng = random.Random(9)
        tidsets = _structured_tidsets(150, 10, rng)
        result = find_support_threshold(
            tidsets, 150, k=2, min_sup=15, n_null_samples=10, seed=10)
        if result.found:
            assert result.fdr_bound == pytest.approx(
                min(1.0, result.null_mean / result.observed_count))

    def test_parameter_validation(self):
        with pytest.raises(StatsError):
            find_support_threshold([0], 4, k=0, min_sup=1)
        with pytest.raises(StatsError):
            find_support_threshold([0], 4, k=2, min_sup=1, alpha=1.5)
        with pytest.raises(StatsError):
            find_support_threshold([0], 4, k=2, min_sup=1,
                                   n_null_samples=0)
        with pytest.raises(StatsError):
            find_support_threshold([0], 4, k=2, min_sup=1,
                                   n_candidates=0)
