"""Unit tests for the interestingness measure catalogue."""

from __future__ import annotations

import math

import pytest

from repro.errors import StatsError
from repro.interest import (
    ALL_MEASURES,
    ContingencyTable,
    added_value,
    certainty_factor,
    confidence,
    conviction,
    cosine,
    gini_gain,
    jaccard,
    kappa,
    laplace_accuracy,
    leverage,
    lift,
    mutual_information,
    odds_ratio,
    piatetsky_shapiro,
    support_fraction,
    yules_q,
    yules_y,
)


@pytest.fixture
def positive_table():
    """A strongly positive rule: 80/100 covered records in a 50% class
    on n=1000."""
    return ContingencyTable(support=80, coverage=100,
                            class_support=500, n=1000)


@pytest.fixture
def independent_table():
    """Exact independence: confidence equals the class prior."""
    return ContingencyTable(support=50, coverage=100,
                            class_support=500, n=1000)


@pytest.fixture
def negative_table():
    """A strongly negative rule."""
    return ContingencyTable(support=10, coverage=100,
                            class_support=500, n=1000)


class TestContingencyTable:
    def test_cells(self, positive_table):
        assert positive_table.cells == (80, 20, 420, 480)

    def test_cells_sum_to_n(self, positive_table):
        assert sum(positive_table.cells) == positive_table.n

    def test_rejects_inconsistent_counts(self):
        with pytest.raises(StatsError):
            ContingencyTable(support=90, coverage=80,
                             class_support=500, n=1000)
        with pytest.raises(StatsError):
            ContingencyTable(support=10, coverage=980,
                             class_support=500, n=1000)

    def test_rejects_degenerate_margins(self):
        with pytest.raises(StatsError):
            ContingencyTable(support=0, coverage=0,
                             class_support=500, n=1000)
        with pytest.raises(StatsError):
            ContingencyTable(support=0, coverage=10,
                             class_support=0, n=1000)
        with pytest.raises(StatsError):
            ContingencyTable(support=10, coverage=10,
                             class_support=1000, n=1000)

    def test_from_rule(self, tiny_dataset):
        from repro.mining import mine_class_rules
        ruleset = mine_class_rules(tiny_dataset, 2)
        rule = ruleset.rules[0]
        table = ContingencyTable.from_rule(rule, tiny_dataset)
        assert table.support == rule.support
        assert table.coverage == rule.coverage
        assert table.n == tiny_dataset.n_records


class TestBasicMeasures:
    def test_support_fraction(self, positive_table):
        assert support_fraction(positive_table) == pytest.approx(0.08)

    def test_confidence(self, positive_table):
        assert confidence(positive_table) == pytest.approx(0.8)

    def test_lift_values(self, positive_table, independent_table,
                         negative_table):
        assert lift(positive_table) == pytest.approx(1.6)
        assert lift(independent_table) == pytest.approx(1.0)
        assert lift(negative_table) == pytest.approx(0.2)

    def test_leverage_values(self, positive_table, independent_table):
        assert leverage(positive_table) == pytest.approx(0.03)
        assert leverage(independent_table) == pytest.approx(0.0)

    def test_piatetsky_shapiro_is_leverage(self):
        assert piatetsky_shapiro is leverage

    def test_added_value(self, positive_table, independent_table):
        assert added_value(positive_table) == pytest.approx(0.3)
        assert added_value(independent_table) == pytest.approx(0.0)


class TestIndependenceFixedPoints:
    """Every association measure must sit at its null value under
    exact independence."""

    def test_null_values(self, independent_table):
        assert lift(independent_table) == pytest.approx(1.0)
        assert leverage(independent_table) == pytest.approx(0.0)
        assert conviction(independent_table) == pytest.approx(1.0)
        assert kappa(independent_table) == pytest.approx(0.0)
        assert odds_ratio(independent_table) == pytest.approx(1.0)
        assert yules_q(independent_table) == pytest.approx(0.0)
        assert yules_y(independent_table) == pytest.approx(0.0)
        assert certainty_factor(independent_table) == pytest.approx(0.0)
        assert mutual_information(independent_table) \
            == pytest.approx(0.0, abs=1e-12)
        assert gini_gain(independent_table) \
            == pytest.approx(0.0, abs=1e-12)


class TestSignsAndBounds:
    def test_positive_rule_signs(self, positive_table):
        assert lift(positive_table) > 1.0
        assert leverage(positive_table) > 0.0
        assert conviction(positive_table) > 1.0
        assert kappa(positive_table) > 0.0
        assert odds_ratio(positive_table) > 1.0
        assert yules_q(positive_table) > 0.0
        assert certainty_factor(positive_table) > 0.0

    def test_negative_rule_signs(self, negative_table):
        assert lift(negative_table) < 1.0
        assert leverage(negative_table) < 0.0
        assert conviction(negative_table) < 1.0
        assert kappa(negative_table) < 0.0
        assert yules_q(negative_table) < 0.0
        assert certainty_factor(negative_table) < 0.0

    def test_bounded_measures(self, positive_table, negative_table):
        for table in (positive_table, negative_table):
            assert 0.0 < cosine(table) <= 1.0
            assert 0.0 <= jaccard(table) <= 1.0
            assert -1.0 <= yules_q(table) <= 1.0
            assert -1.0 <= yules_y(table) <= 1.0
            assert -1.0 <= kappa(table) <= 1.0
            assert -1.0 <= certainty_factor(table) <= 1.0
            assert mutual_information(table) >= 0.0
            assert gini_gain(table) >= 0.0

    def test_lift_positive_iff_leverage_positive(self):
        for support in range(1, 100):
            table = ContingencyTable(support=support, coverage=100,
                                     class_support=500, n=1000)
            assert (lift(table) > 1.0) == (leverage(table) > 0.0)


class TestSingularities:
    def test_conviction_infinite_at_confidence_one(self):
        table = ContingencyTable(support=50, coverage=50,
                                 class_support=500, n=1000)
        assert conviction(table) == math.inf

    def test_odds_ratio_infinite_when_off_diagonal_empty(self):
        table = ContingencyTable(support=50, coverage=50,
                                 class_support=500, n=1000)
        assert odds_ratio(table) == math.inf
        assert yules_q(table) == pytest.approx(1.0)
        assert yules_y(table) == pytest.approx(1.0)


class TestHandComputedValues:
    def test_cosine(self, positive_table):
        expected = 0.08 / math.sqrt(0.1 * 0.5)
        assert cosine(positive_table) == pytest.approx(expected)

    def test_jaccard(self, positive_table):
        assert jaccard(positive_table) == pytest.approx(80 / 520)

    def test_odds_ratio(self, positive_table):
        assert odds_ratio(positive_table) \
            == pytest.approx(80 * 480 / (20 * 420))

    def test_yules_q_matches_odds_ratio(self, positive_table):
        theta = odds_ratio(positive_table)
        assert yules_q(positive_table) \
            == pytest.approx((theta - 1) / (theta + 1))

    def test_certainty_factor(self, positive_table):
        assert certainty_factor(positive_table) \
            == pytest.approx((0.8 - 0.5) / 0.5)

    def test_laplace(self, positive_table):
        assert laplace_accuracy(positive_table) \
            == pytest.approx(81 / 102)
        assert laplace_accuracy(positive_table, k=10) \
            == pytest.approx(81 / 110)
        with pytest.raises(StatsError):
            laplace_accuracy(positive_table, k=0)

    def test_mutual_information_symmetric_example(self):
        # Perfectly aligned binary split: MI = H = log 2.
        table = ContingencyTable(support=500, coverage=500,
                                 class_support=500, n=1000)
        assert mutual_information(table) == pytest.approx(math.log(2))


class TestRegistry:
    def test_all_measures_callable_on_generic_table(self, positive_table):
        for name, measure in ALL_MEASURES.items():
            value = measure(positive_table)
            assert isinstance(value, float), name
            assert not math.isnan(value), name

    def test_registry_names_are_stable(self):
        expected = {"support", "confidence", "lift", "leverage",
                    "conviction", "cosine", "jaccard", "kappa",
                    "odds_ratio", "yules_q", "yules_y",
                    "certainty_factor", "added_value",
                    "mutual_information", "gini_gain", "laplace"}
        assert set(ALL_MEASURES) == expected
