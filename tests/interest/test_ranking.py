"""Unit tests for interestingness ranking and agreement utilities."""

from __future__ import annotations

import math

import pytest

from repro.errors import StatsError
from repro.interest import (
    agreement_matrix,
    measure_agreement,
    rank_rules,
    score_rules,
    top_k,
)
from repro.interest.measures import ContingencyTable, confidence
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def german_ruleset():
    from repro.data import make_german
    return mine_class_rules(make_german(), min_sup=200)


class TestScoreRules:
    def test_scores_align_with_rules(self, german_ruleset):
        scores = score_rules(german_ruleset, "confidence")
        assert len(scores) == german_ruleset.n_tests
        for rule, score in zip(german_ruleset.rules, scores):
            assert score == pytest.approx(rule.confidence)

    def test_accepts_callable(self, german_ruleset):
        by_name = score_rules(german_ruleset, "confidence")
        by_callable = score_rules(german_ruleset, confidence)
        assert by_name == by_callable

    def test_unknown_measure_raises(self, german_ruleset):
        with pytest.raises(StatsError):
            score_rules(german_ruleset, "not-a-measure")

    def test_every_registered_measure_scores(self, german_ruleset):
        from repro.interest import ALL_MEASURES
        for name in ALL_MEASURES:
            scores = score_rules(german_ruleset, name)
            assert len(scores) == german_ruleset.n_tests


class TestRankRules:
    def test_descending_order(self, german_ruleset):
        ranked = rank_rules(german_ruleset, "lift")
        scores = [score for _rule, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_ascending_order(self, german_ruleset):
        ranked = rank_rules(german_ruleset, "lift", descending=False)
        scores = [score for _rule, score in ranked]
        assert scores == sorted(scores)

    def test_top_k(self, german_ruleset):
        best = top_k(german_ruleset, "leverage", 5)
        assert len(best) == 5
        full = rank_rules(german_ruleset, "leverage")
        assert best == full[:5]

    def test_top_k_beyond_size(self, german_ruleset):
        assert len(top_k(german_ruleset, "lift",
                         german_ruleset.n_tests + 10)) \
            == german_ruleset.n_tests

    def test_top_k_negative_raises(self, german_ruleset):
        with pytest.raises(StatsError):
            top_k(german_ruleset, "lift", -1)


class TestAgreement:
    def test_self_agreement_is_one(self, german_ruleset):
        tau = measure_agreement(german_ruleset, "lift", "lift")
        assert tau == pytest.approx(1.0)

    def test_symmetry(self, german_ruleset):
        ab = measure_agreement(german_ruleset, "lift", "jaccard")
        ba = measure_agreement(german_ruleset, "jaccard", "lift")
        assert ab == pytest.approx(ba)

    def test_related_measures_agree_strongly(self, german_ruleset):
        """Yule's Q is a monotone transform of the odds ratio, so the
        two must correlate almost perfectly (ties break the exact 1)."""
        tau = measure_agreement(german_ruleset, "odds_ratio", "yules_q")
        assert tau > 0.99

    def test_significance_vs_confidence_not_identical(self,
                                                      german_ruleset):
        """The paper's Table 4 point: confidence ranks differently from
        statistical significance."""
        neg_log_p = [-(math.log(r.p_value) if r.p_value > 0 else 700.0)
                     for r in german_ruleset.rules]

        def neg_log_p_measure(table: ContingencyTable) -> float:
            raise AssertionError("unused")

        # Correlate confidence scores against p-value derived ranking
        # via Kendall tau directly.
        from scipy import stats as scipy_stats
        conf_scores = score_rules(german_ruleset, "confidence")
        tau, _p = scipy_stats.kendalltau(conf_scores, neg_log_p)
        assert tau < 0.95

    def test_matrix_shape_and_diagonal(self, german_ruleset):
        matrix = agreement_matrix(german_ruleset,
                                  measures=("lift", "jaccard", "cosine"))
        assert matrix[("lift", "lift")] == 1.0
        assert ("lift", "jaccard") in matrix
        assert ("jaccard", "lift") not in matrix  # upper triangle only
        assert len(matrix) == 6

    def test_degenerate_ruleset_gives_nan(self, tiny_dataset):
        ruleset = mine_class_rules(tiny_dataset, 8)  # at most one rule
        if ruleset.n_tests < 2:
            tau = measure_agreement(ruleset, "lift", "jaccard")
            assert math.isnan(tau)
