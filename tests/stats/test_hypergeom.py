"""Unit tests for the hypergeometric distribution (paper Section 2.2)."""

from __future__ import annotations

import math
import random

import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.errors import StatsError
from repro.stats import log_pmf, mean, mode, pmf, pmf_table, support_bounds


class TestSupportBounds:
    def test_paper_example(self):
        # n=20, n_c=11, supp(X)=6 -> k ranges over [0, 6] (Figure 2).
        assert support_bounds(20, 11, 6) == (0, 6)

    def test_lower_bound_active(self):
        # n=10, n_c=8, supp_x=7: at least 8+7-10=5 overlaps are forced.
        assert support_bounds(10, 8, 7) == (5, 7)

    def test_degenerate_full_coverage(self):
        assert support_bounds(10, 4, 10) == (4, 4)

    def test_zero_coverage(self):
        assert support_bounds(10, 4, 0) == (0, 0)

    def test_invalid_inputs(self):
        with pytest.raises(StatsError):
            support_bounds(10, 11, 3)
        with pytest.raises(StatsError):
            support_bounds(10, 3, 11)
        with pytest.raises(StatsError):
            support_bounds(-1, 0, 0)


class TestPmf:
    def test_sums_to_one(self):
        total = sum(pmf_table(30, 12, 9))
        assert total == pytest.approx(1.0, rel=1e-12)

    def test_matches_scipy(self):
        rng = random.Random(5)
        for _ in range(50):
            n = rng.randint(2, 400)
            n_c = rng.randint(0, n)
            sx = rng.randint(0, n)
            low, high = support_bounds(n, n_c, sx)
            k = rng.randint(low, high)
            ours = pmf(k, n, n_c, sx)
            theirs = scipy_stats.hypergeom.pmf(k, n, n_c, sx)
            assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-300)

    def test_out_of_support_is_zero(self):
        assert pmf(7, 20, 11, 6) == 0.0
        assert log_pmf(-1, 20, 11, 6) == float("-inf")

    def test_paper_figure2_values(self):
        # H(k; 20, 11, 6) from Figure 2 of the paper.
        expected = [0.0021672, 0.035759, 0.17879, 0.35759,
                    0.30650, 0.10728, 0.011920]
        table = pmf_table(20, 11, 6)
        assert table == pytest.approx(expected, rel=1e-4)

    def test_table_matches_pointwise(self):
        n, n_c, sx = 100, 37, 22
        low, high = support_bounds(n, n_c, sx)
        table = pmf_table(n, n_c, sx)
        for k in range(low, high + 1):
            assert table[k - low] == pytest.approx(pmf(k, n, n_c, sx),
                                                   rel=1e-9)

    def test_large_population_recurrence_stable(self):
        n, n_c, sx = 32561, 7841, 900
        table = pmf_table(n, n_c, sx)
        assert sum(table) == pytest.approx(1.0, rel=1e-6)


class TestMoments:
    def test_mean(self):
        assert mean(1000, 500, 100) == pytest.approx(50.0)

    def test_mode_is_argmax(self):
        for (n, n_c, sx) in [(20, 11, 6), (100, 37, 22), (50, 25, 25)]:
            low, high = support_bounds(n, n_c, sx)
            table = pmf_table(n, n_c, sx)
            argmax = max(range(low, high + 1),
                         key=lambda k: table[k - low])
            assert abs(mode(n, n_c, sx) - argmax) <= 1

    def test_mean_empty_population(self):
        assert mean(0, 0, 0) == 0.0
