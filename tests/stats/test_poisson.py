"""Unit tests for the Poisson distribution."""

from __future__ import annotations

import math

import pytest
from scipy import stats as scipy_stats

from repro.errors import StatsError
from repro.stats.poisson import (
    poisson_cdf,
    poisson_log_pmf,
    poisson_pmf,
    poisson_sf,
    poisson_test_upper,
)


class TestPmf:
    def test_closed_form_small_mean(self):
        # P(X=0) = e^-mean
        assert poisson_pmf(0, 2.0) == pytest.approx(math.exp(-2.0))
        assert poisson_pmf(1, 2.0) == pytest.approx(2 * math.exp(-2.0))

    def test_matches_scipy(self):
        for mean in (0.1, 1.0, 7.5, 40.0):
            for k in range(0, 60, 7):
                want = scipy_stats.poisson.pmf(k, mean)
                assert poisson_pmf(k, mean) == pytest.approx(
                    want, rel=1e-9, abs=1e-300)

    def test_zero_mean_is_point_mass(self):
        assert poisson_pmf(0, 0.0) == 1.0
        assert poisson_pmf(1, 0.0) == 0.0
        assert poisson_log_pmf(3, 0.0) == float("-inf")

    def test_out_of_domain_rejected(self):
        with pytest.raises(StatsError):
            poisson_pmf(-1, 1.0)
        with pytest.raises(StatsError):
            poisson_pmf(1, -0.5)
        with pytest.raises(StatsError):
            poisson_pmf(1, float("nan"))


class TestTails:
    def test_cdf_plus_sf_is_one(self):
        for mean in (0.5, 3.0, 25.0):
            for k in range(0, 40, 5):
                total = poisson_cdf(k, mean) + poisson_sf(k, mean)
                assert total == pytest.approx(1.0)

    def test_sf_matches_scipy_deep_tail(self):
        want = scipy_stats.poisson.sf(50, 5.0)
        assert poisson_sf(50, 5.0) == pytest.approx(want, rel=1e-8)

    def test_sf_matches_scipy_heavy_side(self):
        want = scipy_stats.poisson.sf(2, 30.0)
        assert poisson_sf(2, 30.0) == pytest.approx(want, rel=1e-9)

    def test_cdf_monotone(self):
        values = [poisson_cdf(k, 6.0) for k in range(30)]
        assert values == sorted(values)

    def test_zero_mean_tails(self):
        assert poisson_sf(0, 0.0) == 0.0
        assert poisson_cdf(0, 0.0) == 1.0


class TestUpperTest:
    def test_k_zero_is_one(self):
        assert poisson_test_upper(0, 3.0) == 1.0

    def test_matches_scipy(self):
        for k, mean in ((5, 1.0), (12, 8.0), (3, 10.0)):
            want = scipy_stats.poisson.sf(k - 1, mean)
            assert poisson_test_upper(k, mean) == pytest.approx(
                want, rel=1e-9)

    def test_antitone_in_k(self):
        values = [poisson_test_upper(k, 4.0) for k in range(20)]
        for a, b in zip(values, values[1:]):
            assert a >= b

    def test_surprising_count_is_significant(self):
        # 30 events at mean 5 is a ~1e-15 tail.
        assert poisson_test_upper(30, 5.0) < 1e-12

    def test_zero_mean_with_positive_count(self):
        assert poisson_test_upper(3, 0.0) == 0.0
