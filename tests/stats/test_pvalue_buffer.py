"""Unit tests for the p-value buffer (paper Section 4.2.3, Figure 2)."""

from __future__ import annotations

import random

import pytest

from repro.errors import StatsError
from repro.stats import PValueBuffer, fisher_two_tailed, support_bounds


class TestFigure2Example:
    """The worked example from the paper: n=20, supp(c)=11, supp(X)=6."""

    def test_buffer_values(self):
        buf = PValueBuffer(20, 11, 6)
        expected = [0.0021672, 0.049845, 0.33591, 1.0000,
                    0.64241, 0.15712, 0.014087]
        assert buf.p_values() == pytest.approx(expected, rel=1e-4)

    def test_range(self):
        buf = PValueBuffer(20, 11, 6)
        assert (buf.low, buf.high) == (0, 6)
        assert len(buf) == 7

    def test_lookup_each_k(self):
        buf = PValueBuffer(20, 11, 6)
        assert buf.p_value(0) == pytest.approx(0.0021672, rel=1e-4)
        assert buf.p_value(3) == pytest.approx(1.0)
        assert buf.p_value(6) == pytest.approx(0.014087, rel=1e-4)


class TestAgainstDirectFisher:
    def test_every_entry_matches_fisher(self):
        rng = random.Random(13)
        for _ in range(40):
            n = rng.randint(4, 150)
            n_c = rng.randint(0, n)
            sx = rng.randint(0, n)
            buf = PValueBuffer(n, n_c, sx)
            low, high = support_bounds(n, n_c, sx)
            for k in range(low, high + 1):
                assert buf.p_value(k) == pytest.approx(
                    fisher_two_tailed(k, n, n_c, sx), rel=1e-9)

    def test_symmetric_null_ties(self):
        # n_c = n/2 makes H(k) symmetric: flank pairs are exact ties and
        # must include each other in the two-tailed sum.
        buf = PValueBuffer(100, 50, 20)
        values = buf.p_values()
        for offset in range(len(values) // 2):
            assert values[offset] == pytest.approx(values[-1 - offset],
                                                   rel=1e-9)
        # A tied pair's p-value includes both tails: strictly more than
        # one pmf value.
        from repro.stats import pmf
        assert values[0] == pytest.approx(
            pmf(buf.low, 100, 50, 20) + pmf(buf.high, 100, 50, 20),
            rel=1e-9)


class TestShapeProperties:
    def test_max_is_one(self):
        buf = PValueBuffer(50, 20, 15)
        assert max(buf.p_values()) == pytest.approx(1.0)

    def test_all_in_unit_interval(self):
        buf = PValueBuffer(123, 61, 40)
        for p in buf.p_values():
            assert 0.0 < p <= 1.0

    def test_unimodal_from_both_ends(self):
        # Walking inward from either end, p-values must not decrease
        # until the maximum is reached.
        values = PValueBuffer(80, 35, 25).p_values()
        peak = values.index(max(values))
        assert values[:peak + 1] == sorted(values[:peak + 1])
        assert values[peak:] == sorted(values[peak:], reverse=True)

    def test_out_of_range_lookup_rejected(self):
        buf = PValueBuffer(20, 11, 6)
        with pytest.raises(StatsError):
            buf.p_value(7)
        with pytest.raises(StatsError):
            buf.p_value(-1)

    def test_degenerate_single_outcome(self):
        # supp(X) = 0: only k=0 is reachable and p must be 1.
        buf = PValueBuffer(10, 4, 0)
        assert buf.p_values() == [1.0]

    def test_full_coverage_single_outcome(self):
        buf = PValueBuffer(10, 4, 10)
        assert buf.p_values() == [1.0]

    def test_nbytes_accounting(self):
        buf = PValueBuffer(20, 11, 6)
        assert buf.nbytes == 8 * 7

    def test_defensive_copy(self):
        buf = PValueBuffer(20, 11, 6)
        values = buf.p_values()
        values[0] = 42.0
        assert buf.p_value(0) != 42.0
