"""Unit tests for the log-factorial buffer (paper Section 4.2.3, Bf)."""

from __future__ import annotations

import math

import pytest

from repro.errors import StatsError
from repro.stats import LogFactorialBuffer, default_buffer, log_binomial


class TestLogFactorial:
    def test_base_cases(self):
        buf = LogFactorialBuffer(0)
        assert buf.log_factorial(0) == 0.0
        assert buf.log_factorial(1) == pytest.approx(0.0)

    def test_small_values_exact(self):
        buf = LogFactorialBuffer()
        for k, expected in [(2, 2), (3, 6), (4, 24), (5, 120), (10, 3628800)]:
            assert buf.log_factorial(k) == pytest.approx(math.log(expected))

    def test_matches_lgamma(self):
        buf = LogFactorialBuffer()
        for k in (17, 100, 1000, 5000):
            assert buf.log_factorial(k) == pytest.approx(
                math.lgamma(k + 1), rel=1e-12)

    def test_grows_on_demand(self):
        buf = LogFactorialBuffer(2)
        assert buf.capacity == 2
        buf.log_factorial(50)
        assert buf.capacity >= 50

    def test_negative_rejected(self):
        with pytest.raises(StatsError):
            LogFactorialBuffer().log_factorial(-1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(StatsError):
            LogFactorialBuffer(-3)

    def test_large_value_does_not_overflow(self):
        # 40000! overflows double; its log must not.
        value = LogFactorialBuffer().log_factorial(40000)
        assert math.isfinite(value)
        assert value == pytest.approx(math.lgamma(40001), rel=1e-12)


class TestLogBinomial:
    def test_known_coefficients(self):
        buf = LogFactorialBuffer()
        assert math.exp(buf.log_binomial(5, 2)) == pytest.approx(10)
        assert math.exp(buf.log_binomial(10, 5)) == pytest.approx(252)
        assert math.exp(buf.log_binomial(52, 5)) == pytest.approx(2598960)

    def test_edges(self):
        buf = LogFactorialBuffer()
        assert buf.log_binomial(7, 0) == pytest.approx(0.0)
        assert buf.log_binomial(7, 7) == pytest.approx(0.0)

    def test_out_of_range_is_zero_probability(self):
        buf = LogFactorialBuffer()
        assert buf.log_binomial(5, 6) == float("-inf")
        assert buf.log_binomial(5, -1) == float("-inf")

    def test_symmetry(self):
        buf = LogFactorialBuffer()
        for a, b in [(30, 4), (100, 17), (9, 3)]:
            assert buf.log_binomial(a, b) == pytest.approx(
                buf.log_binomial(a, a - b))

    def test_module_level_helper(self):
        assert math.exp(log_binomial(6, 3)) == pytest.approx(20)


class TestDefaultBuffer:
    def test_shared_instance(self):
        assert default_buffer() is default_buffer()

    def test_len_tracks_capacity(self):
        buf = LogFactorialBuffer(10)
        assert len(buf) == buf.capacity + 1


class TestThreadSafety:
    def test_concurrent_growth_stays_consistent(self):
        """Concurrent ensure() calls must serialize: an unlocked
        read-of-table[-1]-then-append loop interleaves into a table
        with wrong length and wrong entries."""
        import math
        import threading

        buf = LogFactorialBuffer(0)
        targets = [20_000 + 1_000 * i for i in range(8)]
        barrier = threading.Barrier(len(targets))

        def grow(n):
            barrier.wait()
            buf.ensure(n)

        threads = [threading.Thread(target=grow, args=(n,))
                   for n in targets]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert buf.capacity == max(targets)
        assert len(buf) == max(targets) + 1
        for k in (1, 170, 20_000, max(targets)):
            assert buf.log_factorial(k) == pytest.approx(
                math.lgamma(k + 1), rel=1e-12)

    def test_buffer_pickles_without_its_lock(self):
        import pickle

        buf = LogFactorialBuffer(100)
        clone = pickle.loads(pickle.dumps(buf))
        assert clone.capacity == buf.capacity
        clone.ensure(200)  # the restored lock works
        assert clone.log_factorial(200) == pytest.approx(
            default_buffer().log_factorial(200))
