"""Unit tests for the static+dynamic buffer cache (Section 4.2.3)."""

from __future__ import annotations

import pytest

from repro.errors import StatsError
from repro.stats import BufferCache, fisher_two_tailed


class TestCorrectness:
    def test_pvalues_match_fisher(self):
        cache = BufferCache(100, 40, min_sup=5)
        for supp_x in (5, 17, 40, 80):
            low = max(0, 40 + supp_x - 100)
            high = min(40, supp_x)
            for k in range(low, high + 1):
                assert cache.p_value(k, supp_x) == pytest.approx(
                    fisher_two_tailed(k, 100, 40, supp_x), rel=1e-9)

    def test_invalid_construction(self):
        with pytest.raises(StatsError):
            BufferCache(10, 11)
        with pytest.raises(StatsError):
            BufferCache(10, 5, min_sup=0)

    def test_out_of_range_coverage(self):
        cache = BufferCache(50, 20)
        with pytest.raises(StatsError):
            cache.buffer_for(51)


class TestTiers:
    def test_static_tier_hit_counting(self):
        cache = BufferCache(200, 100, min_sup=10)
        assert cache.max_sup >= 10
        cache.p_value(5, 10)
        cache.p_value(6, 10)
        cache.p_value(7, 10)
        assert cache.stats.static_misses == 1
        assert cache.stats.static_hits == 2

    def test_dynamic_tier_single_slot(self):
        # Tiny budget forces everything through the dynamic buffer.
        cache = BufferCache(200, 100, static_budget_bytes=0, min_sup=10)
        assert cache.max_sup < 10
        cache.p_value(5, 50)
        cache.p_value(6, 50)   # hit: same coverage
        cache.p_value(5, 60)   # miss: evicts 50
        cache.p_value(5, 50)   # miss again: single slot
        assert cache.stats.dynamic_hits == 1
        assert cache.stats.dynamic_misses == 3

    def test_static_budget_bounds_footprint(self):
        budget = 4096
        cache = BufferCache(1000, 500, static_budget_bytes=budget,
                            min_sup=10)
        for supp_x in range(10, cache.max_sup + 1):
            cache.buffer_for(supp_x)
        assert cache.static_nbytes <= budget

    def test_no_optimization_mode_recomputes(self):
        cache = BufferCache(100, 40, use_static=False, use_dynamic=False)
        first = cache.buffer_for(20)
        second = cache.buffer_for(20)
        assert first is not second
        assert cache.stats.hit_rate == 0.0

    def test_disabled_static_routes_to_dynamic(self):
        cache = BufferCache(100, 40, use_static=False, use_dynamic=True)
        cache.p_value(3, 15)
        cache.p_value(4, 15)
        assert cache.stats.static_hits == 0
        assert cache.stats.dynamic_hits == 1

    def test_clear_preserves_counters(self):
        cache = BufferCache(100, 40, min_sup=5)
        cache.p_value(3, 10)
        cache.clear()
        assert cache.stats.total_lookups == 1
        assert cache.static_nbytes == 0

    def test_hit_rate_empty(self):
        cache = BufferCache(100, 40)
        assert cache.stats.hit_rate == 0.0


class TestMaxSupDerivation:
    def test_large_budget_covers_everything(self):
        cache = BufferCache(500, 250, static_budget_bytes=16 * 1024 * 1024,
                            min_sup=1)
        assert cache.max_sup == 500

    def test_budget_monotone(self):
        small = BufferCache(2000, 1000, static_budget_bytes=10_000,
                            min_sup=1)
        large = BufferCache(2000, 1000, static_budget_bytes=1_000_000,
                            min_sup=1)
        assert small.max_sup <= large.max_sup
