"""Unit tests for the mid-p variant across the buffer machinery."""

from __future__ import annotations

import pytest

from repro.stats import (
    BufferCache,
    PValueBuffer,
    fisher_two_tailed,
    fisher_two_tailed_midp,
    support_bounds,
)


class TestMidPBuffer:
    def test_matches_scalar_function(self):
        n, n_c, supp_x = 60, 25, 14
        buffer = PValueBuffer(n, n_c, supp_x, midp=True)
        low, high = support_bounds(n, n_c, supp_x)
        for k in range(low, high + 1):
            assert buffer.p_value(k) == pytest.approx(
                fisher_two_tailed_midp(k, n, n_c, supp_x), abs=1e-12)

    def test_midp_no_larger_than_exact(self):
        n, n_c, supp_x = 80, 40, 20
        exact = PValueBuffer(n, n_c, supp_x)
        mid = PValueBuffer(n, n_c, supp_x, midp=True)
        for k_exact, k_mid in zip(exact.p_values(), mid.p_values()):
            assert k_mid <= k_exact + 1e-15

    def test_midp_difference_is_half_pmf(self):
        from repro.stats import pmf_table
        n, n_c, supp_x = 40, 17, 9
        exact = PValueBuffer(n, n_c, supp_x).p_values()
        mid = PValueBuffer(n, n_c, supp_x, midp=True).p_values()
        pmf = pmf_table(n, n_c, supp_x)
        for e, m, mass in zip(exact, mid, pmf):
            assert m == pytest.approx(max(0.0, e - 0.5 * mass),
                                      abs=1e-15)

    def test_midp_never_negative(self):
        buffer = PValueBuffer(10, 5, 3, midp=True)
        assert all(p >= 0.0 for p in buffer.p_values())

    def test_flag_is_recorded(self):
        assert PValueBuffer(10, 5, 3, midp=True).midp
        assert not PValueBuffer(10, 5, 3).midp


class TestMidPCache:
    def test_cache_builds_midp_buffers(self):
        cache = BufferCache(50, 20, min_sup=5, midp=True)
        value = cache.p_value(8, 10)
        assert value == pytest.approx(
            fisher_two_tailed_midp(8, 50, 20, 10), abs=1e-12)

    def test_cache_default_is_exact(self):
        cache = BufferCache(50, 20, min_sup=5)
        value = cache.p_value(8, 10)
        assert value == pytest.approx(
            fisher_two_tailed(8, 50, 20, 10), abs=1e-12)

    def test_dynamic_tier_respects_midp(self):
        cache = BufferCache(50, 20, min_sup=5, use_static=False,
                            midp=True)
        value = cache.p_value(8, 10)
        assert value == pytest.approx(
            fisher_two_tailed_midp(8, 50, 20, 10), abs=1e-12)


class TestMidPScorer:
    def test_ruleset_scorer_plumbed(self, small_random_dataset):
        from repro.mining import mine_class_rules
        exact = mine_class_rules(small_random_dataset, 15)
        mid = mine_class_rules(small_random_dataset, 15,
                               scorer="fisher-midp")
        assert mid.scorer == "fisher-midp"
        assert exact.n_tests == mid.n_tests
        for rule_exact, rule_mid in zip(exact.rules, mid.rules):
            assert rule_mid.p_value <= rule_exact.p_value + 1e-12

    def test_unknown_scorer_rejected(self, small_random_dataset):
        from repro.errors import MiningError
        from repro.mining import mine_class_rules
        with pytest.raises(MiningError):
            mine_class_rules(small_random_dataset, 15, scorer="exact")

    def test_permutation_engine_runs_on_midp_ruleset(
            self, small_random_dataset):
        from repro.corrections import PermutationEngine
        from repro.mining import mine_class_rules
        ruleset = mine_class_rules(small_random_dataset, 15,
                                   scorer="fisher-midp")
        engine = PermutationEngine(ruleset, n_permutations=20, seed=2)
        result = engine.fwer(0.05)
        assert result.n_tests == ruleset.n_tests
