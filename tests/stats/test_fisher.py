"""Unit tests for Fisher's exact test (paper Section 2.2)."""

from __future__ import annotations

import random

import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.errors import StatsError
from repro.stats import (
    fisher_from_contingency,
    fisher_left_tailed,
    fisher_right_tailed,
    fisher_two_tailed,
    log_odds_ratio,
    min_attainable_p_value,
    rule_p_value,
)


class TestTwoTailed:
    def test_matches_scipy_randomized(self):
        rng = random.Random(99)
        for _ in range(300):
            n = rng.randint(4, 250)
            n_c = rng.randint(0, n)
            sx = rng.randint(0, n)
            low = max(0, n_c + sx - n)
            high = min(n_c, sx)
            k = rng.randint(low, high)
            table = [[k, sx - k], [n_c - k, n - n_c - sx + k]]
            ours = fisher_two_tailed(k, n, n_c, sx)
            theirs = scipy_stats.fisher_exact(table)[1]
            assert ours == pytest.approx(theirs, rel=1e-7, abs=1e-12)

    def test_independence_gives_high_p(self):
        # Perfectly proportional table: observed = expected.
        assert fisher_two_tailed(50, 200, 100, 100) == pytest.approx(
            1.0, abs=0.2)

    def test_perfect_association_is_extreme(self):
        p = fisher_two_tailed(50, 100, 50, 50)
        assert p < 1e-25

    def test_paper_low_coverage_example(self):
        # Section 2.3: n=1000, supp(c)=500, supp(X)=5, conf=1 -> p=0.062.
        p = fisher_two_tailed(5, 1000, 500, 5)
        assert p == pytest.approx(0.062, abs=0.002)

    def test_paper_low_confidence_example(self):
        # Section 2.3: conf=0.55 with supp(X)=200 -> p = 0.133.
        p = fisher_two_tailed(110, 1000, 500, 200)
        assert p == pytest.approx(0.133, abs=0.005)

    def test_impossible_support_rejected(self):
        with pytest.raises(StatsError):
            fisher_two_tailed(7, 20, 11, 6)
        with pytest.raises(StatsError):
            fisher_two_tailed(0, 10, 8, 7)  # lower bound is 5

    def test_rule_p_value_alias(self):
        assert rule_p_value(4, 20, 11, 6) == fisher_two_tailed(4, 20, 11, 6)


class TestOneTailed:
    def test_right_tail_matches_scipy(self):
        rng = random.Random(41)
        for _ in range(100):
            n = rng.randint(4, 200)
            n_c = rng.randint(0, n)
            sx = rng.randint(0, n)
            low = max(0, n_c + sx - n)
            high = min(n_c, sx)
            k = rng.randint(low, high)
            table = [[k, sx - k], [n_c - k, n - n_c - sx + k]]
            ours = fisher_right_tailed(k, n, n_c, sx)
            theirs = scipy_stats.fisher_exact(table,
                                              alternative="greater")[1]
            assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-12)

    def test_left_tail_matches_scipy(self):
        rng = random.Random(42)
        for _ in range(100):
            n = rng.randint(4, 200)
            n_c = rng.randint(0, n)
            sx = rng.randint(0, n)
            low = max(0, n_c + sx - n)
            high = min(n_c, sx)
            k = rng.randint(low, high)
            table = [[k, sx - k], [n_c - k, n - n_c - sx + k]]
            ours = fisher_left_tailed(k, n, n_c, sx)
            theirs = scipy_stats.fisher_exact(table, alternative="less")[1]
            assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-12)

    def test_tails_cover_everything(self):
        n, n_c, sx = 60, 25, 18
        for k in range(0, 19):
            right = fisher_right_tailed(k, n, n_c, sx)
            left = fisher_left_tailed(k, n, n_c, sx)
            # They overlap in exactly pmf(k).
            from repro.stats import pmf
            assert left + right == pytest.approx(1.0 + pmf(k, n, n_c, sx),
                                                 rel=1e-9)


class TestContingency:
    def test_equivalent_parametrizations(self):
        assert fisher_from_contingency(8, 2, 3, 7) == pytest.approx(
            fisher_two_tailed(8, 20, 11, 10))

    def test_alternatives(self):
        p_two = fisher_from_contingency(8, 2, 3, 7, "two-sided")
        p_greater = fisher_from_contingency(8, 2, 3, 7, "greater")
        assert 0 < p_greater <= p_two <= 1

    def test_negative_cell_rejected(self):
        with pytest.raises(StatsError):
            fisher_from_contingency(-1, 2, 3, 4)

    def test_empty_table_rejected(self):
        with pytest.raises(StatsError):
            fisher_from_contingency(0, 0, 0, 0)

    def test_unknown_alternative_rejected(self):
        with pytest.raises(StatsError):
            fisher_from_contingency(1, 2, 3, 4, "sideways")


class TestEffectSizeAndBounds:
    def test_log_odds_ratio_sign(self):
        assert log_odds_ratio(40, 100, 50, 50) > 0
        assert log_odds_ratio(10, 100, 50, 50) < 0

    def test_log_odds_inconsistent_counts(self):
        with pytest.raises(StatsError):
            log_odds_ratio(10, 20, 5, 8)

    def test_min_attainable_decreases_with_coverage(self):
        values = [min_attainable_p_value(1000, 500, sx)
                  for sx in (5, 10, 20, 40, 70, 100)]
        assert values == sorted(values, reverse=True)

    def test_min_attainable_is_lower_bound(self):
        n, n_c, sx = 200, 80, 30
        floor = min_attainable_p_value(n, n_c, sx)
        low = max(0, n_c + sx - n)
        high = min(n_c, sx)
        for k in range(low, high + 1):
            assert fisher_two_tailed(k, n, n_c, sx) >= floor * (1 - 1e-12)
