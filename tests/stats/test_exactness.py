"""Type-I-error validity of the exact tests.

A valid p-value satisfies ``P(p <= alpha) <= alpha`` under the null.
For discrete exact tests this is checkable by enumeration: sum the
null pmf over every outcome whose p-value clears ``alpha``. These
tests pin that guarantee for the binomial and Poisson upper-tail
tests, which the frequency-significance methods lean on.
"""

from __future__ import annotations

import pytest

from repro.stats.binomial import binomial_pmf, binomial_test_upper
from repro.stats.poisson import poisson_pmf, poisson_test_upper

ALPHAS = (0.001, 0.01, 0.05, 0.25)


class TestBinomialValidity:
    @pytest.mark.parametrize("n,p", [(10, 0.5), (30, 0.1), (50, 0.7),
                                     (100, 0.03)])
    def test_rejection_mass_at_most_alpha(self, n, p):
        for alpha in ALPHAS:
            mass = sum(
                binomial_pmf(k, n, p)
                for k in range(n + 1)
                if binomial_test_upper(k, n, p) <= alpha)
            assert mass <= alpha + 1e-12

    @pytest.mark.parametrize("n,p", [(20, 0.5), (60, 0.2)])
    def test_p_value_equals_achieved_level(self, n, p):
        """The exact test's p-value IS the probability of an outcome
        at least as extreme, so rejecting at exactly p(k) has type-I
        error exactly p(k)."""
        for k in range(n + 1):
            level = binomial_test_upper(k, n, p)
            mass = sum(binomial_pmf(i, n, p) for i in range(k, n + 1))
            assert level == pytest.approx(min(1.0, mass), abs=1e-12)


class TestPoissonValidity:
    @pytest.mark.parametrize("mean", [0.5, 2.0, 10.0, 40.0])
    def test_rejection_mass_at_most_alpha(self, mean):
        # enumerate far enough into the tail that residual mass is
        # negligible
        horizon = int(mean + 40 + 10 * mean ** 0.5)
        for alpha in ALPHAS:
            mass = sum(
                poisson_pmf(k, mean)
                for k in range(horizon)
                if poisson_test_upper(k, mean) <= alpha)
            assert mass <= alpha + 1e-9

    @pytest.mark.parametrize("mean", [1.0, 7.0])
    def test_p_value_equals_achieved_level(self, mean):
        horizon = int(mean + 50)
        for k in range(horizon):
            level = poisson_test_upper(k, mean)
            mass = sum(poisson_pmf(i, mean)
                       for i in range(k, horizon + 200))
            assert level == pytest.approx(min(1.0, mass), rel=1e-9,
                                          abs=1e-12)
