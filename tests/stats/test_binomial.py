"""Unit tests for the exact binomial distribution."""

from __future__ import annotations

import math

import pytest
from scipy import stats as scipy_stats

from repro.errors import StatsError
from repro.stats.binomial import (
    binomial_cdf,
    binomial_log_pmf,
    binomial_pmf,
    binomial_sf,
    binomial_test_upper,
)


class TestPmf:
    def test_matches_closed_form_small(self):
        # Binomial(3, 0.5): pmf = (1/8, 3/8, 3/8, 1/8)
        expected = [1 / 8, 3 / 8, 3 / 8, 1 / 8]
        for k, want in enumerate(expected):
            assert binomial_pmf(k, 3, 0.5) == pytest.approx(want)

    def test_sums_to_one(self):
        total = sum(binomial_pmf(k, 20, 0.3) for k in range(21))
        assert total == pytest.approx(1.0)

    def test_matches_scipy(self):
        for n, p in ((10, 0.1), (50, 0.5), (100, 0.93)):
            for k in range(0, n + 1, max(1, n // 7)):
                want = scipy_stats.binom.pmf(k, n, p)
                assert binomial_pmf(k, n, p) == pytest.approx(
                    want, rel=1e-9, abs=1e-300)

    def test_degenerate_p_zero(self):
        assert binomial_pmf(0, 5, 0.0) == 1.0
        assert binomial_pmf(1, 5, 0.0) == 0.0
        assert binomial_log_pmf(3, 5, 0.0) == float("-inf")

    def test_degenerate_p_one(self):
        assert binomial_pmf(5, 5, 1.0) == 1.0
        assert binomial_pmf(4, 5, 1.0) == 0.0

    def test_log_pmf_is_stable_for_large_n(self):
        # scipy underflows around pmf ~ 1e-308; log-space does not.
        log_p = binomial_log_pmf(0, 5000, 0.5)
        assert log_p == pytest.approx(5000 * math.log(0.5))

    def test_out_of_domain_rejected(self):
        with pytest.raises(StatsError):
            binomial_pmf(-1, 5, 0.5)
        with pytest.raises(StatsError):
            binomial_pmf(6, 5, 0.5)
        with pytest.raises(StatsError):
            binomial_pmf(1, 5, 1.5)
        with pytest.raises(StatsError):
            binomial_pmf(1, -2, 0.5)


class TestTails:
    def test_cdf_plus_sf_is_one(self):
        for k in range(0, 21, 4):
            total = binomial_cdf(k, 20, 0.4) + binomial_sf(k, 20, 0.4)
            assert total == pytest.approx(1.0)

    def test_cdf_matches_scipy(self):
        for n, p in ((12, 0.25), (60, 0.7)):
            for k in range(0, n + 1, max(1, n // 5)):
                want = scipy_stats.binom.cdf(k, n, p)
                assert binomial_cdf(k, n, p) == pytest.approx(
                    want, rel=1e-9)

    def test_sf_matches_scipy_in_the_deep_tail(self):
        want = scipy_stats.binom.sf(95, 100, 0.5)
        assert binomial_sf(95, 100, 0.5) == pytest.approx(want,
                                                          rel=1e-9)

    def test_cdf_monotone_in_k(self):
        values = [binomial_cdf(k, 30, 0.6) for k in range(31)]
        assert values == sorted(values)

    def test_boundaries(self):
        assert binomial_cdf(20, 20, 0.3) == 1.0
        assert binomial_sf(20, 20, 0.3) == 0.0


class TestUpperTest:
    def test_k_zero_is_always_one(self):
        assert binomial_test_upper(0, 10, 0.2) == 1.0

    def test_matches_scipy_binomtest(self):
        for k, n, p in ((8, 10, 0.5), (3, 50, 0.01), (40, 60, 0.5)):
            want = scipy_stats.binomtest(
                k, n, p, alternative="greater").pvalue
            assert binomial_test_upper(k, n, p) == pytest.approx(
                want, rel=1e-9)

    def test_antitone_in_k(self):
        values = [binomial_test_upper(k, 25, 0.3) for k in range(26)]
        for a, b in zip(values, values[1:]):
            assert a >= b

    def test_observing_the_mean_is_not_significant(self):
        assert binomial_test_upper(10, 100, 0.1) > 0.4
