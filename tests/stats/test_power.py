"""Unit tests for the analytic detectability/power calculator."""

from __future__ import annotations

import pytest

from repro.errors import StatsError
from repro.stats import (
    detection_power,
    fisher_two_tailed,
    min_attainable_p_value,
    min_detectable_confidence,
    min_detectable_support,
    min_testable_coverage,
    power_curve,
)


class TestMinDetectableSupport:
    def test_boundary_is_tight(self):
        """k_min clears the threshold; k_min - 1 does not."""
        n, n_c, supp_x, threshold = 1000, 500, 100, 1e-4
        k_min = min_detectable_support(n, n_c, supp_x, threshold)
        assert k_min is not None
        assert fisher_two_tailed(k_min, n, n_c, supp_x) <= threshold
        assert fisher_two_tailed(k_min - 1, n, n_c, supp_x) > threshold

    def test_untestable_coverage_returns_none(self):
        # Section 2.3: coverage 5 cannot beat 0.062 at n=1000, n_c=500.
        assert min_detectable_support(1000, 500, 5, 0.05) is None

    def test_coverage_6_is_just_testable(self):
        k_min = min_detectable_support(1000, 500, 6, 0.05)
        assert k_min == 6  # only the perfect split qualifies

    def test_monotone_in_threshold(self):
        loose = min_detectable_support(1000, 500, 100, 1e-2)
        tight = min_detectable_support(1000, 500, 100, 1e-6)
        assert loose is not None and tight is not None
        assert tight >= loose

    def test_validation(self):
        with pytest.raises(StatsError):
            min_detectable_support(0, 0, 5, 0.05)
        with pytest.raises(StatsError):
            min_detectable_support(100, 50, 10, 0.0)
        with pytest.raises(StatsError):
            min_detectable_support(100, 100, 10, 0.05)


class TestMinDetectableConfidence:
    def test_decreases_with_coverage(self):
        """Figure 1's message: larger coverage detects weaker rules."""
        threshold = 1e-5
        confidences = [
            min_detectable_confidence(1000, 500, cvg, threshold)
            for cvg in (20, 40, 70, 100)
        ]
        assert all(c is not None for c in confidences)
        assert confidences == sorted(confidences, reverse=True)

    def test_halving_raises_the_bar(self):
        """Figure 9's message: holdout halving makes rules harder to
        detect — the same threshold needs higher confidence at half
        the coverage and records."""
        threshold = 1e-5
        whole = min_detectable_confidence(2000, 1000, 400, threshold)
        half = min_detectable_confidence(1000, 500, 200, threshold)
        assert whole is not None and half is not None
        assert half > whole


class TestMinTestableCoverage:
    def test_paper_example(self):
        # Coverage 5 tops out at p=0.062 > 0.05; coverage 6 reaches it.
        assert min_testable_coverage(1000, 500, 0.05) == 6

    def test_agrees_with_min_attainable(self):
        threshold = 1e-3
        sigma = min_testable_coverage(1000, 500, threshold)
        assert sigma is not None
        assert min_attainable_p_value(1000, 500, sigma) <= threshold
        assert min_attainable_p_value(1000, 500, sigma - 1) > threshold

    def test_stricter_threshold_needs_more_coverage(self):
        loose = min_testable_coverage(1000, 500, 0.05)
        tight = min_testable_coverage(1000, 500, 1e-8)
        assert loose is not None and tight is not None
        assert tight > loose


class TestDetectionPower:
    def test_bounds(self):
        power = detection_power(2000, 1000, 400, 0.6, 1e-5)
        assert 0.0 <= power <= 1.0

    def test_monotone_in_confidence(self):
        threshold = 0.05 / 3500  # a Bonferroni-like cut-off
        curve = power_curve(2000, 1000, 400,
                            (0.55, 0.60, 0.65, 0.70), threshold)
        assert curve == sorted(curve)

    def test_figure8_regimes(self):
        """The analytic model reproduces the paper's Section 5.5.1
        qualitative findings at the Bonferroni cut-off: undetectable
        at conf .55, coin-flip-ish at .60, near-certain at .70."""
        threshold = 0.05 / 3500
        low = detection_power(2000, 1000, 400, 0.55, threshold)
        mid = detection_power(2000, 1000, 400, 0.60, threshold)
        high = detection_power(2000, 1000, 400, 0.70, threshold)
        assert low < 0.10
        assert 0.25 < mid < 0.85
        assert high > 0.99

    def test_untestable_gives_zero(self):
        assert detection_power(1000, 500, 5, 1.0, 0.05) == 0.0

    def test_perfect_confidence_on_testable_coverage(self):
        assert detection_power(1000, 500, 50, 1.0, 1e-6) \
            == pytest.approx(1.0)

    def test_zero_confidence(self):
        assert detection_power(1000, 500, 50, 0.0, 1e-6) == 0.0

    def test_looser_threshold_more_power(self):
        tight = detection_power(2000, 1000, 400, 0.6, 1e-7)
        loose = detection_power(2000, 1000, 400, 0.6, 1e-3)
        assert loose >= tight

    def test_validation(self):
        with pytest.raises(StatsError):
            detection_power(1000, 500, 50, 1.5, 0.05)


class TestDeterministicDetection:
    def test_step_at_the_boundary(self):
        from repro.stats import deterministic_detection
        n, n_c, coverage = 2000, 1000, 400
        threshold = 1.43e-5
        # min detectable support is 240 = 0.6 * 400.
        assert deterministic_detection(n, n_c, coverage, 0.60, threshold)
        assert not deterministic_detection(n, n_c, coverage, 0.59,
                                           threshold)

    def test_untestable_is_never_detected(self):
        from repro.stats import deterministic_detection
        assert not deterministic_detection(1000, 500, 5, 1.0, 0.05)

    def test_dominates_binomial_model_above_boundary(self):
        from repro.stats import detection_power, deterministic_detection
        n, n_c, coverage, threshold = 2000, 1000, 400, 1e-5
        for conf in (0.55, 0.60, 0.65, 0.70):
            step = deterministic_detection(n, n_c, coverage, conf,
                                           threshold)
            smooth = detection_power(n, n_c, coverage, conf, threshold)
            if step:
                assert smooth >= 0.4
            else:
                assert smooth <= 0.6
