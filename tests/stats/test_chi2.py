"""Unit tests for the chi-square scorer (alternative to Fisher)."""

from __future__ import annotations

import random

import pytest

scipy_stats = pytest.importorskip("scipy.stats")

from repro.errors import StatsError
from repro.stats import chi2_rule_p_value, chi2_sf, chi2_statistic, chi2_test


class TestSurvivalFunction:
    def test_matches_scipy_dof1(self):
        for x in (0.1, 0.5, 1.0, 3.84, 10.0, 30.0):
            assert chi2_sf(x, 1) == pytest.approx(
                scipy_stats.chi2.sf(x, 1), rel=1e-10)

    def test_matches_scipy_various_dof(self):
        rng = random.Random(8)
        for _ in range(50):
            dof = rng.randint(1, 30)
            x = rng.uniform(0.0, 80.0)
            assert chi2_sf(x, dof) == pytest.approx(
                scipy_stats.chi2.sf(x, dof), rel=1e-8, abs=1e-14)

    def test_at_zero(self):
        assert chi2_sf(0.0, 1) == 1.0
        assert chi2_sf(0.0, 5) == 1.0

    def test_critical_value_395(self):
        # The classic 3.84 critical value for alpha=0.05 at 1 dof.
        assert chi2_sf(3.841459, 1) == pytest.approx(0.05, abs=1e-6)

    def test_invalid_arguments(self):
        with pytest.raises(StatsError):
            chi2_sf(-1.0, 1)
        with pytest.raises(StatsError):
            chi2_sf(1.0, 0)


class TestStatistic:
    def test_matches_scipy_contingency(self):
        rng = random.Random(77)
        for _ in range(60):
            a, b, c, d = (rng.randint(1, 60) for _ in range(4))
            ours = chi2_statistic(a, b, c, d)
            theirs = scipy_stats.chi2_contingency(
                [[a, b], [c, d]], correction=False)[0]
            assert ours == pytest.approx(theirs, rel=1e-10)

    def test_yates_matches_scipy(self):
        ours = chi2_statistic(12, 5, 7, 14, yates=True)
        theirs = scipy_stats.chi2_contingency(
            [[12, 5], [7, 14]], correction=True)[0]
        assert ours == pytest.approx(theirs, rel=1e-10)

    def test_zero_marginal_scores_zero(self):
        assert chi2_statistic(0, 0, 5, 5) == 0.0
        assert chi2_statistic(5, 0, 5, 0) == 0.0

    def test_independent_table_scores_zero(self):
        assert chi2_statistic(10, 10, 10, 10) == 0.0

    def test_negative_cell_rejected(self):
        with pytest.raises(StatsError):
            chi2_statistic(-1, 1, 1, 1)


class TestRuleParametrization:
    def test_agrees_with_contingency_form(self):
        # supp_r=30, n=200, n_c=90, supp_x=50.
        a, b, c, d = 30, 20, 60, 90
        assert chi2_rule_p_value(30, 200, 90, 50) == pytest.approx(
            chi2_test(a, b, c, d))

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(StatsError):
            chi2_rule_p_value(40, 100, 30, 50)  # supp_r > n_c

    def test_roughly_tracks_fisher_for_large_cells(self):
        from repro.stats import fisher_two_tailed
        p_chi = chi2_rule_p_value(130, 1000, 500, 200)
        p_fis = fisher_two_tailed(130, 1000, 500, 200)
        # Same order of magnitude in the well-populated regime.
        assert 0.1 < p_chi / p_fis < 10
