"""Unit tests for the sequential Monte-Carlo p-value procedure."""

from __future__ import annotations

import random

import pytest

from repro.errors import StatsError
from repro.stats import sequential_p_value, sequential_rule_p_value


def uniform_sampler(rng: random.Random) -> float:
    return rng.random()


class TestSequentialPValue:
    def test_null_statistic_stops_early(self):
        """A clearly-null observation (middle of the distribution)
        should hit the exceedance budget long before n_max."""
        result = sequential_p_value(0.5, uniform_sampler, h=10,
                                    n_max=10000, seed=1)
        assert result.stopped_early
        assert result.draws < 200
        assert result.exceedances == 10
        assert result.p_value > 0.2

    def test_extreme_statistic_runs_to_n_max(self):
        result = sequential_p_value(1e-9, uniform_sampler, h=10,
                                    n_max=300, seed=2)
        assert not result.stopped_early
        assert result.draws == 300
        assert result.p_value == pytest.approx(1 / 301)

    def test_estimator_is_valid_under_the_null(self):
        """P(p <= u) <= u for uniform nulls: check at u = 0.1 over
        many replications (with slack for Monte-Carlo noise)."""
        master = random.Random(7)
        hits = 0
        reps = 400
        for _ in range(reps):
            observed = master.random()  # a true-null observation
            result = sequential_p_value(
                observed, uniform_sampler, h=5, n_max=80,
                rng=random.Random(master.getrandbits(48)))
            if result.p_value <= 0.1:
                hits += 1
        assert hits / reps <= 0.15

    def test_early_stop_estimate_is_h_over_draws(self):
        result = sequential_p_value(0.9, uniform_sampler, h=7,
                                    n_max=1000, seed=3)
        assert result.stopped_early
        assert result.p_value == pytest.approx(7 / result.draws)

    def test_rng_and_seed_mutually_exclusive(self):
        with pytest.raises(StatsError):
            sequential_p_value(0.5, uniform_sampler,
                               rng=random.Random(0), seed=1)

    def test_parameter_validation(self):
        with pytest.raises(StatsError):
            sequential_p_value(0.5, uniform_sampler, h=0)
        with pytest.raises(StatsError):
            sequential_p_value(0.5, uniform_sampler, n_max=0)

    def test_deterministic_given_seed(self):
        a = sequential_p_value(0.3, uniform_sampler, seed=11)
        b = sequential_p_value(0.3, uniform_sampler, seed=11)
        assert a == b

    def test_summary_renders(self):
        result = sequential_p_value(0.5, uniform_sampler, seed=0)
        assert "draws" in result.summary()


class TestSequentialRulePValue:
    @pytest.fixture(scope="class")
    def ruleset(self):
        from repro.data import GeneratorConfig, generate
        from repro.mining import mine_class_rules
        config = GeneratorConfig(
            n_records=400, n_attributes=10, min_values=2, max_values=3,
            n_rules=1, min_length=2, max_length=2,
            min_coverage=80, max_coverage=80,
            min_confidence=0.9, max_confidence=0.9)
        dataset = generate(config, seed=19).dataset
        return mine_class_rules(dataset, 30)

    def test_significant_rule_resolves_small(self, ruleset):
        best = min(range(len(ruleset.rules)),
                   key=lambda i: ruleset.rules[i].p_value)
        result = sequential_rule_p_value(ruleset, best, n_max=150,
                                         seed=4)
        assert not result.stopped_early
        assert result.p_value <= 0.05

    def test_null_rule_stops_early(self, ruleset):
        worst = max(range(len(ruleset.rules)),
                    key=lambda i: ruleset.rules[i].p_value)
        result = sequential_rule_p_value(ruleset, worst, h=10,
                                         n_max=2000, seed=5)
        assert result.stopped_early
        assert result.draws < 500

    def test_agrees_with_engine_estimate(self, ruleset):
        """The sequential estimate for one rule should be in the same
        regime as the engine's pooled empirical p-value."""
        from repro.corrections import PermutationEngine
        best = min(range(len(ruleset.rules)),
                   key=lambda i: ruleset.rules[i].p_value)
        sequential = sequential_rule_p_value(ruleset, best, n_max=200,
                                             seed=6)
        engine = PermutationEngine(ruleset, n_permutations=200, seed=6)
        pooled = engine.empirical_p_values()[best]
        assert sequential.p_value <= 0.05
        assert pooled <= 0.05

    def test_index_validation(self, ruleset):
        with pytest.raises(StatsError):
            sequential_rule_p_value(ruleset, len(ruleset.rules))
