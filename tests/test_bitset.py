"""Unit tests for repro.bitset."""

from __future__ import annotations

import numpy as np
import pytest

from repro import bitset as bs


class TestPopcount:
    def test_zero(self):
        assert bs.popcount(0) == 0

    def test_single_bits(self):
        for i in (0, 1, 7, 63, 64, 1000):
            assert bs.popcount(1 << i) == 1

    def test_all_ones(self):
        assert bs.popcount((1 << 257) - 1) == 257


class TestConstruction:
    def test_from_indices_roundtrip(self):
        ids = [0, 3, 17, 100]
        bits = bs.bitset_from_indices(ids)
        assert bs.bitset_to_indices(bits) == ids

    def test_from_indices_duplicates_collapse(self):
        assert bs.bitset_from_indices([2, 2, 2]) == 4

    def test_from_indices_range_check(self):
        with pytest.raises(ValueError):
            bs.bitset_from_indices([5], n=5)
        with pytest.raises(ValueError):
            bs.bitset_from_indices([-1], n=5)

    def test_from_indices_in_range_ok(self):
        assert bs.bitset_from_indices([0, 4], n=5) == 0b10001

    def test_from_bool_sequence(self):
        assert bs.bitset_from_bool_sequence(
            [True, False, True, True]) == 0b1101

    def test_empty_iterable(self):
        assert bs.bitset_from_indices([]) == 0


class TestIteration:
    def test_iter_indices_ascending(self):
        bits = bs.bitset_from_indices([9, 2, 40])
        assert list(bs.iter_indices(bits)) == [2, 9, 40]

    def test_iter_empty(self):
        assert list(bs.iter_indices(0)) == []


class TestUniverseAndComplement:
    def test_universe(self):
        assert bs.universe(0) == 0
        assert bs.universe(3) == 0b111

    def test_universe_negative(self):
        with pytest.raises(ValueError):
            bs.universe(-1)

    def test_complement(self):
        assert bs.complement(0b101, 3) == 0b010

    def test_complement_twice_is_identity(self):
        original = 0b1011001
        assert bs.complement(bs.complement(original, 7), 7) == original


class TestSubset:
    def test_subset_true(self):
        assert bs.is_subset(0b0101, 0b1101)

    def test_subset_false(self):
        assert not bs.is_subset(0b0111, 0b1101)

    def test_empty_is_subset_of_everything(self):
        assert bs.is_subset(0, 0)
        assert bs.is_subset(0, 0b111)


class TestNumpyBridge:
    def test_to_numpy_indices_matches_python(self):
        bits = bs.bitset_from_indices([0, 5, 63, 64, 200])
        np_ids = bs.to_numpy_indices(bits, 201)
        assert np_ids.tolist() == [0, 5, 63, 64, 200]

    def test_to_numpy_empty(self):
        assert bs.to_numpy_indices(0, 100).size == 0

    def test_from_numpy_bool_roundtrip(self):
        flags = np.zeros(130, dtype=bool)
        flags[[1, 64, 129]] = True
        bits = bs.from_numpy_bool(flags)
        assert bs.bitset_to_indices(bits) == [1, 64, 129]

    def test_roundtrip_both_ways(self):
        flags = np.random.default_rng(3).random(500) < 0.3
        bits = bs.from_numpy_bool(flags)
        back = bs.to_numpy_indices(bits, 500)
        assert (back == np.nonzero(flags)[0]).all()
