"""Property-based cross-checks at the registry/PatternSet level.

The registry's contract is that miners are interchangeable behind one
result model, so the invariants are stated *on the model*: the two
all-frequent miners produce the identical PatternSet (not just the
same pattern list — the same prefix-tree), expanding the closed set
recovers exactly the support-maximal frequent patterns, and every
miner's forest satisfies the structural contract the Diffsets policy
and the permutation engine rely on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bitset as bs
from repro.mining import PatternForest, mine_patterns, miner_names


class _View:
    """Minimal dataset view: the two attributes miners read."""

    def __init__(self, item_tidsets, n_records):
        self.item_tidsets = item_tidsets
        self.n_records = n_records


@st.composite
def views(draw):
    n_records = draw(st.integers(min_value=2, max_value=24))
    n_items = draw(st.integers(min_value=1, max_value=7))
    tidsets = [
        draw(st.integers(min_value=0, max_value=(1 << n_records) - 1))
        for _ in range(n_items)
    ]
    return _View(tidsets, n_records)


min_sups = st.integers(min_value=1, max_value=6)


def _forest_key(pattern_set):
    return [(p.node_id, p.parent_id, p.items, p.tidset, p.support)
            for p in pattern_set]


@given(views(), min_sups)
@settings(max_examples=60, deadline=None)
def test_apriori_and_fpgrowth_patternsets_identical(view, min_sup):
    apriori = mine_patterns(view, min_sup, algorithm="apriori")
    fpgrowth = mine_patterns(view, min_sup, algorithm="fpgrowth")
    assert _forest_key(apriori) == _forest_key(fpgrowth)
    assert apriori.n_hypotheses == fpgrowth.n_hypotheses


@given(views(), min_sups)
@settings(max_examples=60, deadline=None)
def test_closed_expansion_covers_support_maximal_frequent(view,
                                                          min_sup):
    """Every frequent pattern's tidset appears in the closed set, its
    closed cover is a superset with identical support, and the closed
    patterns are exactly the support-maximal ones (longest per
    tidset)."""
    closed = mine_patterns(view, min_sup, algorithm="closed")
    frequent = mine_patterns(view, min_sup, algorithm="apriori")
    closed_by_tidset = {p.tidset: p for p in closed if p.items}
    longest_by_tidset = {}
    for pattern in frequent:
        if not pattern.items:
            continue
        best = longest_by_tidset.get(pattern.tidset)
        if best is None or len(pattern.items) > len(best):
            longest_by_tidset[pattern.tidset] = pattern.items
    empty_closure = bs.universe(view.n_records)
    for tidset, items in longest_by_tidset.items():
        # The closure of the empty pattern lives on the closed root.
        cover = (closed[0] if tidset == empty_closure
                 and tidset not in closed_by_tidset
                 else closed_by_tidset[tidset])
        assert items <= cover.items
        assert cover.support == bs.popcount(tidset)
    for tidset, pattern in closed_by_tidset.items():
        assert longest_by_tidset.get(tidset) == pattern.items


@given(views(), min_sups,
       st.sampled_from(sorted(set(miner_names()))))
@settings(max_examples=60, deadline=None)
def test_every_miner_satisfies_the_forest_contract(view, min_sup,
                                                   algorithm):
    pattern_set = mine_patterns(view, min_sup, algorithm=algorithm)
    pattern_set.validate()
    for pattern in pattern_set:
        expected = bs.universe(view.n_records)
        for item in pattern.items:
            expected &= view.item_tidsets[item]
        assert pattern.tidset == expected
        assert pattern.support == bs.popcount(pattern.tidset)
        if pattern.items:
            assert pattern.support >= min_sup


@given(views(), min_sups,
       st.lists(st.booleans(), min_size=24, max_size=24))
@settings(max_examples=40, deadline=None)
def test_frequent_prefix_trees_drive_all_forest_policies(view, min_sup,
                                                         label_flags):
    """The permutation engine's class-support recursion must agree
    across storage policies on all-frequent forests, exactly as it
    does on closed ones."""
    pattern_set = mine_patterns(view, min_sup, algorithm="fpgrowth")
    if not len(pattern_set):
        return
    indicator = np.array(label_flags[:view.n_records], dtype=bool)
    outputs = [
        PatternForest(pattern_set, view.n_records,
                      policy).class_supports(indicator)
        for policy in ("bitset", "full", "diffsets")
    ]
    assert np.array_equal(outputs[0], outputs[1])
    assert np.array_equal(outputs[0], outputs[2])


@given(views(), min_sups, st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_max_length_filters_uniformly_across_all_frequent(view, min_sup,
                                                          max_length):
    capped = mine_patterns(view, min_sup, algorithm="apriori",
                           max_length=max_length)
    full = mine_patterns(view, min_sup, algorithm="apriori")
    expected = sorted((p.items, p.support) for p in full
                      if len(p.items) <= max_length)
    assert sorted((p.items, p.support) for p in capped) == expected
