"""Property-based tests for representative-pattern selection."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import mine_closed, select_representatives


@st.composite
def closed_forests(draw):
    """A closed-pattern forest mined from a random vertical database."""
    n_records = draw(st.integers(min_value=2, max_value=24))
    n_items = draw(st.integers(min_value=1, max_value=7))
    tidsets = [
        draw(st.integers(min_value=0, max_value=(1 << n_records) - 1))
        for _ in range(n_items)
    ]
    min_sup = draw(st.integers(min_value=1, max_value=4))
    return mine_closed(tidsets, n_records, min_sup)


deltas = st.floats(min_value=0.0, max_value=0.95)


@given(closed_forests(), deltas, deltas)
@settings(max_examples=60, deadline=None)
def test_reduction_monotone_in_delta(patterns, delta_a, delta_b):
    lo, hi = sorted((delta_a, delta_b))
    n_lo = select_representatives(patterns, delta=lo).n_clusters
    n_hi = select_representatives(patterns, delta=hi).n_clusters
    assert n_hi <= n_lo


@given(closed_forests(), deltas)
@settings(max_examples=60, deadline=None)
def test_every_pattern_assigned_to_retained_ancestor(patterns, delta):
    selection = select_representatives(patterns, delta=delta)
    retained = {p.node_id for p in selection.representatives}
    by_id = {p.node_id: p for p in patterns}
    for pattern in patterns:
        rep_id = selection.cluster_of[pattern.node_id]
        assert rep_id in retained
        rep = by_id[rep_id]
        # Ancestor-or-self: the representative's record set contains
        # the member's.
        assert pattern.tidset & ~rep.tidset == 0
        assert pattern.support <= rep.support


@given(closed_forests(), deltas)
@settings(max_examples=60, deadline=None)
def test_edge_criterion_respected(patterns, delta):
    """Non-representative members merged via an edge whose support
    ratio clears 1 - delta."""
    selection = select_representatives(patterns, delta=delta)
    by_id = {p.node_id: p for p in patterns}
    for pattern in patterns:
        rep_id = selection.cluster_of[pattern.node_id]
        if rep_id == pattern.node_id:
            continue
        parent = by_id[pattern.parent_id]
        assert pattern.support >= (1.0 - delta) * parent.support


@given(closed_forests(), deltas)
@settings(max_examples=60, deadline=None)
def test_delta_zero_is_identity(patterns, delta):
    """delta=0 keeps every pattern (closed patterns cannot tie along
    an edge)."""
    selection = select_representatives(patterns, delta=0.0)
    assert selection.n_clusters == len(patterns)


@given(closed_forests(), deltas)
@settings(max_examples=60, deadline=None)
def test_members_partition_the_forest(patterns, delta):
    selection = select_representatives(patterns, delta=delta)
    seen = []
    for representative in selection.representatives:
        seen.extend(selection.members(representative.node_id))
    assert sorted(seen) == sorted(p.node_id for p in patterns)
