"""Property-based tests for the bitset substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bitset as bs

index_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=60)


@given(index_sets)
def test_roundtrip_indices(ids):
    bits = bs.bitset_from_indices(ids)
    assert set(bs.bitset_to_indices(bits)) == ids


@given(index_sets)
def test_popcount_is_cardinality(ids):
    assert bs.popcount(bs.bitset_from_indices(ids)) == len(ids)


@given(index_sets, index_sets)
def test_intersection_is_set_intersection(a, b):
    bits = bs.bitset_from_indices(a) & bs.bitset_from_indices(b)
    assert set(bs.bitset_to_indices(bits)) == a & b


@given(index_sets, index_sets)
def test_union_is_set_union(a, b):
    bits = bs.bitset_from_indices(a) | bs.bitset_from_indices(b)
    assert set(bs.bitset_to_indices(bits)) == a | b


@given(index_sets, index_sets)
def test_difference_is_set_difference(a, b):
    bits = bs.bitset_from_indices(a) & ~bs.bitset_from_indices(b)
    assert set(bs.bitset_to_indices(bits)) == a - b


@given(index_sets, index_sets)
def test_subset_agrees_with_sets(a, b):
    assert bs.is_subset(bs.bitset_from_indices(a),
                        bs.bitset_from_indices(b)) == (a <= b)


@given(index_sets)
def test_complement_partitions_universe(ids):
    n = 301
    bits = bs.bitset_from_indices(ids, n)
    other = bs.complement(bits, n)
    assert bits & other == 0
    assert bits | other == bs.universe(n)


@given(index_sets)
@settings(max_examples=40)
def test_numpy_bridge_agrees(ids):
    n = 301
    bits = bs.bitset_from_indices(ids, n)
    assert bs.to_numpy_indices(bits, n).tolist() == sorted(ids)


@given(st.lists(st.booleans(), max_size=200))
def test_bool_sequence_roundtrip(flags):
    bits = bs.bitset_from_bool_sequence(flags)
    expected = {i for i, f in enumerate(flags) if f}
    assert set(bs.bitset_to_indices(bits)) == expected
