"""Property-based tests for the statistics substrate.

Invariants checked here are the ones the correction machinery silently
relies on: the p-value buffer equals the definitional Fisher test for
every reachable support, p-values are valid probabilities, and the
two-tailed test dominates each one-tailed test.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.stats import (
    PValueBuffer,
    chi2_sf,
    fisher_left_tailed,
    fisher_right_tailed,
    fisher_two_tailed,
    pmf_table,
    support_bounds,
)


@st.composite
def rule_parameters(draw):
    n = draw(st.integers(min_value=2, max_value=200))
    n_c = draw(st.integers(min_value=0, max_value=n))
    supp_x = draw(st.integers(min_value=0, max_value=n))
    low, high = max(0, n_c + supp_x - n), min(n_c, supp_x)
    k = draw(st.integers(min_value=low, max_value=high))
    return n, n_c, supp_x, k


@given(rule_parameters())
def test_pvalue_is_probability(params):
    n, n_c, supp_x, k = params
    p = fisher_two_tailed(k, n, n_c, supp_x)
    assert 0.0 < p <= 1.0


@given(rule_parameters())
def test_two_tailed_at_least_each_tail_mass_beyond(params):
    """p_two >= P(more extreme on the observed side)."""
    n, n_c, supp_x, k = params
    p_two = fisher_two_tailed(k, n, n_c, supp_x)
    right = fisher_right_tailed(k, n, n_c, supp_x)
    left = fisher_left_tailed(k, n, n_c, supp_x)
    assert p_two >= min(left, right) - 1e-12


@given(rule_parameters())
def test_observed_outcome_always_counted(params):
    """p includes at least pmf(k) itself."""
    n, n_c, supp_x, k = params
    low, _ = support_bounds(n, n_c, supp_x)
    table = pmf_table(n, n_c, supp_x)
    assert fisher_two_tailed(k, n, n_c, supp_x) >= \
        table[k - low] * (1 - 1e-9)


@given(rule_parameters())
@settings(max_examples=60)
def test_buffer_equals_definition(params):
    """Buffer lookups must equal the sum over E = {j: H(j) <= H(k)}."""
    n, n_c, supp_x, k = params
    low, high = support_bounds(n, n_c, supp_x)
    table = pmf_table(n, n_c, supp_x)
    buffer = PValueBuffer(n, n_c, supp_x)
    h_k = table[k - low]
    expected = sum(h for h in table if h <= h_k * (1.0 + 1e-7))
    assert buffer.p_value(k) == min(expected, 1.0) or \
        abs(buffer.p_value(k) - min(expected, 1.0)) < 1e-9


@given(rule_parameters())
def test_pmf_sums_to_one(params):
    n, n_c, supp_x, _ = params
    assert math.isclose(sum(pmf_table(n, n_c, supp_x)), 1.0,
                        rel_tol=1e-9)


@given(st.integers(min_value=2, max_value=400),
       st.integers(min_value=1, max_value=399))
def test_monotone_in_confidence_upper_tail(n, supp_x):
    """For fixed coverage, higher support (above the mean) means a
    smaller or equal p-value — the Figure 1 shape."""
    assume(supp_x < n)
    n_c = n // 2
    low, high = support_bounds(n, n_c, supp_x)
    buffer = PValueBuffer(n, n_c, supp_x)
    mean = supp_x * n_c / n
    previous = None
    for k in range(int(math.ceil(mean)), high + 1):
        p = buffer.p_value(k)
        if previous is not None:
            assert p <= previous * (1 + 1e-9)
        previous = p


@given(st.floats(min_value=0.0, max_value=100.0),
       st.integers(min_value=1, max_value=20))
def test_chi2_sf_is_probability(x, dof):
    p = chi2_sf(x, dof)
    assert 0.0 <= p <= 1.0


@given(st.floats(min_value=0.01, max_value=50.0),
       st.floats(min_value=0.01, max_value=50.0),
       st.integers(min_value=1, max_value=10))
def test_chi2_sf_monotone_decreasing(x1, x2, dof):
    lo, hi = sorted((x1, x2))
    assert chi2_sf(hi, dof) <= chi2_sf(lo, dof) + 1e-12
