"""Property-based tests for interestingness measure invariants."""

from __future__ import annotations

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.interest import (
    ContingencyTable,
    certainty_factor,
    conviction,
    cosine,
    gini_gain,
    jaccard,
    kappa,
    leverage,
    lift,
    mutual_information,
    yules_q,
    yules_y,
)


@st.composite
def tables(draw):
    """Random valid contingency tables in rule-mining coordinates."""
    n = draw(st.integers(min_value=4, max_value=5000))
    class_support = draw(st.integers(min_value=1, max_value=n - 1))
    coverage = draw(st.integers(min_value=1, max_value=n))
    low = max(0, class_support + coverage - n)
    high = min(class_support, coverage)
    support = draw(st.integers(min_value=low, max_value=high))
    return ContingencyTable(support=support, coverage=coverage,
                            class_support=class_support, n=n)


@given(tables())
def test_lift_and_leverage_agree_in_sign(table):
    sign_lift = lift(table) - 1.0
    sign_leverage = leverage(table)
    assert (sign_lift > 1e-12) == (sign_leverage > 1e-12) or \
        math.isclose(sign_lift, 0.0, abs_tol=1e-9) or \
        math.isclose(sign_leverage, 0.0, abs_tol=1e-9)


@given(tables())
def test_bounded_measures_stay_in_range(table):
    assert 0.0 <= cosine(table) <= 1.0 + 1e-12
    assert 0.0 <= jaccard(table) <= 1.0
    assert -1.0 <= yules_q(table) <= 1.0
    assert -1.0 - 1e-12 <= yules_y(table) <= 1.0 + 1e-12
    assert -1.0 - 1e-12 <= kappa(table) <= 1.0 + 1e-12
    assert -1.0 - 1e-12 <= certainty_factor(table) <= 1.0 + 1e-12


@given(tables())
def test_information_measures_nonnegative(table):
    assert mutual_information(table) >= 0.0
    assert gini_gain(table) >= 0.0


@given(tables())
def test_yules_q_and_y_agree_in_sign(table):
    q, y = yules_q(table), yules_y(table)
    assert q * y >= -1e-12


@given(tables())
def test_conviction_positive(table):
    value = conviction(table)
    assert value > 0.0 or value == math.inf


@given(tables())
def test_leverage_bounds(table):
    """|leverage| <= 0.25 for any 2x2 distribution."""
    assert abs(leverage(table)) <= 0.25 + 1e-12


@given(tables())
def test_cells_consistent(table):
    a, b, c, d = table.cells
    assert a + b == table.coverage
    assert a + c == table.class_support
    assert a + b + c + d == table.n


@given(tables())
def test_mi_zero_iff_independent_cells(table):
    a, b, c, d = table.cells
    # Exact independence in counts: a*d == b*c.
    if a * d == b * c:
        assert mutual_information(table) <= 1e-9
        assert abs(leverage(table)) <= 1e-9
