"""Property-based tests for CPAR induction and the Quest generator."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify import CPARClassifier, record_item_sets
from repro.classify.cpar import foil_gain
from repro.data.dataset import Dataset
from repro.data.quest import QuestConfig, generate_quest

# ----------------------------------------------------------------------
# FOIL gain
# ----------------------------------------------------------------------

weights = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@given(weights, weights, weights, weights)
def test_foil_gain_finite(p0, n0, p1, n1):
    value = foil_gain(p0, n0, p1, n1)
    assert value == value  # not NaN
    assert value != float("inf")


@given(weights, weights)
def test_foil_gain_zero_when_nothing_kept(p0, n0):
    assert foil_gain(p0, n0, 0.0, 5.0) == 0.0


@given(st.floats(min_value=0.1, max_value=50.0),
       st.floats(min_value=0.0, max_value=50.0),
       st.floats(min_value=0.1, max_value=50.0))
def test_foil_gain_positive_when_purity_improves(p0, n0, p1):
    """Keeping positives while shedding all negatives never hurts."""
    if n0 == 0.0:
        return
    assert foil_gain(p0, n0, min(p1, p0), 0.0) >= 0.0


# ----------------------------------------------------------------------
# CPAR induction
# ----------------------------------------------------------------------

@st.composite
def labelled_datasets(draw):
    n_records = draw(st.integers(min_value=6, max_value=24))
    n_attributes = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    records = [
        [f"v{rng.randrange(2)}" for __ in range(n_attributes)]
        for __ in range(n_records)
    ]
    labels = [rng.randrange(2) for __ in range(n_records)]
    labels[0], labels[1] = 0, 1
    return Dataset.from_records(records, labels, name=f"p{seed}")


@settings(max_examples=20, deadline=None)
@given(labelled_datasets())
def test_cpar_rules_are_internally_consistent(dataset):
    fitted = CPARClassifier(min_gain=0.1).fit(dataset)
    for rule in fitted.rules:
        assert 0 <= rule.support <= rule.coverage
        assert 0.0 <= rule.confidence <= 1.0
        assert 0.0 <= rule.p_value <= 1.0
        assert rule.length <= fitted.max_rule_length


@settings(max_examples=20, deadline=None)
@given(labelled_datasets())
def test_cpar_prediction_total(dataset):
    """Every record gets a prediction in the class range."""
    fitted = CPARClassifier(min_gain=0.1).fit(dataset)
    for items in record_item_sets(dataset):
        prediction = fitted.predict_itemset(items)
        assert 0 <= prediction.class_index < dataset.n_classes


@settings(max_examples=15, deadline=None)
@given(labelled_datasets(),
       st.sampled_from(["bonferroni", "bh", "holm"]))
def test_cpar_filtering_is_a_subset(dataset, correction):
    fitted = CPARClassifier(min_gain=0.1).fit(dataset)
    filtered = fitted.filtered(correction, 0.05)
    original = {(r.items, r.class_index) for r in fitted.rules}
    kept = {(r.items, r.class_index) for r in filtered.rules}
    assert kept <= original


# ----------------------------------------------------------------------
# Quest generator
# ----------------------------------------------------------------------

quest_configs = st.builds(
    QuestConfig,
    n_transactions=st.integers(min_value=5, max_value=60),
    avg_transaction_length=st.floats(min_value=1.0, max_value=8.0),
    avg_pattern_length=st.floats(min_value=1.0, max_value=5.0),
    n_items=st.integers(min_value=5, max_value=40),
    n_patterns=st.integers(min_value=1, max_value=8),
    correlation=st.floats(min_value=0.0, max_value=1.0),
    corruption_mean=st.floats(min_value=0.0, max_value=0.8),
)


@settings(max_examples=25, deadline=None)
@given(quest_configs, st.integers(min_value=0, max_value=2**16))
def test_quest_transactions_well_formed(config, seed):
    data = generate_quest(config, seed=seed)
    assert data.n_transactions == config.n_transactions
    for transaction in data.transactions:
        assert transaction == sorted(set(transaction))
        assert transaction
        assert all(0 <= item < config.n_items for item in transaction)


@settings(max_examples=25, deadline=None)
@given(quest_configs, st.integers(min_value=0, max_value=2**16))
def test_quest_patterns_within_universe(config, seed):
    data = generate_quest(config, seed=seed)
    assert len(data.patterns) == config.n_patterns
    for pattern in data.patterns:
        assert pattern
        assert all(0 <= item < config.n_items for item in pattern)
    assert abs(sum(data.pattern_weights) - 1.0) < 1e-9


@settings(max_examples=15, deadline=None)
@given(quest_configs, st.integers(min_value=0, max_value=2**16))
def test_quest_deterministic(config, seed):
    first = generate_quest(config, seed=seed)
    second = generate_quest(config, seed=seed)
    assert first.transactions == second.transactions
