"""Property-based tests for contrast-set mining."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.contrast import find_contrast_sets, stucco_alpha_levels
from repro.contrast.stucco import _chi2_2xg
from repro.data.dataset import Dataset
from repro.stats.chi2 import chi2_statistic

alphas = st.floats(min_value=1e-6, max_value=0.5, allow_nan=False)
level_counts = st.dictionaries(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=10_000),
    min_size=1, max_size=6)


@given(alphas, level_counts)
def test_alpha_levels_never_loosen(alpha, counts):
    levels = stucco_alpha_levels(alpha, counts)
    ordered = [levels[k] for k in sorted(levels)]
    for earlier, later in zip(ordered, ordered[1:]):
        assert later <= earlier


@given(alphas, level_counts)
def test_alpha_levels_bounded_by_layer_budget(alpha, counts):
    levels = stucco_alpha_levels(alpha, counts)
    for level, value in levels.items():
        count = max(1, counts[level])
        assert value <= alpha / (2 ** level * count) + 1e-18


@given(alphas, level_counts)
def test_total_error_budget_never_exceeds_alpha(alpha, counts):
    """Union bound over all levels: sum of per-level Bonferroni
    budgets is at most ``alpha * sum(2^-l) < alpha``."""
    levels = stucco_alpha_levels(alpha, counts)
    total = sum(levels[level] * max(1, counts[level])
                for level in levels)
    assert total <= alpha + 1e-15


@given(st.integers(min_value=0, max_value=40),
       st.integers(min_value=0, max_value=40),
       st.integers(min_value=0, max_value=40),
       st.integers(min_value=0, max_value=40))
def test_chi2_2xg_matches_2x2_for_two_groups(a, b, c, d):
    statistic, dof = _chi2_2xg([a, c], [b, d])
    if (a + b) > 0 and (c + d) > 0 and (a + c) > 0 and (b + d) > 0:
        assert dof == 1
        assert statistic == chi2_statistic(a, c, b, d) or \
            abs(statistic - chi2_statistic(a, c, b, d)) < 1e-9


@given(st.lists(st.integers(min_value=0, max_value=30),
                min_size=2, max_size=5),
       st.lists(st.integers(min_value=0, max_value=30),
                min_size=2, max_size=5))
def test_chi2_2xg_nonnegative(containing, missing):
    size = min(len(containing), len(missing))
    statistic, dof = _chi2_2xg(containing[:size], missing[:size])
    assert statistic >= 0.0
    assert dof >= 1


@st.composite
def grouped_datasets(draw):
    n_records = draw(st.integers(min_value=8, max_value=40))
    n_attributes = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    records = [
        [f"v{rng.randrange(2)}" for __ in range(n_attributes)]
        for __ in range(n_records)
    ]
    labels = [rng.randrange(2) for __ in range(n_records)]
    labels[0], labels[1] = 0, 1
    return Dataset.from_records(records, labels, name=f"c{seed}")


@settings(max_examples=25, deadline=None)
@given(grouped_datasets(),
       st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
def test_bookkeeping_identity(dataset, min_deviation):
    result = find_contrast_sets(dataset, min_deviation=min_deviation,
                                max_length=2)
    total = sum(result.candidates_per_level.values())
    assert (result.n_found + result.rejected_large
            + result.rejected_significant) == total


@settings(max_examples=25, deadline=None)
@given(grouped_datasets())
def test_corrections_are_nested(dataset):
    naive = find_contrast_sets(dataset, min_deviation=0.01,
                               correction="none", max_length=2)
    stucco = find_contrast_sets(dataset, min_deviation=0.01,
                                correction="stucco", max_length=2)
    naive_keys = {c.items for c in naive.contrast_sets}
    stucco_keys = {c.items for c in stucco.contrast_sets}
    assert stucco_keys <= naive_keys


@settings(max_examples=25, deadline=None)
@given(grouped_datasets())
def test_survivors_meet_their_level_alpha(dataset):
    result = find_contrast_sets(dataset, min_deviation=0.05,
                                max_length=2)
    for contrast in result.contrast_sets:
        assert contrast.p_value <= \
            result.alpha_per_level[contrast.level]
        assert contrast.deviation >= 0.05
