"""Property-based tests for correction procedures.

These check the decision-theoretic invariants: Bonferroni is never more
liberal than BH; every selected rule clears its threshold; BH's
step-up cut-off is one of the observed p-values or zero.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corrections import bh_step_up

p_lists = st.lists(
    st.floats(min_value=1e-12, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=80)
alphas = st.floats(min_value=0.001, max_value=0.5)


@given(p_lists, alphas)
def test_bh_threshold_is_observed_or_zero(p_values, alpha):
    threshold = bh_step_up(p_values, alpha)
    assert threshold == 0.0 or threshold in p_values


@given(p_lists, alphas)
def test_bh_no_more_conservative_than_bonferroni(p_values, alpha):
    if not p_values:
        return
    n = len(p_values)
    bonferroni_cut = alpha / n
    bh_cut = bh_step_up(p_values, alpha)
    accepted_bc = sum(1 for p in p_values if p <= bonferroni_cut)
    accepted_bh = sum(1 for p in p_values if p <= bh_cut)
    assert accepted_bh >= accepted_bc


@given(p_lists, alphas)
def test_bh_selected_satisfy_bound(p_values, alpha):
    """Every accepted p-value satisfies p_(i) <= i*alpha/n for its rank."""
    threshold = bh_step_up(p_values, alpha)
    if threshold == 0.0:
        return
    ordered = sorted(p_values)
    n = len(p_values)
    k = sum(1 for p in ordered if p <= threshold)
    # Cross-multiplied form, matching the implementation's exact
    # boundary decision: the divided form ``p <= k * alpha / n`` can
    # lose an ulp to the division and reject an exact tie (e.g.
    # ``p == alpha`` with ``k == n``, where ``n * alpha / n != alpha``
    # in floats).
    assert ordered[k - 1] * n <= k * alpha


@given(p_lists, alphas, alphas)
def test_bh_monotone_in_alpha(p_values, a1, a2):
    lo, hi = sorted((a1, a2))
    assert bh_step_up(p_values, lo) <= bh_step_up(p_values, hi)


@given(p_lists, alphas)
def test_bh_invariant_under_permutation(p_values, alpha):
    forward = bh_step_up(p_values, alpha)
    backward = bh_step_up(list(reversed(p_values)), alpha)
    assert forward == backward


@given(st.integers(min_value=0, max_value=30),
       st.integers(min_value=1, max_value=60), alphas)
def test_bonferroni_threshold_scales(n_extra, n_tests, alpha):
    """Adding hypotheses can only lower the Bonferroni threshold."""
    assert alpha / (n_tests + n_extra) <= alpha / n_tests
