"""Property-based tests for the mining substrate.

The load-bearing invariant: the closed miner agrees with brute-force
Apriori on arbitrary random inputs — closed patterns are exactly the
support-maximal frequent patterns, one per distinct tidset.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bitset as bs
from repro.mining import PatternForest, mine_apriori, mine_closed


@st.composite
def tidset_instances(draw):
    n_records = draw(st.integers(min_value=4, max_value=25))
    n_items = draw(st.integers(min_value=1, max_value=6))
    tidsets = [
        draw(st.integers(min_value=0, max_value=(1 << n_records) - 1))
        for _ in range(n_items)
    ]
    min_sup = draw(st.integers(min_value=1, max_value=4))
    return tidsets, n_records, min_sup


@given(tidset_instances())
@settings(max_examples=60, deadline=None)
def test_closed_are_support_maximal_frequent(instance):
    tidsets, n_records, min_sup = instance
    closed = mine_closed(tidsets, n_records, min_sup)
    frequent = mine_apriori(tidsets, n_records, min_sup)
    by_tidset = {}
    for fp in frequent:
        best = by_tidset.get(fp.tidset)
        if best is None or len(fp.items) > len(best):
            by_tidset[fp.tidset] = fp.items
    got = {(p.tidset, p.items) for p in closed if p.items}
    got.discard((bs.universe(n_records), frozenset()))
    expected = {(t, items) for t, items in by_tidset.items()}
    assert got == expected


@given(tidset_instances())
@settings(max_examples=60, deadline=None)
def test_closed_supports_and_min_sup(instance):
    tidsets, n_records, min_sup = instance
    for p in mine_closed(tidsets, n_records, min_sup):
        assert p.support >= min_sup
        expected = bs.universe(n_records)
        for item in p.items:
            expected &= tidsets[item]
        assert p.tidset == expected


@given(tidset_instances())
@settings(max_examples=40, deadline=None)
def test_tree_parents_are_supersets(instance):
    tidsets, n_records, min_sup = instance
    patterns = mine_closed(tidsets, n_records, min_sup)
    for p in patterns:
        if p.parent_id >= 0:
            parent = patterns[p.parent_id]
            assert bs.is_subset(p.tidset, parent.tidset)
            assert parent.node_id < p.node_id


@given(tidset_instances(),
       st.lists(st.booleans(), min_size=25, max_size=25))
@settings(max_examples=40, deadline=None)
def test_forest_policies_agree(instance, label_flags):
    import numpy as np
    tidsets, n_records, min_sup = instance
    patterns = mine_closed(tidsets, n_records, min_sup)
    if not patterns:
        return
    labels = np.array(label_flags[:n_records], dtype=bool)
    outputs = [
        PatternForest(patterns, n_records, policy).class_supports(labels)
        for policy in ("full", "diffsets", "bitset")
    ]
    assert (outputs[0] == outputs[1]).all()
    assert (outputs[1] == outputs[2]).all()


@given(tidset_instances())
@settings(max_examples=30, deadline=None)
def test_apriori_antimonotone(instance):
    tidsets, n_records, min_sup = instance
    supports = {fp.items: fp.support
                for fp in mine_apriori(tidsets, n_records, min_sup)}
    for items, support in supports.items():
        for item in items:
            smaller = items - {item}
            if smaller:
                assert supports[smaller] >= support
