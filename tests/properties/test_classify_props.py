"""Property-based tests for the associative-classification subsystem."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify import CBAClassifier, record_item_sets, stratified_folds
from repro.classify.cmar import max_chi2
from repro.classify.ranking import rank_rules
from repro.data.dataset import Dataset
from repro.mining.rules import ClassRule, mine_class_rules
from repro.stats.chi2 import chi2_statistic

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

labels_strategy = st.lists(st.integers(min_value=0, max_value=2),
                           min_size=4, max_size=60).filter(
                               lambda ls: len(set(ls)) >= 2)


@st.composite
def small_datasets(draw):
    """Random categorical datasets with 2 classes, 6-30 records."""
    n_records = draw(st.integers(min_value=6, max_value=30))
    n_attributes = draw(st.integers(min_value=2, max_value=4))
    cardinality = draw(st.integers(min_value=2, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    records = [
        [f"v{rng.randrange(cardinality)}" for _ in range(n_attributes)]
        for _ in range(n_records)
    ]
    labels = [rng.randrange(2) for _ in range(n_records)]
    # ensure both classes occur
    labels[0] = 0
    labels[1] = 1
    return Dataset.from_records(records, labels, name=f"h{seed}")


@st.composite
def rule_lists(draw):
    """Arbitrary ClassRule lists for ranking properties."""
    n = draw(st.integers(min_value=0, max_value=12))
    rules = []
    for i in range(n):
        coverage = draw(st.integers(min_value=1, max_value=50))
        support = draw(st.integers(min_value=0, max_value=coverage))
        rules.append(ClassRule(
            pattern_id=draw(st.integers(min_value=0, max_value=5)),
            items=frozenset(draw(st.sets(
                st.integers(min_value=0, max_value=6), max_size=4))),
            class_index=draw(st.integers(min_value=0, max_value=1)),
            coverage=coverage,
            support=support,
            confidence=support / coverage,
            p_value=draw(st.floats(min_value=0.0, max_value=1.0,
                                   allow_nan=False)),
        ))
    return rules


# ----------------------------------------------------------------------
# stratified folds
# ----------------------------------------------------------------------

@given(labels_strategy, st.integers(min_value=2, max_value=4))
def test_folds_partition_exactly(labels, k):
    if k > len(labels):
        return
    folds = stratified_folds(labels, k, random.Random(0))
    seen = sorted(r for fold in folds for r in fold)
    assert seen == list(range(len(labels)))


@given(labels_strategy, st.integers(min_value=2, max_value=4))
def test_fold_sizes_within_one(labels, k):
    if k > len(labels):
        return
    folds = stratified_folds(labels, k, random.Random(0))
    sizes = [len(fold) for fold in folds]
    assert max(sizes) - min(sizes) <= 1


@given(labels_strategy, st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=2**16))
def test_folds_deterministic(labels, k, seed):
    if k > len(labels):
        return
    first = stratified_folds(labels, k, random.Random(seed))
    second = stratified_folds(labels, k, random.Random(seed))
    assert first == second


# ----------------------------------------------------------------------
# ranking
# ----------------------------------------------------------------------

@given(rule_lists())
def test_ranking_is_permutation(rules):
    ranked = rank_rules(rules)
    assert sorted(map(id, ranked)) == sorted(map(id, rules))


@given(rule_lists())
def test_cba_rank_confidence_monotone(rules):
    ranked = rank_rules(rules)
    for earlier, later in zip(ranked, ranked[1:]):
        assert earlier.confidence >= later.confidence


@given(rule_lists())
def test_significance_rank_p_monotone(rules):
    ranked = rank_rules(rules, order="significance")
    for earlier, later in zip(ranked, ranked[1:]):
        assert earlier.p_value <= later.p_value


# ----------------------------------------------------------------------
# max chi-square bound
# ----------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=60),
       st.integers(min_value=1, max_value=60),
       st.integers(min_value=2, max_value=120))
def test_max_chi2_dominates_all_feasible_tables(coverage, n_c, n):
    if coverage >= n or n_c >= n:
        return
    bound = max_chi2(coverage, n_c, n)
    lower = max(0, coverage + n_c - n)
    upper = min(coverage, n_c)
    for support in range(lower, upper + 1):
        a = support
        b = coverage - support
        c = n_c - support
        d = n - n_c - b
        assert chi2_statistic(a, b, c, d) <= bound + 1e-9


# ----------------------------------------------------------------------
# CBA classifier invariants
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(small_datasets())
def test_cba_training_errors_never_worse_than_default(dataset):
    ruleset = mine_class_rules(dataset, min_sup=1)
    fitted = CBAClassifier().fit(ruleset)
    majority = max(dataset.class_support(c)
                   for c in range(dataset.n_classes))
    assert fitted.training_errors <= dataset.n_records - majority


@settings(max_examples=25, deadline=None)
@given(small_datasets())
def test_cba_training_errors_match_predictions(dataset):
    """The staged error count equals the errors the final classifier
    actually makes on the training data."""
    ruleset = mine_class_rules(dataset, min_sup=1)
    fitted = CBAClassifier().fit(ruleset)
    sets = record_item_sets(dataset)
    predicted = fitted.predict(sets)
    errors = sum(1 for p, a in zip(predicted, dataset.class_labels)
                 if p != a)
    # During fitting a record is charged to the first kept rule that
    # matches it; prediction fires the first kept rule that matches.
    # Same order, same list, so the counts agree exactly.
    assert errors == fitted.training_errors


@settings(max_examples=25, deadline=None)
@given(small_datasets())
def test_cba_kept_rules_follow_precedence(dataset):
    ruleset = mine_class_rules(dataset, min_sup=1)
    fitted = CBAClassifier().fit(ruleset)
    ranked = rank_rules(ruleset.rules)
    positions = {(rule.items, rule.class_index): i
                 for i, rule in enumerate(ranked)}
    kept_positions = [positions[(rule.items, rule.class_index)]
                      for rule in fitted.rules]
    assert kept_positions == sorted(kept_positions)
