"""Property-based tests for the frequency-significance subsystem and
its distribution substrates."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bitset as bs
from repro.frequency import NullModel, calibrate_cutoff
from repro.frequency.nullmodel import pattern_null_probability
from repro.stats.binomial import (
    binomial_cdf,
    binomial_pmf,
    binomial_sf,
    binomial_test_upper,
)
from repro.stats.poisson import poisson_cdf, poisson_sf, poisson_test_upper

probabilities = st.floats(min_value=0.0, max_value=1.0,
                          allow_nan=False)
small_n = st.integers(min_value=0, max_value=80)
means = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)


# ----------------------------------------------------------------------
# binomial
# ----------------------------------------------------------------------

@given(small_n, probabilities)
def test_binomial_pmf_sums_to_one(n, p):
    total = sum(binomial_pmf(k, n, p) for k in range(n + 1))
    assert abs(total - 1.0) < 1e-9


@given(small_n, probabilities)
def test_binomial_cdf_sf_complementary(n, p):
    for k in range(0, n + 1, max(1, n // 6)):
        assert abs(binomial_cdf(k, n, p)
                   + binomial_sf(k, n, p) - 1.0) < 1e-9


@given(small_n, probabilities)
def test_binomial_cdf_monotone(n, p):
    values = [binomial_cdf(k, n, p) for k in range(n + 1)]
    for a, b in zip(values, values[1:]):
        assert a <= b + 1e-12


@given(small_n, probabilities)
def test_binomial_upper_test_antitone(n, p):
    values = [binomial_test_upper(k, n, p) for k in range(n + 1)]
    for a, b in zip(values, values[1:]):
        assert a >= b - 1e-12


@given(small_n, probabilities)
def test_binomial_upper_test_equals_tail_sum(n, p):
    if n == 0:
        return
    k = n // 2
    tail = sum(binomial_pmf(i, n, p) for i in range(k, n + 1))
    assert abs(binomial_test_upper(k, n, p) - min(1.0, tail)) < 1e-9


# ----------------------------------------------------------------------
# poisson
# ----------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=60), means)
def test_poisson_cdf_sf_complementary(k, mean):
    assert abs(poisson_cdf(k, mean) + poisson_sf(k, mean) - 1.0) < 1e-9


@given(means)
def test_poisson_upper_test_antitone(mean):
    values = [poisson_test_upper(k, mean) for k in range(40)]
    for a, b in zip(values, values[1:]):
        assert a >= b - 1e-12


@given(st.integers(min_value=0, max_value=40), means)
def test_poisson_tails_in_unit_interval(k, mean):
    assert 0.0 <= poisson_cdf(k, mean) <= 1.0
    assert 0.0 <= poisson_sf(k, mean) <= 1.0


# ----------------------------------------------------------------------
# null model
# ----------------------------------------------------------------------

@given(st.lists(probabilities, min_size=1, max_size=8))
def test_pattern_probability_in_unit_interval(frequencies):
    items = list(range(len(frequencies)))
    value = pattern_null_probability(frequencies, items)
    assert 0.0 <= value <= 1.0


@given(st.lists(probabilities, min_size=2, max_size=8))
def test_adding_an_item_never_raises_probability(frequencies):
    items = list(range(len(frequencies)))
    shorter = pattern_null_probability(frequencies, items[:-1])
    longer = pattern_null_probability(frequencies, items)
    assert longer <= shorter + 1e-12


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=4, max_value=30),
       st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=2**16))
def test_null_sample_stays_in_universe(n_records, n_items, seed):
    rng = random.Random(seed)
    tidsets = []
    for __ in range(n_items):
        bits = 0
        for r in range(n_records):
            if rng.random() < 0.5:
                bits |= 1 << r
        tidsets.append(bits)
    model = NullModel(tidsets, n_records)
    sampled = model.sample_tidsets(random.Random(seed + 1))
    limit = bs.universe(n_records)
    assert len(sampled) == n_items
    for bits in sampled:
        assert bits & ~limit == 0


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**16),
       st.integers(min_value=1, max_value=4))
def test_calibration_always_meets_budget(seed, n_resamples):
    rng = random.Random(seed)
    n_records = 40
    tidsets = []
    for __ in range(5):
        bits = 0
        for r in range(n_records):
            if rng.random() < 0.5:
                bits |= 1 << r
        tidsets.append(bits)
    calibration = calibrate_cutoff(
        tidsets, n_records, min_sup=4, n_resamples=n_resamples,
        seed=seed)
    assert calibration.expected_false_positives(
        calibration.threshold) <= calibration.false_positive_budget
