"""Property-based tests for the stepwise and adaptive procedures.

These pin the decision-theoretic relations that hold for *every* input:
Bonferroni ⊆ Holm ⊆ Hochberg (rejection sets), Šidák ⊇ Bonferroni,
q-values are monotone and reduce to BH at pi0 = 1, and the BKY stage-2
level never shrinks below stage 1's.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.corrections import bh_step_up, estimate_pi0, q_values
from repro.corrections.stepwise import sidak_threshold

p_lists = st.lists(
    st.floats(min_value=1e-12, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=80)
alphas = st.floats(min_value=0.001, max_value=0.5)


def holm_threshold(p_values, alpha):
    """Reference step-down scan (cross-multiplied, as the library)."""
    n = len(p_values)
    threshold = 0.0
    for i, p in enumerate(sorted(p_values), start=1):
        if p * (n - i + 1) > alpha:
            break
        threshold = p
    return threshold


def hochberg_threshold(p_values, alpha):
    """Reference step-up scan (cross-multiplied, as the library)."""
    ordered = sorted(p_values)
    n = len(ordered)
    for i in range(n, 0, -1):
        if ordered[i - 1] * (n - i + 1) <= alpha:
            return ordered[i - 1]
    return 0.0


@given(p_lists, alphas)
def test_holm_rejects_superset_of_bonferroni(p_values, alpha):
    n = len(p_values)
    bc = sum(1 for p in p_values if p <= alpha / n)
    hl = sum(1 for p in p_values if p <= holm_threshold(p_values, alpha))
    assert hl >= bc


@given(p_lists, alphas)
def test_hochberg_rejects_superset_of_holm(p_values, alpha):
    hl_cut = holm_threshold(p_values, alpha)
    hb_cut = hochberg_threshold(p_values, alpha)
    assert hb_cut >= hl_cut


@given(p_lists, alphas)
def test_hochberg_within_bh(p_values, alpha):
    """Hochberg's step-up constant (n - i + 1) dominates BH's (n / i)
    inverse, so Hochberg never rejects more than BH."""
    hb = sum(1 for p in p_values
             if p <= hochberg_threshold(p_values, alpha))
    bh = sum(1 for p in p_values if p <= bh_step_up(p_values, alpha))
    assert hb <= bh


@given(st.integers(min_value=1, max_value=10**6), alphas)
def test_sidak_dominates_bonferroni(n, alpha):
    assert sidak_threshold(alpha, n) >= alpha / n - 1e-18


@given(st.integers(min_value=1, max_value=10**6), alphas)
def test_sidak_exact_fwer_under_independence(n, alpha):
    """1 - (1 - t)^n == alpha at the Šidák threshold t."""
    t = sidak_threshold(alpha, n)
    fwer = -math.expm1(n * math.log1p(-t))
    assert fwer == math.inf or abs(fwer - alpha) < 1e-9


@given(p_lists)
def test_q_values_monotone_in_p(p_values):
    qs = q_values(p_values, pi0=1.0)
    paired = sorted(zip(p_values, qs))
    q_in_rank_order = [q for _p, q in paired]
    assert q_in_rank_order == sorted(q_in_rank_order)


@given(p_lists, alphas)
def test_q_value_rejection_equals_bh(p_values, alpha):
    """With pi0 = 1 the q <= alpha rule is exactly BH at alpha."""
    m = len(p_values)
    # The equivalence is exact in real arithmetic, but a p-value
    # sitting exactly on its critical value (p * m == rank * alpha)
    # is decided through a division in q_values and a cross-multiplied
    # comparison in bh_step_up, which can disagree by one ulp. Skip
    # only that measure-zero boundary.
    ordered = sorted(p_values)
    if any(abs(p * m - rank * alpha) <= 1e-9 * max(p * m, alpha)
           for rank, p in enumerate(ordered, start=1)):
        return
    qs = q_values(p_values, pi0=1.0)
    by_q = sum(1 for q in qs if q <= alpha)
    cut = bh_step_up(p_values, alpha)
    by_bh = sum(1 for p in p_values if p <= cut)
    assert by_q == by_bh


@given(p_lists,
       st.floats(min_value=0.05, max_value=0.95),
       st.floats(min_value=0.05, max_value=0.95))
def test_q_values_scale_with_pi0(p_values, pi0_a, pi0_b):
    lo, hi = sorted((pi0_a, pi0_b))
    q_lo = q_values(p_values, pi0=lo)
    q_hi = q_values(p_values, pi0=hi)
    for a, b in zip(q_lo, q_hi):
        assert a <= b + 1e-15


@given(p_lists, st.floats(min_value=0.1, max_value=0.9))
def test_pi0_estimate_in_unit_interval(p_values, lam):
    pi0 = estimate_pi0(p_values, lam)
    assert 0.0 < pi0 <= 1.0


@given(p_lists)
def test_q_values_bounded_by_one(p_values):
    assert all(0.0 <= q <= 1.0 for q in q_values(p_values, pi0=1.0))
