"""Property-based tests for the detectability calculator."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    detection_power,
    fisher_two_tailed,
    min_attainable_p_value,
    min_detectable_support,
    sequential_p_value,
)


@st.composite
def shapes(draw):
    """Random (n, n_c, supp_x) dataset shapes."""
    n = draw(st.integers(min_value=4, max_value=400))
    n_c = draw(st.integers(min_value=1, max_value=n - 1))
    supp_x = draw(st.integers(min_value=1, max_value=n))
    return n, n_c, supp_x


thresholds = st.floats(min_value=1e-8, max_value=1.0)


@given(shapes(), thresholds)
@settings(max_examples=80, deadline=None)
def test_min_detectable_support_is_tight(shape, threshold):
    """k_min clears the threshold and k_min - 1 (if reachable on the
    positive flank) does not."""
    n, n_c, supp_x = shape
    k_min = min_detectable_support(n, n_c, supp_x, threshold)
    if k_min is None:
        # Untestable: even the top of the range fails.
        top = min(n_c, supp_x)
        assert fisher_two_tailed(top, n, n_c, supp_x) > threshold
        return
    assert fisher_two_tailed(k_min, n, n_c, supp_x) <= threshold
    low = max(0, n_c + supp_x - n)
    if k_min - 1 >= low:
        assert fisher_two_tailed(k_min - 1, n, n_c, supp_x) > threshold


@given(shapes(), thresholds)
@settings(max_examples=60, deadline=None)
def test_untestable_iff_min_attainable_above_threshold(shape, threshold):
    n, n_c, supp_x = shape
    k_min = min_detectable_support(n, n_c, supp_x, threshold)
    floor = min_attainable_p_value(n, n_c, supp_x)
    if floor <= threshold:
        # The best-case p-value sits at one of the flanks; when it is
        # the positive flank the rule is detectable there.
        top = min(n_c, supp_x)
        if fisher_two_tailed(top, n, n_c, supp_x) <= threshold:
            assert k_min is not None
    else:
        assert k_min is None


@given(shapes(),
       st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0),
       thresholds)
@settings(max_examples=60, deadline=None)
def test_power_monotone_in_confidence(shape, conf_a, conf_b, threshold):
    n, n_c, supp_x = shape
    lo, hi = sorted((conf_a, conf_b))
    assert detection_power(n, n_c, supp_x, lo, threshold) \
        <= detection_power(n, n_c, supp_x, hi, threshold) + 1e-12


@given(shapes(), st.floats(min_value=0.0, max_value=1.0),
       thresholds, thresholds)
@settings(max_examples=60, deadline=None)
def test_power_monotone_in_threshold(shape, confidence, t_a, t_b):
    n, n_c, supp_x = shape
    lo, hi = sorted((t_a, t_b))
    assert detection_power(n, n_c, supp_x, confidence, lo) \
        <= detection_power(n, n_c, supp_x, confidence, hi) + 1e-12


@given(shapes(), st.floats(min_value=0.0, max_value=1.0), thresholds)
@settings(max_examples=60, deadline=None)
def test_power_is_probability(shape, confidence, threshold):
    n, n_c, supp_x = shape
    power = detection_power(n, n_c, supp_x, confidence, threshold)
    assert 0.0 <= power <= 1.0


@given(st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=1, max_value=20),
       st.integers(min_value=10, max_value=200),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_sequential_estimate_monotone_in_observed(obs_a, obs_b, h,
                                                  n_max, seed):
    """With the same draw stream, a less extreme observation never
    gets a smaller p-value estimate."""
    lo, hi = sorted((obs_a, obs_b))

    def run(observed):
        return sequential_p_value(
            observed, lambda rng: rng.random(), h=h, n_max=n_max,
            rng=random.Random(seed))

    assert run(hi).p_value >= run(lo).p_value - 1e-12


@given(st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=1, max_value=20),
       st.integers(min_value=1, max_value=200),
       st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_sequential_estimate_in_unit_interval(observed, h, n_max, seed):
    result = sequential_p_value(observed, lambda rng: rng.random(),
                                h=h, n_max=n_max, seed=seed)
    assert 0.0 < result.p_value <= 1.0
    assert 1 <= result.draws <= n_max
    assert result.exceedances <= result.draws
