"""Property-based cross-checks: FP-growth vs Apriori vs the closed
miner on random transaction databases.

Three independently written miners over the same database must agree:
FP-growth and Apriori on the full frequent-pattern set, and every
frequent pattern must have a closed superset with identical support.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bitset as bs
from repro.mining import mine_apriori, mine_closed, mine_fpgrowth


@st.composite
def transaction_databases(draw):
    """A small random vertical database: (item_tidsets, n_records)."""
    n_records = draw(st.integers(min_value=1, max_value=24))
    n_items = draw(st.integers(min_value=1, max_value=8))
    tidsets = [
        draw(st.integers(min_value=0, max_value=(1 << n_records) - 1))
        for _ in range(n_items)
    ]
    return tidsets, n_records


@given(transaction_databases(), st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_fpgrowth_equals_apriori(database, min_sup):
    tidsets, n_records = database
    apriori = mine_apriori(tidsets, n_records, min_sup)
    fpgrowth = mine_fpgrowth(tidsets, n_records, min_sup)
    assert [(p.items, p.support, p.tidset) for p in apriori] \
        == [(p.items, p.support, p.tidset) for p in fpgrowth]


@given(transaction_databases(), st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_fpgrowth_max_length_is_a_filter(database, min_sup, max_length):
    tidsets, n_records = database
    capped = mine_fpgrowth(tidsets, n_records, min_sup,
                           max_length=max_length)
    full = mine_fpgrowth(tidsets, n_records, min_sup)
    expected = [(p.items, p.support) for p in full
                if p.length <= max_length]
    assert [(p.items, p.support) for p in capped] == expected


@given(transaction_databases(), st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_every_frequent_pattern_has_closed_cover(database, min_sup):
    """The closed miner is a lossless summary of FP-growth's output:
    each frequent pattern maps to a closed superset with the same
    tidset."""
    tidsets, n_records = database
    frequent = mine_fpgrowth(tidsets, n_records, min_sup)
    closed = mine_closed(tidsets, n_records, min_sup)
    closed_by_tidset = {pattern.tidset: pattern for pattern in closed}
    for pattern in frequent:
        cover = closed_by_tidset.get(pattern.tidset)
        assert cover is not None
        assert pattern.items <= cover.items
        assert cover.support == pattern.support


@given(transaction_databases(), st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_fpgrowth_supports_correct(database, min_sup):
    tidsets, n_records = database
    for pattern in mine_fpgrowth(tidsets, n_records, min_sup):
        tids = bs.universe(n_records)
        for item in pattern.items:
            tids &= tidsets[item]
        assert pattern.support == bs.popcount(tids) >= min_sup
