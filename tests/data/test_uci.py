"""Unit tests for the simulated UCI stand-ins (paper Table 2)."""

from __future__ import annotations

import pytest

from repro.data import (
    REAL_DATASETS,
    load_real_dataset,
    make_adult,
    make_german,
    make_hypo,
    make_mushroom,
)
from repro.errors import DataError


class TestTable2Shapes:
    """Record/attribute/class counts must match the paper's Table 2."""

    @pytest.mark.parametrize("name,records,attributes", [
        ("adult", 32561, 14),
        ("german", 1000, 20),
        ("hypo", 3163, 25),
        ("mushroom", 8124, 22),
    ])
    def test_shapes(self, name, records, attributes):
        spec = REAL_DATASETS[name]
        assert spec.n_records == records
        assert spec.n_attributes == attributes

    def test_german_full_shape(self):
        ds = make_german()
        assert ds.n_records == 1000
        assert ds.n_attributes == 20
        assert ds.n_classes == 2

    def test_truncated_load(self):
        ds = load_real_dataset("adult", n_records=500)
        assert ds.n_records == 500
        assert ds.n_attributes == 14


class TestClassPriors:
    def test_german_prior(self):
        ds = make_german()
        assert ds.class_support(0) == 700  # 70% good

    def test_hypo_prior_skewed(self):
        ds = load_real_dataset("hypo", n_records=1000)
        assert ds.class_support(0) == pytest.approx(952, abs=1)

    def test_mushroom_prior_near_even(self):
        ds = load_real_dataset("mushroom", n_records=2000)
        fraction = ds.class_support(0) / 2000
        assert fraction == pytest.approx(0.518, abs=0.01)

    def test_class_names(self):
        assert make_german().class_names == ["good", "bad"]


class TestSignalStructure:
    def test_german_has_moderate_rules(self):
        """German must populate the gray zone between 1e-6 and 1e-2."""
        from repro.mining import mine_class_rules
        ds = make_german()
        ruleset = mine_class_rules(ds, min_sup=60)
        p_values = ruleset.p_values()
        gray = sum(1 for p in p_values if 1e-6 < p <= 1e-2)
        assert gray / len(p_values) > 0.15

    def test_mushroom_mostly_extreme(self):
        """Mushroom rules are overwhelmingly extreme (Figure 15)."""
        from repro.mining import mine_class_rules
        ds = load_real_dataset("mushroom", n_records=2000)
        ruleset = mine_class_rules(ds, min_sup=150, max_length=4)
        p_values = ruleset.p_values()
        extreme = sum(1 for p in p_values if p <= 1e-12)
        assert extreme / len(p_values) > 0.5

    def test_determinism(self):
        a = make_german()
        b = make_german()
        assert a.item_tidsets == b.item_tidsets

    def test_seed_override_changes_data(self):
        a = make_german()
        b = make_german(seed=12345)
        assert a.item_tidsets != b.item_tidsets


class TestErrors:
    def test_unknown_name(self):
        with pytest.raises(DataError):
            load_real_dataset("iris")

    def test_oversized_request(self):
        with pytest.raises(DataError):
            load_real_dataset("german", n_records=99999)

    def test_undersized_request(self):
        with pytest.raises(DataError):
            load_real_dataset("german", n_records=1)

    def test_all_registry_entries_loadable(self):
        for name in REAL_DATASETS:
            ds = load_real_dataset(name, n_records=200)
            assert ds.n_records == 200
