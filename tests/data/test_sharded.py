"""ShardedDataset: merged counts, closure, and scoring vs the oracle.

The load-bearing invariant of the out-of-core path: every quantity a
consumer reads off a K-shard view — class counts, item supports,
pattern tidsets, mined rules, permutation p-values — equals the same
quantity computed on the whole in-RAM dataset, for any K, ragged word
widths, and shards smaller than a single 64-bit word.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, ShardedDataset
from repro.errors import DataError
from repro.mining import mine_class_rules
from repro.corrections.permutation import PermutationEngine


def _dataset_from_bits(bits: np.ndarray, labels: np.ndarray) -> Dataset:
    """Build a dataset whose item tidsets are the given bool matrix."""
    n_records, n_attributes = bits.shape
    records = [["y" if bits[r, a] else "n" for a in range(n_attributes)]
               for r in range(n_records)]
    names = [f"c{v}" for v in labels]
    return Dataset.from_records(
        records, names, [f"A{j}" for j in range(n_attributes)],
        name="prop")


@st.composite
def sharded_instances(draw):
    n_records = draw(st.integers(min_value=2, max_value=300))
    n_attributes = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    bits = rng.random((n_records, n_attributes)) < 0.5
    labels = rng.integers(0, 2, size=n_records)
    labels[:2] = (0, 1)  # both classes always present
    n_shards = draw(st.sampled_from([1, 2, 7]))
    return bits, labels, n_shards


@given(sharded_instances())
@settings(max_examples=40, deadline=None)
def test_merged_counts_equal_oracle(instance):
    bits, labels, n_shards = instance
    ds = _dataset_from_bits(bits, labels)
    sharded = ShardedDataset.from_dataset(ds, n_shards=n_shards)
    assert np.array_equal(
        sharded.item_supports_merged(),
        [t.count() for t in ds.item_tidsets])
    assert np.array_equal(
        sharded.class_supports_merged(),
        [ds.class_support(c) for c in range(ds.n_classes)])
    assert sharded.n_records == ds.n_records
    assert sharded.fingerprint() == ds.fingerprint()


@given(sharded_instances())
@settings(max_examples=40, deadline=None)
def test_lazy_tidsets_equal_oracle(instance):
    bits, labels, n_shards = instance
    ds = _dataset_from_bits(bits, labels)
    sharded = ShardedDataset.from_dataset(ds, n_shards=n_shards)
    assert len(sharded.item_tidsets) == len(ds.item_tidsets)
    for lazy, ref in zip(sharded.item_tidsets, ds.item_tidsets):
        assert np.array_equal(lazy.words, ref.words)
        assert lazy.n == ref.n


@given(sharded_instances())
@settings(max_examples=25, deadline=None)
def test_pattern_closure_equal_oracle(instance):
    bits, labels, n_shards = instance
    ds = _dataset_from_bits(bits, labels)
    sharded = ShardedDataset.from_dataset(ds, n_shards=n_shards)
    items = list(range(min(ds.n_items, 3)))
    assert sharded.pattern_support(items) == ds.pattern_support(items)
    assert np.array_equal(sharded.pattern_tidset(items).words,
                          ds.pattern_tidset(items).words)


@st.composite
def subword_instances(draw):
    """Boundaries that split inside a single 64-bit word."""
    n_records = draw(st.integers(min_value=8, max_value=120))
    cut_fracs = draw(st.lists(
        st.floats(min_value=0.05, max_value=0.95), min_size=1,
        max_size=3, unique=True))
    cuts = sorted({max(1, min(n_records - 1, int(f * n_records)))
                   for f in cut_fracs})
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n_records, cuts, seed


@given(subword_instances())
@settings(max_examples=30, deadline=None)
def test_subword_boundaries_equal_oracle(instance):
    n_records, cuts, seed = instance
    rng = np.random.default_rng(seed)
    bits = rng.random((n_records, 3)) < 0.5
    labels = rng.integers(0, 2, size=n_records)
    labels[:2] = (0, 1)
    ds = _dataset_from_bits(bits, labels)
    sharded = ShardedDataset.from_dataset(ds, boundaries=cuts)
    assert np.array_equal(
        sharded.item_supports_merged(),
        [t.count() for t in ds.item_tidsets])
    for lazy, ref in zip(sharded.item_tidsets, ds.item_tidsets):
        assert np.array_equal(lazy.words, ref.words)


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.sampled_from([1, 2, 7]))
@settings(max_examples=8, deadline=None)
def test_permutation_pvalues_equal_oracle(seed, n_shards):
    rng = np.random.default_rng(seed)
    bits = rng.random((180, 4)) < 0.5
    labels = rng.integers(0, 2, size=180)
    labels[:2] = (0, 1)
    ds = _dataset_from_bits(bits, labels)
    sharded = ShardedDataset.from_dataset(ds, n_shards=n_shards)
    rs_ref = mine_class_rules(ds, min_sup=10)
    rs_sh = mine_class_rules(sharded, min_sup=10)
    assert [(r.pattern_id, r.class_index, r.coverage, r.p_value)
            for r in rs_ref.rules] == \
           [(r.pattern_id, r.class_index, r.coverage, r.p_value)
            for r in rs_sh.rules]
    if not rs_ref.rules:
        return
    e_ref = PermutationEngine(rs_ref, n_permutations=25, seed=3)
    e_sh = PermutationEngine(rs_sh, n_permutations=25, seed=3)
    assert e_ref.empirical_p_values() == e_sh.empirical_p_values()
    assert np.array_equal(e_ref.min_p_distribution(),
                          e_sh.min_p_distribution())


class TestShardedValidation:
    def test_non_contiguous_boundaries_rejected(self):
        rng = np.random.default_rng(0)
        ds = _dataset_from_bits(rng.random((50, 2)) < 0.5,
                                rng.integers(0, 2, size=50))
        with pytest.raises(DataError):
            ShardedDataset.from_dataset(ds, boundaries=[30, 30])
        with pytest.raises(DataError):
            ShardedDataset.from_dataset(ds, boundaries=[75])

    def test_to_dataset_round_trip(self):
        rng = np.random.default_rng(1)
        ds = _dataset_from_bits(rng.random((130, 3)) < 0.5,
                                rng.integers(0, 2, size=130))
        sharded = ShardedDataset.from_dataset(ds, n_shards=3)
        back = sharded.to_dataset()
        assert np.array_equal(back.item_arena, ds.item_arena)
        assert back.fingerprint() == ds.fingerprint()

    def test_open_from_file(self, tmp_path):
        rng = np.random.default_rng(2)
        ds = _dataset_from_bits(rng.random((400, 3)) < 0.5,
                                rng.integers(0, 2, size=400))
        path = tmp_path / "s.arena"
        ds.save_arena(path, n_segments=3)
        with ShardedDataset.open(path) as sharded:
            assert sharded.n_shards == 3
            assert np.array_equal(
                sharded.item_supports_merged(),
                [t.count() for t in ds.item_tidsets])
            assert sharded.fingerprint() == ds.fingerprint()
