"""Property suite: TidVector word-wise ops ≡ the bigint bitset oracles.

The packed uint64 :class:`~repro.tidvector.TidVector` replaced the
bigint substrate everywhere; :mod:`repro.bitset` survives as the
independent oracle these tests check the word-wise kernels against.
Universe widths are drawn *ragged* on purpose — empty sets, a universe
of one record, exact multiples of 64 and awkward tails — because every
historical packing bug lives at the last partially-filled word.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bitset as bs
from repro.tidvector import (
    TidVector,
    as_tidvector,
    as_tidvectors,
    pack_id_lists,
    arena_rows,
    stack_tidvectors,
    words_for,
)

# Ragged widths: 1, tails just around word boundaries, exact multiples.
widths = st.sampled_from([1, 2, 5, 63, 64, 65, 127, 128, 129, 200, 320])


@st.composite
def vector_pairs(draw):
    """Two index sets over one shared (ragged) universe."""
    n = draw(widths)
    ids = st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    return n, draw(ids), draw(ids)


@given(vector_pairs())
def test_roundtrip_bigint(pair):
    n, a, _ = pair
    bits = bs.bitset_from_indices(a, n)
    vector = TidVector.from_bigint(bits, n)
    assert vector.to_bigint() == bits
    assert list(vector.indices()) == sorted(a)
    assert vector == bits  # int-compat equality


@given(vector_pairs())
def test_count_and_bool_match_oracle(pair):
    n, a, _ = pair
    vector = TidVector.from_indices(a, n)
    assert vector.count() == len(a)
    assert vector.bit_count() == len(a)
    assert bool(vector) == bool(a)
    assert bs.popcount(vector) == len(a)  # shim accepts TidVector


@given(vector_pairs())
def test_and_or_andnot_match_oracle(pair):
    n, a, b = pair
    va, vb = TidVector.from_indices(a, n), TidVector.from_indices(b, n)
    oracle_a, oracle_b = (bs.bitset_from_indices(a, n),
                          bs.bitset_from_indices(b, n))
    assert (va & vb).to_bigint() == oracle_a & oracle_b
    assert (va | vb).to_bigint() == oracle_a | oracle_b
    assert va.andnot(vb).to_bigint() == oracle_a & ~oracle_b
    assert (va & ~vb).to_bigint() == oracle_a & ~oracle_b


@given(vector_pairs())
def test_counting_shortcuts_match_materialized(pair):
    n, a, b = pair
    va, vb = TidVector.from_indices(a, n), TidVector.from_indices(b, n)
    assert va.intersection_count(vb) == len(a & b)
    assert va.andnot_count(vb) == len(a - b)
    assert va.is_subset(vb) == (a <= b)
    assert va.intersects(vb) == bool(a & b)


@given(vector_pairs())
def test_complement_partitions_universe(pair):
    n, a, _ = pair
    vector = TidVector.from_indices(a, n)
    other = vector.complement()
    assert not (vector & other)
    assert (vector | other) == TidVector.universe(n)
    assert other.to_bigint() == bs.complement(vector.to_bigint(), n)


@given(vector_pairs())
def test_int_interop_masks_out_of_universe_bits(pair):
    n, a, b = pair
    va = TidVector.from_indices(a, n)
    negated = ~bs.bitset_from_indices(b, n)  # infinite high bits
    assert (va & negated).to_bigint() == \
        bs.bitset_from_indices(a, n) & ~bs.bitset_from_indices(b, n)


@given(vector_pairs())
def test_bool_bridge_roundtrip(pair):
    n, a, _ = pair
    vector = TidVector.from_indices(a, n)
    flags = vector.to_bool()
    assert flags.shape == (n,)
    assert TidVector.from_bool(flags) == vector


@given(vector_pairs())
@settings(max_examples=40)
def test_pack_id_lists_matches_per_row_packing(pair):
    n, a, b = pair
    arena = pack_id_lists([sorted(a), sorted(b), []], n)
    assert arena.shape == (3, words_for(n))
    rows = arena_rows(arena, n)
    assert rows[0] == TidVector.from_indices(a, n)
    assert rows[1] == TidVector.from_indices(b, n)
    assert rows[2] == TidVector.empty(n)


@given(vector_pairs())
@settings(max_examples=40)
def test_stack_preserves_rows(pair):
    n, a, b = pair
    va, vb = TidVector.from_indices(a, n), TidVector.from_indices(b, n)
    matrix = stack_tidvectors([va, vb], n)
    assert matrix.shape == (2, words_for(n))
    assert arena_rows(matrix, n)[0] == va
    assert arena_rows(matrix, n)[1] == vb


@given(vector_pairs())
def test_coerce_accepts_both_representations(pair):
    n, a, _ = pair
    bits = bs.bitset_from_indices(a, n)
    vector = TidVector.from_indices(a, n)
    assert as_tidvector(bits, n) == vector
    assert as_tidvector(vector, n) is vector
    assert as_tidvectors([bits, vector], n) == [vector, vector]


class TestEdgeCases:
    def test_empty_universe_roundtrip(self):
        vector = TidVector.empty(1)
        assert vector.count() == 0
        assert not vector
        assert list(vector.iter_indices()) == []

    def test_universe_masks_tail(self):
        for n in (1, 63, 64, 65, 130):
            u = TidVector.universe(n)
            assert u.count() == n
            assert u.to_bigint() == bs.universe(n)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            TidVector.from_indices([5], 5)
        with pytest.raises(ValueError):
            TidVector.from_indices([-1], 5)

    def test_out_of_range_bigint_rejected(self):
        with pytest.raises(ValueError):
            TidVector.from_bigint(1 << 70, 70)

    def test_universe_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TidVector.empty(64) & TidVector.empty(65)
        with pytest.raises(ValueError):
            as_tidvector(TidVector.empty(64), 65)

    def test_hashable_and_usable_as_dict_key(self):
        a = TidVector.from_indices({1, 2}, 70)
        b = TidVector.from_indices({1, 2}, 70)
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"

    def test_without_indices(self):
        vector = TidVector.from_indices({0, 5, 64, 65}, 66)
        cleared = vector.without_indices([5, 65])
        assert set(cleared.indices()) == {0, 64}
        # The original is untouched (immutability contract).
        assert set(vector.indices()) == {0, 5, 64, 65}

    def test_index_and_rshift_bigint_compat(self):
        vector = TidVector.from_indices({0, 2}, 130)
        assert bin(vector) == "0b101"
        assert int(vector) == 5
        assert vector >> 2 & 1 == 1

    def test_views_do_not_write_through(self):
        arena = pack_id_lists([[0, 1], [1]], 70)
        before = arena.copy()
        rows = arena_rows(arena, 70)
        _ = rows[0] & rows[1]
        _ = rows[0].andnot(rows[1])
        _ = rows[0].complement()
        _ = rows[0].without_indices([0])
        assert np.array_equal(arena, before)
