"""Unit tests for the Quest-style transaction generator."""

from __future__ import annotations

import random

import pytest

from repro import bitset as bs
from repro.data import QuestConfig, QuestData, generate_quest
from repro.data.quest import _draw_patterns, _draw_weights, _poisson_draw
from repro.errors import DataError


class TestQuestConfig:
    def test_defaults_validate(self):
        config = QuestConfig()
        assert config.n_transactions == 1000

    @pytest.mark.parametrize("kwargs", [
        {"n_transactions": 0},
        {"n_items": 1},
        {"n_patterns": 0},
        {"avg_transaction_length": 0.0},
        {"avg_pattern_length": -1.0},
        {"correlation": 1.5},
        {"corruption_mean": 1.0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(DataError):
            QuestConfig(**kwargs)


class TestPoissonDraw:
    def test_mean_is_close(self):
        rng = random.Random(0)
        draws = [_poisson_draw(rng, 5.0) for __ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(5.0, abs=0.2)

    def test_nonnegative(self):
        rng = random.Random(1)
        assert all(_poisson_draw(rng, 0.5) >= 0 for __ in range(200))


class TestDrawPatterns:
    def test_pattern_count_and_universe(self):
        config = QuestConfig(n_items=50, n_patterns=12)
        patterns = _draw_patterns(config, random.Random(2))
        assert len(patterns) == 12
        for pattern in patterns:
            assert pattern
            assert all(0 <= item < 50 for item in pattern)

    def test_consecutive_patterns_overlap_on_average(self):
        config = QuestConfig(n_items=60, n_patterns=40,
                             avg_pattern_length=6.0, correlation=0.9)
        patterns = _draw_patterns(config, random.Random(3))
        overlaps = [len(a & b) for a, b in zip(patterns, patterns[1:])]
        assert sum(overlaps) / len(overlaps) > 1.0


class TestDrawWeights:
    def test_normalized(self):
        weights = _draw_weights(10, random.Random(4))
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)


class TestGenerateQuest:
    def test_shape(self):
        config = QuestConfig(n_transactions=200, n_items=40)
        data = generate_quest(config, seed=5)
        assert data.n_transactions == 200
        assert len(data.patterns) == config.n_patterns

    def test_transactions_sorted_distinct_nonempty(self):
        data = generate_quest(QuestConfig(n_transactions=150), seed=6)
        for transaction in data.transactions:
            assert transaction
            assert transaction == sorted(set(transaction))

    def test_item_ids_in_range(self):
        config = QuestConfig(n_transactions=100, n_items=30)
        data = generate_quest(config, seed=7)
        for transaction in data.transactions:
            assert all(0 <= item < 30 for item in transaction)

    def test_average_length_tracks_t_parameter(self):
        config = QuestConfig(n_transactions=600,
                             avg_transaction_length=8.0, n_items=200)
        data = generate_quest(config, seed=8)
        mean_length = (sum(len(t) for t in data.transactions)
                       / data.n_transactions)
        assert 4.0 < mean_length < 12.0

    def test_deterministic_with_seed(self):
        config = QuestConfig(n_transactions=80)
        first = generate_quest(config, seed=9)
        second = generate_quest(config, seed=9)
        assert first.transactions == second.transactions
        assert first.patterns == second.patterns

    def test_different_seeds_differ(self):
        config = QuestConfig(n_transactions=80)
        first = generate_quest(config, seed=10)
        second = generate_quest(config, seed=11)
        assert first.transactions != second.transactions

    def test_tidsets_match_transactions(self):
        data = generate_quest(QuestConfig(n_transactions=60), seed=12)
        tidsets = data.tidsets()
        assert len(tidsets) == data.config.n_items
        for r, transaction in enumerate(data.transactions):
            for item in range(data.config.n_items):
                contains = bool(tidsets[item] >> r & 1)
                assert contains == (item in transaction)

    def test_tidsets_cached(self):
        data = generate_quest(QuestConfig(n_transactions=40), seed=13)
        assert data.tidsets() is data.tidsets()

    def test_planted_patterns_exceed_null_cooccurrence(self):
        """Pattern items co-occur more than independence predicts."""
        config = QuestConfig(n_transactions=800, n_items=80,
                             n_patterns=8, corruption_mean=0.2,
                             avg_pattern_length=3.0)
        data = generate_quest(config, seed=14)
        tidsets = data.tidsets()
        n = data.n_transactions
        lifted = 0
        tested = 0
        for pattern in data.patterns:
            items = sorted(pattern)[:2]
            if len(items) < 2:
                continue
            a, b = items
            supp_a = bs.popcount(tidsets[a])
            supp_b = bs.popcount(tidsets[b])
            both = bs.popcount(tidsets[a] & tidsets[b])
            if supp_a == 0 or supp_b == 0:
                continue
            tested += 1
            if both * n > supp_a * supp_b:
                lifted += 1
        assert tested > 0
        assert lifted >= tested * 0.7

    def test_default_config_used_when_none(self):
        data = generate_quest(seed=15)
        assert isinstance(data, QuestData)
        assert data.n_transactions == 1000
