"""Unit tests for dataset profiling."""

from __future__ import annotations

import pytest

from repro.data import Dataset, summarize
from repro.errors import DataError


class TestSummarize:
    def test_counts(self, tiny_dataset):
        summary = summarize(tiny_dataset)
        assert summary.n_records == 8
        assert summary.n_attributes == 3
        assert summary.n_items == 6
        assert summary.class_counts == {"pos": 4, "neg": 4}

    def test_attribute_profiles(self, tiny_dataset):
        summary = summarize(tiny_dataset)
        by_name = {p.name: p for p in summary.attributes}
        assert by_name["A"].n_values == 2
        assert by_name["A"].max_support == 4
        assert by_name["A"].min_support == 4
        assert by_name["A"].missing == 0

    def test_missing_counted(self):
        ds = Dataset.from_records(
            [["a", None], ["a", "x"], ["b", None]],
            ["c0", "c1", "c0"], ["A", "B"])
        summary = summarize(ds)
        by_name = {p.name: p for p in summary.attributes}
        assert by_name["B"].missing == 2

    def test_quantiles(self, tiny_dataset):
        summary = summarize(tiny_dataset)
        q = summary.support_quantiles
        assert q["max"] == 4
        assert q["min"] == 4
        assert q["median"] == 4

    def test_suggested_min_sup_kth_item(self, small_random_dataset):
        summary = summarize(small_random_dataset, target_items=3)
        supports = sorted(
            (bin(t).count("1") for t in
             small_random_dataset.item_tidsets), reverse=True)
        assert summary.suggested_min_sup == supports[2]

    def test_suggested_capped_at_item_count(self, tiny_dataset):
        summary = summarize(tiny_dataset, target_items=100)
        assert summary.suggested_min_sup == 4  # last item's support

    def test_invalid_target(self, tiny_dataset):
        with pytest.raises(DataError):
            summarize(tiny_dataset, target_items=0)

    def test_describe_mentions_everything(self, tiny_dataset):
        text = summarize(tiny_dataset).describe()
        assert "tiny" in text
        assert "classes:" in text
        assert "A:" in text


class TestMidpFisher:
    def test_midp_below_exact(self):
        from repro.stats import fisher_two_tailed, fisher_two_tailed_midp
        for k in range(0, 7):
            exact = fisher_two_tailed(k, 20, 11, 6)
            midp = fisher_two_tailed_midp(k, 20, 11, 6)
            assert 0.0 <= midp < exact

    def test_midp_is_half_pmf_smaller(self):
        from repro.stats import (
            fisher_two_tailed,
            fisher_two_tailed_midp,
            pmf,
        )
        exact = fisher_two_tailed(4, 20, 11, 6)
        midp = fisher_two_tailed_midp(4, 20, 11, 6)
        assert midp == pytest.approx(exact - 0.5 * pmf(4, 20, 11, 6))

    def test_midp_never_negative(self):
        from repro.stats import fisher_two_tailed_midp
        assert fisher_two_tailed_midp(0, 10, 5, 0) >= 0.0
