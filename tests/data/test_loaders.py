"""Unit tests for the CSV / FIMI / ARFF loaders."""

from __future__ import annotations

import pytest

from repro.data import (
    load_arff,
    load_csv,
    load_fimi,
    save_csv,
    save_fimi,
)
from repro.errors import LoaderError

CSV_TEXT = """age,workclass,class
young,private,no
young,gov,no
old,private,yes
old,gov,yes
"""


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(CSV_TEXT)
    return path


class TestCsv:
    def test_basic_load(self, csv_file):
        ds = load_csv(csv_file)
        assert ds.n_records == 4
        assert ds.n_attributes == 2
        assert ds.class_names == ["no", "yes"]
        assert ds.catalog.attributes == ["age", "workclass"]

    def test_class_column_by_name(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("class,x\nyes,a\nno,b\n")
        ds = load_csv(path, class_column="class")
        assert ds.class_names == ["yes", "no"]
        assert ds.catalog.attributes == ["x"]

    def test_class_column_by_index(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("lab,x\nyes,a\nno,b\n")
        ds = load_csv(path, class_column=0)
        assert ds.catalog.attributes == ["x"]

    def test_missing_values(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a,b,class\n?,x,c0\nv,?,c1\n")
        ds = load_csv(path)
        assert ds.n_items == 2  # only a=v and b=x

    def test_no_header(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a,x,c0\nb,y,c1\n")
        ds = load_csv(path, has_header=False)
        assert ds.catalog.attributes == ["A0", "A1"]

    def test_unknown_class_column_raises(self, csv_file):
        with pytest.raises(LoaderError):
            load_csv(csv_file, class_column="nope")

    def test_ragged_rows_raise(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a,b,class\n1,2,c0\n1,c1\n")
        with pytest.raises(LoaderError):
            load_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("")
        with pytest.raises(LoaderError):
            load_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("a,b,class\n")
        with pytest.raises(LoaderError):
            load_csv(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LoaderError):
            load_csv(tmp_path / "absent.csv")

    def test_roundtrip(self, csv_file, tmp_path):
        ds = load_csv(csv_file)
        out = tmp_path / "out.csv"
        save_csv(ds, out)
        again = load_csv(out, class_column="class")
        assert again.n_records == ds.n_records
        assert again.n_items == ds.n_items
        assert again.class_names == ds.class_names


class TestFimi:
    def test_labels_from_last_item(self, tmp_path):
        path = tmp_path / "t.fimi"
        path.write_text("1 2 3 pos\n2 3 neg\n1 pos\n")
        ds = load_fimi(path)
        assert ds.n_records == 3
        assert ds.class_names == ["pos", "neg"]
        assert ds.n_items == 3

    def test_explicit_labels(self, tmp_path):
        path = tmp_path / "t.fimi"
        path.write_text("1 2\n2 3\n")
        ds = load_fimi(path, class_labels=["a", "b"])
        assert ds.n_items == 3

    def test_label_file(self, tmp_path):
        data = tmp_path / "t.fimi"
        labels = tmp_path / "t.labels"
        data.write_text("1 2\n3\n")
        labels.write_text("x\ny\n")
        ds = load_fimi(data, label_path=labels)
        assert ds.class_names == ["x", "y"]

    def test_both_label_sources_rejected(self, tmp_path):
        path = tmp_path / "t.fimi"
        path.write_text("1 2\n")
        with pytest.raises(LoaderError):
            load_fimi(path, class_labels=["a"], label_path=path)

    def test_label_count_mismatch(self, tmp_path):
        path = tmp_path / "t.fimi"
        path.write_text("1 2\n2 3\n")
        with pytest.raises(LoaderError):
            load_fimi(path, class_labels=["a"])

    def test_empty_raises(self, tmp_path):
        path = tmp_path / "t.fimi"
        path.write_text("\n\n")
        with pytest.raises(LoaderError):
            load_fimi(path)

    def test_single_item_line_without_labels_raises(self, tmp_path):
        path = tmp_path / "t.fimi"
        path.write_text("7\n")
        with pytest.raises(LoaderError):
            load_fimi(path)

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.fimi"
        path.write_text("1 2 3 pos\n2 3 neg\n1 4 pos\n")
        ds = load_fimi(path)
        out = tmp_path / "o.fimi"
        out_labels = tmp_path / "o.labels"
        save_fimi(ds, out, label_path=out_labels)
        again = load_fimi(out, label_path=out_labels)
        assert again.n_records == ds.n_records
        assert again.n_items == ds.n_items
        assert sorted(again.class_names) == sorted(ds.class_names)


class TestArff:
    ARFF = """% comment
@relation credit
@attribute age {young,old}
@attribute income {low,high}
@attribute class {good,bad}
@data
young,low,good
old,high,bad
young,?,good
"""

    def test_basic(self, tmp_path):
        path = tmp_path / "d.arff"
        path.write_text(self.ARFF)
        ds = load_arff(path)
        assert ds.name == "credit"
        assert ds.n_records == 3
        assert ds.catalog.attributes == ["age", "income"]
        assert ds.class_names == ["good", "bad"]

    def test_explicit_class_attribute(self, tmp_path):
        path = tmp_path / "d.arff"
        path.write_text(self.ARFF)
        ds = load_arff(path, class_attribute="age")
        assert ds.class_names == ["young", "old"]

    def test_unknown_class_attribute(self, tmp_path):
        path = tmp_path / "d.arff"
        path.write_text(self.ARFF)
        with pytest.raises(LoaderError):
            load_arff(path, class_attribute="nope")

    def test_no_attributes_raises(self, tmp_path):
        path = tmp_path / "d.arff"
        path.write_text("@relation x\n@data\n1,2\n")
        with pytest.raises(LoaderError):
            load_arff(path)

    def test_no_data_raises(self, tmp_path):
        path = tmp_path / "d.arff"
        path.write_text("@relation x\n@attribute a {1,2}\n@data\n")
        with pytest.raises(LoaderError):
            load_arff(path)

    def test_cell_count_mismatch_raises(self, tmp_path):
        path = tmp_path / "d.arff"
        path.write_text("@relation x\n@attribute a {1}\n"
                        "@attribute class {c}\n@data\n1,c,extra\n")
        with pytest.raises(LoaderError):
            load_arff(path)
