"""Unit tests for Item and ItemCatalog."""

from __future__ import annotations

import pytest

from repro.data import Item, ItemCatalog
from repro.errors import DataError


class TestItem:
    def test_str(self):
        assert str(Item("color", "red")) == "color=red"

    def test_equality_and_hash(self):
        assert Item("a", "1") == Item("a", "1")
        assert Item("a", "1") != Item("a", "2")
        assert len({Item("a", "1"), Item("a", "1")}) == 1

    def test_ordering(self):
        assert Item("a", "1") < Item("a", "2") < Item("b", "0")


class TestItemCatalog:
    def test_add_assigns_dense_ids(self):
        catalog = ItemCatalog()
        assert catalog.add_pair("A", "x") == 0
        assert catalog.add_pair("A", "y") == 1
        assert catalog.add_pair("B", "x") == 2

    def test_add_is_idempotent(self):
        catalog = ItemCatalog()
        first = catalog.add_pair("A", "x")
        second = catalog.add_pair("A", "x")
        assert first == second
        assert len(catalog) == 1

    def test_values_are_stringified(self):
        catalog = ItemCatalog()
        item_id = catalog.add_pair("A", 3)
        assert catalog.item(item_id).value == "3"

    def test_id_of_unknown_raises(self):
        with pytest.raises(DataError):
            ItemCatalog().id_of(Item("A", "x"))

    def test_item_unknown_id_raises(self):
        catalog = ItemCatalog()
        catalog.add_pair("A", "x")
        with pytest.raises(DataError):
            catalog.item(5)

    def test_items_of_attribute(self):
        catalog = ItemCatalog()
        a_x = catalog.add_pair("A", "x")
        b_x = catalog.add_pair("B", "x")
        a_y = catalog.add_pair("A", "y")
        assert catalog.items_of_attribute("A") == [a_x, a_y]
        assert catalog.items_of_attribute("B") == [b_x]
        assert catalog.items_of_attribute("missing") == []

    def test_attributes_in_first_seen_order(self):
        catalog = ItemCatalog()
        catalog.add_pair("B", "1")
        catalog.add_pair("A", "1")
        catalog.add_pair("B", "2")
        assert catalog.attributes == ["B", "A"]

    def test_describe_pattern_sorted(self):
        catalog = ItemCatalog()
        x = catalog.add_pair("B", "2")
        y = catalog.add_pair("A", "1")
        assert catalog.describe_pattern([x, y]) == "{A=1, B=2}"

    def test_pattern_attributes(self):
        catalog = ItemCatalog()
        ids = [catalog.add_pair("C", "1"), catalog.add_pair("A", "9")]
        assert catalog.pattern_attributes(ids) == ["A", "C"]

    def test_ids_for_pairs(self):
        catalog = ItemCatalog()
        a = catalog.add_pair("A", "1")
        b = catalog.add_pair("B", "2")
        assert catalog.ids_for_pairs([("B", "2"), ("A", "1")]) == [b, a]

    def test_iteration_yields_items(self):
        catalog = ItemCatalog()
        catalog.add_pair("A", "1")
        catalog.add_pair("B", "2")
        assert [str(i) for i in catalog] == ["A=1", "B=2"]

    def test_contains(self):
        catalog = ItemCatalog()
        catalog.add_pair("A", "1")
        assert Item("A", "1") in catalog
        assert Item("A", "2") not in catalog
