"""Streaming ingest: bounded-memory arena builds vs the in-RAM oracle.

Every streamed arena must be *byte-identical* in content to loading
the same source in RAM and saving it — same catalog id order, same
word block, same labels, same fingerprint — because the mining and CSV
output layers key on exactly those.
"""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro.data import (
    ArenaFile,
    Dataset,
    load_csv,
    load_parquet,
    load_sql,
    stream_csv_to_arena,
    stream_records_to_arena,
    stream_sql_to_arena,
)
from repro.data.ingest import DEFAULT_CHUNK_RECORDS
from repro.errors import DataError, LoaderError


def _rows(n=450, seed=3, width=4):
    rng = np.random.default_rng(seed)
    records = [[None if rng.random() < 0.1 else f"v{rng.integers(0, 4)}"
                for _ in range(width)] for _ in range(n)]
    labels = [f"c{rng.integers(0, 2)}" for _ in range(n)]
    return records, labels


def _assert_equivalent(path, reference: Dataset):
    streamed = Dataset.open_arena(path)
    assert np.array_equal(streamed.item_arena, reference.item_arena)
    assert np.array_equal(streamed.class_labels, reference.class_labels)
    assert streamed.class_names == reference.class_names
    assert [str(i) for i in streamed.catalog] == \
           [str(i) for i in reference.catalog]
    assert streamed.fingerprint() == reference.fingerprint()


class TestStreamRecords:
    def test_equivalent_to_from_records(self, tmp_path):
        records, labels = _rows()
        reference = Dataset.from_records(
            records, labels, [f"A{j}" for j in range(4)], name="s")
        path = tmp_path / "s.arena"
        stream_records_to_arena(records, labels, path,
                                attribute_names=[f"A{j}"
                                                 for j in range(4)],
                                name="s", chunk_records=128)
        _assert_equivalent(path, reference)

    def test_tiny_chunks_equivalent(self, tmp_path):
        records, labels = _rows(n=300)
        reference = Dataset.from_records(
            records, labels, [f"A{j}" for j in range(4)], name="s")
        path = tmp_path / "s.arena"
        # chunk_records below 64 floors to one word per chunk
        stream_records_to_arena(records, labels, path,
                                attribute_names=[f"A{j}"
                                                 for j in range(4)],
                                name="s", chunk_records=64)
        _assert_equivalent(path, reference)

    def test_skipped_fingerprint_mode(self, tmp_path):
        records, labels = _rows(n=200)
        reference = Dataset.from_records(
            records, labels, [f"A{j}" for j in range(4)], name="s")
        path = tmp_path / "s.arena"
        stream_records_to_arena(records, labels, path,
                                attribute_names=[f"A{j}"
                                                 for j in range(4)],
                                name="s", compute_fingerprint=False)
        with ArenaFile(path) as af:
            assert af.fingerprint == ""  # not in the header...
        # ...but computed lazily on open, still equal to the oracle.
        assert Dataset.open_arena(path).fingerprint() == \
            reference.fingerprint()

    def test_label_count_mismatch(self, tmp_path):
        records, labels = _rows(n=50)
        with pytest.raises(DataError, match="label"):
            stream_records_to_arena(records, labels[:-1],
                                    tmp_path / "x.arena")
        with pytest.raises(DataError, match="label"):
            stream_records_to_arena(records, labels + ["c0"],
                                    tmp_path / "x.arena")
        assert list(tmp_path.iterdir()) == []  # no partial outputs

    def test_spill_cleanup_on_failure(self, tmp_path):
        records, labels = _rows(n=500)

        class Boom(Exception):
            pass

        def exploding():
            yield from records[:300]
            raise Boom()

        with pytest.raises(Boom):
            stream_records_to_arena(exploding(), labels,
                                    tmp_path / "x.arena",
                                    chunk_records=64)
        assert list(tmp_path.iterdir()) == []


class TestStreamCsv:
    def _write_csv(self, tmp_path, records, labels):
        lines = ["A0,A1,A2,A3,class"]
        for record, label in zip(records, labels):
            cells = ["?" if v is None else v for v in record]
            lines.append(",".join(cells + [label]))
        csv_path = tmp_path / "in.csv"
        csv_path.write_text("\n".join(lines) + "\n")
        return csv_path

    def test_equivalent_to_load_csv(self, tmp_path):
        records, labels = _rows(n=400)
        csv_path = self._write_csv(tmp_path, records, labels)
        reference = load_csv(csv_path)
        path = tmp_path / "s.arena"
        stream_csv_to_arena(csv_path, path, chunk_records=128)
        _assert_equivalent(path, reference)

    def test_error_messages_match_loader(self, tmp_path):
        csv_path = tmp_path / "bad.csv"
        csv_path.write_text("a,b,class\n1,2\n")
        with pytest.raises(LoaderError, match="row 0 has 2 cells"):
            stream_csv_to_arena(csv_path, tmp_path / "x.arena")
        csv_path.write_text("a,b,class\n")
        with pytest.raises(LoaderError, match="no data rows"):
            stream_csv_to_arena(csv_path, tmp_path / "x.arena")
        csv_path.write_text("")
        with pytest.raises(LoaderError, match="empty CSV"):
            stream_csv_to_arena(csv_path, tmp_path / "x.arena")
        with pytest.raises(LoaderError, match="cannot read"):
            stream_csv_to_arena(tmp_path / "absent.csv",
                                tmp_path / "x.arena")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["bad.csv"]

    def test_named_class_column(self, tmp_path):
        records, labels = _rows(n=120)
        csv_path = self._write_csv(tmp_path, records, labels)
        reference = load_csv(csv_path, class_column="class")
        path = tmp_path / "s.arena"
        stream_csv_to_arena(csv_path, path, class_column="class")
        _assert_equivalent(path, reference)


class TestSql:
    def _database(self, tmp_path, records, labels):
        db = tmp_path / "d.sqlite"
        with sqlite3.connect(db) as conn:
            conn.execute(
                "CREATE TABLE t (a0 TEXT, a1 TEXT, a2 TEXT, a3 TEXT, "
                "label TEXT)")
            conn.executemany(
                "INSERT INTO t VALUES (?, ?, ?, ?, ?)",
                [list(r) + [lab] for r, lab in zip(records, labels)])
        return db

    def test_stream_equals_load(self, tmp_path):
        records, labels = _rows(n=350)
        db = self._database(tmp_path, records, labels)
        query = "SELECT * FROM t"
        reference = load_sql(db, query, name="sql")
        path = tmp_path / "s.arena"
        stream_sql_to_arena(db, query, path, chunk_records=64)
        _assert_equivalent(path, reference)

    def test_no_columns_rejected(self, tmp_path):
        db = self._database(tmp_path, *_rows(n=5))
        with pytest.raises(LoaderError, match="no columns"):
            load_sql(db, "CREATE TABLE u (x TEXT)")

    def test_no_rows_rejected(self, tmp_path):
        db = self._database(tmp_path, *_rows(n=5))
        with pytest.raises(LoaderError, match="no rows"):
            load_sql(db, "SELECT * FROM t WHERE a0 = 'nope'")


class TestParquetGate:
    def test_parquet_gated_without_pyarrow(self, tmp_path):
        pytest.importorskip  # not used: the gate itself is the test
        try:
            import pyarrow  # noqa: F401
            pytest.skip("pyarrow installed; gate not reachable")
        except ImportError:
            pass
        with pytest.raises(LoaderError, match="pyarrow"):
            load_parquet(tmp_path / "x.parquet")


class TestChunkDefaults:
    def test_default_chunk_is_word_aligned(self):
        assert DEFAULT_CHUNK_RECORDS % 64 == 0
