"""Unit tests for the synthetic generator (paper Section 5.1, Table 1)."""

from __future__ import annotations

import random

import pytest

from repro import bitset as bs
from repro.data import GeneratorConfig, generate, generate_paired
from repro.errors import DataError


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig().validate()

    def test_bad_records(self):
        with pytest.raises(DataError):
            GeneratorConfig(n_records=0).validate()

    def test_bad_classes(self):
        with pytest.raises(DataError):
            GeneratorConfig(n_classes=1).validate()

    def test_bad_value_range(self):
        with pytest.raises(DataError):
            GeneratorConfig(min_values=5, max_values=3).validate()
        with pytest.raises(DataError):
            GeneratorConfig(min_values=1).validate()

    def test_bad_rule_length(self):
        with pytest.raises(DataError):
            GeneratorConfig(n_rules=1, min_length=0).validate()
        with pytest.raises(DataError):
            GeneratorConfig(n_rules=1, n_attributes=3,
                            min_length=4, max_length=5).validate()

    def test_bad_coverage(self):
        with pytest.raises(DataError):
            GeneratorConfig(n_rules=1, n_records=100,
                            min_coverage=50, max_coverage=200).validate()

    def test_bad_confidence(self):
        with pytest.raises(DataError):
            GeneratorConfig(n_rules=1, min_confidence=0.9,
                            max_confidence=0.5).validate()
        with pytest.raises(DataError):
            GeneratorConfig(n_rules=1, min_confidence=0.0).validate()

    def test_rule_free_config_skips_rule_checks(self):
        GeneratorConfig(n_rules=0, min_coverage=10,
                        max_coverage=5).validate.__call__ if False else None
        config = GeneratorConfig(n_rules=0)
        config.validate()


class TestRandomDatasets:
    def test_shape(self):
        config = GeneratorConfig(n_records=100, n_attributes=10, n_rules=0)
        data = generate(config, seed=1)
        ds = data.dataset
        assert ds.n_records == 100
        assert ds.n_attributes == 10
        assert data.embedded_rules == []

    def test_every_cell_filled(self):
        config = GeneratorConfig(n_records=50, n_attributes=5, n_rules=0)
        ds = generate(config, seed=2).dataset
        for row in ds.to_records():
            assert all(v is not None for v in row)

    def test_classes_balanced(self):
        config = GeneratorConfig(n_records=100, n_classes=2, n_rules=0)
        ds = generate(config, seed=3).dataset
        assert ds.class_support(0) == 50
        assert ds.class_support(1) == 50

    def test_multiclass_balanced(self):
        config = GeneratorConfig(n_records=90, n_classes=3, n_rules=0)
        ds = generate(config, seed=4).dataset
        assert [ds.class_support(c) for c in range(3)] == [30, 30, 30]

    def test_cardinalities_within_bounds(self):
        config = GeneratorConfig(n_records=200, n_attributes=12,
                                 min_values=3, max_values=5, n_rules=0)
        ds = generate(config, seed=5).dataset
        for attribute in ds.catalog.attributes:
            n_values = len(ds.catalog.items_of_attribute(attribute))
            assert 1 <= n_values <= 5

    def test_determinism(self):
        config = GeneratorConfig(n_records=60, n_attributes=6, n_rules=0)
        a = generate(config, seed=9).dataset
        b = generate(config, seed=9).dataset
        assert a.item_tidsets == b.item_tidsets
        assert a.class_labels == b.class_labels

    def test_different_seeds_differ(self):
        config = GeneratorConfig(n_records=60, n_attributes=6, n_rules=0)
        a = generate(config, seed=9).dataset
        b = generate(config, seed=10).dataset
        assert a.item_tidsets != b.item_tidsets

    def test_seed_and_rng_conflict(self):
        with pytest.raises(DataError):
            generate(GeneratorConfig(), seed=1, rng=random.Random(2))


class TestEmbeddedRules:
    CONFIG = GeneratorConfig(
        n_records=400, n_attributes=12, min_values=2, max_values=4,
        n_rules=1, min_length=2, max_length=3,
        min_coverage=80, max_coverage=100,
        min_confidence=0.8, max_confidence=0.9,
    )

    def test_rule_metadata(self):
        data = generate(self.CONFIG, seed=21)
        rule = data.embedded_rules[0]
        assert 2 <= rule.length <= 3
        assert 80 <= rule.target_coverage <= 100
        assert 0.8 <= rule.target_confidence <= 0.9

    def test_realized_coverage_close_to_target(self):
        # The repair pass keeps accidental matches out, so realized
        # coverage equals the number of deliberately covered records
        # (up to accidents whose every cell was owned by another rule).
        data = generate(self.CONFIG, seed=22)
        rule = data.embedded_rules[0]
        assert rule.coverage <= rule.target_coverage * 1.1
        assert rule.coverage >= rule.target_coverage

    def test_deliberate_records_contain_pattern(self):
        data = generate(self.CONFIG, seed=23)
        rule = data.embedded_rules[0]
        tids = data.dataset.pattern_tidset(rule.item_ids)
        for record_id in rule.record_ids:
            assert tids & (1 << record_id)

    def test_realized_confidence_close_to_target(self):
        data = generate(self.CONFIG, seed=24)
        rule = data.embedded_rules[0]
        support = data.dataset.rule_support(rule.item_ids,
                                            rule.class_index)
        confidence = support / rule.coverage
        assert confidence == pytest.approx(rule.target_confidence,
                                           abs=0.08)

    def test_item_ids_resolve_to_pairs(self):
        data = generate(self.CONFIG, seed=25)
        rule = data.embedded_rules[0]
        described = {str(data.dataset.catalog.item(i))
                     for i in rule.item_ids}
        assert described == {f"{a}={v}" for a, v in rule.pairs}

    def test_multiple_rules_disjoint_records(self):
        config = GeneratorConfig(
            n_records=500, n_attributes=20, n_rules=3,
            min_length=2, max_length=3, min_coverage=50, max_coverage=60,
            min_confidence=0.7, max_confidence=0.9)
        data = generate(config, seed=26)
        assert len(data.embedded_rules) == 3
        covered = [set(r.record_ids) for r in data.embedded_rules]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not covered[i] & covered[j]

    def test_describe_mentions_class(self):
        data = generate(self.CONFIG, seed=27)
        text = data.embedded_rules[0].describe()
        assert "=>" in text


class TestPairedGeneration:
    CONFIG = GeneratorConfig(
        n_records=400, n_attributes=12, min_values=2, max_values=4,
        n_rules=1, min_length=2, max_length=3,
        min_coverage=80, max_coverage=100,
        min_confidence=0.8, max_confidence=0.9,
    )

    def test_boundary_is_half(self):
        data = generate_paired(self.CONFIG, seed=31)
        assert data.half_boundary == 200
        assert data.dataset.n_records == 400

    def test_rule_present_in_both_halves(self):
        data = generate_paired(self.CONFIG, seed=32)
        rule = data.embedded_rules[0]
        tids = data.dataset.pattern_tidset(rule.item_ids)
        first_half = bs.universe(200)
        in_first = bs.popcount(tids & first_half)
        in_second = bs.popcount(tids) - in_first
        # Each half embeds coverage in [min_s/2, max_s/2] = [40, 50].
        assert 40 <= in_first <= 55
        assert 40 <= in_second <= 55

    def test_total_coverage_in_paper_range(self):
        data = generate_paired(self.CONFIG, seed=33)
        rule = data.embedded_rules[0]
        assert 80 <= rule.coverage <= 110

    def test_classes_balanced_overall(self):
        data = generate_paired(self.CONFIG, seed=34)
        ds = data.dataset
        assert abs(ds.class_support(0) - ds.class_support(1)) <= 2

    def test_determinism(self):
        a = generate_paired(self.CONFIG, seed=35).dataset
        b = generate_paired(self.CONFIG, seed=35).dataset
        assert a.item_tidsets == b.item_tidsets
