"""Unit tests for supervised and unsupervised discretization."""

from __future__ import annotations

import random

import pytest

from repro.data import (
    apply_cuts,
    discretize_columns,
    equal_frequency_cuts,
    equal_width_cuts,
    mdl_discretize,
)
from repro.errors import DataError


class TestMdl:
    def test_perfect_separation_finds_the_cut(self):
        values = [1.0, 2.0, 3.0, 4.0, 10.0, 11.0, 12.0, 13.0]
        labels = [0, 0, 0, 0, 1, 1, 1, 1]
        cuts = mdl_discretize(values, labels)
        assert len(cuts) == 1
        assert 4.0 < cuts[0] < 10.0

    def test_pure_noise_yields_no_cut(self):
        rng = random.Random(3)
        values = [rng.random() for _ in range(200)]
        labels = [rng.randint(0, 1) for _ in range(200)]
        assert mdl_discretize(values, labels) == []

    def test_constant_attribute_yields_no_cut(self):
        assert mdl_discretize([5.0] * 50, [0, 1] * 25) == []

    def test_three_way_separation(self):
        # Large enough that both splits clear the MDL acceptance bound.
        values = list(range(60))
        labels = [0] * 20 + [1] * 20 + [0] * 20
        cuts = mdl_discretize(values, labels)
        assert len(cuts) == 2
        assert 19 < cuts[0] < 21
        assert 39 < cuts[1] < 41

    def test_empty_input(self):
        assert mdl_discretize([], []) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            mdl_discretize([1.0], [0, 1])

    def test_cuts_are_sorted(self):
        values = list(range(40))
        labels = ([0] * 10 + [1] * 10) * 2
        cuts = mdl_discretize(values, labels)
        assert cuts == sorted(cuts)


class TestUnsupervised:
    def test_equal_width(self):
        cuts = equal_width_cuts([0.0, 10.0], 5)
        assert cuts == pytest.approx([2.0, 4.0, 6.0, 8.0])

    def test_equal_width_single_bin(self):
        assert equal_width_cuts([1.0, 2.0], 1) == []

    def test_equal_width_constant(self):
        assert equal_width_cuts([3.0, 3.0], 4) == []

    def test_equal_width_invalid_bins(self):
        with pytest.raises(DataError):
            equal_width_cuts([1.0], 0)

    def test_equal_frequency_balanced(self):
        values = list(range(100))
        cuts = equal_frequency_cuts(values, 4)
        assert len(cuts) == 3
        bins = apply_cuts(values, cuts)
        from collections import Counter
        counts = Counter(bins)
        assert all(c == 25 for c in counts.values())

    def test_equal_frequency_with_ties(self):
        values = [1.0] * 50 + [2.0] * 50
        cuts = equal_frequency_cuts(values, 4)
        assert len(cuts) == 1  # only one distinct boundary exists

    def test_equal_frequency_empty(self):
        assert equal_frequency_cuts([], 3) == []


class TestApplyCuts:
    def test_no_cuts_single_label(self):
        labels = apply_cuts([1.0, 2.0], [])
        assert set(labels) == {"(-inf,inf)"}

    def test_interval_assignment(self):
        labels = apply_cuts([0.5, 1.5, 2.5], [1.0, 2.0])
        assert labels == ["(-inf,1]", "(1,2]", "(2,inf)"]

    def test_boundary_goes_left(self):
        assert apply_cuts([1.0], [1.0]) == ["(-inf,1]"]

    def test_labels_stable_across_calls(self):
        cuts = [3.0, 7.0]
        assert apply_cuts([5.0], cuts) == apply_cuts([5.0], cuts)


class TestColumns:
    def test_mdl_columns(self):
        col = [1.0, 2.0, 3.0, 10.0, 11.0, 12.0]
        labels = [0, 0, 0, 1, 1, 1]
        result = discretize_columns([col, col], labels, method="mdl")
        assert len(result) == 2
        assert len(set(result[0])) == 2

    def test_width_columns(self):
        result = discretize_columns([[0.0, 10.0]], [0, 1],
                                    method="width", n_bins=2)
        assert result[0] == ["(-inf,5]", "(5,inf)"]

    def test_frequency_columns(self):
        result = discretize_columns([list(range(8))], [0, 1] * 4,
                                    method="frequency", n_bins=2)
        assert len(set(result[0])) == 2

    def test_unknown_method(self):
        with pytest.raises(DataError):
            discretize_columns([[1.0]], [0], method="magic")
