"""Unit tests for the Dataset model (paper Section 2.1)."""

from __future__ import annotations

import random

import pytest

from repro import bitset as bs
from repro.data import Dataset, Item
from repro.errors import DataError


class TestConstruction:
    def test_from_records_basic(self, tiny_dataset):
        assert tiny_dataset.n_records == 8
        assert tiny_dataset.n_attributes == 3
        assert tiny_dataset.n_items == 6  # a,b,x,y,m,n
        assert tiny_dataset.n_classes == 2

    def test_item_tidsets(self, tiny_dataset):
        item_a = tiny_dataset.catalog.id_of(Item("A", "a"))
        assert bs.bitset_to_indices(
            tiny_dataset.item_tidsets[item_a]) == [0, 1, 2, 3]

    def test_class_encoding_first_seen_order(self, tiny_dataset):
        assert tiny_dataset.class_names == ["pos", "neg"]
        assert tiny_dataset.class_labels[:4] == [0, 0, 0, 0]

    def test_missing_values_produce_no_item(self):
        ds = Dataset.from_records(
            [["a", None], ["a", "x"]], ["c0", "c1"], ["A", "B"])
        assert ds.n_items == 2  # A=a, B=x

    def test_explicit_class_names(self):
        ds = Dataset.from_records([["a"], ["b"]], ["no", "yes"],
                                  class_names=["yes", "no"])
        assert ds.class_names == ["yes", "no"]
        assert ds.class_labels == [1, 0]

    def test_unknown_explicit_label_rejected(self):
        with pytest.raises(DataError):
            Dataset.from_records([["a"], ["b"]], ["no", "maybe"],
                                 class_names=["yes", "no"])

    def test_ragged_records_rejected(self):
        with pytest.raises(DataError):
            Dataset.from_records([["a", "b"], ["a"]], ["c0", "c1"])

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(DataError):
            Dataset.from_records([["a"], ["b"]], ["c0"])

    def test_single_class_rejected(self):
        with pytest.raises(DataError):
            Dataset.from_records([["a"], ["b"]], ["c0", "c0"])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            Dataset.from_records([], [])

    def test_from_transactions(self):
        ds = Dataset.from_transactions(
            [["1", "2"], ["2", "3"], ["1"]], ["a", "b", "a"])
        assert ds.n_records == 3
        assert ds.n_items == 3
        assert ds.class_names == ["a", "b"]


class TestCounting:
    def test_class_supports(self, tiny_dataset):
        assert tiny_dataset.class_support(0) == 4
        assert tiny_dataset.class_support(1) == 4

    def test_pattern_tidset_and_support(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        a = catalog.id_of(Item("A", "a"))
        x = catalog.id_of(Item("B", "x"))
        assert tiny_dataset.pattern_support([a, x]) == 2
        assert bs.bitset_to_indices(
            tiny_dataset.pattern_tidset([a, x])) == [0, 1]

    def test_empty_pattern_covers_everything(self, tiny_dataset):
        assert tiny_dataset.pattern_support([]) == 8

    def test_rule_support(self, tiny_dataset):
        catalog = tiny_dataset.catalog
        a = catalog.id_of(Item("A", "a"))
        assert tiny_dataset.rule_support([a], 0) == 4
        assert tiny_dataset.rule_support([a], 1) == 0

    def test_class_summaries(self, tiny_dataset):
        summaries = tiny_dataset.class_summaries()
        assert [s.name for s in summaries] == ["pos", "neg"]
        assert all(s.support == 4 for s in summaries)

    def test_item_support(self, tiny_dataset):
        item_m = tiny_dataset.catalog.id_of(Item("C", "m"))
        assert tiny_dataset.item_support(item_m) == 4


class TestTransformations:
    def test_with_class_labels_shares_tidsets(self, tiny_dataset):
        flipped = tiny_dataset.with_class_labels(
            [1 - c for c in tiny_dataset.class_labels])
        assert flipped.item_tidsets is not None
        assert flipped.item_tidsets[0] == tiny_dataset.item_tidsets[0]
        assert flipped.class_support(0) == 4

    def test_permuted_preserves_class_counts(self, tiny_dataset):
        import numpy as np

        permuted = tiny_dataset.permuted(np.random.default_rng(0xC0FFEE))
        assert sorted(permuted.class_labels) == sorted(
            tiny_dataset.class_labels)
        assert permuted.item_tidsets == tiny_dataset.item_tidsets

    def test_permuted_generator_is_deterministic(self, tiny_dataset):
        import numpy as np

        first = tiny_dataset.permuted(np.random.default_rng(7))
        second = tiny_dataset.permuted(np.random.default_rng(7))
        assert first.class_labels == second.class_labels

    def test_permuted_random_random_is_deprecated(self, tiny_dataset, rng):
        with pytest.deprecated_call():
            permuted = tiny_dataset.permuted(rng)
        # The legacy shim still performs the Fisher–Yates shuffle.
        assert sorted(permuted.class_labels) == sorted(
            tiny_dataset.class_labels)

    def test_permuted_class_tidsets_counts(self, tiny_dataset):
        import numpy as np

        tidsets = tiny_dataset.permuted_class_tidsets(
            np.random.default_rng(0xC0FFEE))
        assert [bs.popcount(t) for t in tidsets] == [4, 4]
        assert tidsets[0] & tidsets[1] == 0
        assert tidsets[0] | tidsets[1] == bs.universe(8)

    def test_permuted_class_tidsets_random_random_warns(
            self, tiny_dataset, rng):
        with pytest.deprecated_call():
            tidsets = tiny_dataset.permuted_class_tidsets(rng)
        assert [bs.popcount(t) for t in tidsets] == [4, 4]

    def test_subset_reindexes(self, tiny_dataset):
        sub = tiny_dataset.subset([4, 5, 6, 7])
        assert sub.n_records == 4
        assert sub.class_support(1) == 4
        item_b = sub.catalog.id_of(Item("A", "b"))
        assert bs.bitset_to_indices(sub.item_tidsets[item_b]) == [0, 1, 2, 3]

    def test_subset_shares_catalog(self, tiny_dataset):
        sub = tiny_dataset.subset([0, 1])
        assert sub.catalog is tiny_dataset.catalog

    def test_subset_rejects_duplicates(self, tiny_dataset):
        with pytest.raises(DataError):
            tiny_dataset.subset([0, 0])

    def test_subset_rejects_out_of_range(self, tiny_dataset):
        with pytest.raises(DataError):
            tiny_dataset.subset([99])

    def test_split_half_structured(self, tiny_dataset):
        first, second = tiny_dataset.split_half()
        assert first.n_records == 4
        assert second.n_records == 4
        assert first.class_support(0) == 4  # records 0-3 are all "pos"

    def test_split_half_random_partitions(self, tiny_dataset, rng):
        first, second = tiny_dataset.split_half(rng=rng)
        assert first.n_records + second.n_records == 8
        total_pos = first.class_support(0) + second.class_support(0)
        assert total_pos == 4

    def test_split_half_custom_boundary(self, tiny_dataset):
        first, second = tiny_dataset.split_half(boundary=2)
        assert first.n_records == 2
        assert second.n_records == 6

    def test_split_empty_half_rejected(self, tiny_dataset):
        with pytest.raises(DataError):
            tiny_dataset.split_half(boundary=0)


class TestRoundTrip:
    def test_to_records_roundtrip(self, tiny_dataset):
        rows = tiny_dataset.to_records()
        rebuilt = Dataset.from_records(
            rows, [tiny_dataset.class_names[c]
                   for c in tiny_dataset.class_labels],
            tiny_dataset.catalog.attributes)
        assert rebuilt.n_items == tiny_dataset.n_items
        for item in tiny_dataset.catalog:
            original = tiny_dataset.item_tidsets[
                tiny_dataset.catalog.id_of(item)]
            restored = rebuilt.item_tidsets[rebuilt.catalog.id_of(item)]
            assert original == restored

    def test_repr_mentions_shape(self, tiny_dataset):
        text = repr(tiny_dataset)
        assert "n_records=8" in text
        assert "tiny" in text


class TestValidation:
    def test_tidset_out_of_range_rejected(self):
        from repro.data import ItemCatalog
        catalog = ItemCatalog()
        catalog.add_pair("A", "x")
        with pytest.raises(DataError):
            Dataset(2, catalog, [0b100], [0, 1], ["a", "b"])

    def test_label_out_of_range_rejected(self):
        from repro.data import ItemCatalog
        catalog = ItemCatalog()
        catalog.add_pair("A", "x")
        with pytest.raises(DataError):
            Dataset(2, catalog, [0b11], [0, 2], ["a", "b"])

    def test_tidset_count_mismatch_rejected(self):
        from repro.data import ItemCatalog
        catalog = ItemCatalog()
        catalog.add_pair("A", "x")
        with pytest.raises(DataError):
            Dataset(2, catalog, [], [0, 1], ["a", "b"])
