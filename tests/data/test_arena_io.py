"""On-disk arena files: round-trip, atomicity, zero-copy guarantees."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.data import ArenaFile, Dataset, load_arena
from repro.data.arena import ARENA_MAGIC, segment_boundaries
from repro.errors import DataError
from repro.tidvector import stack_tidvectors


def _dataset(n_records=300, seed=7):
    rng = np.random.default_rng(seed)
    records = [[f"v{rng.integers(0, 3)}" for _ in range(5)]
               for _ in range(n_records)]
    labels = [f"c{rng.integers(0, 2)}" for _ in range(n_records)]
    return Dataset.from_records(records, labels,
                                [f"A{j}" for j in range(5)],
                                name="arena-fixture")


class TestRoundTrip:
    def test_single_segment_round_trip(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.arena"
        ds.save_arena(path)
        back = Dataset.open_arena(path)
        assert back.n_records == ds.n_records
        assert back.class_names == ds.class_names
        assert np.array_equal(back.class_labels, ds.class_labels)
        assert np.array_equal(back.item_arena, ds.item_arena)
        assert [str(i) for i in back.catalog] == \
               [str(i) for i in ds.catalog]
        assert back.fingerprint() == ds.fingerprint()

    def test_multi_segment_round_trip(self, tmp_path):
        ds = _dataset(n_records=1000)
        path = tmp_path / "ds.arena"
        ds.save_arena(path, n_segments=4)
        with ArenaFile(path) as af:
            assert af.n_segments == 4
            assert np.array_equal(af.item_supports(),
                                  [t.count() for t in ds.item_tidsets])
        back = Dataset.open_arena(path)
        assert np.array_equal(back.item_arena, ds.item_arena)

    def test_header_fingerprint_readable_without_scan(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.arena"
        ds.save_arena(path)
        with ArenaFile(path) as af:
            assert af.fingerprint == ds.fingerprint()

    def test_load_arena_helper(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.arena"
        ds.save_arena(path)
        assert load_arena(path).fingerprint() == ds.fingerprint()
        sharded = load_arena(path, sharded=True)
        assert sharded.fingerprint() == ds.fingerprint()
        sharded.close()

    def test_segment_metadata_merges_to_whole(self, tmp_path):
        ds = _dataset(n_records=640)
        path = tmp_path / "ds.arena"
        ds.save_arena(path, n_segments=5)
        with ArenaFile(path) as af:
            assert np.array_equal(af.segment_class_counts().sum(axis=0),
                                  af.class_counts())
            assert np.array_equal(af.segment_item_supports().sum(axis=0),
                                  af.item_supports())


class TestAtomicityAndErrors:
    def test_no_partial_file_on_failure(self, tmp_path):
        ds = _dataset()
        target = tmp_path / "ds.arena"

        class Boom(Exception):
            pass

        real = ds._arena_chunks

        def exploding(w0, w1):
            yield from real(w0, w1)
            raise Boom()

        ds._arena_chunks = exploding
        with pytest.raises(Boom):
            ds.save_arena(target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # tmp file cleaned up

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.arena"
        path.write_bytes(b"NOTANARENA" + b"\x00" * 64)
        with pytest.raises(DataError, match="magic"):
            ArenaFile(path)

    def test_truncated_file_rejected(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.arena"
        ds.save_arena(path)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) - 16])
        with pytest.raises(DataError, match="truncat"):
            ArenaFile(path)

    def test_magic_constant(self):
        assert ARENA_MAGIC == b"REPROARN"

    def test_closed_arena_refuses_reads(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.arena"
        ds.save_arena(path)
        af = ArenaFile(path)
        af.close()
        assert af.closed
        with pytest.raises(DataError):
            af.whole_words()


class TestSegmentBoundaries:
    def test_interior_boundaries_word_aligned(self):
        bounds = segment_boundaries(1000, 4)
        assert bounds[0] == 0 and bounds[-1] == 1000
        assert all(b % 64 == 0 for b in bounds[1:-1])

    def test_k_capped_at_word_count(self):
        bounds = segment_boundaries(333, 7)  # 333 records = 6 words
        assert len(bounds) - 1 == 6


class TestZeroCopy:
    def test_open_arena_maps_not_copies(self, tmp_path):
        ds = _dataset()
        path = tmp_path / "ds.arena"
        ds.save_arena(path)
        back = Dataset.open_arena(path)
        # Walk the view chain: some ancestor must be the file mapping
        # (np.memmap, whose own .base is the raw mmap object).
        chain, node = [], back.item_arena
        while node is not None:
            chain.append(node)
            node = getattr(node, "base", None)
        assert any(isinstance(a, np.memmap) for a in chain) \
            or type(chain[-1]).__name__ == "mmap"

    def test_pickle_ships_path_not_words(self, tmp_path):
        ds = _dataset(n_records=2000)
        path = tmp_path / "ds.arena"
        ds.save_arena(path)
        back = Dataset.open_arena(path)
        blob = pickle.dumps(back)
        # Far below the word block's size: the path rides, not pages.
        assert len(blob) < 4096 + ds.n_records * 8
        again = pickle.loads(blob)
        assert np.array_equal(again.item_arena, ds.item_arena)
        assert again.fingerprint() == ds.fingerprint()

    def test_relabelled_arena_dataset_pickles_by_path(self, tmp_path):
        ds = _dataset(n_records=1500)
        path = tmp_path / "ds.arena"
        ds.save_arena(path)
        back = Dataset.open_arena(path)
        flipped = back.with_class_labels(
            np.array(back.class_labels)[::-1].tolist())
        blob = pickle.dumps(flipped)
        assert len(blob) < 4096 + 2 * ds.n_records * 8
        again = pickle.loads(blob)
        assert np.array_equal(again.class_labels, flipped.class_labels)
        assert np.array_equal(again.item_arena, ds.item_arena)

    def test_stack_tidvectors_shared_arena_is_view(self):
        ds = _dataset()
        stacked = stack_tidvectors(list(ds.item_tidsets), ds.n_records)
        # The pin: tidsets that already share one contiguous arena
        # stack as a view of it, no fresh allocation.
        assert np.shares_memory(stacked, ds.item_arena)

    def test_stack_tidvectors_mixed_sources_copies(self):
        ds = _dataset()
        rows = list(ds.item_tidsets)
        rows[1] = rows[1].copy()  # breaks the shared-arena chain
        stacked = stack_tidvectors(rows, ds.n_records)
        assert stacked.shape == ds.item_arena.shape
        assert np.array_equal(stacked, ds.item_arena)
        assert not np.shares_memory(stacked, ds.item_arena)
