"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.data import Dataset, GeneratorConfig, generate


@pytest.fixture
def rng():
    """A deterministic Random for tests that need shuffling."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def tiny_dataset() -> Dataset:
    """8 records, 3 attributes, 2 classes — hand-checkable."""
    records = [
        ["a", "x", "m"],
        ["a", "x", "n"],
        ["a", "y", "m"],
        ["a", "y", "n"],
        ["b", "x", "m"],
        ["b", "x", "n"],
        ["b", "y", "m"],
        ["b", "y", "n"],
    ]
    labels = ["pos", "pos", "pos", "pos", "neg", "neg", "neg", "neg"]
    return Dataset.from_records(records, labels, ["A", "B", "C"],
                                name="tiny")


@pytest.fixture
def small_random_dataset() -> Dataset:
    """A 120-record random dataset (no embedded rules)."""
    config = GeneratorConfig(n_records=120, n_attributes=8,
                             min_values=2, max_values=3, n_rules=0)
    return generate(config, seed=7).dataset


@pytest.fixture
def embedded_data():
    """A 400-record dataset with one strong planted rule."""
    config = GeneratorConfig(
        n_records=400, n_attributes=12, min_values=2, max_values=4,
        n_rules=1, min_length=2, max_length=3,
        min_coverage=80, max_coverage=80,
        min_confidence=0.9, max_confidence=0.9,
    )
    return generate(config, seed=11)
