"""The native kernel suite ≡ the numpy fallbacks ≡ the bigint oracle.

The kernel-suite PR added three fused kernels to :mod:`repro._native`
— the subset/closure mask, multi-class batched supports, and the
andnot diffset recurrence — each reached through a :mod:`repro.bitmat`
wrapper that silently falls back to numpy. These tests pin the
three-way equivalence on ragged shapes (widths under one word, exact
word boundaries, straddling tails), the edge cases of kernel
selection (empty forests, single-record datasets), and the ``auto``
policy's crossover decisions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _native
from repro import bitset as bs
from repro.bitmat import (
    BitMatrix,
    andnot_counts,
    intersection_counts,
    superset_mask,
)
from repro.errors import CorrectionError, MiningError
from repro.mining import (
    POLICY_CHOICES,
    PatternForest,
    mine_closed,
    resolve_auto_policy,
)
from repro.mining.diffsets import (
    AUTO_DENSITY_CROSSOVER,
    AUTO_MIN_RECORDS,
)
from repro.mining.tidsets import build_vertical_view
from repro.tidvector import TidVector, arena_rows, pack_bool_matrix


def _arena(tidsets, n_records):
    """Pack bigint tidsets into a ``(k, n_words)`` uint64 arena."""
    return BitMatrix.from_tidsets(tidsets, n_records).words


@st.composite
def ragged_arenas(draw):
    # 1..130 records straddles <1 word, =1 word, =2 words, ragged tail.
    n_records = draw(st.integers(min_value=1, max_value=130))
    n_rows = draw(st.integers(min_value=0, max_value=8))
    top = (1 << n_records) - 1
    rows = [draw(st.integers(min_value=0, max_value=top))
            for _ in range(n_rows)]
    query = draw(st.integers(min_value=0, max_value=top))
    return rows, query, n_records


def _both_paths(fn):
    """Evaluate ``fn`` on the native path and the numpy fallback."""
    native = fn()
    with pytest.MonkeyPatch.context() as patch:
        patch.setattr(_native, "_kernel", None)
        numpy_out = fn()
    return native, numpy_out


class TestSupersetMask:
    @given(instance=ragged_arenas())
    @settings(max_examples=80, deadline=None)
    def test_matches_bigint_subset(self, instance):
        rows, query, n_records = instance
        matrix = _arena(rows, n_records)
        query_words = _arena([query], n_records)[0]
        oracle = [query & ~row == 0 for row in rows]
        native, fallback = _both_paths(
            lambda: superset_mask(matrix, query_words))
        assert native.tolist() == oracle
        assert fallback.tolist() == oracle

    def test_empty_and_single_record(self):
        empty = _arena([], 77)
        assert superset_mask(empty, _arena([0], 77)[0]).shape == (0,)
        one = _arena([1, 0], 1)
        assert superset_mask(one, _arena([1], 1)[0]).tolist() == \
            [True, False]
        assert superset_mask(one, _arena([0], 1)[0]).tolist() == \
            [True, True]


class TestIntersectionCounts:
    @given(instance=ragged_arenas())
    @settings(max_examples=80, deadline=None)
    def test_matches_bigint_popcount(self, instance):
        rows, query, n_records = instance
        matrix = _arena(rows, n_records)
        query_words = _arena([query], n_records)[0]
        oracle = [bs.popcount(row & query) for row in rows]
        native, fallback = _both_paths(
            lambda: intersection_counts(matrix, query_words))
        assert native.tolist() == oracle
        assert fallback.tolist() == oracle

    def test_shape_validated(self):
        matrix = _arena([1, 2], 100)
        with pytest.raises(ValueError):
            intersection_counts(matrix, np.zeros(3, dtype=np.uint64))


class TestAndnotCounts:
    @given(instance=ragged_arenas())
    @settings(max_examples=80, deadline=None)
    def test_matches_bigint_difference(self, instance):
        rows, query, n_records = instance
        matrix = _arena(rows, n_records)
        other = _arena([query] * len(rows), n_records)
        oracle = [bs.popcount(row & ~query) for row in rows]
        native, fallback = _both_paths(
            lambda: andnot_counts(matrix, other))
        assert native.tolist() == oracle
        assert fallback.tolist() == oracle

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            andnot_counts(_arena([1], 65), _arena([1, 2], 65))


class TestClassSupportsMulti:
    @given(instance=ragged_arenas(),
           n_batch=st.integers(min_value=0, max_value=3),
           n_classes=st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_matches_per_class_calls(self, instance, n_batch,
                                     n_classes):
        rows, _query, n_records = instance
        matrix = BitMatrix.from_tidsets(rows, n_records)
        rng = np.random.default_rng(n_records * 31 + n_batch)
        stacked = rng.random((n_classes, n_batch, n_records)) < 0.5
        native, fallback = _both_paths(
            lambda: matrix.class_supports_multi(stacked))
        assert native.shape == (n_classes, n_batch, len(rows))
        assert np.array_equal(native, fallback)
        for c in range(n_classes):
            assert np.array_equal(
                native[c], matrix.class_supports_batch(stacked[c]))

    def test_shape_validated(self):
        matrix = BitMatrix.from_tidsets([1], 4)
        with pytest.raises(ValueError):
            matrix.class_supports_multi(np.ones((2, 4), dtype=bool))
        with pytest.raises(ValueError):
            matrix.class_supports_multi(np.ones((1, 2, 5), dtype=bool))


class TestVerticalViewKernels:
    def _view(self, n_records, n_items, seed, density=0.3):
        rng = np.random.default_rng(seed)
        flags = rng.random((n_items, n_records)) < density
        tidsets = arena_rows(pack_bool_matrix(flags), n_records)
        return build_vertical_view(tidsets, n_records, min_sup=1,
                                   order="original")

    def test_candidate_supports_equals_python_loop(self):
        view = self._view(100, 12, seed=5)
        query = view.tidsets[0] & view.tidsets[3]
        expected = [query.intersection_count(t) for t in view.tidsets]
        for start in (0, 4, 11, 12, 40):
            native, fallback = _both_paths(
                lambda s=start: view.candidate_supports(query, s))
            assert native.tolist() == expected[start:]
            assert fallback.tolist() == expected[start:]

    def test_superset_positions_equals_python_loop(self):
        view = self._view(90, 10, seed=8, density=0.6)
        query = view.tidsets[1] & view.tidsets[7]
        expected = [p for p, t in enumerate(view.tidsets)
                    if query.is_subset(t)]
        native, fallback = _both_paths(
            lambda: view.superset_positions(query))
        assert native.tolist() == expected
        assert fallback.tolist() == expected

    def test_single_record_dataset(self):
        view = self._view(1, 4, seed=2, density=1.0)
        tids = TidVector.universe(1)
        assert view.candidate_supports(tids).tolist() == [1] * 4
        assert view.superset_positions(tids).tolist() == [0, 1, 2, 3]

    def test_mined_patterns_identical_without_native(self, monkeypatch):
        rng = np.random.default_rng(13)
        flags = rng.random((20, 200)) < 0.4
        tidsets = arena_rows(pack_bool_matrix(flags), 200)
        native_run = mine_closed(tidsets, 200, min_sup=10)
        with monkeypatch.context() as patch:
            patch.setattr(_native, "_kernel", None)
            numpy_run = mine_closed(tidsets, 200, min_sup=10)
        assert [(p.node_id, p.parent_id, p.items, p.support, p.depth)
                for p in native_run] == \
            [(p.node_id, p.parent_id, p.items, p.support, p.depth)
             for p in numpy_run]


class TestAutoPolicy:
    def test_crossover_decisions(self):
        # Small record sets always pack, whatever the density.
        assert resolve_auto_policy(1000, AUTO_MIN_RECORDS - 1,
                                   10) == "packed"
        assert resolve_auto_policy(0, 100_000, 0) == "packed"
        n_nodes, n_records = 100, 100_000
        dense = int(n_nodes * n_records * AUTO_DENSITY_CROSSOVER * 2)
        sparse = int(n_nodes * n_records * AUTO_DENSITY_CROSSOVER / 2)
        assert resolve_auto_policy(n_nodes, n_records,
                                   dense) == "packed"
        assert resolve_auto_policy(n_nodes, n_records,
                                   sparse) == "diffsets"

    def test_auto_is_a_choice_everywhere(self):
        assert "auto" in POLICY_CHOICES
        from repro.core.pipeline import Pipeline
        Pipeline(min_sup=5, corrections=("bh",), policy="auto")
        with pytest.raises(CorrectionError):
            Pipeline(min_sup=5, corrections=("bh",), policy="nope")

    def test_forest_resolves_auto(self):
        rng = np.random.default_rng(3)
        from repro.mining.patterns import Pattern
        flags = rng.random((6, 100)) < 0.5
        tidsets = arena_rows(pack_bool_matrix(flags), 100)
        patterns = [Pattern(i, -1, frozenset({i}), t, t.count(), 0)
                    for i, t in enumerate(tidsets)]
        forest = PatternForest(patterns, 100, "auto")
        assert forest.requested_policy == "auto"
        assert forest.policy in ("packed", "diffsets")
        # 100 records < AUTO_MIN_RECORDS: the dense side of the rule.
        assert forest.policy == "packed"
        with pytest.raises(MiningError):
            PatternForest(patterns, 100, "fastest")

    def test_auto_supports_match_explicit_policies(self):
        rng = np.random.default_rng(21)
        flags = rng.random((15, 140)) < 0.3
        tidsets = arena_rows(pack_bool_matrix(flags), 140)
        patterns = mine_closed(tidsets, 140, min_sup=5)
        indicator = rng.random(140) < 0.5
        reference = None
        for policy in POLICY_CHOICES:
            forest = PatternForest(patterns, 140, policy)
            got = forest.class_supports(indicator)
            if reference is None:
                reference = got
            assert np.array_equal(got, reference), policy
