"""Unit tests for the closed frequent pattern miner (Section 3)."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro import bitset as bs
from repro.data import GeneratorConfig, generate
from repro.errors import MiningError
from repro.mining import mine_apriori, mine_closed


def _random_tidsets(rng, n_items, n_records, density=0.4):
    out = []
    for _ in range(n_items):
        bits = 0
        for r in range(n_records):
            if rng.random() < density:
                bits |= 1 << r
        out.append(bits)
    return out


class TestSmallHandChecked:
    def test_two_identical_items_collapse(self):
        # Items 0 and 1 always co-occur: only the pair is closed.
        tidsets = [0b0111, 0b0111, 0b1100]
        patterns = mine_closed(tidsets, 4, min_sup=1)
        itemsets = {tuple(sorted(p.items)) for p in patterns
                    if p.items}
        assert (0, 1) in itemsets
        assert (0,) not in itemsets
        assert (1,) not in itemsets

    def test_root_is_universe(self):
        patterns = mine_closed([0b01, 0b10], 2, min_sup=1)
        root = patterns[0]
        assert root.parent_id == -1
        assert root.support == 2
        assert root.items == frozenset()

    def test_full_support_item_joins_root(self):
        patterns = mine_closed([0b11, 0b01], 2, min_sup=1)
        root = patterns[0]
        assert root.items == frozenset({0})

    def test_min_sup_prunes(self):
        tidsets = [0b0001, 0b1111]
        patterns = mine_closed(tidsets, 4, min_sup=2)
        for p in patterns:
            assert p.support >= 2
        assert all(0 not in p.items for p in patterns)

    def test_max_length_caps(self):
        rng = random.Random(2)
        tidsets = _random_tidsets(rng, 8, 30)
        patterns = mine_closed(tidsets, 30, min_sup=1, max_length=2)
        assert all(p.length <= 2 for p in patterns)

    def test_invalid_max_length(self):
        with pytest.raises(MiningError):
            mine_closed([0b1], 1, min_sup=1, max_length=-1)

    def test_min_sup_above_n_returns_empty(self):
        assert mine_closed([0b11], 2, min_sup=3) == []


class TestAgainstApriori:
    """The closed miner must agree with brute-force Apriori."""

    @pytest.mark.parametrize("seed", range(8))
    def test_closed_equals_support_maximal_frequent(self, seed):
        rng = random.Random(seed)
        n_records = rng.randint(10, 40)
        n_items = rng.randint(3, 8)
        tidsets = _random_tidsets(rng, n_items, n_records)
        min_sup = rng.randint(1, 4)
        closed = mine_closed(tidsets, n_records, min_sup)
        frequent = mine_apriori(tidsets, n_records, min_sup)

        # Expected closed sets: group frequent patterns by tidset and
        # keep the largest itemset of each group.
        by_tidset = {}
        for fp in frequent:
            best = by_tidset.get(fp.tidset)
            if best is None or len(fp.items) > len(best.items):
                by_tidset[fp.tidset] = fp
        expected = {(fs.tidset, fs.items) for fs in by_tidset.values()}
        got = {(p.tidset, p.items) for p in closed if p.items}
        # The root may add the full-universe tidset even when no single
        # item reaches full support; frequent patterns never include it.
        got.discard((bs.universe(n_records), frozenset()))
        assert got == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_each_closed_pattern_support_correct(self, seed):
        rng = random.Random(100 + seed)
        tidsets = _random_tidsets(rng, 6, 25)
        for p in mine_closed(tidsets, 25, min_sup=2):
            expected = bs.universe(25)
            for item in p.items:
                expected &= tidsets[item]
            assert p.tidset == expected
            assert p.support == bs.popcount(expected)

    def test_no_duplicate_tidsets(self):
        rng = random.Random(500)
        tidsets = _random_tidsets(rng, 9, 35)
        closed = mine_closed(tidsets, 35, min_sup=2)
        seen = [p.tidset for p in closed]
        assert len(seen) == len(set(seen))


class TestTreeStructure:
    def test_parents_precede_children(self):
        rng = random.Random(9)
        tidsets = _random_tidsets(rng, 8, 30)
        patterns = mine_closed(tidsets, 30, min_sup=2)
        for p in patterns:
            assert p.parent_id < p.node_id

    def test_child_tidset_subset_of_parent(self):
        rng = random.Random(10)
        tidsets = _random_tidsets(rng, 8, 30)
        patterns = mine_closed(tidsets, 30, min_sup=2)
        for p in patterns:
            if p.parent_id >= 0:
                parent = patterns[p.parent_id]
                assert bs.is_subset(p.tidset, parent.tidset)

    def test_node_ids_dense(self):
        rng = random.Random(11)
        tidsets = _random_tidsets(rng, 7, 25)
        patterns = mine_closed(tidsets, 25, min_sup=1)
        assert [p.node_id for p in patterns] == list(range(len(patterns)))

    def test_depth_consistent_with_parent(self):
        rng = random.Random(12)
        tidsets = _random_tidsets(rng, 7, 25)
        patterns = mine_closed(tidsets, 25, min_sup=1)
        for p in patterns:
            if p.parent_id >= 0:
                assert p.depth == patterns[p.parent_id].depth + 1

    def test_iter_pattern_tree(self):
        from repro.mining import iter_pattern_tree
        rng = random.Random(13)
        tidsets = _random_tidsets(rng, 6, 20)
        patterns = mine_closed(tidsets, 20, min_sup=1)
        edges = list(iter_pattern_tree(patterns))
        assert len(edges) == len(patterns) - 1
        for parent, child in edges:
            assert child.parent_id == parent.node_id


class TestOnSyntheticData:
    def test_embedded_pattern_closure_is_mined(self, embedded_data):
        ds = embedded_data.dataset
        rule = embedded_data.embedded_rules[0]
        patterns = mine_closed(ds.item_tidsets, ds.n_records, min_sup=40)
        tidsets = {p.tidset for p in patterns}
        assert ds.pattern_tidset(rule.item_ids) in tidsets

    def test_deterministic(self, small_random_dataset):
        ds = small_random_dataset
        a = mine_closed(ds.item_tidsets, ds.n_records, min_sup=10)
        b = mine_closed(ds.item_tidsets, ds.n_records, min_sup=10)
        assert [(p.items, p.tidset) for p in a] == \
            [(p.items, p.tidset) for p in b]

    def test_lower_min_sup_is_superset(self, small_random_dataset):
        ds = small_random_dataset
        high = {p.tidset for p in
                mine_closed(ds.item_tidsets, ds.n_records, min_sup=30)}
        low = {p.tidset for p in
               mine_closed(ds.item_tidsets, ds.n_records, min_sup=10)}
        assert high <= low
