"""Unit tests for representative-pattern selection (Section 7)."""

from __future__ import annotations

import pytest

from repro.errors import MiningError
from repro.mining import (
    mine_class_rules,
    mine_closed,
    mine_representative_rules,
    select_representatives,
)
from repro.mining.closed import ClosedPattern


def make_chain(supports):
    """A root plus a single chain of patterns with given supports."""
    patterns = [ClosedPattern(node_id=0, parent_id=-1, items=frozenset(),
                              tidset=(1 << supports[0]) - 1,
                              support=supports[0], depth=0)]
    for depth, support in enumerate(supports[1:], start=1):
        patterns.append(ClosedPattern(
            node_id=depth, parent_id=depth - 1,
            items=frozenset(range(depth)),
            tidset=(1 << support) - 1, support=support, depth=depth))
    return patterns


class TestSelectRepresentatives:
    def test_delta_zero_keeps_everything(self):
        chain = make_chain([100, 90, 80, 70])
        selection = select_representatives(chain, delta=0.0)
        assert selection.n_clusters == len(chain)
        assert selection.reduction == 0.0

    def test_close_supports_merge(self):
        # 100 -> 98 -> 96 all within 10% of the chain head 100.
        chain = make_chain([200, 100, 98, 96])
        selection = select_representatives(chain, delta=0.1)
        # Root (empty items) never absorbs; 100 starts a cluster and
        # absorbs 98 and 96.
        assert selection.n_clusters == 2
        rep_ids = {p.node_id for p in selection.representatives}
        assert rep_ids == {0, 1}
        assert selection.cluster_of[2] == 1
        assert selection.cluster_of[3] == 1

    def test_tolerance_is_relative_to_parent(self):
        # 100 -> 95 -> 91: each edge ratio clears 0.9, so the whole
        # chain collapses into one cluster even though 91 < 0.9*100 —
        # the edge-relative test that makes reduction monotone in
        # delta.
        chain = make_chain([300, 100, 95, 91])
        selection = select_representatives(chain, delta=0.1)
        assert selection.cluster_of[3] == 1

        # 100 -> 95 -> 85: the 95 -> 85 edge (ratio ~0.89) fails, so
        # 85 starts its own cluster.
        chain = make_chain([300, 100, 95, 85])
        selection = select_representatives(chain, delta=0.1)
        assert selection.cluster_of[3] == 3

    def test_representative_is_shallowest_member(self):
        chain = make_chain([300, 100, 98])
        selection = select_representatives(chain, delta=0.1)
        representative = selection.cluster_of[2]
        depths = {p.node_id: p.depth for p in chain}
        assert depths[representative] <= depths[2]

    def test_root_never_absorbs_real_patterns(self):
        # Child support 100 == root support 100: without the root
        # guard it would merge into the (untestable) root cluster.
        chain = make_chain([100, 100])
        selection = select_representatives(chain, delta=0.1)
        assert selection.cluster_of[1] == 1

    def test_members_listing(self):
        chain = make_chain([300, 100, 98, 96])
        selection = select_representatives(chain, delta=0.1)
        assert selection.members(1) == [1, 2, 3]
        assert selection.members(99) == []

    def test_delta_validation(self):
        chain = make_chain([10, 5])
        with pytest.raises(MiningError):
            select_representatives(chain, delta=-0.1)
        with pytest.raises(MiningError):
            select_representatives(chain, delta=1.0)

    def test_empty_input(self):
        selection = select_representatives([], delta=0.1)
        assert selection.n_clusters == 0
        assert selection.reduction == 0.0

    def test_reduction_monotone_in_delta(self, small_random_dataset):
        ds = small_random_dataset
        patterns = mine_closed(ds.item_tidsets, ds.n_records, 10)
        reductions = [
            select_representatives(patterns, delta=d).reduction
            for d in (0.0, 0.2, 0.4, 0.6)
        ]
        assert reductions == sorted(reductions)

    def test_every_pattern_has_a_retained_representative(
            self, small_random_dataset):
        ds = small_random_dataset
        patterns = mine_closed(ds.item_tidsets, ds.n_records, 10)
        selection = select_representatives(patterns, delta=0.3)
        retained = {p.node_id for p in selection.representatives}
        by_id = {p.node_id: p for p in patterns}
        parent_of = {p.node_id: p.parent_id for p in patterns}
        for pattern in patterns:
            rep_id = selection.cluster_of[pattern.node_id]
            assert rep_id in retained
            rep = by_id[rep_id]
            # The representative is an ancestor-or-self, so its tidset
            # contains the member's and its support bounds it.
            assert pattern.tidset & ~rep.tidset == 0
            assert pattern.support <= rep.support
            # Non-representatives merged via their tree edge: the
            # per-edge support ratio clears 1 - delta.
            if pattern.node_id != rep_id:
                parent = by_id[parent_of[pattern.node_id]]
                assert pattern.support \
                    >= (1.0 - selection.delta) * parent.support


class TestMineRepresentativeRules:
    def test_reduces_hypothesis_count(self, small_random_dataset):
        ds = small_random_dataset
        full = mine_class_rules(ds, 10)
        reduced = mine_representative_rules(ds, 10, delta=0.5)
        assert reduced.n_tests <= full.n_tests

    def test_delta_zero_matches_full_pipeline(self, small_random_dataset):
        ds = small_random_dataset
        full = mine_class_rules(ds, 10)
        same = mine_representative_rules(ds, 10, delta=0.0)
        assert same.n_tests == full.n_tests
        assert sorted(r.p_value for r in same.rules) \
            == pytest.approx(sorted(r.p_value for r in full.rules))

    def test_forest_ids_are_dense_and_parents_valid(
            self, small_random_dataset):
        ds = small_random_dataset
        reduced = mine_representative_rules(ds, 10, delta=0.4)
        for index, pattern in enumerate(reduced.patterns):
            assert pattern.node_id == index
            assert -1 <= pattern.parent_id < index
            if pattern.parent_id >= 0:
                parent = reduced.patterns[pattern.parent_id]
                assert pattern.tidset & ~parent.tidset == 0

    def test_permutation_engine_accepts_reduced_forest(
            self, small_random_dataset):
        from repro.corrections import PermutationEngine
        ds = small_random_dataset
        reduced = mine_representative_rules(ds, 10, delta=0.4)
        engine = PermutationEngine(reduced, n_permutations=20, seed=0)
        result = engine.fwer(0.05)
        assert result.n_tests == reduced.n_tests

    def test_min_sup_validation(self, small_random_dataset):
        with pytest.raises(MiningError):
            mine_representative_rules(small_random_dataset, 0, delta=0.1)

    def test_bonferroni_budget_grows(self, small_random_dataset):
        """Fewer tests means a (weakly) larger per-test budget — the
        power mechanism Section 7 predicts."""
        from repro.corrections import bonferroni
        ds = small_random_dataset
        full = bonferroni(mine_class_rules(ds, 10), 0.05)
        reduced = bonferroni(
            mine_representative_rules(ds, 10, delta=0.5), 0.05)
        assert reduced.threshold >= full.threshold
