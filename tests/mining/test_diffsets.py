"""Unit tests for the Diffsets pattern forest (paper Section 4.2.2)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.data import GeneratorConfig, generate
from repro.errors import MiningError
from repro.mining import PatternForest, mine_closed


@pytest.fixture(scope="module")
def forest_inputs():
    config = GeneratorConfig(n_records=150, n_attributes=10,
                             min_values=2, max_values=3, n_rules=0)
    ds = generate(config, seed=17).dataset
    patterns = mine_closed(ds.item_tidsets, ds.n_records, min_sup=10)
    labels = np.array([label == 0 for label in ds.class_labels])
    return ds, patterns, labels


class TestPolicies:
    def test_all_policies_agree(self, forest_inputs):
        ds, patterns, labels = forest_inputs
        results = {}
        for policy in ("full", "diffsets", "bitset"):
            forest = PatternForest(patterns, ds.n_records, policy)
            results[policy] = forest.class_supports(labels)
        assert (results["full"] == results["diffsets"]).all()
        assert (results["full"] == results["bitset"]).all()

    def test_matches_direct_counting(self, forest_inputs):
        ds, patterns, labels = forest_inputs
        forest = PatternForest(patterns, ds.n_records, "diffsets")
        supports = forest.class_supports(labels)
        from repro import bitset as bs
        class_bits = bs.from_numpy_bool(labels)
        for p in patterns:
            assert supports[p.node_id] == bs.popcount(p.tidset & class_bits)

    def test_unknown_policy(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        with pytest.raises(MiningError):
            PatternForest(patterns, ds.n_records, "compressed")

    def test_supports_vector(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        forest = PatternForest(patterns, ds.n_records, "bitset")
        assert forest.supports.tolist() == [p.support for p in patterns]

    def test_wrong_indicator_shape(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        forest = PatternForest(patterns, ds.n_records, "full")
        with pytest.raises(MiningError):
            forest.class_supports(np.ones(3, dtype=bool))

    def test_out_of_order_patterns_rejected(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        if len(patterns) < 2:
            pytest.skip("need at least two patterns")
        reordered = list(reversed(patterns))
        with pytest.raises(MiningError):
            PatternForest(reordered, ds.n_records, "full")


class TestDiffsetRule:
    def test_policy_follows_paper_threshold(self, forest_inputs):
        """Diff storage iff supp(child) > supp(parent) / 2."""
        ds, patterns, _ = forest_inputs
        forest = PatternForest(patterns, ds.n_records, "diffsets")
        for p in patterns:
            if p.parent_id < 0:
                assert not forest._is_diff[p.node_id]
                continue
            parent = patterns[p.parent_id]
            expected = p.support > parent.support / 2
            assert bool(forest._is_diff[p.node_id]) == expected

    def test_compression_never_worse_on_diff_nodes(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        forest = PatternForest(patterns, ds.n_records, "diffsets")
        # Each diff node stores parent_support - support ids, which the
        # paper's rule guarantees is < support (the full-list cost).
        for p in patterns:
            if forest._is_diff[p.node_id]:
                parent = patterns[p.parent_id]
                assert parent.support - p.support < p.support

    def test_stats_accounting(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        full = PatternForest(patterns, ds.n_records, "full")
        diff = PatternForest(patterns, ds.n_records, "diffsets")
        assert full.stats.stored_ids == full.stats.full_policy_ids
        assert diff.stats.stored_ids <= full.stats.stored_ids
        assert diff.stats.full_nodes + diff.stats.diff_nodes == \
            diff.stats.n_nodes
        assert diff.stats.compression_ratio >= 1.0

    def test_tidset_reconstruction(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        for policy in ("full", "diffsets", "bitset"):
            forest = PatternForest(patterns, ds.n_records, policy)
            for p in patterns[:20]:
                assert forest.tidset(p.node_id) == p.tidset


class TestPermutationUsage:
    def test_shuffled_labels_keep_totals(self, forest_inputs):
        ds, patterns, labels = forest_inputs
        forest = PatternForest(patterns, ds.n_records, "diffsets")
        rng = np.random.default_rng(4)
        shuffled = labels.copy()
        rng.shuffle(shuffled)
        original = forest.class_supports(labels)
        permuted = forest.class_supports(shuffled)
        # The root covers everything, so its class support is invariant.
        root = patterns[0].node_id
        assert original[root] == permuted[root]

    def test_many_permutations_agree_across_policies(self, forest_inputs):
        ds, patterns, labels = forest_inputs
        forests = {policy: PatternForest(patterns, ds.n_records, policy)
                   for policy in ("full", "diffsets", "bitset")}
        rng = np.random.default_rng(5)
        for _ in range(5):
            shuffled = labels.copy()
            rng.shuffle(shuffled)
            outputs = [f.class_supports(shuffled)
                       for f in forests.values()]
            assert (outputs[0] == outputs[1]).all()
            assert (outputs[1] == outputs[2]).all()
