"""Unit tests for the vertical view builder."""

from __future__ import annotations

import pytest

from repro import bitset as bs
from repro.errors import MiningError
from repro.mining import build_vertical_view


def _tidsets():
    # item 0: support 4, item 1: support 2, item 2: support 1, item 3: 0
    return [0b1111, 0b0011, 0b0100, 0b0000]


class TestFiltering:
    def test_min_sup_filters(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=2)
        assert set(view.item_ids) == {0, 1}

    def test_min_sup_one_keeps_nonempty(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=1)
        assert set(view.item_ids) == {0, 1, 2}

    def test_invalid_min_sup(self):
        with pytest.raises(MiningError):
            build_vertical_view(_tidsets(), 4, min_sup=0)

    def test_invalid_n_records(self):
        with pytest.raises(MiningError):
            build_vertical_view(_tidsets(), 0, min_sup=1)


class TestOrdering:
    def test_support_ascending_default(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=1)
        assert view.supports == sorted(view.supports)

    def test_support_descending(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=1,
                                   order="support-descending")
        assert view.supports == sorted(view.supports, reverse=True)

    def test_original_order(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=1,
                                   order="original")
        assert view.item_ids == sorted(view.item_ids)

    def test_unknown_order(self):
        with pytest.raises(MiningError):
            build_vertical_view(_tidsets(), 4, min_sup=1, order="zigzag")

    def test_order_of_maps_back(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=1)
        for position, item_id in enumerate(view.item_ids):
            assert view.order_of[item_id] == position


class TestPatternTidset:
    def test_intersection(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=1)
        p0 = view.order_of[0]
        p1 = view.order_of[1]
        assert view.pattern_tidset([p0, p1]) == 0b0011

    def test_empty_pattern_is_universe(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=1)
        assert view.pattern_tidset([]) == bs.universe(4)

    def test_n_items(self):
        view = build_vertical_view(_tidsets(), 4, min_sup=2)
        assert view.n_items == 2
