"""PatternSet JSON round-trips: lossless, versioned, miner-agnostic."""

from __future__ import annotations

import json

import pytest

from repro.errors import MiningError
from repro.mining.patterns import PATTERNSET_SCHEMA_VERSION, PatternSet
from repro.mining.registry import resolve_miner

from ..conftest import tiny_dataset  # noqa: F401 (fixture re-export)


@pytest.fixture
def mined(tiny_dataset):  # noqa: F811
    return resolve_miner("closed").mine(tiny_dataset, 2)


def test_round_trip_preserves_forest(mined):
    document = mined.to_json()
    assert document["schema_version"] == PATTERNSET_SCHEMA_VERSION
    rebuilt = PatternSet.from_json(document)
    rebuilt.validate()
    assert rebuilt.n_records == mined.n_records
    assert rebuilt.min_sup == mined.min_sup
    assert rebuilt.algorithm == mined.algorithm
    assert len(rebuilt.patterns) == len(mined.patterns)
    for original, restored in zip(mined.patterns, rebuilt.patterns):
        assert restored.node_id == original.node_id
        assert restored.parent_id == original.parent_id
        assert restored.items == original.items
        assert restored.support == original.support
        assert restored.depth == original.depth
        assert restored.tidset == original.tidset


def test_document_is_actually_json(mined):
    text = json.dumps(mined.to_json(), sort_keys=True)
    rebuilt = PatternSet.from_json(json.loads(text))
    assert len(rebuilt.patterns) == len(mined.patterns)


def test_round_trip_is_stable(mined):
    """to_json(from_json(x)) == x — a cache can re-serialize."""
    document = mined.to_json()
    assert PatternSet.from_json(document).to_json() == document


def test_wrong_schema_version_rejected(mined):
    document = mined.to_json()
    document["schema_version"] = PATTERNSET_SCHEMA_VERSION + 1
    with pytest.raises(MiningError, match="schema_version"):
        PatternSet.from_json(document)
    document.pop("schema_version")
    with pytest.raises(MiningError, match="schema_version"):
        PatternSet.from_json(document)


def test_provenance_survives(mined):
    document = mined.to_json()
    rebuilt = PatternSet.from_json(document)
    assert rebuilt.provenance == document["provenance"]


def test_all_registered_miners_round_trip(tiny_dataset):  # noqa: F811
    from repro.mining.registry import available_miners

    for spec in available_miners():
        mined = resolve_miner(spec.name).mine(tiny_dataset, 2)
        rebuilt = PatternSet.from_json(mined.to_json())
        rebuilt.validate()
        assert {p.items for p in rebuilt.patterns} == \
            {p.items for p in mined.patterns}
