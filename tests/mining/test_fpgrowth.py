"""Unit tests for the FP-growth miner and FP-tree structure."""

from __future__ import annotations

import pytest

from repro import bitset as bs
from repro.errors import MiningError
from repro.mining import mine_apriori, mine_fpgrowth
from repro.mining.fpgrowth import FPTree


def tidsets_from_transactions(transactions, n_items):
    """Build per-item bitsets from a list of item-id lists."""
    tidsets = [0] * n_items
    for record, items in enumerate(transactions):
        for item in items:
            tidsets[item] |= 1 << record
    return tidsets


@pytest.fixture
def classic_transactions():
    """The Han/Pei/Yin running example, item-id encoded."""
    # items: 0=f 1=c 2=a 3=b 4=m 5=p 6=i 7=o
    return [
        [0, 2, 1, 3, 6, 4, 5],
        [2, 1, 0, 3, 7, 4],
        [3, 0, 6, 7],
        [3, 1, 5, 6],
        [2, 0, 1, 4, 5],
    ]


class TestFPTree:
    def test_insert_accumulates_counts(self):
        tree = FPTree()
        tree.insert([1, 2, 3])
        tree.insert([1, 2])
        tree.insert([1, 4])
        assert tree.item_counts == {1: 3, 2: 2, 3: 1, 4: 1}
        root_children = tree.root.children
        assert set(root_children) == {1}
        assert root_children[1].count == 3

    def test_prefix_sharing_limits_node_count(self):
        tree = FPTree()
        for _ in range(10):
            tree.insert([5, 6, 7])
        assert tree.n_nodes == 3

    def test_header_chain_collects_all_nodes(self):
        tree = FPTree()
        tree.insert([1, 2])
        tree.insert([3, 2])
        nodes = tree.nodes_of(2)
        assert len(nodes) == 2
        assert all(node.item == 2 for node in nodes)

    def test_prefix_paths(self):
        tree = FPTree()
        tree.insert([1, 2, 4])
        tree.insert([1, 3, 4])
        paths = sorted(tree.prefix_paths(4))
        assert paths == [([1, 2], 1), ([1, 3], 1)]

    def test_single_path_detection(self):
        tree = FPTree()
        tree.insert([1, 2, 3])
        assert tree.is_single_path()
        tree.insert([1, 9])
        assert not tree.is_single_path()

    def test_insert_count_validation(self):
        with pytest.raises(MiningError):
            FPTree().insert([1], count=0)


class TestMineFPGrowth:
    def test_matches_apriori_on_classic_example(self,
                                                classic_transactions):
        tidsets = tidsets_from_transactions(classic_transactions, 8)
        expected = mine_apriori(tidsets, 5, 3)
        got = mine_fpgrowth(tidsets, 5, 3)
        assert len(got) == len(expected)
        for a, b in zip(expected, got):
            assert a.items == b.items
            assert a.support == b.support
            assert a.tidset == b.tidset

    def test_known_frequent_patterns(self, classic_transactions):
        tidsets = tidsets_from_transactions(classic_transactions, 8)
        patterns = {frozenset(p.items): p.support
                    for p in mine_fpgrowth(tidsets, 5, 3)}
        # Hand-checked from the classic example at min_sup=3.
        assert patterns[frozenset({0})] == 4          # f
        assert patterns[frozenset({1})] == 4          # c
        assert patterns[frozenset({0, 1, 2, 4})] == 3  # f,c,a,m

    def test_tidsets_are_exact(self, classic_transactions):
        tidsets = tidsets_from_transactions(classic_transactions, 8)
        for pattern in mine_fpgrowth(tidsets, 5, 2):
            expected = bs.universe(5)
            for item in pattern.items:
                expected &= tidsets[item]
            assert pattern.tidset == expected
            assert pattern.support == bs.popcount(expected)

    def test_max_length_truncates(self, classic_transactions):
        tidsets = tidsets_from_transactions(classic_transactions, 8)
        capped = mine_fpgrowth(tidsets, 5, 2, max_length=2)
        assert capped
        assert all(p.length <= 2 for p in capped)
        full = mine_fpgrowth(tidsets, 5, 2)
        short = [p for p in full if p.length <= 2]
        assert {p.items for p in capped} == {p.items for p in short}

    def test_max_length_zero_yields_nothing(self, classic_transactions):
        tidsets = tidsets_from_transactions(classic_transactions, 8)
        assert mine_fpgrowth(tidsets, 5, 2, max_length=0) == []

    def test_min_sup_above_everything(self, classic_transactions):
        tidsets = tidsets_from_transactions(classic_transactions, 8)
        assert mine_fpgrowth(tidsets, 5, 6) == []

    def test_empty_database(self):
        assert mine_fpgrowth([], 0, 1) == []

    def test_min_sup_validation(self):
        with pytest.raises(MiningError):
            mine_fpgrowth([0b1], 1, 0)

    def test_matches_apriori_on_dataset(self, small_random_dataset):
        ds = small_random_dataset
        expected = mine_apriori(ds.item_tidsets, ds.n_records, 30)
        got = mine_fpgrowth(ds.item_tidsets, ds.n_records, 30)
        assert [(p.items, p.support) for p in expected] \
            == [(p.items, p.support) for p in got]

    def test_dense_dataset(self, tiny_dataset):
        ds = tiny_dataset
        expected = mine_apriori(ds.item_tidsets, ds.n_records, 2)
        got = mine_fpgrowth(ds.item_tidsets, ds.n_records, 2)
        assert [(p.items, p.support) for p in expected] \
            == [(p.items, p.support) for p in got]

    def test_supports_are_antimonotone(self, small_random_dataset):
        ds = small_random_dataset
        by_items = {p.items: p.support
                    for p in mine_fpgrowth(ds.item_tidsets,
                                           ds.n_records, 25)}
        for items, support in by_items.items():
            for item in items:
                parent = items - {item}
                if parent:
                    assert by_items[parent] >= support
