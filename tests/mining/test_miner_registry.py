"""The miner registry: resolution semantics, the PatternSet contract,
and registration round-trips mirroring the correction registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro import bitset as bs
from repro.data import make_german
from repro.errors import MiningError
from repro.mining import (
    Miner,
    Pattern,
    PatternForest,
    PatternSet,
    available_miners,
    generate_rules,
    get_miner,
    mine_apriori,
    mine_closed,
    mine_patterns,
    miner_names,
    patternset_from_frequent,
    patternset_from_tree,
    register_miner,
    resolve_miner,
    unregister_miner,
)
from repro.mining.closed import ClosedPattern

BUILTINS = ("closed", "apriori", "fpgrowth", "representative",
            "general-rules")


@pytest.fixture(scope="module")
def german():
    return make_german(seed=7, n_records=300)


class TestResolution:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_builtin_canonical_names(self, name):
        assert resolve_miner(name).name == name

    @pytest.mark.parametrize("spelling,expected", [
        ("lcm", "closed"),
        ("fp-growth", "fpgrowth"),
        ("fp", "fpgrowth"),
        ("all", "apriori"),
        ("levelwise", "apriori"),
        ("reduced", "representative"),
        ("general", "general-rules"),
        ("market-basket", "general-rules"),
    ])
    def test_aliases(self, spelling, expected):
        assert resolve_miner(spelling).name == expected

    @pytest.mark.parametrize("spelling", ["CLOSED", "FpGrowth", "LCM"])
    def test_case_insensitive(self, spelling):
        assert resolve_miner(spelling) is resolve_miner(spelling.lower())

    def test_unknown_name_lists_valid_and_suggests(self):
        with pytest.raises(MiningError) as excinfo:
            resolve_miner("fpgorwth")
        message = str(excinfo.value)
        assert "valid algorithms" in message
        assert "did you mean 'fpgrowth'" in message

    def test_non_string_rejected(self):
        with pytest.raises(MiningError, match="must be a string"):
            resolve_miner(42)

    def test_get_miner_is_resolve(self):
        assert get_miner("closed") is resolve_miner("closed")

    def test_miner_names_sorted_canonical(self):
        names = miner_names()
        assert names == sorted(names)
        assert set(BUILTINS) <= set(names)

    def test_capabilities(self):
        assert resolve_miner("closed").has_capability("closed")
        assert resolve_miner("apriori").has_capability("all-frequent")
        assert resolve_miner("general-rules").has_capability(
            "emits-rules")
        assert not resolve_miner("closed").has_capability("all-frequent")


class TestRegistration:
    def _spec(self, name="test-miner", aliases=("tm",)):
        def mine_fn(item_tidsets, n_records, min_sup, max_length,
                    **opts):
            return patternset_from_frequent(
                mine_apriori(item_tidsets, n_records, min_sup,
                             max_length=max_length),
                n_records, min_sup)
        return Miner(name=name, mine_fn=mine_fn, aliases=aliases,
                     capabilities=("all-frequent",))

    def test_register_resolve_unregister_roundtrip(self):
        spec = register_miner(self._spec())
        try:
            assert resolve_miner("test-miner") is spec
            assert resolve_miner("TM") is spec
        finally:
            unregister_miner("tm")  # any spelling removes it
        with pytest.raises(MiningError):
            resolve_miner("test-miner")

    def test_collision_rejected(self):
        with pytest.raises(MiningError, match="already registered"):
            register_miner(self._spec(name="closed"))
        with pytest.raises(MiningError, match="already registered"):
            register_miner(self._spec(name="mine2", aliases=("lcm",)))
        assert resolve_miner("closed").name == "closed"

    def test_alias_collision_is_not_a_replacement_target(self):
        # overwrite=True replaces only a canonical-name match; a hit
        # through another spec's alias must still be rejected.
        with pytest.raises(MiningError, match="already registered"):
            register_miner(self._spec(name="lcm", aliases=()),
                           overwrite=True)
        assert resolve_miner("closed").name == "closed"

    def test_overwrite_replaces_wholesale(self):
        first = register_miner(self._spec(aliases=("tm", "tm-old")))
        try:
            second = register_miner(
                self._spec(aliases=("tm",)), overwrite=True)
            assert resolve_miner("test-miner") is second
            with pytest.raises(MiningError):
                resolve_miner("tm-old")  # old alias gone with its spec
        finally:
            unregister_miner("test-miner")
        assert first is not second

    def test_invalid_specs_rejected(self):
        with pytest.raises(MiningError, match="non-empty"):
            register_miner(Miner(name="", mine_fn=lambda *a: None))
        with pytest.raises(MiningError, match="callable"):
            register_miner(Miner(name="nope", mine_fn=None))


class TestMinerMine:
    def test_mine_stamps_provenance(self, german):
        pattern_set = resolve_miner("closed").mine(german, 40,
                                                   max_length=3)
        assert isinstance(pattern_set, PatternSet)
        assert pattern_set.algorithm == "closed"
        assert pattern_set.provenance["capabilities"] == ("closed",)
        assert pattern_set.provenance["max_length"] == 3
        assert pattern_set.min_sup == 40
        assert pattern_set.n_records == german.n_records

    def test_mine_patterns_convenience(self, german):
        direct = resolve_miner("fpgrowth").mine(german, 60)
        convenience = mine_patterns(german, 60, algorithm="fp-growth")
        assert [(p.items, p.support) for p in direct] == \
            [(p.items, p.support) for p in convenience]

    def test_closed_miner_matches_mine_closed(self, german):
        pattern_set = mine_patterns(german, 40, algorithm="closed")
        raw = mine_closed(german.item_tidsets, german.n_records, 40)
        assert pattern_set.patterns == raw

    def test_options_forwarded(self, german):
        loose = mine_patterns(german, 40, algorithm="representative",
                              delta=0.0)
        tight = mine_patterns(german, 40, algorithm="representative",
                              delta=0.5)
        assert tight.n_patterns <= loose.n_patterns
        assert tight.provenance["options"] == {"delta": 0.5}
        # delta=0 keeps every closed pattern.
        assert loose.n_patterns == \
            mine_patterns(german, 40).n_patterns

    def test_general_rules_in_provenance(self, german):
        pattern_set = mine_patterns(german, 80,
                                    algorithm="general-rules")
        rules = pattern_set.provenance["general_rules"]
        assert rules.n_tests == len(rules.rules) > 0

    def test_view_without_tidsets_rejected(self):
        with pytest.raises(MiningError, match="dataset view"):
            resolve_miner("closed").mine(object(), 5)

    def test_contract_violating_plugin_output_rejected(self, german):
        # validate_output defaults on for out-of-tree miners: a forest
        # whose parent links break the subset invariant must error at
        # mine time, not corrupt the Diffsets recursion downstream.
        def bad_mine(item_tidsets, n_records, min_sup, max_length,
                     **opts):
            nodes = [
                Pattern(node_id=0, parent_id=-1, items=frozenset({0}),
                        tidset=0b01, support=1, depth=1),
                Pattern(node_id=1, parent_id=0, items=frozenset({1}),
                        tidset=0b10, support=1, depth=1),
            ]
            return PatternSet(patterns=nodes, n_records=n_records,
                              min_sup=min_sup)

        spec = register_miner(Miner(name="broken-miner",
                                    mine_fn=bad_mine))
        try:
            assert spec.validate_output
            with pytest.raises(MiningError, match="subset"):
                spec.mine(german, 5)
        finally:
            unregister_miner("broken-miner")
        # Built-ins skip the check (their adapters are property-tested).
        assert not resolve_miner("closed").validate_output


class TestPatternSetContract:
    def test_sequence_protocol(self, german):
        pattern_set = mine_patterns(german, 60)
        assert len(pattern_set) == pattern_set.n_patterns
        assert pattern_set[0].parent_id == -1
        assert list(iter(pattern_set)) == pattern_set.patterns
        assert pattern_set.supports() == \
            [p.support for p in pattern_set]

    def test_closed_patterns_are_patterns(self, german):
        pattern_set = mine_patterns(german, 60)
        assert all(isinstance(p, Pattern) for p in pattern_set)
        assert all(isinstance(p, ClosedPattern) for p in pattern_set)

    @pytest.mark.parametrize("algorithm", BUILTINS)
    def test_every_builtin_satisfies_the_forest_contract(
            self, german, algorithm):
        pattern_set = mine_patterns(german, 60, algorithm=algorithm)
        assert pattern_set.validate() is pattern_set
        assert pattern_set.n_hypotheses == \
            sum(1 for p in pattern_set if p.items)

    def test_validate_rejects_broken_forests(self):
        node = Pattern(node_id=1, parent_id=-1, items=frozenset({0}),
                       tidset=1, support=1, depth=1)
        broken = PatternSet(patterns=[node], n_records=2, min_sup=1)
        with pytest.raises(MiningError, match="dense"):
            broken.validate()
        parent = Pattern(node_id=0, parent_id=-1, items=frozenset({0}),
                         tidset=0b01, support=1, depth=1)
        child = Pattern(node_id=1, parent_id=0, items=frozenset({0, 1}),
                        tidset=0b10, support=1, depth=2)
        with pytest.raises(MiningError, match="subset"):
            PatternSet(patterns=[parent, child], n_records=2,
                       min_sup=1).validate()

    def test_from_frequent_builds_a_prefix_tree(self, german):
        frequent = mine_apriori(german.item_tidsets, german.n_records,
                                60)
        pattern_set = patternset_from_frequent(
            frequent, german.n_records, 60).validate()
        assert pattern_set[0].items == frozenset()
        assert pattern_set[0].support == german.n_records
        by_items = {p.items: p for p in pattern_set}
        for pattern in pattern_set:
            if pattern.length <= 1:
                continue
            parent = pattern_set[pattern.parent_id]
            assert parent.items == \
                pattern.items - {max(pattern.items)}
            assert by_items[parent.items] is parent

    def test_from_frequent_tolerates_missing_prefixes(self):
        # A pruned input (no length-1 patterns) must still form a
        # valid forest by falling back to the root as parent.
        frequent = mine_apriori([0b111, 0b110, 0b011], 3, 2)
        pairs = [p for p in frequent if p.length == 2]
        pattern_set = patternset_from_frequent(pairs, 3, 2).validate()
        assert all(p.parent_id == 0 for p in pattern_set[1:])

    def test_generate_rules_accepts_patternsets(self, german):
        closed_rules = generate_rules(
            german, mine_patterns(german, 60), 60)
        frequent_rules = generate_rules(
            german, mine_patterns(german, 60, algorithm="apriori"), 60)
        # One hypothesis per rule-bearing pattern; all-frequent sets
        # carry at least the closed hypothesis count.
        assert closed_rules.n_tests <= frequent_rules.n_tests

    def test_pattern_forest_consumes_patternsets(self, german):
        pattern_set = mine_patterns(german, 60, algorithm="fpgrowth")
        indicator = np.array(
            [label == 0 for label in german.class_labels], dtype=bool)
        reference = PatternForest(pattern_set, german.n_records,
                                  "bitset").class_supports(indicator)
        for policy in ("full", "diffsets"):
            forest = PatternForest(pattern_set, german.n_records,
                                   policy)
            assert np.array_equal(forest.class_supports(indicator),
                                  reference)

    def test_from_tree_preserves_provenance(self, german):
        raw = mine_closed(german.item_tidsets, german.n_records, 60)
        pattern_set = patternset_from_tree(
            raw, german.n_records, 60, algorithm="custom",
            provenance={"note": "hand-built"})
        assert pattern_set.algorithm == "custom"
        assert pattern_set.provenance == {"note": "hand-built"}
        assert pattern_set.patterns == raw


class TestRegistryListing:
    def test_available_in_registration_order(self):
        names = [m.name for m in available_miners()]
        assert names[:5] == list(BUILTINS)

    def test_descriptions_present(self):
        for miner in available_miners():
            assert miner.description
