"""The packed uint64 bitmap kernel agrees exactly with bigint popcount.

:class:`repro.bitmat.BitMatrix` is the counting engine behind the
default ``"packed"`` forest policy; these tests pin its contract — the
kernels are *bit-identical* to ``popcount(tidset & class_bits)`` for
any forest and any labelling, including the awkward shapes: record
counts not divisible by 64, empty forests, empty batches, all-one and
all-zero indicators, and arbitrarily small block budgets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import bitset as bs
from repro.bitmat import (
    BitMatrix,
    pack_indicator,
    pack_indicators,
    words_per_row,
)
from repro.data import GeneratorConfig, generate
from repro.errors import MiningError
from repro.mining import PatternForest, mine_closed


@st.composite
def matrix_instances(draw):
    # Straddle the word boundary on purpose: 1..130 covers < 1 word,
    # exactly 1 word, exactly 2 words, and ragged tails.
    n_records = draw(st.integers(min_value=1, max_value=130))
    n_rows = draw(st.integers(min_value=0, max_value=8))
    tidsets = [
        draw(st.integers(min_value=0, max_value=(1 << n_records) - 1))
        for _ in range(n_rows)
    ]
    indicator = np.array(
        draw(st.lists(st.booleans(), min_size=n_records,
                      max_size=n_records)), dtype=bool)
    return tidsets, n_records, indicator


class TestAgainstBigints:
    @given(matrix_instances())
    @settings(max_examples=80, deadline=None)
    def test_class_supports_matches_popcount(self, instance):
        tidsets, n_records, indicator = instance
        matrix = BitMatrix.from_tidsets(tidsets, n_records)
        class_bits = bs.from_numpy_bool(indicator)
        expected = [bs.popcount(t & class_bits) for t in tidsets]
        assert matrix.class_supports(indicator).tolist() == expected

    @given(matrix_instances())
    @settings(max_examples=60, deadline=None)
    def test_tidset_round_trip(self, instance):
        tidsets, n_records, _ = instance
        matrix = BitMatrix.from_tidsets(tidsets, n_records)
        assert matrix.to_tidsets() == [int(t) for t in tidsets]
        expected = [bs.popcount(t) for t in tidsets]
        assert matrix.row_popcounts().tolist() == expected

    @given(matrix_instances(),
           st.integers(min_value=0, max_value=5),
           st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_single_rows(self, instance, n_batch,
                                       block_bytes):
        tidsets, n_records, indicator = instance
        matrix = BitMatrix.from_tidsets(tidsets, n_records)
        rng = np.random.default_rng(n_batch * 7 + n_records)
        batch = np.stack(
            [rng.permutation(indicator) for _ in range(n_batch)]
        ) if n_batch else np.zeros((0, n_records), dtype=bool)
        got = matrix.class_supports_batch(batch,
                                          block_bytes=block_bytes)
        assert got.shape == (n_batch, len(tidsets))
        for row in range(n_batch):
            assert (got[row] == matrix.class_supports(batch[row])).all()

    @given(st.integers(min_value=1, max_value=130))
    @settings(max_examples=30, deadline=None)
    def test_all_one_and_all_zero_indicators(self, n_records):
        universe = bs.universe(n_records)
        tidsets = [universe, 0, universe >> 1, 1 << (n_records - 1)]
        matrix = BitMatrix.from_tidsets(tidsets, n_records)
        ones = np.ones(n_records, dtype=bool)
        zeros = np.zeros(n_records, dtype=bool)
        assert matrix.class_supports(ones).tolist() == \
            [bs.popcount(t) for t in tidsets]
        assert matrix.class_supports(zeros).tolist() == [0] * 4

    def test_word_round_trip_through_bitset_module(self):
        for n_records in (1, 63, 64, 65, 100, 128, 130):
            bits = (0x9E3779B97F4A7C15 * 0x10001) % (1 << n_records)
            words = bs.to_uint64_words(bits, n_records)
            assert len(words) == words_per_row(n_records)
            assert bs.from_uint64_words(words) == bits


class TestEdgesAndValidation:
    def test_empty_forest(self):
        matrix = BitMatrix.from_tidsets([], 77)
        assert matrix.n_rows == 0
        assert matrix.class_supports(
            np.ones(77, dtype=bool)).shape == (0,)
        batch = np.ones((3, 77), dtype=bool)
        assert matrix.class_supports_batch(batch).shape == (3, 0)

    def test_out_of_range_tidset_rejected(self):
        with pytest.raises(ValueError):
            BitMatrix.from_tidsets([1 << 10], 10)
        with pytest.raises(ValueError):
            BitMatrix.from_tidsets([1 << 70], 65)
        with pytest.raises(ValueError):
            BitMatrix.from_tidsets([-1], 10)

    def test_indicator_shape_validated(self):
        matrix = BitMatrix.from_tidsets([0b101], 3)
        with pytest.raises(ValueError):
            matrix.class_supports(np.ones(4, dtype=bool))
        with pytest.raises(ValueError):
            matrix.class_supports_batch(np.ones((2, 4), dtype=bool))

    def test_pack_layout_matches_bigint_layout(self):
        indicator = np.zeros(70, dtype=bool)
        indicator[[0, 63, 64, 69]] = True
        packed = pack_indicator(indicator)
        assert bs.from_uint64_words(packed) == \
            bs.from_numpy_bool(indicator)
        stacked = pack_indicators(np.stack([indicator, ~indicator]))
        assert bs.from_uint64_words(stacked[1]) == \
            bs.complement(bs.from_numpy_bool(indicator), 70)

    def test_block_rows_always_positive(self):
        matrix = BitMatrix.from_tidsets([0] * 50, 1000)
        assert matrix.batch_block_rows(1) == 1
        assert matrix.batch_block_rows() >= 1


class TestNativeKernel:
    """The fused C kernel and the numpy path are interchangeable."""

    def test_native_and_numpy_paths_agree(self, monkeypatch):
        from repro import _native

        rng = np.random.default_rng(11)
        n_records = 777
        tidsets = [bs.from_numpy_bool(rng.random(n_records) < 0.3)
                   for _ in range(40)]
        matrix = BitMatrix.from_tidsets(tidsets, n_records)
        batch = rng.random((9, n_records)) < 0.5
        with_native = matrix.class_supports_batch(batch)
        single_native = matrix.class_supports(batch[0])
        # Force the pure-numpy fallback and recompute.
        monkeypatch.setattr(_native, "_kernel", None)
        without = matrix.class_supports_batch(batch)
        single_numpy = matrix.class_supports(batch[0])
        assert (with_native == without).all()
        assert (single_native == single_numpy).all()

    def test_kernel_unavailability_is_silent(self, monkeypatch):
        """REPRO_NATIVE=0 must disable compilation, not break."""
        from repro import _native

        monkeypatch.setenv("REPRO_NATIVE", "0")
        monkeypatch.setattr(_native, "_kernel", "unset")
        assert _native.load_kernel() is None
        assert "disabled" in _native.native_status()
        matrix = BitMatrix.from_tidsets([0b1011], 4)
        assert matrix.class_supports(
            np.array([1, 0, 1, 1], dtype=bool)).tolist() == [2]


class TestForestPackedPolicy:
    @pytest.fixture(scope="class")
    def forest_inputs(self):
        config = GeneratorConfig(n_records=150, n_attributes=10,
                                 min_values=2, max_values=3, n_rules=0)
        ds = generate(config, seed=17).dataset
        patterns = mine_closed(ds.item_tidsets, ds.n_records,
                               min_sup=10)
        labels = np.array([label == 0 for label in ds.class_labels])
        return ds, patterns, labels

    def test_packed_is_default_policy(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        forest = PatternForest(patterns, ds.n_records)
        assert forest.policy == "packed"
        assert forest.matrix is not None

    def test_packed_agrees_with_every_policy(self, forest_inputs):
        ds, patterns, labels = forest_inputs
        packed = PatternForest(patterns, ds.n_records, "packed")
        reference = packed.class_supports(labels)
        for policy in ("full", "diffsets", "bitset"):
            other = PatternForest(patterns, ds.n_records, policy)
            assert (other.class_supports(labels) == reference).all()

    def test_batch_query_agrees_across_policies(self, forest_inputs):
        ds, patterns, labels = forest_inputs
        rng = np.random.default_rng(4)
        batch = np.stack([rng.permutation(labels) for _ in range(6)])
        packed = PatternForest(patterns, ds.n_records,
                               "packed").class_supports_batch(batch)
        for policy in ("full", "diffsets", "bitset"):
            forest = PatternForest(patterns, ds.n_records, policy)
            assert (forest.class_supports_batch(batch) == packed).all()

    def test_packed_tidset_reconstruction(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        forest = PatternForest(patterns, ds.n_records, "packed")
        for pattern in patterns[:20]:
            assert forest.tidset(pattern.node_id) == pattern.tidset

    def test_trailing_empty_diffsets_do_not_truncate_counts(self):
        """Regression: diff nodes with *empty* stored lists at the
        tail of the forest must not clip the reduceat segment of the
        preceding node (the naive fix — clamping out-of-range segment
        starts — silently dropped the last id of the previous list).
        """
        from repro.mining.patterns import Pattern

        patterns = [
            Pattern(0, -1, frozenset({0}), 0b11, 2, 0),
            Pattern(1, 0, frozenset({0, 1}), 0b10, 1, 1),
            # Children equal to their parent: diffsets store nothing.
            Pattern(2, 1, frozenset({0, 1, 2}), 0b10, 1, 2),
            Pattern(3, 2, frozenset({0, 1, 2, 3}), 0b10, 1, 3),
        ]
        indicator = np.array([False, True])
        for policy in ("diffsets", "full", "packed", "bitset"):
            forest = PatternForest(patterns, 2, policy)
            assert forest.class_supports(indicator).tolist() == \
                [1, 1, 1, 1], policy

    def test_batch_shape_validated(self, forest_inputs):
        ds, patterns, _ = forest_inputs
        forest = PatternForest(patterns, ds.n_records, "packed")
        with pytest.raises(MiningError):
            forest.class_supports_batch(
                np.ones(ds.n_records, dtype=bool))
        with pytest.raises(MiningError):
            forest.class_supports_batch(
                np.ones((2, ds.n_records + 1), dtype=bool))
