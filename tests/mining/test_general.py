"""Unit tests for general association rules ``X => Y``."""

from __future__ import annotations

import pytest
from scipy import stats as scipy_stats

from repro import bitset as bs
from repro.errors import MiningError
from repro.mining import (
    mine_apriori,
    mine_general_rules,
    rules_from_patterns,
)


def tidsets_from_transactions(transactions, n_items):
    tidsets = [0] * n_items
    for record, items in enumerate(transactions):
        for item in items:
            tidsets[item] |= 1 << record
    return tidsets


@pytest.fixture
def basket():
    """A small market-basket database with one strong pairwise
    association (0 and 1 co-occur) and one independent item (3)."""
    transactions = ([[0, 1], [0, 1, 2], [0, 1, 3], [2, 3],
                     [0, 1], [2], [0, 1, 2], [3]] * 20)
    return tidsets_from_transactions(transactions, 4), len(transactions)


class TestMineGeneralRules:
    def test_both_directions_emitted(self, basket):
        tidsets, n = basket
        ruleset = mine_general_rules(tidsets, n, min_sup=20)
        pairs = {(tuple(sorted(r.antecedent)), tuple(sorted(r.consequent)))
                 for r in ruleset.rules}
        assert ((0,), (1,)) in pairs
        assert ((1,), (0,)) in pairs

    def test_supports_consistent(self, basket):
        tidsets, n = basket
        for rule in mine_general_rules(tidsets, n, min_sup=20).rules:
            lhs_tids = bs.universe(n)
            for item in rule.antecedent:
                lhs_tids &= tidsets[item]
            both_tids = lhs_tids
            for item in rule.consequent:
                both_tids &= tidsets[item]
            assert rule.coverage == bs.popcount(lhs_tids)
            assert rule.support == bs.popcount(both_tids)
            assert rule.confidence == pytest.approx(
                rule.support / rule.coverage)

    def test_pvalues_match_scipy(self, basket):
        tidsets, n = basket
        ruleset = mine_general_rules(tidsets, n, min_sup=20)
        for rule in ruleset.rules[:20]:
            a = rule.support
            b = rule.coverage - a
            c = rule.consequent_support - a
            d = n - rule.coverage - c
            _odds, expected = scipy_stats.fisher_exact(
                [[a, b], [c, d]], alternative="two-sided")
            assert rule.p_value == pytest.approx(expected, rel=1e-6)

    def test_symmetric_pair_has_same_pvalue(self, basket):
        """Fisher's test is symmetric in the margins: X=>Y and Y=>X
        score identically (only confidence differs)."""
        tidsets, n = basket
        ruleset = mine_general_rules(tidsets, n, min_sup=20)
        by_pair = {}
        for rule in ruleset.rules:
            key = frozenset((rule.antecedent, rule.consequent))
            by_pair.setdefault(key, []).append(rule.p_value)
        for p_values in by_pair.values():
            if len(p_values) == 2:
                assert p_values[0] == pytest.approx(p_values[1])

    def test_min_conf_filters(self, basket):
        tidsets, n = basket
        loose = mine_general_rules(tidsets, n, min_sup=20)
        strict = mine_general_rules(tidsets, n, min_sup=20,
                                    min_conf=0.8)
        assert strict.n_tests <= loose.n_tests
        assert all(r.confidence >= 0.8 for r in strict.rules)

    def test_max_consequent_grows_rule_count(self, basket):
        tidsets, n = basket
        singles = mine_general_rules(tidsets, n, min_sup=20,
                                     max_consequent=1)
        pairs = mine_general_rules(tidsets, n, min_sup=20,
                                   max_consequent=2)
        assert pairs.n_tests >= singles.n_tests
        assert all(len(r.consequent) == 1 for r in singles.rules)

    def test_associated_pair_most_significant(self, basket):
        tidsets, n = basket
        ruleset = mine_general_rules(tidsets, n, min_sup=20)
        best = ruleset.sorted_by_p()[0]
        assert best.items == frozenset({0, 1})

    def test_rules_from_premined_patterns(self, basket):
        tidsets, n = basket
        patterns = mine_apriori(tidsets, n, 20)
        via_patterns = rules_from_patterns(patterns, n, 20)
        direct = mine_general_rules(tidsets, n, min_sup=20)
        assert via_patterns.n_tests == direct.n_tests

    def test_parameter_validation(self, basket):
        tidsets, n = basket
        with pytest.raises(MiningError):
            mine_general_rules(tidsets, n, min_sup=0)
        with pytest.raises(MiningError):
            mine_general_rules(tidsets, n, min_sup=5, min_conf=1.5)
        with pytest.raises(MiningError):
            mine_general_rules(tidsets, n, min_sup=5, max_consequent=0)

    def test_describe_with_names(self, basket):
        tidsets, n = basket
        ruleset = mine_general_rules(tidsets, n, min_sup=20)
        text = ruleset.describe(limit=3,
                                item_names=["a", "b", "c", "d"])
        assert "=>" in text
        assert "{a}" in text or "{b}" in text


class TestCorrectionsOnGeneralRules:
    """The direct-adjustment catalogue applies to general rules via
    duck typing."""

    def test_direct_catalogue_runs(self, basket):
        from repro.corrections import (
            benjamini_hochberg,
            bonferroni,
            hochberg,
            holm,
            no_correction,
            sidak,
            storey_fdr,
            two_stage_bh,
        )
        tidsets, n = basket
        ruleset = mine_general_rules(tidsets, n, min_sup=20)
        for procedure in (no_correction, bonferroni, holm, hochberg,
                          sidak, benjamini_hochberg, storey_fdr,
                          two_stage_bh):
            result = procedure(ruleset, 0.05)
            assert result.n_tests == ruleset.n_tests
            assert all(r.p_value <= result.threshold
                       for r in result.significant)

    def test_independent_item_rules_not_significant(self, basket):
        """Rules involving the independent item 3 must not survive
        Bonferroni, while the planted 0<->1 association must."""
        from repro.corrections import bonferroni
        tidsets, n = basket
        ruleset = mine_general_rules(tidsets, n, min_sup=20)
        result = bonferroni(ruleset, 0.05)
        significant_items = [r.items for r in result.significant]
        assert frozenset({0, 1}) in significant_items
