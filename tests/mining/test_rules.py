"""Unit tests for class association rule generation (Sections 2.1, 3)."""

from __future__ import annotations

import pytest

from repro.data import Dataset
from repro.errors import MiningError
from repro.mining import mine_class_rules
from repro.stats import fisher_two_tailed


class TestBinaryClassRules:
    def test_one_rule_per_pattern(self, small_random_dataset):
        ruleset = mine_class_rules(small_random_dataset, min_sup=10)
        non_root = [p for p in ruleset.patterns if p.items]
        assert len(ruleset.rules) == len(non_root)

    def test_statistics_consistent(self, small_random_dataset):
        ds = small_random_dataset
        ruleset = mine_class_rules(ds, min_sup=10)
        for rule in ruleset.rules:
            assert rule.coverage == ds.pattern_support(rule.items)
            assert rule.support == ds.rule_support(rule.items,
                                                   rule.class_index)
            assert rule.confidence == pytest.approx(
                rule.support / rule.coverage)

    def test_pvalues_match_fisher(self, small_random_dataset):
        ds = small_random_dataset
        ruleset = mine_class_rules(ds, min_sup=10)
        for rule in ruleset.rules[:30]:
            n_c = ds.class_support(rule.class_index)
            expected = fisher_two_tailed(rule.support, ds.n_records, n_c,
                                         rule.coverage)
            assert rule.p_value == pytest.approx(expected, rel=1e-9)

    def test_positively_associated_class_chosen(self, embedded_data):
        ds = embedded_data.dataset
        planted = embedded_data.embedded_rules[0]
        ruleset = mine_class_rules(ds, min_sup=40)
        target_tidset = ds.pattern_tidset(planted.item_ids)
        matching = [r for r in ruleset.rules
                    if ds.pattern_tidset(r.items) == target_tidset]
        assert matching
        assert all(r.class_index == planted.class_index for r in matching)

    def test_rhs_class_forced(self, small_random_dataset):
        ruleset = mine_class_rules(small_random_dataset, min_sup=10,
                                   rhs_class=1)
        assert all(r.class_index == 1 for r in ruleset.rules)

    def test_rhs_class_out_of_range(self, small_random_dataset):
        with pytest.raises(MiningError):
            mine_class_rules(small_random_dataset, min_sup=10, rhs_class=5)

    def test_binary_pvalue_class_symmetric(self, small_random_dataset):
        """Testing X=>c equals testing X=>not-c (Section 3)."""
        ds = small_random_dataset
        for_c0 = mine_class_rules(ds, min_sup=10, rhs_class=0)
        for_c1 = mine_class_rules(ds, min_sup=10, rhs_class=1)
        p0 = {r.items: r.p_value for r in for_c0.rules}
        p1 = {r.items: r.p_value for r in for_c1.rules}
        assert set(p0) == set(p1)
        for items in p0:
            assert p0[items] == pytest.approx(p1[items], rel=1e-9)


class TestMultiClassRules:
    @pytest.fixture
    def three_class_dataset(self):
        records = []
        labels = []
        for i in range(60):
            group = i % 3
            records.append([f"g{group}", f"x{i % 2}"])
            labels.append(f"c{group}")
        return Dataset.from_records(records, labels, ["G", "X"])

    def test_m_rules_per_pattern(self, three_class_dataset):
        ruleset = mine_class_rules(three_class_dataset, min_sup=5)
        non_root = [p for p in ruleset.patterns if p.items]
        assert len(ruleset.rules) == 3 * len(non_root)

    def test_n_tests_counts_all_hypotheses(self, three_class_dataset):
        ruleset = mine_class_rules(three_class_dataset, min_sup=5)
        assert ruleset.n_tests == len(ruleset.rules)

    def test_perfect_association_detected(self, three_class_dataset):
        ruleset = mine_class_rules(three_class_dataset, min_sup=5)
        strong = [r for r in ruleset.rules if r.p_value < 1e-6]
        assert strong
        for rule in strong:
            described = three_class_dataset.catalog.describe_pattern(
                rule.items)
            assert "G=" in described


class TestFiltersAndOptions:
    def test_min_conf_filters(self, small_random_dataset):
        unfiltered = mine_class_rules(small_random_dataset, min_sup=10)
        filtered = mine_class_rules(small_random_dataset, min_sup=10,
                                    min_conf=0.6)
        assert len(filtered.rules) <= len(unfiltered.rules)
        assert all(r.confidence >= 0.6 for r in filtered.rules)

    def test_invalid_min_conf(self, small_random_dataset):
        with pytest.raises(MiningError):
            mine_class_rules(small_random_dataset, min_sup=10, min_conf=1.5)

    def test_invalid_min_sup(self, small_random_dataset):
        with pytest.raises(MiningError):
            mine_class_rules(small_random_dataset, min_sup=0)
        with pytest.raises(MiningError):
            mine_class_rules(small_random_dataset, min_sup=10_000)

    def test_chi2_scorer(self, small_random_dataset):
        fisher = mine_class_rules(small_random_dataset, min_sup=10)
        chi2 = mine_class_rules(small_random_dataset, min_sup=10,
                                scorer="chi2")
        assert len(fisher.rules) == len(chi2.rules)
        # Same ordering of extreme rules, different exact values.
        assert any(f.p_value != c.p_value
                   for f, c in zip(fisher.rules, chi2.rules))

    def test_unknown_scorer(self, small_random_dataset):
        with pytest.raises(MiningError):
            mine_class_rules(small_random_dataset, min_sup=10,
                             scorer="bayes")

    def test_max_length(self, small_random_dataset):
        ruleset = mine_class_rules(small_random_dataset, min_sup=10,
                                   max_length=2)
        assert all(r.length <= 2 for r in ruleset.rules)


class TestRuleSetHelpers:
    def test_sorted_by_p(self, small_random_dataset):
        ruleset = mine_class_rules(small_random_dataset, min_sup=10)
        ordered = ruleset.sorted_by_p()
        assert [r.p_value for r in ordered] == sorted(ruleset.p_values())

    def test_describe_runs(self, small_random_dataset):
        ruleset = mine_class_rules(small_random_dataset, min_sup=10)
        text = ruleset.describe(limit=3)
        assert "rules" in text

    def test_rule_describe_and_lift(self, small_random_dataset):
        ds = small_random_dataset
        rule = mine_class_rules(ds, min_sup=10).rules[0]
        assert "=>" in rule.describe(ds)
        lift = rule.lift(ds.n_records, ds.class_support(rule.class_index))
        assert lift > 0
