"""Unit tests for the Apriori baseline miner."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro import bitset as bs
from repro.errors import MiningError
from repro.mining import mine_apriori


def _brute_force(tidsets, n_records, min_sup, max_length=None):
    """All frequent itemsets by exhaustive enumeration."""
    n_items = len(tidsets)
    out = {}
    limit = max_length or n_items
    for k in range(1, limit + 1):
        for combo in combinations(range(n_items), k):
            tids = bs.universe(n_records)
            for item in combo:
                tids &= tidsets[item]
            if bs.popcount(tids) >= min_sup:
                out[frozenset(combo)] = tids
    return out


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_exhaustive_small(self, seed):
        rng = random.Random(seed)
        n_records = rng.randint(8, 20)
        n_items = rng.randint(2, 6)
        tidsets = []
        for _ in range(n_items):
            bits = 0
            for r in range(n_records):
                if rng.random() < 0.5:
                    bits |= 1 << r
            tidsets.append(bits)
        min_sup = rng.randint(1, 3)
        expected = _brute_force(tidsets, n_records, min_sup)
        got = {fp.items: fp.tidset
               for fp in mine_apriori(tidsets, n_records, min_sup)}
        assert got == expected


class TestBehaviour:
    def test_supports_correct(self):
        tidsets = [0b1110, 0b0111, 0b1010]
        for fp in mine_apriori(tidsets, 4, 1):
            expected = bs.universe(4)
            for item in fp.items:
                expected &= tidsets[item]
            assert fp.support == bs.popcount(expected)

    def test_max_length(self):
        tidsets = [0b111, 0b111, 0b111]
        patterns = mine_apriori(tidsets, 3, 1, max_length=2)
        assert max(fp.length for fp in patterns) == 2

    def test_max_length_zero(self):
        assert mine_apriori([0b1], 1, 1, max_length=0) == []

    def test_antimonotone(self):
        rng = random.Random(77)
        tidsets = []
        for _ in range(6):
            bits = 0
            for r in range(30):
                if rng.random() < 0.5:
                    bits |= 1 << r
            tidsets.append(bits)
        patterns = {fp.items: fp.support
                    for fp in mine_apriori(tidsets, 30, 3)}
        for items, support in patterns.items():
            for item in items:
                subset = items - {item}
                if subset:
                    assert patterns[subset] >= support

    def test_invalid_min_sup(self):
        with pytest.raises(MiningError):
            mine_apriori([0b1], 1, 0)

    def test_no_frequent_items(self):
        assert mine_apriori([0b1], 4, 3) == []

    def test_level_order_output(self):
        tidsets = [0b1111, 0b1111, 0b1111]
        lengths = [fp.length for fp in mine_apriori(tidsets, 4, 1)]
        assert lengths == sorted(lengths)
