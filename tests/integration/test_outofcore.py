"""Out-of-core paths ≡ in-RAM paths, end to end, byte for byte.

The acceptance criteria of the sharded-arena work, pinned through the
*real* entry points:

* **CLI memmap identity** — ``repro mine`` on an ``.arena`` input
  (memmap-backed, zero-copy to workers) emits CSVs byte-identical to
  the same mine on the ``.csv`` source, across miners × jobs 1/4 ×
  native kernels on/off × policies;
* **sharded scoring identity** — a :class:`ShardedDataset` driven
  through the full :class:`Pipeline` (mining + permutation correction)
  exports the same CSV as the whole in-RAM dataset;
* **service identity** — an ``.arena`` source registered with the
  service serves the same result CSV as the CSV-loaded twin;
* **address-space cap** — a multi-segment arena whose data block is
  larger than the cap headroom mines to completion under a hard
  ``ulimit -v``, while materializing it in RAM fails (the
  ``outofcore_cap_smoke`` drill the CI job reuses).
"""

from __future__ import annotations

import filecmp
import multiprocessing
import shlex
import shutil
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro._native as _native
from repro.cli import main
from repro.core.pipeline import Pipeline
from repro.data import (
    Dataset,
    GeneratorConfig,
    ShardedDataset,
    generate,
    save_csv,
)
from repro.evaluation.export import rules_to_csv

MINERS = ("closed", "apriori", "fpgrowth", "representative")


def _fork_available() -> bool:
    try:
        multiprocessing.get_context("fork")
        return True
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return False


@pytest.fixture(scope="module")
def data():
    config = GeneratorConfig(
        n_records=300, n_attributes=8, n_rules=1,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    return generate(config, seed=23).dataset


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("outofcore") / "dataset.csv"
    save_csv(data, str(path))
    return path


@pytest.fixture(scope="module")
def dataset_arena(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("outofcore") / "dataset.arena"
    data.save_arena(path, n_segments=4)
    return path


def _mine(input_path, out, log_path, *, algorithm="closed", jobs=1,
          backend="serial", policy="auto"):
    argv = ["mine", str(input_path), "--min-sup", "30",
            "--algorithm", algorithm, "--correction", "Perm_FWER",
            "--permutations", "40", "--seed", "0",
            "--policy", policy, "--jobs", str(jobs),
            "--backend", backend, "--csv-out", str(out)]
    with open(log_path, "w") as log:
        assert main(argv, out=log) == 0
    return out


class TestCliMemmapIdentity:
    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("algorithm", MINERS)
    def test_arena_input_matches_csv_input(self, dataset_csv,
                                           dataset_arena, tmp_path,
                                           algorithm, jobs):
        backend = "serial" if jobs == 1 else "processes"
        if backend == "processes" and not _fork_available():
            pytest.skip("fork start method unavailable")
        outputs = {}
        for tag, source in (("csv", dataset_csv),
                            ("arena", dataset_arena)):
            out = tmp_path / f"{algorithm}_{jobs}_{tag}.csv"
            _mine(source, out, out.with_suffix(".log"),
                  algorithm=algorithm, jobs=jobs, backend=backend)
            outputs[tag] = out
        assert filecmp.cmp(outputs["csv"], outputs["arena"],
                           shallow=False), \
            f"{algorithm}/jobs={jobs}: arena input diverged from CSV"

    @pytest.mark.parametrize("policy", ["packed", "bitset"])
    def test_policies_agree_on_arena_input(self, dataset_csv,
                                           dataset_arena, tmp_path,
                                           policy):
        outputs = {}
        for tag, source in (("csv", dataset_csv),
                            ("arena", dataset_arena)):
            out = tmp_path / f"{policy}_{tag}.csv"
            _mine(source, out, out.with_suffix(".log"), policy=policy)
            outputs[tag] = out
        assert filecmp.cmp(outputs["csv"], outputs["arena"],
                           shallow=False), \
            f"policy={policy}: arena input diverged from CSV"


class TestNativeToggleIdentity:
    @pytest.mark.parametrize("native", ["0", "1"])
    @pytest.mark.parametrize("algorithm", ["closed", "fpgrowth"])
    def test_arena_identity_with_and_without_kernels(
            self, dataset_csv, dataset_arena, tmp_path, monkeypatch,
            algorithm, native):
        # load_suite memoises in the module global; reset so the env
        # toggle is re-read, and let monkeypatch restore both after.
        monkeypatch.setenv("REPRO_NATIVE", native)
        monkeypatch.setattr(_native, "_kernel", "unset")
        outputs = {}
        for tag, source in (("csv", dataset_csv),
                            ("arena", dataset_arena)):
            out = tmp_path / f"{algorithm}_n{native}_{tag}.csv"
            _mine(source, out, out.with_suffix(".log"),
                  algorithm=algorithm)
            outputs[tag] = out
        assert filecmp.cmp(outputs["csv"], outputs["arena"],
                           shallow=False), \
            f"{algorithm}/REPRO_NATIVE={native}: arena diverged"


class TestShardedPipelineIdentity:
    @pytest.mark.parametrize("algorithm", MINERS)
    def test_sharded_dataset_matches_whole(self, data, dataset_arena,
                                           tmp_path, algorithm):
        paths = []
        sharded = ShardedDataset.open(dataset_arena)
        try:
            for tag, dataset in (("whole", data), ("sharded", sharded)):
                pipe = Pipeline(min_sup=30, corrections=("Perm_FWER",),
                                algorithm=algorithm, n_permutations=40,
                                seed=0)
                result = pipe.run(dataset)
                out = tmp_path / f"{algorithm}_{tag}.csv"
                rules_to_csv(result["Perm_FWER"].significant, dataset,
                             str(out))
                paths.append(out)
        finally:
            sharded.close()
        assert filecmp.cmp(*paths, shallow=False), \
            f"{algorithm}: sharded pipeline diverged from whole"


class TestServiceArenaIdentity:
    def test_registered_arena_serves_identical_csv(self, dataset_csv,
                                                   dataset_arena):
        from repro.service.app import ServiceConfig, ServiceCore, \
            builtin_asgi_app
        from tests.service.conftest import make_client

        core = ServiceCore(ServiceConfig(
            workers=0,
            datasets=(("by-csv", str(dataset_csv)),
                      ("by-arena", str(dataset_arena)))))
        try:
            client = make_client(builtin_asgi_app(core))
            entries = {e["name"]: e for e in
                       client.get("/v1/datasets").json()["datasets"]}
            assert entries["by-arena"]["fingerprint"] == \
                entries["by-csv"]["fingerprint"]
            served = {}
            for name in ("by-csv", "by-arena"):
                response = client.post(
                    "/v1/jobs",
                    json_body={"kind": "mine",
                               "params": {"dataset": name,
                                          "min_sup": 30,
                                          "correction": "BH"}})
                assert response.status_code == 201, response.text
                job_id = response.json()["job_id"]
                core.jobs.process_pending()
                served[name] = client.get(
                    f"/v1/jobs/{job_id}/result.csv").text
            assert served["by-arena"] == served["by-csv"]
        finally:
            core.close()


class TestAddressSpaceCap:
    """The CI drill, in miniature: a 48 MiB arena data block mined to
    completion under a hard ``ulimit -v`` whose headroom over the
    probe baseline is 36 MiB — too small to ever hold the dataset."""

    N_RECORDS = 1 << 21          # 2_097_152 → 32_768 words
    N_ITEMS = 192                # data block: 192 · 32768 · 8 = 48 MiB
    N_SEGMENTS = 8
    MARGIN_KB = 36 * 1024

    @pytest.fixture(scope="class")
    def big_arena(self, tmp_path_factory):
        from . import outofcore_cap_smoke

        path = tmp_path_factory.mktemp("cap") / "big.arena"
        outofcore_cap_smoke.build(str(path), self.N_RECORDS,
                                  self.N_ITEMS, self.N_SEGMENTS)
        return path

    def _smoke(self, *phase_args, cap_kb=None):
        script = Path(__file__).with_name("outofcore_cap_smoke.py")
        inner = " ".join(shlex.quote(str(a)) for a in
                         [sys.executable, str(script), *phase_args])
        if cap_kb is not None:
            inner = f"ulimit -v {int(cap_kb)}; exec {inner}"
        env = {"PYTHONPATH": str(Path(__file__).parents[2] / "src")}
        return subprocess.run(["bash", "-c", inner], env=env,
                              capture_output=True, text=True,
                              timeout=300)

    def test_mining_completes_under_cap(self, big_arena):
        if shutil.which("bash") is None:
            pytest.skip("bash unavailable for ulimit")
        probe = self._smoke("probe", big_arena)
        if probe.returncode != 0:  # pragma: no cover - env-specific
            pytest.skip(f"probe failed: {probe.stderr[-400:]}")
        cap_kb = int(probe.stdout.split()[-1]) + self.MARGIN_KB
        assert self.MARGIN_KB * 1024 < big_arena.stat().st_size, \
            "cap headroom must be smaller than the dataset"
        run = self._smoke("run", big_arena, self.N_ITEMS,
                          cap_kb=cap_kb)
        assert run.returncode == 0, \
            f"capped run failed:\n{run.stdout}\n{run.stderr[-1500:]}"
        assert "CAP-OK" in run.stdout
        assert "RAM-REFUSED" in run.stdout
