"""Integration tests across the session-3 subsystems.

Each test exercises a pipeline that crosses module boundaries: Quest
transactions into the general-rule miner and the frequency methods,
the three classifiers against one another on one dataset, contrast
sets against the synthetic generator's ground truth, and CPAR's
induced rules through the shared correction machinery.
"""

from __future__ import annotations

import random

import pytest

from repro.classify import (
    CBAClassifier,
    CMARClassifier,
    CPARClassifier,
    record_item_sets,
)
from repro.contrast import find_contrast_sets
from repro.corrections import benjamini_hochberg, bonferroni
from repro.data import (
    Dataset,
    GeneratorConfig,
    QuestConfig,
    generate,
    generate_quest,
)
from repro.frequency import (
    significant_frequent_patterns,
)
from repro.mining.general import mine_general_rules
from repro.mining.rules import mine_class_rules


@pytest.fixture(scope="module")
def quest_data():
    config = QuestConfig(n_transactions=400,
                         avg_transaction_length=6.0,
                         avg_pattern_length=4.0, n_items=60,
                         n_patterns=8, corruption_mean=0.1)
    return generate_quest(config, seed=17)


@pytest.fixture(scope="module")
def planted():
    config = GeneratorConfig(
        n_records=600, n_attributes=15, n_rules=2,
        min_length=2, max_length=3,
        min_coverage=120, max_coverage=150,
        min_confidence=0.85, max_confidence=0.9)
    return generate(config, seed=23)


class TestQuestToGeneralRules:
    def test_quest_feeds_the_general_miner(self, quest_data):
        ruleset = mine_general_rules(quest_data.tidsets(),
                                     quest_data.n_transactions,
                                     min_sup=20, max_length=3)
        assert ruleset.n_tests > 0
        for rule in ruleset.rules:
            assert 0.0 <= rule.p_value <= 1.0

    def test_general_rules_survive_direct_corrections(self,
                                                      quest_data):
        ruleset = mine_general_rules(quest_data.tidsets(),
                                     quest_data.n_transactions,
                                     min_sup=20, max_length=3)
        bc = bonferroni(ruleset, 0.05)
        bh = benjamini_hochberg(ruleset, 0.05)
        assert bc.n_significant <= bh.n_significant
        # Planted Quest patterns make some rules genuinely real.
        assert bc.n_significant > 0

    def test_frequency_and_rule_views_agree_on_structure(self,
                                                         quest_data):
        """Patterns the frequency test flags should substantially
        overlap the LHS∪RHS of significant general rules."""
        tidsets = quest_data.tidsets()
        n = quest_data.n_transactions
        freq = significant_frequent_patterns(
            tidsets, n, min_sup=20, n_resamples=6, max_length=3,
            seed=0)
        ruleset = mine_general_rules(tidsets, n, min_sup=20,
                                     max_length=3)
        bc = bonferroni(ruleset, 0.05)
        rule_patterns = {rule.antecedent | rule.consequent
                         for rule in bc.significant}
        freq_patterns = {s.items for s in freq}
        if freq_patterns and rule_patterns:
            overlap = freq_patterns & rule_patterns
            assert len(overlap) >= len(freq_patterns) // 4


class TestClassifierTrio:
    def test_all_three_beat_the_prior(self, planted):
        dataset = planted.dataset
        ruleset = mine_class_rules(dataset, min_sup=60)
        sets = record_item_sets(dataset)
        majority = max(dataset.class_support(c)
                       for c in range(dataset.n_classes))
        classifiers = [
            CBAClassifier().fit(ruleset),
            CMARClassifier().fit(ruleset),
            CPARClassifier(min_gain=0.5).fit(dataset),
        ]
        for classifier in classifiers:
            predictions = classifier.predict(sets)
            correct = sum(
                1 for p, a in zip(predictions, dataset.class_labels)
                if p == a)
            assert correct >= majority * 0.95

    def test_classifiers_recover_planted_records(self, planted):
        """On records covered by a planted rule, every classifier
        should predict the planted class almost always — that is
        where the signal lives (elsewhere, only noise separates
        them)."""
        dataset = planted.dataset
        ruleset = mine_class_rules(dataset, min_sup=60)
        sets = record_item_sets(dataset)
        classifiers = [
            CBAClassifier().fit(ruleset),
            CMARClassifier().fit(ruleset),
        ]
        for embedded in planted.embedded_rules:
            covered = [r for r in range(dataset.n_records)
                       if embedded.tidset >> r & 1]
            for classifier in classifiers:
                hits = sum(
                    1 for r in covered
                    if classifier.predict_itemset(sets[r]).class_index
                    == embedded.class_index)
                assert hits >= len(covered) * 0.7


class TestContrastVsGroundTruth:
    def test_planted_rules_surface_as_contrasts(self, planted):
        """A planted class rule IS a group difference; STUCCO should
        find contrast sets overlapping the planted items."""
        dataset = planted.dataset
        result = find_contrast_sets(dataset, min_deviation=0.1,
                                    min_sup=30, max_length=3)
        planted_items = set()
        for rule in planted.embedded_rules:
            planted_items.update(rule.item_ids)
        found_items = {item for contrast in result.contrast_sets
                       for item in contrast.items}
        assert planted_items & found_items

    def test_contrast_and_class_rules_tell_one_story(self, planted):
        """Items in surviving contrast sets should appear among the
        Bonferroni-significant class rules too."""
        dataset = planted.dataset
        contrasts = find_contrast_sets(dataset, min_deviation=0.15,
                                       min_sup=30, max_length=2)
        ruleset = mine_class_rules(dataset, min_sup=30)
        bc = bonferroni(ruleset, 0.05)
        rule_items = {item for rule in bc.significant
                      for item in rule.items}
        contrast_items = {item for c in contrasts.contrast_sets
                          for item in c.items}
        if contrast_items:
            assert contrast_items & rule_items


class TestCPARThroughCorrections:
    def test_inducer_vs_miner_significance(self, planted):
        """Most of CPAR's induced rules on planted data should survive
        Bonferroni over the induced set — greedy induction lands on
        the strong signals first."""
        dataset = planted.dataset
        cpar = CPARClassifier(min_gain=0.5).fit(dataset)
        filtered = cpar.filtered("bonferroni", 0.05)
        assert cpar.n_rules > 0
        assert filtered.n_rules >= cpar.n_rules // 3

    def test_filtered_cpar_still_beats_prior(self, planted):
        dataset = planted.dataset
        cpar = CPARClassifier(min_gain=0.5).fit(dataset)
        filtered = cpar.filtered("bh", 0.05)
        sets = record_item_sets(dataset)
        predictions = filtered.predict(sets)
        correct = sum(
            1 for p, a in zip(predictions, dataset.class_labels)
            if p == a)
        majority = max(dataset.class_support(c)
                       for c in range(dataset.n_classes))
        assert correct >= majority * 0.9


class TestQuestAsClassDataset:
    def test_transactions_load_into_dataset(self, quest_data):
        """Quest output flows into Dataset.from_transactions with a
        derived label, closing the loop to the class-rule machinery."""
        transactions = quest_data.transactions[:200]
        anchor = max(
            range(quest_data.config.n_items),
            key=lambda i: sum(1 for t in transactions if i in t))
        labels = ["with" if anchor in t else "without"
                  for t in transactions]
        stripped = [[i for i in t if i != anchor]
                    for t in transactions]
        dataset = Dataset.from_transactions(stripped, labels,
                                            name="quest-class")
        ruleset = mine_class_rules(dataset, min_sup=10, max_length=2)
        assert ruleset.n_tests > 0
        bc = bonferroni(ruleset, 0.05)
        assert bc.n_significant <= ruleset.n_tests
