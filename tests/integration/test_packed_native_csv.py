"""Packed-native substrate ≡ bigint baseline, end to end, per miner.

The multi-layer refactor retired bigint tidsets from every hot path;
these tests pin the two guarantees that made that safe:

* **representation identity** — a dataset ingested through the packed
  arena and the *same* dataset reconstructed from bigint tidsets (the
  interop path plugins use) produce byte-identical mine / holdout /
  permutation CSV output for every registered miner;
* **policy identity** — for every miner, the packed forest policy and
  the bigint ``"bitset"`` ablation arm emit byte-identical permutation
  CSVs through the real CLI.
"""

from __future__ import annotations

import filecmp

import pytest

from repro.cli import main
from repro.core.pipeline import Pipeline
from repro.data import Dataset, GeneratorConfig, generate, save_csv
from repro.evaluation.export import rules_to_csv

MINERS = ("closed", "apriori", "fpgrowth", "representative")


@pytest.fixture(scope="module")
def data():
    config = GeneratorConfig(
        n_records=300, n_attributes=8, n_rules=1,
        min_coverage=60, max_coverage=60,
        min_confidence=0.9, max_confidence=0.9)
    return generate(config, seed=23).dataset


@pytest.fixture(scope="module")
def bigint_clone(data):
    """The same dataset rebuilt from bigint tidsets (interop input)."""
    return Dataset(
        data.n_records, data.catalog,
        [int(t) for t in data.item_tidsets],
        data.class_labels, data.class_names, name=data.name)


@pytest.fixture(scope="module")
def dataset_csv(tmp_path_factory, data):
    path = tmp_path_factory.mktemp("native") / "dataset.csv"
    save_csv(data, str(path))
    return path


class TestBigintIngestIdentity:
    @pytest.mark.parametrize("algorithm", MINERS)
    @pytest.mark.parametrize("correction",
                             ["BH", "HD_BC", "Perm_FWER"])
    def test_mine_holdout_permutation_csv_identical(
            self, data, bigint_clone, tmp_path, algorithm, correction):
        paths = []
        for tag, dataset in (("packed", data), ("bigint", bigint_clone)):
            pipe = Pipeline(min_sup=30, corrections=(correction,),
                            algorithm=algorithm, n_permutations=40,
                            seed=0)
            result = pipe.run(dataset)
            out = tmp_path / f"{algorithm}_{correction}_{tag}.csv"
            rules_to_csv(result[correction].significant, dataset,
                         str(out))
            paths.append(out)
        assert filecmp.cmp(*paths, shallow=False), \
            f"{algorithm}/{correction}: packed-native != bigint ingest"


class TestMinerPolicyIdentity:
    @pytest.mark.parametrize("algorithm", MINERS)
    def test_packed_policy_matches_bitset_arm(self, dataset_csv,
                                              tmp_path, algorithm):
        outputs = {}
        for policy in ("packed", "bitset"):
            out = tmp_path / f"{algorithm}_{policy}.csv"
            argv = ["mine", str(dataset_csv), "--min-sup", "30",
                    "--algorithm", algorithm,
                    "--correction", "Perm_FWER",
                    "--permutations", "40", "--seed", "0",
                    "--policy", policy, "--csv-out", str(out)]
            with open(out.with_suffix(".log"), "w") as log:
                assert main(argv, out=log) == 0
            outputs[policy] = out
        assert filecmp.cmp(outputs["packed"], outputs["bitset"],
                           shallow=False), \
            f"{algorithm}: packed policy differs from bigint bitset arm"
