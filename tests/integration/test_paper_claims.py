"""Integration tests asserting the paper's *qualitative* claims.

These are the headline findings of Section 7, verified at reduced scale:

1. Without correction, numerous spurious rules are generated.
2. All three correction approaches control false positives.
3. Power ordering: permutation > direct adjustment > holdout.
4. Cost ordering: permutation > holdout > direct adjustment.
5. Perm_FDR is close to BH (so BH is preferred for FDR control).
"""

from __future__ import annotations

import time

import pytest

from repro.data import GeneratorConfig
from repro.evaluation import ExperimentRunner

# One embedded rule in the borderline-detectable regime: confidence low
# enough that corrections genuinely disagree.
BORDERLINE = GeneratorConfig(
    n_records=800, n_attributes=16, min_values=2, max_values=3,
    n_rules=1, min_length=2, max_length=4,
    min_coverage=160, max_coverage=160,
    min_confidence=0.68, max_confidence=0.68)

RANDOM = GeneratorConfig(n_records=500, n_attributes=12,
                         min_values=2, max_values=3, n_rules=0)


@pytest.fixture(scope="module")
def borderline_result():
    runner = ExperimentRunner(
        methods=("No correction", "BC", "BH", "Perm_FWER", "Perm_FDR",
                 "HD_BC", "HD_BH"),
        n_permutations=150)
    return runner.run(BORDERLINE, min_sup=60, n_replicates=8, seed=3)


@pytest.fixture(scope="module")
def random_result():
    runner = ExperimentRunner(
        methods=("No correction", "BC", "BH", "Perm_FWER", "HD_BC"),
        n_permutations=150)
    return runner.run(RANDOM, min_sup=50, n_replicates=8, seed=4)


class TestClaim1NoCorrection:
    def test_numerous_spurious_rules_on_random_data(self, random_result):
        none = random_result.aggregates["No correction"]
        assert none.fwer >= 0.9
        assert none.avg_false_positives >= 5

    def test_fwer_one_with_embedded_rule(self, borderline_result):
        assert borderline_result.aggregates["No correction"].fwer >= 0.9


class TestClaim2CorrectionsControl:
    def test_fwer_controlled_on_random_data(self, random_result):
        for method in ("BC", "Perm_FWER", "HD_BC"):
            assert random_result.aggregates[method].fwer <= 0.25, method

    def test_bh_controls_fdr_on_random_data(self, random_result):
        assert random_result.aggregates["BH"].fdr <= 0.15

    def test_holdout_fewest_false_positives(self, random_result):
        hd = random_result.aggregates["HD_BC"].avg_false_positives
        none = random_result.aggregates[
            "No correction"].avg_false_positives
        assert hd <= none


class TestClaim3PowerOrdering:
    def test_permutation_at_least_direct(self, borderline_result):
        perm = borderline_result.aggregates["Perm_FWER"].power
        direct = borderline_result.aggregates["BC"].power
        assert perm >= direct

    def test_direct_at_least_holdout(self, borderline_result):
        direct = borderline_result.aggregates["BC"].power
        hd = borderline_result.aggregates["HD_BC"].power
        assert direct >= hd

    def test_perm_fdr_close_to_bh(self, borderline_result):
        perm = borderline_result.aggregates["Perm_FDR"].power
        bh = borderline_result.aggregates["BH"].power
        assert abs(perm - bh) <= 0.25


class TestClaim4CostOrdering:
    def test_permutation_slowest_direct_fastest(self):
        from repro.corrections import (
            PermutationEngine,
            bonferroni,
            holdout,
        )
        from repro.data import generate_paired
        from repro.mining import mine_class_rules
        data = generate_paired(BORDERLINE, seed=9)
        ruleset = mine_class_rules(data.dataset, min_sup=60)

        start = time.perf_counter()
        bonferroni(ruleset)
        direct_time = time.perf_counter() - start

        start = time.perf_counter()
        holdout(data.dataset, 60, control="fwer",
                boundary=data.half_boundary)
        holdout_time = time.perf_counter() - start

        start = time.perf_counter()
        PermutationEngine(ruleset, 300, seed=1).fwer()
        perm_time = time.perf_counter() - start

        assert direct_time < holdout_time
        assert direct_time < perm_time


class TestNumberOfRulesTested:
    def test_holdout_candidates_orders_smaller(self, borderline_result):
        tested = borderline_result.mean_tested
        assert tested["HD_evaluation"] < tested["whole dataset"]
        assert tested["HD_exploratory"] > tested["HD_evaluation"]
