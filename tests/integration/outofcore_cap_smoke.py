"""Out-of-core smoke drill: mine an arena bigger than the address cap.

Run as a script in two phases (the CI ``out-of-core`` job and the
integration suite drive both through ``bash -c 'ulimit -v ...'``):

``build <arena> <n_records> <n_items> <n_segments>`` — write a random
multi-segment arena of the given shape (``n_records`` a multiple of
64, data block = ``n_items * n_records / 8`` bytes).

``probe`` — report this interpreter's peak address space (VmPeak, kB)
after importing the full mining stack and touching a sharded arena.
The caller sets the hard cap to ``probe + margin`` with ``margin``
smaller than the target arena, so a whole-file map cannot fit but
per-segment windows can.

``run <arena> <expected_items>`` — under the cap: open the arena
sharded, merge per-shard class/item supports, assemble a handful of
full-width item tidsets, score a pattern and a permuted labelling.
Exits non-zero (or dies on MemoryError) if any step maps beyond the
budget; prints ``CAP-OK <checksum>`` on success.
"""

from __future__ import annotations

import sys


def _vm_peak_kb() -> int:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmPeak:"):
                return int(line.split()[1])
    raise RuntimeError("VmPeak not found")  # pragma: no cover


def build(arena_path: str, n_records: int, n_items: int,
          n_segments: int) -> None:
    import numpy as np
    from repro.data.arena import write_arena

    assert n_records % (64 * n_segments) == 0
    seg_records = n_records // n_segments
    seg_words = seg_records // 64

    def chunks(seed):
        gen = np.random.default_rng(seed)
        for start in range(0, n_items, 32):
            rows = min(32, n_items - start)
            yield gen.integers(0, 1 << 63, size=(rows, seg_words),
                               dtype=np.uint64)

    rng = np.random.default_rng(7)
    write_arena(
        arena_path, n_records=n_records,
        items=[(f"A{j}", "y") for j in range(n_items)],
        class_names=["c0", "c1"],
        labels=rng.integers(0, 2, size=n_records, dtype=np.int64),
        segments=[(i * seg_records, seg_records, chunks(i))
                  for i in range(n_segments)],
        name="cap-drill")


def probe(arena_path: str) -> None:
    import numpy as np  # noqa: F401
    from repro.data import ShardedDataset
    from repro.mining import mine_class_rules  # noqa: F401
    from repro.corrections.permutation import (  # noqa: F401
        PermutationEngine,
    )

    with ShardedDataset.open(arena_path) as sharded:
        sharded.item_supports_merged()
    print(_vm_peak_kb())


def run(arena_path: str, expected_items: int) -> None:
    import numpy as np
    from repro.data import ShardedDataset
    with ShardedDataset.open(arena_path) as sharded:
        item_supports = sharded.item_supports_merged()
        class_supports = sharded.class_supports_merged()
        assert len(item_supports) == expected_items, \
            (len(item_supports), expected_items)
        assert int(class_supports.sum()) == sharded.n_records
        # Full-width rows, one at a time (pread assembly, no mapping).
        checksum = 0
        for item_id in range(0, expected_items,
                             max(1, expected_items // 8)):
            tidset = sharded.item_tidsets[item_id]
            assert tidset.count() == int(item_supports[item_id])
            checksum ^= int(tidset.words[:4].sum())
        # Pattern closure and a permuted labelling under the cap.
        support = sharded.pattern_support([0, 1])
        assert 0 <= support <= sharded.n_records
        rng = np.random.default_rng(0)
        permuted = sharded.permuted_class_tidsets(rng)
        assert sum(t.count() for t in permuted) == sharded.n_records
        print(f"CAP-OK {checksum}")
        # Negative control, last so its fragmentation cannot starve
        # the sharded path: materializing the whole dataset in RAM
        # must exceed the cap — the dataset is larger than the
        # headroom over the probe baseline.
        try:
            sharded.to_dataset()
        except (MemoryError, OSError):
            print("RAM-REFUSED")
        else:  # pragma: no cover - means the cap was set too loose
            print("RAM-FIT (cap too loose)")


def main(argv) -> int:
    if argv[0] == "build":
        build(argv[1], int(argv[2]), int(argv[3]), int(argv[4]))
    elif argv[0] == "probe":
        probe(argv[1])
    elif argv[0] == "run":
        run(argv[1], int(argv[2]))
    else:  # pragma: no cover
        raise SystemExit(f"unknown phase {argv[0]!r}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
