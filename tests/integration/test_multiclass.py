"""End-to-end tests on datasets with more than two classes.

Section 3: with ``m > 2`` class labels, *m* rules are generated per
pattern (testing ``X => c`` is no longer equivalent to testing
``X => not-c``), and Section 5.1 reports that the experimental
findings carry over. These tests drive the full pipeline — mining,
multi-class hypothesis counting, every correction family — on 3-class
data, covering the per-class code paths the binary experiments never
touch (per-class buffer caches, the permutation engine's multi-class
support pass).
"""

from __future__ import annotations

import pytest

from repro import mine_significant_rules
from repro.corrections import PermutationEngine, bonferroni
from repro.data import GeneratorConfig, generate
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def three_class_data():
    config = GeneratorConfig(
        n_records=360, n_attributes=10, n_classes=3,
        min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=2,
        min_coverage=70, max_coverage=70,
        min_confidence=0.9, max_confidence=0.9)
    return generate(config, seed=33)


@pytest.fixture(scope="module")
def three_class_ruleset(three_class_data):
    return mine_class_rules(three_class_data.dataset, 25)


class TestMultiClassHypothesisCounting:
    def test_m_rules_per_pattern(self, three_class_ruleset):
        """Every non-root pattern contributes exactly 3 hypotheses."""
        ruleset = three_class_ruleset
        testable_patterns = sum(1 for p in ruleset.patterns if p.items)
        assert ruleset.n_tests == 3 * testable_patterns

    def test_per_class_supports_partition_coverage(self,
                                                   three_class_ruleset):
        by_pattern = {}
        for rule in three_class_ruleset.rules:
            by_pattern.setdefault(rule.pattern_id, []).append(rule)
        for rules in by_pattern.values():
            assert len(rules) == 3
            coverage = rules[0].coverage
            assert sum(r.support for r in rules) == coverage

    def test_class_margins_used_per_rule(self, three_class_data,
                                         three_class_ruleset):
        """Each rule's p-value is computed against its own class
        margin."""
        from repro.stats import fisher_two_tailed
        dataset = three_class_data.dataset
        for rule in three_class_ruleset.rules[:30]:
            expected = fisher_two_tailed(
                rule.support, dataset.n_records,
                dataset.class_support(rule.class_index), rule.coverage)
            assert rule.p_value == pytest.approx(expected, rel=1e-9)


class TestMultiClassCorrections:
    @pytest.mark.parametrize("correction", [
        "bonferroni", "holm", "hochberg", "bh", "storey",
        "permutation-fwer", "permutation-fwer-stepdown",
        "permutation-fdr", "holdout-fwer", "lamp",
    ])
    def test_pipeline_runs(self, three_class_data, correction):
        report = mine_significant_rules(
            three_class_data.dataset, 25, correction=correction,
            n_permutations=40, seed=9)
        assert report.n_tested >= 0
        assert all(0.0 <= r.p_value <= 1.0 for r in report.significant)

    def test_planted_rule_detected(self, three_class_data,
                                   three_class_ruleset):
        """The strong planted rule survives Bonferroni and points at
        the right class."""
        result = bonferroni(three_class_ruleset, 0.05)
        planted = three_class_data.embedded_rules[0]
        hits = [r for r in result.significant
                if r.class_index == planted.class_index
                and set(r.items) >= set(planted.item_ids)]
        assert hits

    def test_permutation_engine_multiclass_pass(self,
                                                three_class_ruleset):
        """The engine's per-class forest passes agree with direct
        re-scoring on the identity permutation."""
        import numpy as np
        engine = PermutationEngine(three_class_ruleset,
                                   n_permutations=10, seed=1)
        labels = np.array(three_class_ruleset.dataset.class_labels,
                          dtype=np.int64)
        supports = engine._rule_supports(labels)
        for rule, support in zip(three_class_ruleset.rules, supports):
            assert rule.support == int(support)

    def test_fwer_controlled_on_random_multiclass(self):
        config = GeneratorConfig(
            n_records=240, n_attributes=8, n_classes=3,
            min_values=2, max_values=3, n_rules=0)
        false_positive_runs = 0
        for seed in range(6):
            dataset = generate(config, seed=seed).dataset
            report = mine_significant_rules(dataset, 20,
                                            correction="bonferroni")
            if report.significant:
                false_positive_runs += 1
        assert false_positive_runs <= 1
