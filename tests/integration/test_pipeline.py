"""Integration tests: full pipelines across module boundaries."""

from __future__ import annotations

import pytest

from repro import mine_significant_rules
from repro.corrections import (
    PermutationEngine,
    benjamini_hochberg,
    bonferroni,
    holdout,
    no_correction,
)
from repro.data import (
    GeneratorConfig,
    generate_paired,
    load_csv,
    make_german,
    save_csv,
)
from repro.evaluation import evaluate_result, restrict_embedded
from repro.mining import mine_class_rules


@pytest.fixture(scope="module")
def paired():
    config = GeneratorConfig(
        n_records=600, n_attributes=14, min_values=2, max_values=3,
        n_rules=1, min_length=2, max_length=3,
        min_coverage=120, max_coverage=140,
        min_confidence=0.85, max_confidence=0.9)
    return generate_paired(config, seed=201)


class TestEndToEnd:
    def test_all_methods_on_one_dataset(self, paired):
        ds = paired.dataset
        ruleset = mine_class_rules(ds, min_sup=45)
        engine = PermutationEngine(ruleset, 80, seed=1)
        results = [
            no_correction(ruleset),
            bonferroni(ruleset),
            benjamini_hochberg(ruleset),
            engine.fwer(),
            engine.fdr(),
            holdout(ds, 45, control="fwer",
                    boundary=paired.half_boundary),
            holdout(ds, 45, control="fdr",
                    boundary=paired.half_boundary),
        ]
        sizes = {r.method: r.n_significant for r in results}
        # Structural sanity of the paper's ordering on a strong rule:
        assert sizes["BC"] <= sizes["BH"] <= sizes["No correction"]
        assert sizes["HD_BC"] <= sizes["HD_BH"]

    def test_evaluation_consistency(self, paired):
        ds = paired.dataset
        ruleset = mine_class_rules(ds, min_sup=45)
        result = bonferroni(ruleset)
        outcome = evaluate_result(result, paired.embedded_rules, ds)
        assert outcome.n_significant == result.n_significant
        assert outcome.power == 1.0  # conf 0.85+ is easily detectable

    def test_holdout_evaluation_on_half(self, paired):
        ds = paired.dataset
        result = holdout(ds, 45, control="fwer",
                         boundary=paired.half_boundary)
        from repro.corrections import HoldoutRun
        run = HoldoutRun(ds, 45, boundary=paired.half_boundary)
        embedded_half = restrict_embedded(paired.embedded_rules,
                                          run.evaluation)
        outcome = evaluate_result(run.bonferroni(), embedded_half,
                                  run.evaluation)
        assert outcome.n_embedded == 1


class TestFileRoundTripPipeline:
    def test_csv_to_significant_rules(self, tmp_path, paired):
        path = tmp_path / "exported.csv"
        save_csv(paired.dataset, path)
        loaded = load_csv(path, class_column="class")
        report = mine_significant_rules(loaded, min_sup=45,
                                        correction="bonferroni")
        original = mine_significant_rules(paired.dataset, min_sup=45,
                                          correction="bonferroni")
        assert len(report.significant) == len(original.significant)


class TestRealDatasetPipeline:
    def test_german_pipeline(self):
        ds = make_german()
        report = mine_significant_rules(ds, min_sup=60,
                                        correction="permutation-fwer",
                                        n_permutations=60, seed=2)
        # Permutation FWER must be no more conservative than Bonferroni
        # (its threshold accounts for the dependence structure).
        bc = mine_significant_rules(ds, min_sup=60,
                                    correction="bonferroni")
        assert len(report.significant) >= len(bc.significant)

    def test_german_table4_shape(self):
        from repro.evaluation import confidence_pvalue_bins
        ds = make_german()
        ruleset = mine_class_rules(ds, min_sup=60, rhs_class=0)
        matrix = confidence_pvalue_bins(ruleset.rules)
        assert len(matrix) == 9
        assert len(matrix[0]) == 4
        assert sum(sum(row) for row in matrix) > 0


class TestCrossScorerConsistency:
    def test_fisher_and_chi2_agree_on_extremes(self, paired):
        ds = paired.dataset
        fisher = mine_class_rules(ds, min_sup=45)
        chi2 = mine_class_rules(ds, min_sup=45, scorer="chi2")
        chi2_p = {r.items: r.p_value for r in chi2.rules}
        # Every rule Fisher finds overwhelming, chi-square must at
        # least find strongly significant (the asymptotic test drifts
        # in the far tail but cannot disagree by the bulk).
        for rule in fisher.rules:
            if rule.p_value < 1e-8:
                assert chi2_p[rule.items] < 1e-4
