"""Bitrot guard for the examples directory.

Importing an example executes only its module top level (every example
guards execution behind ``main()``), so this verifies that each
example's imports resolve against the current public API and that the
documented entry point exists — without paying for the full runs.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_is_populated():
    assert len(EXAMPLE_FILES) >= 10


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    module = _load(path)
    assert callable(getattr(module, "main", None)), \
        f"{path.name} must expose a main() entry point"
    assert module.__doc__, f"{path.name} must carry a module docstring"


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=lambda p: p.stem)
def test_example_is_main_guarded(path):
    source = path.read_text()
    assert 'if __name__ == "__main__":' in source, \
        f"{path.name} must guard execution behind __main__"
