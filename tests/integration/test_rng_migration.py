"""Determinism pins for the random.Random -> numpy Generator migration.

The runner, the classifier's fold builder and the sequential tester
now draw from ``numpy.random.Generator``. These tests pin (a) the
rendered output byte-for-byte across worker counts and backends, and
(b) the deprecation shims that keep ``random.Random`` callers working
for one release.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.classify.evaluate import stratified_folds
from repro.data.synthetic import GeneratorConfig
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import ExperimentRunner
from repro.stats.sequential import sequential_p_value

METHODS = ("No correction", "BC", "BH")


@pytest.fixture(scope="module")
def config():
    return GeneratorConfig(
        n_records=300, n_attributes=8, n_rules=1,
        min_coverage=60, max_coverage=60,
        min_confidence=0.8, max_confidence=0.8)


def _render(result):
    rows = [result.aggregates[m].row() for m in METHODS]
    return format_table(
        ("method", "n", "power", "fwer", "fdr", "avg_fp", "avg_sig"),
        rows, title="experiment")


class TestRunnerByteIdentity:
    def test_serial_vs_threads_table_identical(self, config):
        serial = ExperimentRunner(
            methods=METHODS, n_permutations=20).run(
            config, min_sup=30, n_replicates=3, seed=7)
        threaded = ExperimentRunner(
            methods=METHODS, n_permutations=20, n_jobs=3,
            backend="threads").run(
            config, min_sup=30, n_replicates=3, seed=7)
        assert _render(serial) == _render(threaded)

    def test_rerun_identical(self, config):
        runner = ExperimentRunner(methods=METHODS, n_permutations=20)
        first = runner.run(config, min_sup=30, n_replicates=2, seed=3)
        second = runner.run(config, min_sup=30, n_replicates=2, seed=3)
        assert _render(first) == _render(second)
        assert [r.seed for r in first.replicates] == \
            [r.seed for r in second.replicates]

    def test_replicate_seeds_come_from_numpy_stream(self, config):
        result = ExperimentRunner(
            methods=METHODS, n_permutations=20).run(
            config, min_sup=30, n_replicates=3, seed=11)
        expected = [int(s) for s in
                    np.random.default_rng(11).integers(
                        0, 1 << 48, size=3)]
        assert [r.seed for r in result.replicates] == expected


class TestStratifiedFoldsMigration:
    LABELS = [0] * 10 + [1] * 6 + [2] * 4

    def test_generator_is_deterministic(self):
        a = stratified_folds(self.LABELS, 4, np.random.default_rng(5))
        b = stratified_folds(self.LABELS, 4, np.random.default_rng(5))
        assert a == b

    def test_default_rng_stable(self):
        assert stratified_folds(self.LABELS, 4) == \
            stratified_folds(self.LABELS, 4)

    def test_still_partitions_exactly(self):
        folds = stratified_folds(self.LABELS, 4,
                                 np.random.default_rng(1))
        flat = sorted(r for fold in folds for r in fold)
        assert flat == list(range(len(self.LABELS)))

    def test_legacy_random_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            folds = stratified_folds(self.LABELS, 4, random.Random(5))
        flat = sorted(r for fold in folds for r in fold)
        assert flat == list(range(len(self.LABELS)))


class TestSequentialMigration:
    def test_seeded_runs_identical(self):
        sampler = lambda rng: float(rng.random())  # noqa: E731
        a = sequential_p_value(0.2, sampler, h=5, n_max=200, seed=9)
        b = sequential_p_value(0.2, sampler, h=5, n_max=200, seed=9)
        assert a == b

    def test_generator_accepted(self):
        sampler = lambda rng: float(rng.random())  # noqa: E731
        result = sequential_p_value(
            0.5, sampler, h=5, n_max=100,
            rng=np.random.default_rng(2))
        assert 0.0 < result.p_value <= 1.0

    def test_legacy_random_warns_but_works(self):
        sampler = lambda rng: rng.random()  # noqa: E731
        with pytest.warns(DeprecationWarning, match="deprecated"):
            result = sequential_p_value(
                0.5, sampler, h=5, n_max=100, rng=random.Random(2))
        assert 0.0 < result.p_value <= 1.0
