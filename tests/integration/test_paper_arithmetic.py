"""Integration tests pinning the paper's *exact* printed numbers.

Unlike the qualitative claims (shapes, orderings), these values are
pure arithmetic of the Fisher machinery and must reproduce to the
digit:

* Section 2.3: n=1000, supp(c)=500, supp(X)=5, conf=1 -> p = 0.062.
* Section 2.3: n=1000, supp(c)=500, supp(X)=200, conf=0.55
  -> p = 0.133.
* Figure 2: the full H(k; 20, 11, 6) pmf table and the two-ends
  buffer p-values, all seven published digits of each.
"""

from __future__ import annotations

import pytest

from repro.stats import (
    PValueBuffer,
    fisher_two_tailed,
    min_attainable_p_value,
    min_detectable_confidence,
    min_testable_coverage,
    pmf_table,
)

# Figure 2's published tables (n=20, n_c=11, supp_x=6).
FIGURE2_PMF = [0.0021672, 0.035759, 0.17879, 0.35759, 0.30650,
               0.10728, 0.011920]
FIGURE2_PVALUES = [0.0021672, 0.049845, 0.33591, 1.0000, 0.64241,
                   0.15712, 0.014087]


class TestSection23:
    def test_low_coverage_ceiling_is_0_062(self):
        """"even if conf(R)=1, the p-value of R : X => c is as high
        as 0.062" — n=1000, supp(c)=500, supp(X)=5."""
        assert fisher_two_tailed(5, 1000, 500, 5) \
            == pytest.approx(0.062, abs=5e-4)
        assert min_attainable_p_value(1000, 500, 5) \
            == pytest.approx(0.062, abs=5e-4)

    def test_low_confidence_ceiling_is_0_133(self):
        """"When ... conf(R)=0.55, even if supp(X)=200, the p-value of
        R is as high as 0.133"."""
        assert fisher_two_tailed(110, 1000, 500, 200) \
            == pytest.approx(0.133, abs=5e-4)

    def test_calculator_agrees_with_both_examples(self):
        # Coverage 5 is untestable at 0.05; the boundary coverage is 6.
        assert min_testable_coverage(1000, 500, 0.05) == 6
        # Confidence 0.55 at coverage 200 is not detectable at 0.05;
        # the boundary confidence is higher.
        boundary = min_detectable_confidence(1000, 500, 200, 0.05)
        assert boundary is not None
        assert boundary > 0.55


class TestFigure2:
    def test_pmf_table_to_published_digits(self):
        table = pmf_table(20, 11, 6)
        assert len(table) == len(FIGURE2_PMF)
        for ours, published in zip(table, FIGURE2_PMF):
            assert ours == pytest.approx(published, rel=2e-4)

    def test_buffer_pvalues_to_published_digits(self):
        buffer = PValueBuffer(20, 11, 6)
        for k, published in enumerate(FIGURE2_PVALUES):
            assert buffer.p_value(k) == pytest.approx(published,
                                                      rel=2e-4)

    def test_sum_up_order_matches_figure(self):
        """Figure 2's arrows: the accumulation order is 0, 6, 5, 1, 2,
        4, 3 (ties broken toward the left flank) — equivalently the
        buffer values sort in that order."""
        buffer = PValueBuffer(20, 11, 6)
        values = [buffer.p_value(k) for k in range(7)]
        order = sorted(range(7), key=lambda k: values[k])
        assert set(order[:2]) == {0, 6}
        assert order[-1] == 3
