"""Unit tests for the exception hierarchy and package surface."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    CorrectionError,
    DataError,
    EvaluationError,
    LoaderError,
    MiningError,
    ReproError,
    StatsError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        DataError, LoaderError, MiningError, StatsError,
        CorrectionError, EvaluationError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_loader_error_is_data_error(self):
        assert issubclass(LoaderError, DataError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise MiningError("boom")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_exports(self):
        import repro.corrections
        import repro.data
        import repro.evaluation
        import repro.mining
        import repro.stats
        for module in (repro.data, repro.mining, repro.stats,
                       repro.corrections, repro.evaluation):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_corrections_registry_complete(self):
        from repro import CORRECTIONS
        assert set(CORRECTIONS) == {
            "none", "bonferroni", "holm", "hochberg", "sidak",
            "weighted-bonferroni", "weighted-bh",
            "bh", "by", "storey", "bky", "lamp",
            "permutation-fwer", "permutation-fwer-stepdown",
            "permutation-fdr",
            "holdout-fwer", "holdout-fdr", "layered",
        }
