"""ArtifactStore: keying, idempotent writes, indexed rule queries."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.service.store import ArtifactStore


def _rule(rule="A=a => pos", cls="pos", support=8, p=0.01, q=0.02,
          lift=1.5, items=("A=a",)):
    return {"rule": rule, "class": cls, "length": len(items),
            "coverage": 10, "support": support, "confidence": 0.8,
            "p_value": p, "q_value": q, "lift": lift,
            "items": list(items)}


@pytest.fixture
def store():
    handle = ArtifactStore()
    yield handle
    handle.close()


class TestMakeKey:
    def test_deterministic_and_param_order_free(self):
        key1 = ArtifactStore.make_key("fp", "closed", "bh", "packed",
                                      {"a": 1, "b": 2.5})
        key2 = ArtifactStore.make_key("fp", "closed", "bh", "packed",
                                      {"b": 2.5, "a": 1})
        assert key1 == key2
        assert len(key1) == 64

    def test_every_slot_matters(self):
        base = ArtifactStore.make_key("fp", "closed", "bh", "packed",
                                      {"a": 1})
        assert base != ArtifactStore.make_key(
            "fp2", "closed", "bh", "packed", {"a": 1})
        assert base != ArtifactStore.make_key(
            "fp", "apriori", "bh", "packed", {"a": 1})
        assert base != ArtifactStore.make_key(
            "fp", "closed", "bc", "packed", {"a": 1})
        assert base != ArtifactStore.make_key(
            "fp", "closed", "bh", "bitset", {"a": 1})
        assert base != ArtifactStore.make_key(
            "fp", "closed", "bh", "packed", {"a": 2})

    def test_rejects_empty_slots(self):
        with pytest.raises(ServiceError):
            ArtifactStore.make_key("", "closed", "bh", "packed", {})


class TestPutGet:
    def test_round_trip(self, store):
        payload = {"result": {"alpha": 0.05}, "n": 3}
        key = store.put("fp", "closed", "bh", "packed", {"s": 60},
                        payload, [_rule()])
        cached = store.get("fp", "closed", "bh", "packed", {"s": 60})
        assert cached is not None
        assert cached.key == key
        assert cached.payload == payload
        assert cached.params == {"s": 60}
        assert store.get_by_key(key).miner == "closed"

    def test_miss_returns_none(self, store):
        assert store.get("fp", "closed", "bh", "packed", {}) is None

    def test_put_is_idempotent(self, store):
        args = ("fp", "closed", "bh", "packed", {"s": 60})
        key1 = store.put(*args, {"v": 1}, [_rule()])
        key2 = store.put(*args, {"v": 2}, [_rule(), _rule("B=b => neg")])
        assert key1 == key2  # first write wins, no duplicate rows
        assert store.get_by_key(key1).payload == {"v": 1}
        assert store.stats()["rules"] == 1

    def test_concurrent_puts_single_row(self, store):
        args = ("fp", "closed", "bh", "packed", {"s": 1})
        threads = [threading.Thread(
            target=lambda: store.put(*args, {"v": 1}, [_rule()]))
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.stats()["artifacts"] == 1
        assert store.stats()["rules"] == 1

    def test_non_serializable_payload_rejected(self, store):
        with pytest.raises(TypeError):
            store.put("fp", "closed", "bh", "packed", {},
                      {"bad": object()})


class TestQueryRules:
    def _populate(self, store):
        store.put("fp1", "closed", "bh", "packed", {"s": 1}, {"v": 1}, [
            _rule("A=a => pos", "pos", support=9, p=0.001, q=0.004,
                  lift=2.0, items=("A=a",)),
            _rule("A=a, B=b => pos", "pos", support=7, p=0.01, q=0.03,
                  lift=1.8, items=("A=a", "B=b")),
        ])
        store.put("fp2", "closed", "bonferroni", "packed", {"s": 2},
                  {"v": 2}, [
            _rule("C=c => neg", "neg", support=5, p=0.002, q=None,
                  lift=3.0, items=("C=c",)),
        ])

    def test_filters(self, store):
        self._populate(store)
        assert len(store.query_rules()) == 3
        assert len(store.query_rules(item="A=a")) == 2
        assert len(store.query_rules(class_name="neg")) == 1
        assert len(store.query_rules(correction="bh")) == 2
        assert len(store.query_rules(dataset_fingerprint="fp2")) == 1
        assert len(store.query_rules(min_support=8)) == 1
        assert len(store.query_rules(max_p=0.005)) == 2
        # max_q excludes NULL q-values (no FDR estimate ≠ q of 0)
        assert len(store.query_rules(max_q=0.05)) == 2

    def test_top_k_by_lift(self, store):
        self._populate(store)
        rows = store.query_rules(order_by="lift", top_k=2)
        assert [row["rule"] for row in rows] == [
            "C=c => neg", "A=a => pos"]

    def test_order_by_p(self, store):
        self._populate(store)
        rows = store.query_rules(order_by="p_value")
        assert [row["p_value"] for row in rows] == [0.001, 0.002, 0.01]

    def test_order_by_whitelist(self, store):
        with pytest.raises(ServiceError, match="order_by"):
            store.query_rules(order_by="rule; DROP TABLE artifacts")

    def test_top_k_validated(self, store):
        with pytest.raises(ServiceError, match="top_k"):
            store.query_rules(top_k=0)

    def test_rows_carry_provenance(self, store):
        self._populate(store)
        row = store.query_rules(item="C=c")[0]
        assert row["correction"] == "bonferroni"
        assert row["miner"] == "closed"
        assert row["dataset_fingerprint"] == "fp2"


def test_wal_mode_on_disk(tmp_path):
    store = ArtifactStore(str(tmp_path / "artifacts.db"))
    try:
        assert store.stats()["journal_mode"] == "wal"
    finally:
        store.close()


def test_persistence_across_reopen(tmp_path):
    path = str(tmp_path / "artifacts.db")
    first = ArtifactStore(path)
    first.put("fp", "closed", "bh", "packed", {"s": 1}, {"v": 7},
              [_rule()])
    first.close()
    second = ArtifactStore(path)
    try:
        cached = second.get("fp", "closed", "bh", "packed", {"s": 1})
        assert cached is not None and cached.payload == {"v": 7}
        assert len(second.query_rules(item="A=a")) == 1
    finally:
        second.close()
