"""Fixtures for the service suite.

The HTTP-level tests run against the builtin ASGI application (forced
via ``REPRO_SERVICE_FRAMEWORK=builtin`` so results do not depend on
whether FastAPI happens to be installed) and drive it through
``httpx.ASGITransport`` when httpx is available — the CI service job
installs it — falling back to the in-repo ASGI client on bare
containers. Both speak the same ASGI protocol to the same app.
"""

from __future__ import annotations

import pytest

from repro.data import Dataset
from repro.service.app import ServiceConfig, ServiceCore, \
    builtin_asgi_app


def small_dataset(name: str = "svc-small",
                  shuffle_seed=None) -> Dataset:
    """A deterministic 60-record dataset with real structure.

    Attribute A predicts the class strongly, B weakly, C not at all —
    enough signal that BH keeps some rules at min_sup=10. With
    ``shuffle_seed`` the same *content* arrives in a different record
    order (fingerprint tests).
    """
    records = []
    labels = []
    for index in range(60):
        a = "a1" if index % 3 else "a0"
        b = "b" + str(index % 2)
        c = "c" + str(index % 5)
        label = "pos" if (index % 3 != 0) == (index % 7 != 0) else "neg"
        records.append([a, b, c])
        labels.append(label)
    if shuffle_seed is not None:
        import random

        order = list(range(len(records)))
        random.Random(shuffle_seed).shuffle(order)
        records = [records[i] for i in order]
        labels = [labels[i] for i in order]
    return Dataset.from_records(records, labels, ["A", "B", "C"],
                                name=name)


@pytest.fixture
def core():
    """A ServiceCore with no background workers (tests drain the
    queue explicitly for deterministic scheduling) and the small
    dataset pre-registered."""
    service = ServiceCore(ServiceConfig(workers=0))
    service.registry.register("small", small_dataset())
    yield service
    service.close()


@pytest.fixture
def app(core):
    """The app under test: builtin by default; set
    ``REPRO_SERVICE_TEST_APP=fastapi`` to run the whole HTTP suite
    against the FastAPI adapter instead (the CI service job does both
    — the adapter delegates to the same dispatch table, and this
    proves it)."""
    import os

    if os.environ.get("REPRO_SERVICE_TEST_APP") == "fastapi":
        from repro.service.app import _fastapi_app

        return _fastapi_app(core)
    return builtin_asgi_app(core)


class _HttpxClient:
    """httpx-backed client with the same verbs as ServiceClient."""

    def __init__(self, app, token=None):
        import httpx

        headers = ({"Authorization": f"Bearer {token}"}
                   if token is not None else {})
        self._client = httpx.Client(
            transport=httpx.ASGITransport(app=app),
            base_url="http://service.test", headers=headers)

    def get(self, url, headers=None):
        return self._client.get(url, headers=headers)

    def post(self, url, json_body=None, headers=None):
        return self._client.post(url, json=json_body, headers=headers)

    def delete(self, url, headers=None):
        return self._client.delete(url, headers=headers)


def make_client(app, token=None):
    """An HTTP client for ``app``: httpx when installed, else the
    in-repo ASGI client."""
    try:
        import httpx  # noqa: F401
    except ImportError:
        from repro.service.testing import ServiceClient

        return ServiceClient(app, token=token)
    return _HttpxClient(app, token=token)


@pytest.fixture
def client(app):
    return make_client(app)
