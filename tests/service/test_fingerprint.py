"""Dataset content fingerprints: stable identity, sensitive content."""

from __future__ import annotations

from repro.data import Dataset
from repro.data.fingerprint import FINGERPRINT_VERSION, \
    dataset_fingerprint

from .conftest import small_dataset


def test_fingerprint_format_and_caching():
    dataset = small_dataset()
    fingerprint = dataset.fingerprint()
    assert fingerprint.startswith(FINGERPRINT_VERSION + ":")
    assert len(fingerprint.split(":", 1)[1]) == 64  # sha256 hex
    assert dataset.fingerprint() is fingerprint  # cached
    assert dataset_fingerprint(dataset) == fingerprint


def test_fingerprint_invariant_to_record_order():
    base = small_dataset().fingerprint()
    for seed in (1, 2, 3):
        shuffled = small_dataset(shuffle_seed=seed)
        assert shuffled.fingerprint() == base


def test_fingerprint_invariant_to_column_order():
    records = [["a", "x"], ["b", "y"], ["a", "y"]]
    labels = ["pos", "neg", "pos"]
    forward = Dataset.from_records(records, labels, ["A", "B"])
    swapped = Dataset.from_records([[b, a] for a, b in records],
                                   labels, ["B", "A"])
    assert forward.fingerprint() == swapped.fingerprint()


def test_fingerprint_invariant_to_dataset_name():
    assert (small_dataset("x").fingerprint()
            == small_dataset("y").fingerprint())


def test_fingerprint_sensitive_to_content():
    records = [["a", "x"], ["b", "y"], ["a", "y"]]
    labels = ["pos", "neg", "pos"]
    base = Dataset.from_records(records, labels, ["A", "B"])
    changed_value = Dataset.from_records(
        [["a", "x"], ["b", "y"], ["b", "y"]], labels, ["A", "B"])
    changed_label = Dataset.from_records(
        records, ["pos", "neg", "neg"], ["A", "B"])
    renamed_attr = Dataset.from_records(records, labels, ["A", "Z"])
    fingerprints = {base.fingerprint(), changed_value.fingerprint(),
                    changed_label.fingerprint(),
                    renamed_attr.fingerprint()}
    assert len(fingerprints) == 4


def test_fingerprint_sensitive_to_duplicate_multiplicity():
    records = [["a"], ["a"], ["b"]]
    once = Dataset.from_records(records, ["p", "p", "n"], ["A"])
    twice = Dataset.from_records(records + [["a"]],
                                 ["p", "p", "n", "p"], ["A"])
    assert once.fingerprint() != twice.fingerprint()
