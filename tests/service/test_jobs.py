"""JobManager: validation, lifecycle, caching, determinism."""

from __future__ import annotations

import threading

import pytest

from repro.core.pipeline import Pipeline
from repro.errors import (
    CorrectionError,
    DatasetNotRegistered,
    JobNotFound,
    ServiceError,
)
from repro.service.jobs import JOB_KINDS, JobManager, bh_q_values
from repro.service.registry import DatasetRegistry
from repro.service.store import ArtifactStore

from .conftest import small_dataset


@pytest.fixture
def manager():
    registry = DatasetRegistry()
    registry.register("small", small_dataset())
    handle = JobManager(registry, ArtifactStore(), workers=0)
    yield handle
    handle.store.close()


def _submit_mine(manager, **params):
    base = {"dataset": "small", "min_sup": 10, "correction": "BH"}
    base.update(params)
    return manager.submit("mine", base)


class TestValidation:
    def test_unknown_kind_did_you_mean(self, manager):
        with pytest.raises(ServiceError, match="did you mean 'mine'"):
            manager.submit("mien", {})

    def test_kinds_exported(self):
        assert set(JOB_KINDS) == {"mine", "holdout", "experiment"}

    def test_unknown_dataset_did_you_mean(self, manager):
        with pytest.raises(DatasetNotRegistered,
                           match="did you mean 'small'"):
            _submit_mine(manager, dataset="smal")

    def test_unknown_param_did_you_mean(self, manager):
        with pytest.raises(ServiceError,
                           match="did you mean 'correction'"):
            _submit_mine(manager, corection="BH")

    def test_unknown_correction_propagates_registry_message(
            self, manager):
        with pytest.raises(CorrectionError, match="did you mean"):
            _submit_mine(manager, correction="bonferonni")

    def test_min_sup_bounds(self, manager):
        with pytest.raises(ServiceError, match="min_sup"):
            _submit_mine(manager, min_sup=0)
        with pytest.raises(ServiceError, match="exceeds"):
            _submit_mine(manager, min_sup=10_000)

    def test_holdout_kind_requires_holdout_correction(self, manager):
        with pytest.raises(ServiceError, match="holdout correction"):
            manager.submit("holdout", {"dataset": "small",
                                       "min_sup": 10,
                                       "correction": "BH"})

    def test_spellings_canonicalised(self, manager):
        job = _submit_mine(manager, correction="BH",
                           algorithm="fp-growth")
        assert job.params["correction"] == "bh"
        assert job.params["algorithm"] == "fpgrowth"

    def test_override_spelling_kept(self, manager):
        job = manager.submit("holdout", {"dataset": "small",
                                         "min_sup": 10,
                                         "correction": "HD_BC"})
        # "HD_BC" binds the structured split; canonicalising it would
        # silently drop the binding (the CLI keeps it too).
        assert job.params["correction"] == "HD_BC"


class TestLifecycle:
    def test_ids_sequential(self, manager):
        first = _submit_mine(manager)
        second = _submit_mine(manager, min_sup=11)
        assert (first.job_id, second.job_id) == ("job-00000001",
                                                 "job-00000002")

    def test_submit_run_result(self, manager):
        job = _submit_mine(manager)
        assert job.state == "queued"
        assert manager.process_pending() == 1
        assert job.state == "done" and job.error is None
        payload = manager.result(job.job_id)
        assert payload["correction"] == "bh"
        assert payload["n_significant"] == len(
            payload["result"]["significant"])
        assert payload["rules"][0]["q_value"] is not None

    def test_unknown_job_did_you_mean(self, manager):
        _submit_mine(manager)
        with pytest.raises(JobNotFound,
                           match="did you mean 'job-00000001'"):
            manager.get("job-00000010")

    def test_result_before_done_rejected(self, manager):
        job = _submit_mine(manager)
        with pytest.raises(ServiceError, match="queued"):
            manager.result(job.job_id)

    def test_cancel_queued_only(self, manager):
        job = _submit_mine(manager)
        manager.cancel(job.job_id)
        assert job.state == "cancelled"
        assert manager.process_pending() == 0  # skipped, not run
        with pytest.raises(ServiceError, match="only queued"):
            manager.cancel(job.job_id)

    def test_failure_recorded(self, manager):
        job = _submit_mine(manager)
        manager.registry.unregister("small")  # vanishes before run
        manager.process_pending()
        assert job.state == "failed"
        assert "small" in job.error
        with pytest.raises(ServiceError, match="failed"):
            manager.result(job.job_id)


class TestCaching:
    def test_repeat_served_from_store_identically(self, manager):
        first = _submit_mine(manager)
        second = _submit_mine(manager)
        manager.process_pending()
        assert (first.cached, second.cached) == (False, True)
        assert manager.result(first.job_id) == \
            manager.result(second.job_id)
        assert manager.stats()["executed"] == 1
        assert manager.stats()["cache_hits"] == 1

    def test_param_change_misses(self, manager):
        _submit_mine(manager)
        other = _submit_mine(manager, min_sup=11)
        manager.process_pending()
        assert other.cached is False
        assert manager.stats()["executed"] == 2

    def test_payload_matches_fresh_pipeline_run(self, manager):
        job = _submit_mine(manager)
        manager.process_pending()
        payload = manager.result(job.job_id)
        fresh = Pipeline(min_sup=10, corrections=("bh",),
                         seed=0).run(small_dataset())
        assert payload["result"] == fresh.results["bh"].to_json()

    def test_cached_csv_byte_identical(self, manager):
        first = _submit_mine(manager)
        second = _submit_mine(manager)
        manager.process_pending()
        assert manager.result_csv(first.job_id) == \
            manager.result_csv(second.job_id)

    def test_concurrent_submissions_deterministic(self):
        """Many threads hammering identical submits: every job lands
        done with the same payload, exactly one execution."""
        registry = DatasetRegistry()
        registry.register("small", small_dataset())
        manager = JobManager(registry, ArtifactStore(), workers=4)
        try:
            jobs = []
            lock = threading.Lock()

            def submit():
                job = manager.submit("mine", {"dataset": "small",
                                              "min_sup": 10,
                                              "correction": "BH"})
                with lock:
                    jobs.append(job)

            threads = [threading.Thread(target=submit)
                       for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            done = [manager.wait(job.job_id, timeout=120.0)
                    for job in jobs]
            assert all(job.state == "done" for job in done)
            payloads = [manager.result(job.job_id) for job in jobs]
            assert all(payload == payloads[0] for payload in payloads)
            # Races may execute the same artifact more than once
            # (INSERT OR IGNORE keeps one), but at least one ran and
            # the store holds exactly one artifact.
            assert manager.store.stats()["artifacts"] == 1
            assert manager.stats()["executed"] >= 1
        finally:
            manager.close()
            manager.store.close()


class TestExperimentJobs:
    def test_experiment_runs_and_caches(self, manager):
        params = {"records": 200, "attributes": 6, "replicates": 2,
                  "coverage": 40, "min_sup": 20,
                  "methods": "No correction,BC",
                  "n_permutations": 20}
        first = manager.submit("experiment", params)
        second = manager.submit("experiment", params)
        manager.process_pending()
        assert first.state == "done"
        assert second.cached is True
        payload = manager.result(first.job_id)
        # spellings canonicalise: "No correction" -> "none", "BC" ->
        # "bonferroni"
        assert payload["methods"] == ["none", "bonferroni"]
        assert set(payload["table"]) == {"none", "bonferroni"}
        row = payload["table"]["bonferroni"]
        assert row["n_datasets"] == 2
        assert 0.0 <= row["fwer"] <= 1.0

    def test_experiment_has_no_csv(self, manager):
        job = manager.submit("experiment",
                             {"records": 120, "attributes": 5,
                              "replicates": 1, "coverage": 30,
                              "min_sup": 15, "methods": "BC",
                              "n_permutations": 10})
        manager.process_pending()
        with pytest.raises(ServiceError, match="experiment"):
            manager.result_csv(job.job_id)


class TestBhQValues:
    def test_monotone_and_capped(self):
        mapping = bh_q_values([0.01, 0.02, 0.03, 0.9], 4)
        assert mapping[0.01] == pytest.approx(0.04)
        assert mapping[0.9] == pytest.approx(0.9)
        ordered = [mapping[p] for p in (0.01, 0.02, 0.03, 0.9)]
        assert ordered == sorted(ordered)
        assert all(q <= 1.0 for q in ordered)

    def test_n_tests_denominator(self):
        # 2 scored p-values but 10 tested hypotheses: q uses n=10.
        mapping = bh_q_values([0.01, 0.5], 10)
        assert mapping[0.01] == pytest.approx(0.1)

    def test_empty(self):
        assert bh_q_values([], 5) == {}
