"""Crash durability: the job journal, boot replay, timeouts, TTL."""

from __future__ import annotations

import sqlite3
import time

import pytest

from repro.errors import ServiceError, TransientError
from repro.service.journal import JobJournal
from repro.service.jobs import JobManager
from repro.service.registry import DatasetRegistry
from repro.service.store import ArtifactStore
from repro.testing import faults

from .conftest import small_dataset


@pytest.fixture(autouse=True)
def _no_faults():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture
def registry():
    reg = DatasetRegistry()
    reg.register("small", small_dataset())
    return reg


def make_manager(registry, journal=None, **kwargs):
    kwargs.setdefault("workers", 0)
    return JobManager(registry, ArtifactStore(), journal=journal,
                      **kwargs)


def mine_params(**overrides):
    params = {"dataset": "small", "min_sup": 10,
              "n_permutations": 25}
    params.update(overrides)
    return params


class TestJournalRecords:
    def test_lifecycle_is_journaled(self, registry, tmp_path):
        journal = JobJournal(str(tmp_path / "jobs.sqlite"))
        manager = make_manager(registry, journal)
        job = manager.submit("mine", mine_params())
        manager.process_pending()
        events = [event["event"] for event in journal.events(job.job_id)]
        assert events == ["submitted", "started", "done"]
        snapshot = journal.load()[0]
        assert snapshot["state"] == "done"
        assert snapshot["payload"]["n_rules_tested"] > 0
        assert snapshot["attempts"] == 1
        manager.close()
        journal.close()

    def test_journal_survives_process_boundary(self, registry,
                                               tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        manager = make_manager(registry, journal)
        job = manager.submit("mine", mine_params())
        manager.process_pending()
        manager.close()
        journal.close()
        # a fresh journal handle (as a restarted process would open)
        reopened = JobJournal(path)
        assert reopened.load()[0]["job_id"] == job.job_id
        assert reopened.load()[0]["state"] == "done"
        reopened.close()

    def test_journal_not_picklable(self):
        import pickle

        journal = JobJournal()
        with pytest.raises(TypeError):
            pickle.dumps(journal)
        journal.close()


class TestRecovery:
    def test_queued_jobs_reenter_queue(self, registry, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        manager = make_manager(registry, journal)
        job = manager.submit("mine", mine_params())
        # crash before any worker ran it: close without draining
        manager.close()
        journal.close()

        journal2 = JobJournal(path)
        manager2 = make_manager(registry, journal2)
        recovered = manager2.get(job.job_id)
        assert recovered.state == "queued"
        assert manager2.process_pending() == 1
        assert manager2.get(job.job_id).state == "done"
        events = [e["event"] for e in journal2.events(job.job_id)]
        assert "recovered" in events
        manager2.close()
        journal2.close()

    def test_orphaned_running_job_retried(self, registry, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        manager = make_manager(registry, journal)
        job = manager.submit("mine", mine_params())
        # simulate a crash mid-run: record the running state, then
        # abandon the manager without finishing the job
        with manager._lock:
            job.state = "running"
            job.started_at = time.time()
            job.attempts = 1
        journal.record(job.snapshot(), "started")
        journal.close()

        journal2 = JobJournal(path)
        manager2 = make_manager(registry, journal2, max_retries=2)
        recovered = manager2.get(job.job_id)
        assert recovered.state == "queued"  # orphan, budget left
        manager2.process_pending()
        done = manager2.get(job.job_id)
        assert done.state == "done"
        assert done.attempts == 2
        manager2.close()
        journal2.close()

    def test_orphan_with_spent_budget_fails(self, registry, tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        manager = make_manager(registry, journal, max_retries=1)
        job = manager.submit("mine", mine_params())
        with manager._lock:
            job.state = "running"
            job.started_at = time.time()
            job.attempts = 2  # the first try + the one retry: spent
        journal.record(job.snapshot(), "started")
        journal.close()

        journal2 = JobJournal(path)
        manager2 = make_manager(registry, journal2, max_retries=1)
        failed = manager2.get(job.job_id)
        assert failed.state == "failed"
        assert "orphaned" in failed.error
        manager2.close()
        journal2.close()

    def test_fresh_heartbeat_respected_when_shared(self, registry,
                                                   tmp_path):
        # assume_exclusive=False: a running row with a *fresh*
        # heartbeat belongs to a live sibling process — hands off.
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        manager = make_manager(registry, journal)
        job = manager.submit("mine", mine_params())
        with manager._lock:
            job.state = "running"
            job.started_at = time.time()
            job.heartbeat_at = time.time()
            job.attempts = 1
        journal.record(job.snapshot(), "started")
        journal.close()

        journal2 = JobJournal(path)
        manager2 = make_manager(registry, journal2,
                                assume_exclusive=False)
        assert manager2.get(job.job_id).state == "running"
        manager2.close()
        journal2.close()

    def test_done_jobs_stay_servable_after_restart(self, registry,
                                                   tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        manager = make_manager(registry, journal)
        job = manager.submit("mine", mine_params())
        manager.process_pending()
        payload = manager.result(job.job_id)
        csv_text = manager.result_csv(job.job_id)
        manager.close()
        journal.close()

        journal2 = JobJournal(path)
        manager2 = make_manager(registry, journal2)
        assert manager2.result(job.job_id) == payload
        assert manager2.result_csv(job.job_id) == csv_text
        manager2.close()
        journal2.close()

    def test_counter_resumes_past_recovered_ids(self, registry,
                                                tmp_path):
        path = str(tmp_path / "jobs.sqlite")
        journal = JobJournal(path)
        manager = make_manager(registry, journal)
        first = manager.submit("mine", mine_params())
        manager.close()
        journal.close()

        journal2 = JobJournal(path)
        manager2 = make_manager(registry, journal2)
        second = manager2.submit("mine", mine_params(seed=1))
        assert second.job_id != first.job_id
        manager2.close()
        journal2.close()


class TestTimeoutsAndTTL:
    def test_running_job_past_deadline_fails(self, registry):
        manager = make_manager(registry, job_timeout=0.01)
        job = manager.submit("mine", mine_params())
        with manager._lock:
            job.state = "running"
            job.started_at = time.time() - 10.0
        swept = manager.reap()
        assert swept["timed_out"] == 1
        assert manager.get(job.job_id).state == "failed"
        assert "timed out" in manager.get(job.job_id).error
        manager.close()

    def test_late_result_discarded_after_timeout(self, registry):
        manager = make_manager(registry, job_timeout=0.01)
        job = manager.submit("mine", mine_params())
        with manager._lock:
            job.state = "running"
            job.started_at = time.time() - 10.0
            job.attempts = 1
        manager.reap()
        # the worker thread finally finishes: its result must not
        # resurrect the failed job
        assert manager._process(job.job_id) is False
        assert manager.get(job.job_id).state == "failed"
        assert manager.get(job.job_id).payload is None
        manager.close()

    def test_submit_timeout_overrides_default(self, registry):
        manager = make_manager(registry, job_timeout=600.0)
        job = manager.submit("mine", mine_params(), timeout=0.25)
        assert job.timeout == 0.25
        manager.close()

    def test_submit_rejects_bad_timeout(self, registry):
        manager = make_manager(registry)
        with pytest.raises(ServiceError):
            manager.submit("mine", mine_params(), timeout=0.0)
        manager.close()

    def test_ttl_prunes_finished_jobs(self, registry):
        manager = make_manager(registry, job_ttl=0.01)
        job = manager.submit("mine", mine_params())
        manager.process_pending()
        with manager._lock:
            manager.get(job.job_id).finished_at = time.time() - 10.0
        swept = manager.reap()
        assert swept["expired"] == 1
        with pytest.raises(Exception):
            manager.get(job.job_id)
        assert manager.stats()["expired"] == 1
        manager.close()

    def test_reap_heartbeats_running_jobs(self, registry, tmp_path):
        journal = JobJournal(str(tmp_path / "jobs.sqlite"))
        manager = make_manager(registry, journal)
        job = manager.submit("mine", mine_params())
        with manager._lock:
            job.state = "running"
            job.started_at = time.time()
        journal.record(job.snapshot(), "started")
        swept = manager.reap()
        assert swept["heartbeats"] == 1
        beat = journal.load()[0]["heartbeat_at"]
        assert beat is not None and time.time() - beat < 5.0
        manager.close()
        journal.close()


class TestWorkerResilience:
    def test_unexpected_exception_recorded_with_traceback(
            self, registry, monkeypatch):
        manager = make_manager(registry)
        job = manager.submit("mine", mine_params())

        def explode(job):
            raise RuntimeError("plugin bug: boom")

        monkeypatch.setattr(manager, "_execute", explode)
        manager.process_pending()
        failed = manager.get(job.job_id)
        assert failed.state == "failed"
        assert "RuntimeError" in failed.error
        assert "plugin bug: boom" in failed.traceback
        assert "explode" in failed.traceback
        manager.close()

    def test_transient_failure_requeued_then_succeeds(
            self, registry, monkeypatch):
        manager = make_manager(registry, max_retries=2)
        job = manager.submit("mine", mine_params())
        real_execute = manager._execute
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientError("injected transient failure")
            return real_execute(job)

        monkeypatch.setattr(manager, "_execute", flaky)
        manager.process_pending()
        done = manager.get(job.job_id)
        assert done.state == "done"
        assert done.attempts == 2
        assert manager.stats()["retried"] == 1
        manager.close()

    def test_transient_failures_exhaust_budget(self, registry,
                                               monkeypatch):
        manager = make_manager(registry, max_retries=1)
        job = manager.submit("mine", mine_params())

        def always_transient(job):
            raise TransientError("never recovers")

        monkeypatch.setattr(manager, "_execute", always_transient)
        manager.process_pending()
        failed = manager.get(job.job_id)
        assert failed.state == "failed"
        assert failed.attempts == 2  # first try + one retry
        assert "never recovers" in failed.error
        assert "always_transient" in failed.traceback
        manager.close()

    def test_worker_thread_survives_processing_errors(self, registry,
                                                      monkeypatch):
        manager = JobManager(registry, ArtifactStore(), workers=1)
        try:
            job = manager.submit("mine", mine_params())

            def explode(job):
                raise RuntimeError("boom")

            monkeypatch.setattr(manager, "_execute", explode)
            manager.wait(job.job_id, timeout=30.0)
            assert manager.get(job.job_id).state == "failed"
            # the worker is still alive and processes the next job
            monkeypatch.undo()
            second = manager.submit("mine", mine_params(seed=3))
            manager.wait(second.job_id, timeout=60.0)
            assert manager.get(second.job_id).state == "done"
        finally:
            manager.close()


class TestBusyRetry:
    def test_store_put_retries_through_injected_busy(self, registry):
        store = ArtifactStore()
        faults.arm("sqlite-busy:1.0:2")  # two injected collisions
        key = store.put("fp", "closed", "bh", "auto", {"a": 1},
                        {"payload": True})
        assert store.get_by_key(key) is not None
        stats = faults.fault_stats()["sqlite-busy"]
        assert stats["fires"] == 2
        faults.disarm()
        store.close()

    def test_store_put_exhausts_loudly(self, registry):
        store = ArtifactStore()
        faults.arm("sqlite-busy:1.0")  # unlimited: never recovers
        with pytest.raises(sqlite3.OperationalError,
                           match="database is locked"):
            store.put("fp", "closed", "bh", "auto", {"a": 1},
                      {"payload": True})
        faults.disarm()
        store.close()

    def test_journal_record_retries_through_injected_busy(
            self, tmp_path):
        journal = JobJournal(str(tmp_path / "jobs.sqlite"))
        snapshot = {"job_id": "job-00000001", "kind": "mine",
                    "dataset": "small", "params": {"min_sup": 5},
                    "state": "queued", "cached": False, "error": None,
                    "traceback": None, "payload": None, "attempts": 0,
                    "timeout": None, "created_at": 1.0,
                    "started_at": None, "finished_at": None,
                    "heartbeat_at": None}
        faults.arm("sqlite-busy:1.0:2")
        journal.record(snapshot, "submitted")
        faults.disarm()
        assert journal.load()[0]["state"] == "queued"
        journal.close()
