"""End-to-end HTTP tests: submit → poll → result, caching, auth.

These drive the builtin ASGI app through a real ASGI request cycle
(httpx's ASGITransport when installed, the in-repo client otherwise)
with ``workers=0`` cores — the queue is drained explicitly between
requests so scheduling is deterministic.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import Pipeline
from repro.evaluation.export import rules_to_csv
from repro.service.app import ServiceConfig, ServiceCore, \
    builtin_asgi_app

from .conftest import make_client, small_dataset


def _submit(client, **params):
    base = {"dataset": "small", "min_sup": 10, "correction": "BH"}
    base.update(params)
    response = client.post("/v1/jobs",
                           json_body={"kind": "mine", "params": base})
    assert response.status_code == 201, response.text
    return response.json()["job_id"]


def test_health(client):
    response = client.get("/health")
    assert response.status_code == 200
    assert response.json()["status"] == "ok"


def test_health_component_report(client):
    body = client.get("/health").json()
    components = body["components"]
    assert "native_kernel" in components
    breaker = components["breaker"]
    assert set(breaker["active"]) == {"serial", "threads", "processes"}
    assert breaker["threshold"] >= 1
    # the default test core is in-memory, so the journal is disabled
    assert components["journal"] is None
    assert components["store"]["path"] == ":memory:"


def test_unknown_route_404(client):
    assert client.get("/v1/nonsense").status_code == 404
    body = client.get("/v1/nonsense").json()
    assert body["error"]["type"] == "NotFound"


def test_dataset_listing_and_lookup(client, core):
    listing = client.get("/v1/datasets").json()["datasets"]
    assert [entry["name"] for entry in listing] == ["small"]
    entry = client.get("/v1/datasets/small").json()
    assert entry["fingerprint"].startswith("sha256-v1:")
    by_fingerprint = client.get(
        f"/v1/datasets/{entry['fingerprint']}").json()
    assert by_fingerprint["name"] == "small"
    missing = client.get("/v1/datasets/smal")
    assert missing.status_code == 404
    assert "did you mean 'small'" in \
        missing.json()["error"]["message"]


def test_register_builtin_roundtrip(client, core):
    response = client.post("/v1/datasets",
                           json_body={"name": "german",
                                      "source": "builtin:german"})
    assert response.status_code == 201
    assert response.json()["n_records"] == 1000
    # idempotent re-register; conflicting content is a 400
    again = client.post("/v1/datasets",
                        json_body={"name": "german",
                                   "source": "builtin:german"})
    assert again.status_code == 201
    conflict = client.post("/v1/datasets",
                           json_body={"name": "german",
                                      "source": "builtin:adult"})
    assert conflict.status_code == 400
    assert "different content" in \
        conflict.json()["error"]["message"]
    assert client.delete("/v1/datasets/german").status_code == 200


def test_submit_poll_result_cycle(client, core):
    job_id = _submit(client)
    polled = client.get(f"/v1/jobs/{job_id}").json()
    assert polled["state"] == "queued"
    # result before completion is a 409, pointing at the poll URL
    early = client.get(f"/v1/jobs/{job_id}/result")
    assert early.status_code == 409
    core.jobs.process_pending()
    polled = client.get(f"/v1/jobs/{job_id}").json()
    assert polled["state"] == "done"
    result = client.get(f"/v1/jobs/{job_id}/result")
    assert result.status_code == 200
    payload = result.json()["payload"]
    assert payload["dataset"]["name"] == "small"
    assert payload["n_significant"] >= 1
    assert result.json()["cached"] is False


def test_cached_result_byte_identical_to_fresh(client, core):
    """The acceptance criterion: a repeated mine request is served
    from the artifact store, byte-identical to the uncached
    Pipeline.run / CLI export."""
    first = _submit(client)
    core.jobs.process_pending()
    second = _submit(client)
    core.jobs.process_pending()
    response1 = client.get(f"/v1/jobs/{first}/result")
    response2 = client.get(f"/v1/jobs/{second}/result")
    assert response2.json()["cached"] is True
    assert response1.json()["payload"] == response2.json()["payload"]
    csv1 = client.get(f"/v1/jobs/{first}/result.csv")
    csv2 = client.get(f"/v1/jobs/{second}/result.csv")
    assert csv1.text == csv2.text


def test_service_csv_matches_cli_export(client, core, tmp_path):
    job_id = _submit(client)
    core.jobs.process_pending()
    served = client.get(f"/v1/jobs/{job_id}/result.csv")
    fresh = Pipeline(min_sup=10, corrections=("bh",),
                     seed=0).run(small_dataset())
    path = tmp_path / "fresh.csv"
    rules_to_csv(fresh.results["bh"].significant, small_dataset(),
                 path)
    # read_bytes: read_text would translate the CSV dialect's \r\n
    assert served.text.encode("utf-8") == path.read_bytes()


def test_fingerprint_keyed_cache_across_names(client, core):
    """The same content registered under another name (and a shuffled
    record order) still hits the cache: identity is the fingerprint,
    not the name."""
    first = _submit(client)
    core.jobs.process_pending()
    core.registry.register("small-copy", small_dataset(shuffle_seed=5))
    second = _submit(client, dataset="small-copy")
    core.jobs.process_pending()
    assert client.get(f"/v1/jobs/{second}/result").json()["cached"] \
        is True


def test_cancel_endpoint(client, core):
    job_id = _submit(client)
    cancelled = client.delete(f"/v1/jobs/{job_id}")
    assert cancelled.status_code == 200
    assert cancelled.json()["state"] == "cancelled"
    assert client.delete(f"/v1/jobs/{job_id}").status_code == 400


def test_jobs_listing(client, core):
    ids = [_submit(client), _submit(client, min_sup=11)]
    listing = client.get("/v1/jobs").json()["jobs"]
    assert [job["job_id"] for job in listing] == ids


def test_bad_submissions(client):
    missing_kind = client.post("/v1/jobs", json_body={"params": {}})
    assert missing_kind.status_code == 400
    unknown_job = client.get("/v1/jobs/job-99999999")
    assert unknown_job.status_code == 404
    bad_param = client.post(
        "/v1/jobs", json_body={"kind": "mine",
                               "params": {"dataset": "small",
                                          "min_sup": 10,
                                          "corection": "BH"}})
    assert bad_param.status_code == 400
    assert "did you mean 'correction'" in \
        bad_param.json()["error"]["message"]


def test_rules_query_endpoint(client, core):
    _submit(client)
    core.jobs.process_pending()
    response = client.get(
        "/v1/rules?correction=BH&max_q=0.05&order_by=lift&top_k=3")
    assert response.status_code == 200
    body = response.json()
    assert 1 <= body["count"] <= 3
    lifts = [row["lift"] for row in body["rules"]]
    assert lifts == sorted(lifts, reverse=True)
    assert all(row["q_value"] <= 0.05 for row in body["rules"])
    item = body["rules"][0]["rule"].split(",")[0].lstrip("{")
    filtered = client.get(f"/v1/rules?item={item}")
    assert filtered.json()["count"] >= 1
    bad = client.get("/v1/rules?order_by=evil")
    assert bad.status_code == 400


def test_service_stats(client, core):
    _submit(client)
    core.jobs.process_pending()
    stats = client.get("/v1/service").json()
    assert stats["datasets"] == ["small"]
    assert stats["jobs"]["executed"] == 1
    assert stats["store"]["artifacts"] == 1


def test_auth_required_when_token_set():
    service = ServiceCore(ServiceConfig(workers=0, token="sekret"))
    try:
        service.registry.register("small", small_dataset())
        app = builtin_asgi_app(service)
        anonymous = make_client(app)
        assert anonymous.get("/health").status_code == 200
        denied = anonymous.get("/v1/datasets")
        assert denied.status_code == 401
        assert denied.json()["error"]["type"] == "Unauthorized"
        wrong = make_client(app, token="wrong")
        assert wrong.get("/v1/datasets").status_code == 401
        right = make_client(app, token="sekret")
        assert right.get("/v1/datasets").status_code == 200
    finally:
        service.close()


def test_response_json_is_deterministic(client, core):
    """Sorted keys: two textually identical requests produce
    byte-identical response bodies (cached-vs-fresh diffing in CI
    depends on this)."""
    job_id = _submit(client)
    core.jobs.process_pending()
    first = client.get(f"/v1/jobs/{job_id}/result")
    second = client.get(f"/v1/jobs/{job_id}/result")
    assert first.text == second.text
    parsed = json.loads(first.text)
    assert list(parsed) == sorted(parsed)
