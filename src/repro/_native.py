"""Optional fused C kernel behind :class:`repro.bitmat.BitMatrix`.

NumPy cannot fuse ``bitwise_and`` → ``bitwise_count`` → row-sum into
one pass, so the pure-numpy batch kernel materialises a
``words``-sized intermediate per labelling and pays three memory
sweeps where one would do. This module compiles (once, lazily, with
the system C compiler) a ~20-line fused loop::

    out[b][j] = sum_w popcount(words[j][w] & rows[b][w])

and loads it through :mod:`ctypes`. The kernel reads the packed
forest once per labelling and keeps the accumulator in a register —
on AVX-512 hardware gcc auto-vectorises the popcount — which is
what clears the ``BENCH_permutation.json`` speedup gate on one core.

Everything here is best-effort: no compiler, a sandboxed filesystem, a
failed compile, or ``REPRO_NATIVE=0`` all degrade silently to the
numpy path (:meth:`BitMatrix.class_supports_batch` checks
:func:`load_kernel` for ``None``). Results are bit-identical either
way — both paths count exact integers.

The shared object is cached under ``$REPRO_NATIVE_CACHE`` (default: a
per-user directory beneath the system temp dir), keyed by a hash of
the source and compiler flags, and published with an atomic rename so
concurrent workers never load a half-written library.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import stat
import subprocess
import sys
import tempfile
from typing import Optional

__all__ = ["load_kernel", "native_status"]

_SOURCE = r"""
#include <stdint.h>

/* Fused AND -> popcount -> accumulate over one row of packed words.
   The three-array numpy pipeline is memory bound; this single pass
   reads each word once and keeps the running count in a register. */

#if defined(__GNUC__) || defined(__clang__)
#define POPCOUNT64 __builtin_popcountll
#else
static int POPCOUNT64(uint64_t x) {
    int count = 0;
    while (x) { x &= x - 1; ++count; }
    return count;
}
#endif

void repro_class_supports_batch(
    const uint64_t *words,   /* (n_rows, n_words), row-major */
    const uint64_t *rows,    /* (n_batch, n_words), row-major */
    int64_t *out,            /* (n_batch, n_rows), row-major */
    int64_t n_rows,
    int64_t n_words,
    int64_t n_batch)
{
    for (int64_t b = 0; b < n_batch; ++b) {
        const uint64_t *row = rows + b * n_words;
        int64_t *dst = out + b * n_rows;
        for (int64_t j = 0; j < n_rows; ++j) {
            const uint64_t *node = words + j * n_words;
            int64_t acc = 0;
            for (int64_t w = 0; w < n_words; ++w)
                acc += POPCOUNT64(node[w] & row[w]);
            dst[j] = acc;
        }
    }
}
"""

#: Flag sets tried in order; the first successful compile wins. The
#: -march=native build unlocks vectorised popcount (AVX-512 VPOPCNTQ
#: where available); the plain build is the portable fallback.
_FLAG_SETS = (
    ("-O3", "-march=native", "-funroll-loops"),
    ("-O3",),
)

_CACHE_ENV = "REPRO_NATIVE_CACHE"
_DISABLE_ENV = "REPRO_NATIVE"

# Memoised load result: "unset" -> not tried yet; None -> unavailable.
_kernel: object = "unset"
_status = "not loaded"


def _cache_dir() -> Optional[str]:
    """A private, owned cache directory — or ``None`` to not cache.

    Loading a shared object executes its code, so the cache must not
    be hijackable: the directory is created ``0o700`` and rejected
    unless it is a directory owned by the current user and writable
    by nobody else (the default lives under the world-writable system
    temp dir, where any local user could otherwise pre-create the
    path and plant a library).
    """
    configured = os.environ.get(_CACHE_ENV)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    directory = configured or os.path.join(tempfile.gettempdir(),
                                           f"repro-native-{uid}")
    try:
        os.makedirs(directory, mode=0o700, exist_ok=True)
        # lstat + explicit symlink rejection: a pre-planted symlink at
        # the expected path would otherwise redirect the ownership
        # check, the chmod, and the compiler artifacts to its target.
        info = os.lstat(directory)
    except OSError:
        return None
    if stat.S_ISLNK(info.st_mode) or not stat.S_ISDIR(info.st_mode):
        return None
    if hasattr(os, "getuid") and info.st_uid != uid:
        return None
    if info.st_mode & (stat.S_IWGRP | stat.S_IWOTH):
        # Our own directory from an earlier version (or a permissive
        # umask): tighten it rather than losing the cache. Anything
        # still loose afterwards is rejected.
        try:
            os.chmod(directory, 0o700)
            info = os.stat(directory)
        except OSError:
            return None
        if info.st_mode & (stat.S_IWGRP | stat.S_IWOTH):
            return None
    return directory


def _compile(flags) -> Optional[str]:
    """Compile the kernel with ``flags``; return the .so path or None.

    The object is written to a unique temp name and published with
    ``os.replace`` so a concurrent worker either sees the finished
    library or none at all — never a partial write. The cache tag
    hashes the host identity alongside source and flags because
    ``-march=native`` output is CPU-specific: a library built on one
    machine must never be picked up on another through a shared
    cache directory (SIGILL at call time is uncatchable).
    """
    tag = hashlib.sha256(
        (_SOURCE + " ".join(flags) + sys.version
         + platform.machine() + platform.node()).encode()
    ).hexdigest()[:16]
    directory = _cache_dir()
    if directory is None:
        return None
    library = os.path.join(directory, f"bitmat_{tag}.so")
    if os.path.exists(library):
        return library
    # Every attempt compiles from its own unique source and scratch
    # files (mkstemp): concurrent first-use compiles — thread workers,
    # process workers — must never write through each other's paths,
    # or a half-written .so could be published into the cache.
    source_fd, source_path = tempfile.mkstemp(
        dir=directory, prefix=f"bitmat_{tag}_", suffix=".c")
    scratch_fd, scratch = tempfile.mkstemp(
        dir=directory, prefix=f"bitmat_{tag}_", suffix=".so.tmp")
    os.close(scratch_fd)
    try:
        with os.fdopen(source_fd, "w") as handle:
            handle.write(_SOURCE)
        subprocess.run(
            ["cc", "-shared", "-fPIC", *flags, source_path,
             "-o", scratch],
            check=True, capture_output=True, timeout=120)
        os.replace(scratch, library)
        return library
    except Exception:
        try:
            os.unlink(scratch)
        except OSError:
            pass
        return None
    finally:
        try:
            os.unlink(source_path)
        except OSError:
            pass


def load_kernel():
    """The ctypes kernel function, or ``None`` when unavailable.

    Lazy and memoised; safe to call from any thread or worker
    process (each process compiles at most once, against the shared
    on-disk cache).
    """
    global _kernel, _status
    if _kernel != "unset":
        return _kernel
    if os.environ.get(_DISABLE_ENV, "").strip() == "0":
        _kernel, _status = None, "disabled via REPRO_NATIVE=0"
        return None
    for flags in _FLAG_SETS:
        library = _compile(flags)
        if library is None:
            continue
        try:
            handle = ctypes.CDLL(library)
            fn = handle.repro_class_supports_batch
        except (OSError, AttributeError):
            continue
        fn.restype = None
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_uint64),
            ctypes.POINTER(ctypes.c_uint64),
            ctypes.POINTER(ctypes.c_int64),
            ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
        ]
        _kernel = fn
        _status = f"loaded ({' '.join(flags)})"
        return fn
    _kernel, _status = None, "compile failed (numpy fallback)"
    return None


def native_status() -> str:
    """Human-readable state of the native kernel (for diagnostics)."""
    return _status
