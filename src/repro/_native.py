"""Optional fused C kernel suite behind the packed uint64 substrate.

NumPy cannot fuse ``bitwise_and`` → ``bitwise_count`` → reduce into
one pass, so every pure-numpy word kernel materialises a
``words``-sized intermediate and pays extra memory sweeps where one
would do. This module compiles (once, lazily, with the system C
compiler) a small suite of fused loops and loads them through
:mod:`ctypes`:

* ``repro_class_supports_batch`` — the PR-4 scoring kernel::

      out[b][j] = sum_w popcount(words[j][w] & rows[b][w])

  behind :meth:`repro.bitmat.BitMatrix.class_supports_batch` (and,
  flattened over classes, :meth:`~repro.bitmat.BitMatrix.
  class_supports_multi`);

* ``repro_subset_mask`` — the enumeration closure/subset check::

      out[j] = all_w ((query[w] & ~words[j][w]) == 0)

  with early exit per row, behind
  :func:`repro.bitmat.superset_mask` and thus
  :meth:`repro.mining.tidsets.VerticalView.superset_positions` (the
  closed miner's closure primitive);

* ``repro_andnot_counts`` — the diffset recurrence join::

      out[j] = sum_w popcount(a[j][w] & ~b[j][w])

  behind :func:`repro.bitmat.andnot_counts`, which sizes the
  word-wise ``parent \\ child`` difference blocks of
  :class:`repro.mining.diffsets.PatternForest`.

Each call releases the GIL, so the kernels also scale on the
``threads`` backend. Everything here is best-effort: no compiler
(``CC=/bin/false`` is the CI leg for that), a sandboxed filesystem, a
failed compile, or ``REPRO_NATIVE=0`` all degrade silently to the
numpy paths. Results are bit-identical either way — every kernel
counts exact integers or compares exact words.

The shared object is cached under ``$REPRO_NATIVE_CACHE`` (default: a
per-user directory beneath the system temp dir), keyed by a hash of
the source, the compiler identity (``$CC`` and its version banner)
and flags, and published with an atomic rename so concurrent workers
never load a half-written library.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import stat
import subprocess
import sys
import tempfile
from typing import Optional

from .testing import faults

__all__ = ["KernelSuite", "load_kernel", "load_suite", "native_status"]

_SOURCE = r"""
#include <stdint.h>

/* Fused word kernels over packed little-endian uint64 record sets.
   The multi-array numpy pipelines are memory bound; each loop here
   reads every word once and keeps its accumulator in a register. */

#if defined(__GNUC__) || defined(__clang__)
#define POPCOUNT64 __builtin_popcountll
#else
static int POPCOUNT64(uint64_t x) {
    int count = 0;
    while (x) { x &= x - 1; ++count; }
    return count;
}
#endif

/* out[b][j] = sum_w popcount(words[j][w] & rows[b][w]) */
void repro_class_supports_batch(
    const uint64_t *words,   /* (n_rows, n_words), row-major */
    const uint64_t *rows,    /* (n_batch, n_words), row-major */
    int64_t *out,            /* (n_batch, n_rows), row-major */
    int64_t n_rows,
    int64_t n_words,
    int64_t n_batch)
{
    for (int64_t b = 0; b < n_batch; ++b) {
        const uint64_t *row = rows + b * n_words;
        int64_t *dst = out + b * n_rows;
        for (int64_t j = 0; j < n_rows; ++j) {
            const uint64_t *node = words + j * n_words;
            int64_t acc = 0;
            for (int64_t w = 0; w < n_words; ++w)
                acc += POPCOUNT64(node[w] & row[w]);
            dst[j] = acc;
        }
    }
}

/* out[j] = 1 iff query is a subset of words[j] (query & ~row == 0),
   early exit on the first uncovered word. */
void repro_subset_mask(
    const uint64_t *words,   /* (n_rows, n_words), row-major */
    const uint64_t *query,   /* (n_words,) */
    uint8_t *out,            /* (n_rows,) */
    int64_t n_rows,
    int64_t n_words)
{
    for (int64_t j = 0; j < n_rows; ++j) {
        const uint64_t *row = words + j * n_words;
        uint8_t covered = 1;
        for (int64_t w = 0; w < n_words; ++w) {
            if (query[w] & ~row[w]) { covered = 0; break; }
        }
        out[j] = covered;
    }
}

/* out[j] = sum_w popcount(a[j][w] & ~b[j][w]) — the diffset size of
   row pair j. */
void repro_andnot_counts(
    const uint64_t *a,       /* (n_rows, n_words), row-major */
    const uint64_t *b,       /* (n_rows, n_words), row-major */
    int64_t *out,            /* (n_rows,) */
    int64_t n_rows,
    int64_t n_words)
{
    for (int64_t j = 0; j < n_rows; ++j) {
        const uint64_t *pa = a + j * n_words;
        const uint64_t *pb = b + j * n_words;
        int64_t acc = 0;
        for (int64_t w = 0; w < n_words; ++w)
            acc += POPCOUNT64(pa[w] & ~pb[w]);
        out[j] = acc;
    }
}
"""

#: Flag sets tried in order; the first successful compile wins. The
#: -march=native build unlocks vectorised popcount (AVX-512 VPOPCNTQ
#: where available); the plain build is the portable fallback.
_FLAG_SETS = (
    ("-O3", "-march=native", "-funroll-loops"),
    ("-O3",),
)

_CACHE_ENV = "REPRO_NATIVE_CACHE"
_DISABLE_ENV = "REPRO_NATIVE"
_CC_ENV = "CC"

_UINT64_P = ctypes.POINTER(ctypes.c_uint64)
_INT64_P = ctypes.POINTER(ctypes.c_int64)
_UINT8_P = ctypes.POINTER(ctypes.c_uint8)

#: (symbol, argtypes) for every kernel the suite must export; a
#: library missing any of them is rejected as a whole.
_KERNEL_SIGNATURES = (
    ("repro_class_supports_batch",
     [_UINT64_P, _UINT64_P, _INT64_P,
      ctypes.c_int64, ctypes.c_int64, ctypes.c_int64]),
    ("repro_subset_mask",
     [_UINT64_P, _UINT64_P, _UINT8_P,
      ctypes.c_int64, ctypes.c_int64]),
    ("repro_andnot_counts",
     [_UINT64_P, _UINT64_P, _INT64_P,
      ctypes.c_int64, ctypes.c_int64]),
)


class KernelSuite:
    """The loaded native kernels, one attribute per C entry point.

    Attributes are ctypes functions with argtypes/restype set:
    ``class_supports_batch``, ``subset_mask``, ``andnot_counts``. The
    whole suite loads from one shared object — either every kernel is
    native or none is, so callers never mix generations.
    """

    __slots__ = ("class_supports_batch", "subset_mask", "andnot_counts",
                 "_handle")

    def __init__(self, handle: ctypes.CDLL) -> None:
        self._handle = handle
        for symbol, argtypes in _KERNEL_SIGNATURES:
            fn = getattr(handle, symbol)  # AttributeError -> rejected
            fn.restype = None
            fn.argtypes = argtypes
            setattr(self, symbol[len("repro_"):], fn)


# Memoised load result: "unset" -> not tried yet; None -> unavailable.
_kernel: object = "unset"
_status = "not loaded"

# Memoised compiler probe: "unset" -> not probed; None -> no usable
# compiler; str -> its identity banner (hashed into the cache tag so
# a compiler upgrade or a CC= switch never reuses a stale library).
_compiler: object = "unset"


def _cache_dir() -> Optional[str]:
    """A private, owned cache directory — or ``None`` to not cache.

    Loading a shared object executes its code, so the cache must not
    be hijackable: the directory is created ``0o700`` and rejected
    unless it is a directory owned by the current user and writable
    by nobody else (the default lives under the world-writable system
    temp dir, where any local user could otherwise pre-create the
    path and plant a library).
    """
    configured = os.environ.get(_CACHE_ENV)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    directory = configured or os.path.join(tempfile.gettempdir(),
                                           f"repro-native-{uid}")
    try:
        os.makedirs(directory, mode=0o700, exist_ok=True)
        # lstat + explicit symlink rejection: a pre-planted symlink at
        # the expected path would otherwise redirect the ownership
        # check, the chmod, and the compiler artifacts to its target.
        info = os.lstat(directory)
    except OSError:
        return None
    if stat.S_ISLNK(info.st_mode) or not stat.S_ISDIR(info.st_mode):
        return None
    if hasattr(os, "getuid") and info.st_uid != uid:
        return None
    if info.st_mode & (stat.S_IWGRP | stat.S_IWOTH):
        # Our own directory from an earlier version (or a permissive
        # umask): tighten it rather than losing the cache. Anything
        # still loose afterwards is rejected.
        try:
            os.chmod(directory, 0o700)
            info = os.stat(directory)
        except OSError:
            return None
        if info.st_mode & (stat.S_IWGRP | stat.S_IWOTH):
            return None
    return directory


def _compiler_command() -> str:
    """The C compiler to invoke (``$CC``, default ``cc``)."""
    return os.environ.get(_CC_ENV, "").strip() or "cc"


def _compiler_fingerprint() -> Optional[str]:
    """Identity banner of the configured compiler, or ``None``.

    Probed once per process. A missing or broken compiler (the
    ``CC=/bin/false`` CI leg) returns ``None``, which short-circuits
    every compile attempt — the numpy fallback engages without ever
    writing to the cache.
    """
    global _compiler
    if _compiler != "unset":
        return _compiler  # type: ignore[return-value]
    command = _compiler_command()
    try:
        probe = subprocess.run([command, "--version"],
                               capture_output=True, timeout=30)
    except Exception:
        _compiler = None
        return None
    if probe.returncode != 0 or not probe.stdout.strip():
        _compiler = None
        return None
    banner = probe.stdout.splitlines()[0].decode("utf-8", "replace")
    _compiler = f"{command} {banner}"
    return _compiler


def _compile(flags) -> Optional[str]:
    """Compile the suite with ``flags``; return the .so path or None.

    The object is written to a unique temp name and published with
    ``os.replace`` so a concurrent worker either sees the finished
    library or none at all — never a partial write. The cache tag
    hashes the compiler identity and the host identity alongside
    source and flags: ``-march=native`` output is CPU-specific (a
    library built on one machine must never be picked up on another
    through a shared cache directory — SIGILL at call time is
    uncatchable), and a compiler upgrade must rebuild.
    """
    if faults.should_fire("native-compile-failure"):
        # Chaos injection: behave exactly like a failed cc invocation
        # so the caller exercises the numpy-fallback path.
        return None
    compiler = _compiler_fingerprint()
    if compiler is None:
        return None
    tag = hashlib.sha256(
        (_SOURCE + " ".join(flags) + sys.version + compiler
         + platform.machine() + platform.node()).encode()
    ).hexdigest()[:16]
    directory = _cache_dir()
    if directory is None:
        return None
    library = os.path.join(directory, f"bitmat_{tag}.so")
    if os.path.exists(library):
        return library
    # Every attempt compiles from its own unique source and scratch
    # files (mkstemp): concurrent first-use compiles — thread workers,
    # process workers — must never write through each other's paths,
    # or a half-written .so could be published into the cache.
    source_fd, source_path = tempfile.mkstemp(
        dir=directory, prefix=f"bitmat_{tag}_", suffix=".c")
    scratch_fd, scratch = tempfile.mkstemp(
        dir=directory, prefix=f"bitmat_{tag}_", suffix=".so.tmp")
    os.close(scratch_fd)
    try:
        with os.fdopen(source_fd, "w") as handle:
            handle.write(_SOURCE)
        subprocess.run(
            [_compiler_command(), "-shared", "-fPIC", *flags,
             source_path, "-o", scratch],
            check=True, capture_output=True, timeout=120)
        os.replace(scratch, library)
        return library
    except Exception:
        try:
            os.unlink(scratch)
        except OSError:
            pass
        return None
    finally:
        try:
            os.unlink(source_path)
        except OSError:
            pass


def load_suite() -> Optional[KernelSuite]:
    """The loaded :class:`KernelSuite`, or ``None`` when unavailable.

    Lazy and memoised; safe to call from any thread or worker
    process (each process compiles at most once, against the shared
    on-disk cache). ``REPRO_NATIVE=0`` disables the whole suite.
    """
    global _kernel, _status
    if _kernel != "unset":
        return _kernel  # type: ignore[return-value]
    if os.environ.get(_DISABLE_ENV, "").strip() == "0":
        _kernel, _status = None, "disabled via REPRO_NATIVE=0"
        return None
    for flags in _FLAG_SETS:
        library = _compile(flags)
        if library is None:
            continue
        try:
            suite = KernelSuite(ctypes.CDLL(library))
        except (OSError, AttributeError):
            # Unloadable, or an older-generation library missing a
            # kernel (the tag hashes the source, so this only happens
            # on a corrupted cache) — try the next flag set.
            continue
        _kernel = suite
        _status = f"loaded ({' '.join(flags)})"
        return suite
    _kernel, _status = None, "compile failed (numpy fallback)"
    return None


def load_kernel():
    """The batched class-support kernel alone (compatibility entry).

    Historical name from the single-kernel era; equivalent to
    ``load_suite().class_supports_batch`` with the same ``None``
    fallback contract.
    """
    suite = load_suite()
    return None if suite is None else suite.class_supports_batch


def native_status() -> str:
    """Human-readable state of the native kernel suite (diagnostics)."""
    return _status
