"""Ranking rules by interestingness and comparing rankings.

The Tan et al. survey's central observation is that different measures
rank the same rules very differently; the practical question for a
miner is *which measures agree on my data*. These utilities score a
:class:`~repro.mining.rules.RuleSet` under any registered measure,
rank the rules, and quantify the agreement between two measures (or
between a measure and statistical significance) with Kendall's tau.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from scipy import stats as _scipy_stats

from ..errors import StatsError
from ..mining.rules import ClassRule, RuleSet
from .measures import ALL_MEASURES, ContingencyTable

__all__ = ["score_rules", "rank_rules", "top_k",
           "measure_agreement", "agreement_matrix"]


def _resolve(measure) -> Callable[[ContingencyTable], float]:
    if callable(measure):
        return measure
    try:
        return ALL_MEASURES[measure]
    except KeyError:
        raise StatsError(
            f"unknown measure {measure!r}; choose from "
            f"{sorted(ALL_MEASURES)} or pass a callable") from None


def score_rules(ruleset: RuleSet, measure) -> List[float]:
    """Score every rule under ``measure`` (name or callable), in rule
    order."""
    scorer = _resolve(measure)
    dataset = ruleset.dataset
    return [scorer(ContingencyTable.from_rule(rule, dataset))
            for rule in ruleset.rules]


def rank_rules(ruleset: RuleSet, measure,
               descending: bool = True) -> List[Tuple[ClassRule, float]]:
    """Rules paired with their scores, best first.

    ``descending=True`` suits "bigger is more interesting" measures
    (all of :data:`~repro.interest.measures.ALL_MEASURES`); pass
    ``False`` for cost-like scores.
    """
    scores = score_rules(ruleset, measure)
    pairs = list(zip(ruleset.rules, scores))
    pairs.sort(key=lambda pair: pair[1], reverse=descending)
    return pairs


def top_k(ruleset: RuleSet, measure, k: int,
          descending: bool = True) -> List[Tuple[ClassRule, float]]:
    """The ``k`` best rules under ``measure``."""
    if k < 0:
        raise StatsError(f"k must be non-negative, got {k}")
    return rank_rules(ruleset, measure, descending)[:k]


def measure_agreement(ruleset: RuleSet, measure_a, measure_b,
                      ) -> float:
    """Kendall's tau-b between two measures' rankings of the rules.

    1 means identical rankings, -1 exactly reversed, ~0 unrelated.
    Degenerate inputs (fewer than two rules, or a constant measure)
    return ``nan`` — scipy's convention, preserved deliberately so
    callers can distinguish "no signal" from "no agreement".
    """
    scores_a = score_rules(ruleset, measure_a)
    scores_b = score_rules(ruleset, measure_b)
    if len(scores_a) < 2:
        return float("nan")
    tau, _p = _scipy_stats.kendalltau(scores_a, scores_b)
    return float(tau)


def agreement_matrix(ruleset: RuleSet,
                     measures: Optional[Sequence[str]] = None,
                     ) -> Dict[Tuple[str, str], float]:
    """Pairwise Kendall tau over a set of measure names.

    Returns the upper triangle (including the diagonal) keyed by
    measure-name pairs; useful for reproducing the Tan et al. style
    measure-correlation analyses on a mined ruleset.
    """
    names = list(measures) if measures is not None else sorted(ALL_MEASURES)
    scored = {name: score_rules(ruleset, name) for name in names}
    out: Dict[Tuple[str, str], float] = {}
    for i, name_a in enumerate(names):
        for name_b in names[i:]:
            if name_a == name_b:
                out[(name_a, name_b)] = 1.0
                continue
            if len(scored[name_a]) < 2:
                out[(name_a, name_b)] = float("nan")
                continue
            tau, _p = _scipy_stats.kendalltau(scored[name_a],
                                              scored[name_b])
            out[(name_a, name_b)] = float(tau)
    return out
