"""Objective interestingness measures for class association rules.

Section 2.3 of the paper argues that *statistical* significance
(p-values) and *domain* significance (confidence and its relatives)
answer different questions and should be used together; Section 6
points to the Tan/Kumar/Srivastava (SIGKDD 2002) and Geng/Hamilton
(ACM Computing Surveys 2006) catalogues of such measures. This module
implements the standard catalogue over the rule's 2x2 contingency
table so users can cross-filter rules on both axes (the
``significance_vs_interestingness`` example does exactly that).

All measures are pure functions of a :class:`ContingencyTable`. Using
the paper's notation — ``n`` records, ``n_c = supp(c)``,
``supp(X)`` coverage, ``supp(R)`` rule support — the table is::

                c        not-c
    X        a=supp(R)  b=supp(X)-supp(R)   | supp(X)
    not-X    c_=n_c-a   d=n-supp(X)-c_      | n-supp(X)
             n_c        n-n_c               | n

Conventions: measures that are undefined on degenerate margins (empty
antecedent, empty class) raise :class:`~repro.errors.StatsError` from
the table constructor; measures with removable singularities (e.g.
conviction at confidence 1) return ``math.inf`` explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import StatsError

__all__ = [
    "ContingencyTable",
    "support_fraction",
    "confidence",
    "lift",
    "leverage",
    "conviction",
    "cosine",
    "jaccard",
    "kappa",
    "odds_ratio",
    "yules_q",
    "yules_y",
    "certainty_factor",
    "added_value",
    "mutual_information",
    "gini_gain",
    "laplace_accuracy",
    "piatetsky_shapiro",
    "ALL_MEASURES",
]


@dataclass(frozen=True)
class ContingencyTable:
    """The 2x2 table of one rule ``X => c``, in rule-mining coordinates.

    Parameters
    ----------
    support:
        ``supp(R)`` — records containing ``X`` with class ``c``.
    coverage:
        ``supp(X)`` — records containing ``X``.
    class_support:
        ``n_c`` — records of class ``c``.
    n:
        Total records.
    """

    support: int
    coverage: int
    class_support: int
    n: int

    def __post_init__(self) -> None:
        a, b, c, d = self.cells
        if self.n <= 0:
            raise StatsError("contingency table needs n > 0")
        if self.coverage <= 0:
            raise StatsError("rule antecedent covers no records")
        if not 0 < self.class_support < self.n:
            raise StatsError(
                f"class support {self.class_support} must be strictly "
                f"between 0 and n={self.n} for association to be defined")
        if min(a, b, c, d) < 0:
            raise StatsError(
                f"inconsistent rule counts: cells ({a}, {b}, {c}, {d})")

    @property
    def cells(self) -> tuple:
        """The four cells ``(a, b, c, d)`` row-major."""
        a = self.support
        b = self.coverage - self.support
        c = self.class_support - self.support
        d = self.n - self.coverage - c
        return a, b, c, d

    @classmethod
    def from_rule(cls, rule, dataset) -> "ContingencyTable":
        """Build the table of a scored rule on its dataset."""
        return cls(support=rule.support, coverage=rule.coverage,
                   class_support=dataset.class_support(rule.class_index),
                   n=dataset.n_records)


def support_fraction(table: ContingencyTable) -> float:
    """``supp(R) / n`` — the rule's relative support, in [0, 1]."""
    return table.support / table.n


def confidence(table: ContingencyTable) -> float:
    """``supp(R) / supp(X)`` — the paper's domain-significance measure."""
    return table.support / table.coverage


def lift(table: ContingencyTable) -> float:
    """Confidence over the class prior; 1 means independence.

    ``lift > 1`` iff the rule is positively associated, and iff
    :func:`leverage` is positive — the standard sanity identity the
    property tests pin down.
    """
    prior = table.class_support / table.n
    return confidence(table) / prior


def leverage(table: ContingencyTable) -> float:
    """``P(X, c) - P(X) P(c)`` (Piatetsky-Shapiro); 0 at independence."""
    n = table.n
    return (table.support / n
            - (table.coverage / n) * (table.class_support / n))


#: Alias under the measure's original name.
piatetsky_shapiro = leverage


def conviction(table: ContingencyTable) -> float:
    """``P(X) P(not-c) / P(X, not-c)``; inf at confidence 1.

    Unlike lift, conviction is sensitive to rule direction; at
    independence it equals 1.
    """
    not_c = 1.0 - table.class_support / table.n
    violation = 1.0 - confidence(table)
    if violation <= 0.0:
        return math.inf
    return not_c / violation


def cosine(table: ContingencyTable) -> float:
    """``P(X, c) / sqrt(P(X) P(c))`` — the IS measure, in (0, 1]."""
    n = table.n
    return (table.support / n) / math.sqrt(
        (table.coverage / n) * (table.class_support / n))


def jaccard(table: ContingencyTable) -> float:
    """``supp(R) / (supp(X) + n_c - supp(R))`` — set overlap, in
    [0, 1]."""
    denominator = table.coverage + table.class_support - table.support
    return table.support / denominator


def kappa(table: ContingencyTable) -> float:
    """Cohen's kappa: chance-corrected agreement between X and c.

    Zero at independence, 1 when ``X`` and ``c`` coincide, negative
    when they disagree more than chance.
    """
    a, b, c, d = table.cells
    n = table.n
    observed = (a + d) / n
    expected = ((table.coverage / n) * (table.class_support / n)
                + ((n - table.coverage) / n)
                * ((n - table.class_support) / n))
    if expected >= 1.0:
        return 0.0
    return (observed - expected) / (1.0 - expected)


def odds_ratio(table: ContingencyTable) -> float:
    """``(a d) / (b c)``; inf when an off-diagonal cell is empty."""
    a, b, c, d = table.cells
    if b * c == 0:
        return math.inf if a * d > 0 else 1.0
    return (a * d) / (b * c)


def yules_q(table: ContingencyTable) -> float:
    """Yule's Q: ``(ad - bc) / (ad + bc)``, the odds ratio mapped to
    [-1, 1]."""
    a, b, c, d = table.cells
    ad, bc = a * d, b * c
    if ad + bc == 0:
        return 0.0
    return (ad - bc) / (ad + bc)


def yules_y(table: ContingencyTable) -> float:
    """Yule's Y (coefficient of colligation), also in [-1, 1]."""
    a, b, c, d = table.cells
    sqrt_ad, sqrt_bc = math.sqrt(a * d), math.sqrt(b * c)
    if sqrt_ad + sqrt_bc == 0:
        return 0.0
    return (sqrt_ad - sqrt_bc) / (sqrt_ad + sqrt_bc)


def certainty_factor(table: ContingencyTable) -> float:
    """Shortliffe's certainty factor, in [-1, 1]; 0 at independence.

    Positive direction: ``(conf - prior) / (1 - prior)``; negative
    direction normalised by the prior instead.
    """
    prior = table.class_support / table.n
    conf = confidence(table)
    if conf >= prior:
        if prior >= 1.0:
            return 0.0
        return (conf - prior) / (1.0 - prior)
    return (conf - prior) / prior


def added_value(table: ContingencyTable) -> float:
    """``conf(R) - P(c)`` — the raw confidence gain over the prior."""
    return confidence(table) - table.class_support / table.n


def mutual_information(table: ContingencyTable) -> float:
    """Mutual information (nats) between the X-indicator and the
    c-indicator.

    Always non-negative; 0 exactly at independence. Cells with zero
    count contribute zero (the ``x log x -> 0`` limit).
    """
    a, b, c, d = table.cells
    n = table.n
    row = (table.coverage / n, (n - table.coverage) / n)
    col = (table.class_support / n, (n - table.class_support) / n)
    joint = ((a / n, b / n), (c / n, d / n))
    total = 0.0
    for i in range(2):
        for j in range(2):
            p = joint[i][j]
            if p > 0.0:
                total += p * math.log(p / (row[i] * col[j]))
    return max(0.0, total)


def gini_gain(table: ContingencyTable) -> float:
    """Reduction of the class Gini index after splitting on X.

    Non-negative; 0 at independence. A decision-tree-style measure
    included in the Tan et al. catalogue.
    """
    a, b, c, d = table.cells
    n = table.n

    def gini(positive: int, total: int) -> float:
        if total == 0:
            return 0.0
        p = positive / total
        return 1.0 - p * p - (1.0 - p) * (1.0 - p)

    before = gini(table.class_support, n)
    after = (table.coverage / n) * gini(a, table.coverage) \
        + ((n - table.coverage) / n) * gini(c, n - table.coverage)
    return max(0.0, before - after)


def laplace_accuracy(table: ContingencyTable, k: int = 2) -> float:
    """Laplace-corrected confidence ``(supp(R) + 1) / (supp(X) + k)``.

    The smoothing pulls low-coverage rules toward ``1/k`` — a purely
    heuristic guard against the same artefact the paper handles
    rigorously with p-values (tiny coverage, perfect confidence).
    """
    if k < 1:
        raise StatsError(f"k must be >= 1, got {k}")
    return (table.support + 1) / (table.coverage + k)


#: Name -> callable registry of every parameter-free measure, used by
#: the ranking utilities and the CLI.
ALL_MEASURES = {
    "support": support_fraction,
    "confidence": confidence,
    "lift": lift,
    "leverage": leverage,
    "conviction": conviction,
    "cosine": cosine,
    "jaccard": jaccard,
    "kappa": kappa,
    "odds_ratio": odds_ratio,
    "yules_q": yules_q,
    "yules_y": yules_y,
    "certainty_factor": certainty_factor,
    "added_value": added_value,
    "mutual_information": mutual_information,
    "gini_gain": gini_gain,
    "laplace": laplace_accuracy,
}
