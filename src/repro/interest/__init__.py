"""Objective interestingness measures (Section 2.3 / Section 6 context).

Domain-significance measures to be used *alongside* the statistical
machinery, per the paper's recommendation that "statistical
significance measures and domain significance measures should be used
together".
"""

from .measures import (
    ALL_MEASURES,
    ContingencyTable,
    added_value,
    certainty_factor,
    confidence,
    conviction,
    cosine,
    gini_gain,
    jaccard,
    kappa,
    laplace_accuracy,
    leverage,
    lift,
    mutual_information,
    odds_ratio,
    piatetsky_shapiro,
    support_fraction,
    yules_q,
    yules_y,
)
from .ranking import (
    agreement_matrix,
    measure_agreement,
    rank_rules,
    score_rules,
    top_k,
)

__all__ = [
    "ALL_MEASURES",
    "ContingencyTable",
    "added_value",
    "certainty_factor",
    "confidence",
    "conviction",
    "cosine",
    "gini_gain",
    "jaccard",
    "kappa",
    "laplace_accuracy",
    "leverage",
    "lift",
    "mutual_information",
    "odds_ratio",
    "piatetsky_shapiro",
    "support_fraction",
    "yules_q",
    "yules_y",
    "agreement_matrix",
    "measure_agreement",
    "rank_rules",
    "score_rules",
    "top_k",
]
