"""CPAR: Classification based on Predictive Association Rules (Yin &
Han, SDM 2003; the paper's ref [21]).

Where CBA and CMAR *select* from exhaustively mined frequent rules,
CPAR *induces* its rules greedily, FOIL-style: one class at a time,
records of that class are the positive examples, everything else the
negatives, and a rule grows by repeatedly adding the item with the best
weighted FOIL gain. Two ideas keep the rule set small but expressive:

* **weighted covering** — a covered positive example is not removed but
  down-weighted (by ``weight_decay``), so later rules can reuse it and
  several overlapping rules per region survive;
* **gain-tied branching** — when several items come within
  ``gain_similarity`` of the best gain, CPAR grows a rule through each
  (bounded here by ``max_branches``), harvesting the near-ties PRM
  would discard.

Prediction averages the Laplace accuracy of the best ``k_best``
matching rules per class and picks the class with the highest average.

Every induced rule is emitted as a standard
:class:`~repro.mining.rules.ClassRule` — with a genuine two-tailed
Fisher p-value — so the library's correction procedures and describe
machinery work on CPAR output unchanged. That is the bridge this
module exists for: it lets the ablation ask how many of a greedy
learner's rules would survive statistical control.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..data.dataset import Dataset
from ..errors import DataError
from ..mining.rules import ClassRule
from ..stats.fisher import fisher_two_tailed
from ..stats.logfact import LogFactorialBuffer
from ..tidvector import TidVector
from .base import Prediction, majority_class, rule_matches

__all__ = ["CPARClassifier", "InducedRuleSet", "foil_gain"]


def _direct_correction(name: str):
    """Resolve a direct-adjustment correction through the registry.

    Imported lazily: repro.corrections imports repro.mining, which this
    module's ClassRule import already pulls in — a module-scope import
    back into corrections would be cyclic through repro.classify.

    Only corrections flagged ``direct`` apply here: induced rules are
    a bare scored collection, so procedures needing the dataset, a
    permutation pass or a holdout split are rejected.
    """
    from ..corrections.registry import (
        available_corrections,
        resolve_correction,
    )
    from ..errors import CorrectionError

    try:
        resolved = resolve_correction(name)
    except CorrectionError as exc:
        raise DataError(str(exc)) from exc
    if not resolved.spec.direct:
        direct = sorted(spec.name for spec in available_corrections()
                        if spec.direct)
        raise DataError(
            f"correction {resolved.name!r} is not a direct adjustment; "
            f"choose from {direct}")
    return lambda ruleset, alpha: resolved.apply(ruleset, alpha)


def foil_gain(p0: float, n0: float, p1: float, n1: float) -> float:
    """Weighted FOIL gain of specializing a rule.

    ``p0``/``n0`` are the (weighted) positive and negative counts the
    current rule covers; ``p1``/``n1`` the counts after adding the
    candidate literal. Gain is ``p1 * (log(p1/(p1+n1)) -
    log(p0/(p0+n0)))``: the coverage kept, times the improvement in
    log-precision. Zero when nothing positive remains.
    """
    if p1 <= 0.0 or p0 <= 0.0:
        return 0.0
    # log(p/(p+n)) as a difference of logs: the ratio itself can
    # underflow to 0 when p is subnormal next to a large n.
    log_precision_1 = math.log(p1) - math.log(p1 + n1)
    log_precision_0 = math.log(p0) - math.log(p0 + n0)
    return p1 * (log_precision_1 - log_precision_0)


@dataclass(frozen=True)
class _RuleSeed:
    """A partial rule during greedy growth."""

    items: FrozenSet[int]
    covered: TidVector  # packed set of records satisfying the rule


@dataclass
class InducedRuleSet:
    """CPAR's induced rules as a correction-compatible rule set.

    Duck-type compatible with :class:`~repro.mining.rules.RuleSet` for
    every direct-adjustment correction (exposes ``rules``,
    ``p_values()`` and ``n_tests``), so Bonferroni/BH/Holm/... can ask
    how many of a greedy learner's rules are statistically defensible.
    """

    rules: List[ClassRule]

    @property
    def n_tests(self) -> int:
        """The multiple-testing denominator: one test per induced rule.
        """
        return len(self.rules)

    def p_values(self) -> List[float]:
        """P-values of all induced rules, in rule order."""
        return [rule.p_value for rule in self.rules]


class CPARClassifier:
    """Greedy FOIL-based associative classifier.

    Parameters
    ----------
    min_gain:
        Growth stops when no literal achieves this weighted gain.
    weight_decay:
        Multiplier applied to a positive example's weight each time a
        finished rule covers it (Yin & Han use 2/3).
    coverage_threshold:
        Rule induction for a class stops once the remaining total
        positive weight drops below this fraction of the initial
        weight.
    gain_similarity:
        Literals with gain within this fraction of the best are also
        expanded (CPAR's improvement over single-path PRM).
    max_branches:
        Bound on simultaneous near-tie expansions per growth step.
    k_best:
        Number of highest-Laplace-accuracy matching rules averaged per
        class at prediction time.
    max_rule_length:
        Hard cap on rule antecedent size.
    """

    def __init__(self, min_gain: float = 0.7,
                 weight_decay: float = 2.0 / 3.0,
                 coverage_threshold: float = 0.05,
                 gain_similarity: float = 0.01,
                 max_branches: int = 2,
                 k_best: int = 5,
                 max_rule_length: int = 5) -> None:
        if not 0.0 < weight_decay < 1.0:
            raise DataError("weight_decay must be in (0, 1)")
        if not 0.0 < coverage_threshold < 1.0:
            raise DataError("coverage_threshold must be in (0, 1)")
        if min_gain <= 0.0:
            raise DataError("min_gain must be positive")
        if max_branches < 1:
            raise DataError("max_branches must be >= 1")
        if k_best < 1:
            raise DataError("k_best must be >= 1")
        if max_rule_length < 1:
            raise DataError("max_rule_length must be >= 1")
        self.min_gain = min_gain
        self.weight_decay = weight_decay
        self.coverage_threshold = coverage_threshold
        self.gain_similarity = gain_similarity
        self.max_branches = max_branches
        self.k_best = k_best
        self.max_rule_length = max_rule_length
        self.rules: List[ClassRule] = []
        self.default_class: Optional[int] = None
        self._laplace: Dict[int, float] = {}
        self._n_classes: Optional[int] = None
        self._class_priors: List[float] = []

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def fit(self, dataset: Dataset) -> "CPARClassifier":
        """Induce predictive rules for every class of the dataset."""
        self._n_classes = dataset.n_classes
        self.default_class = majority_class(dataset)
        self._class_priors = [
            dataset.class_support(c) / dataset.n_records
            for c in range(dataset.n_classes)]
        buffer = LogFactorialBuffer(dataset.n_records + 1)
        rules: List[ClassRule] = []
        seen: set = set()
        for c in range(dataset.n_classes):
            for items in self._induce_class(dataset, c):
                key = (items, c)
                if key in seen:
                    continue
                seen.add(key)
                rules.append(self._score_rule(dataset, items, c,
                                              buffer))
        self.rules = rules
        self._laplace = {
            id(rule): self._laplace_accuracy(rule) for rule in rules
        }
        return self

    def _laplace_accuracy(self, rule: ClassRule) -> float:
        return (rule.support + 1) / (rule.coverage + self._n_classes)

    def _score_rule(self, dataset: Dataset, items: FrozenSet[int],
                    class_index: int,
                    buffer: LogFactorialBuffer) -> ClassRule:
        tidset = dataset.pattern_tidset(items)
        coverage = tidset.count()
        support = tidset.intersection_count(
            dataset.class_tidset(class_index))
        confidence = support / coverage if coverage else 0.0
        p_value = fisher_two_tailed(
            support, dataset.n_records,
            dataset.class_support(class_index), coverage,
            buffer=buffer) if coverage else 1.0
        return ClassRule(
            pattern_id=-1,  # induced, not from the pattern tree
            items=items,
            class_index=class_index,
            coverage=coverage,
            support=support,
            confidence=confidence,
            p_value=p_value,
        )

    def _induce_class(self, dataset: Dataset,
                      class_index: int) -> List[FrozenSet[int]]:
        """Weighted-covering loop producing antecedents for one class.
        """
        positives = dataset.class_tidset(class_index)
        universe = TidVector.universe(dataset.n_records)
        weights: Dict[int, float] = {
            int(r): 1.0 for r in positives.indices()}
        if not weights:
            return []
        initial_weight = float(len(weights))
        produced: List[FrozenSet[int]] = []
        guard = 0
        max_rules = 4 * dataset.n_items + 8
        while (sum(weights.values())
               > self.coverage_threshold * initial_weight
               and guard < max_rules):
            guard += 1
            grown = self._grow_rules(dataset, positives, universe,
                                     weights)
            if not grown:
                break
            progressed = False
            for items, covered in grown:
                if items in produced:
                    continue
                produced.append(items)
                for r in (covered & positives).indices():
                    if r in weights:
                        weights[r] *= self.weight_decay
                        progressed = True
            if not progressed:
                break
        return produced

    def _grow_rules(self, dataset: Dataset, positives: TidVector,
                    universe: TidVector, weights: Dict[int, float],
                    ) -> List[Tuple[FrozenSet[int], TidVector]]:
        """Grow one generation of rules, branching on near-tie gains."""
        finished: List[Tuple[FrozenSet[int], int]] = []
        frontier = [_RuleSeed(frozenset(), universe)]
        while frontier:
            seed = frontier.pop()
            expansions = self._best_literals(dataset, positives,
                                             weights, seed)
            if not expansions:
                if seed.items:
                    finished.append((seed.items, seed.covered))
                continue
            for item, covered in expansions:
                items = seed.items | {item}
                child = _RuleSeed(frozenset(items), covered)
                pure = covered.is_subset(positives)
                if len(items) >= self.max_rule_length or pure:
                    finished.append((child.items, child.covered))
                else:
                    frontier.append(child)
        return finished

    def _best_literals(self, dataset: Dataset, positives: TidVector,
                       weights: Dict[int, float], seed: _RuleSeed,
                       ) -> List[Tuple[int, TidVector]]:
        """Items whose gain is within ``gain_similarity`` of the best.
        """
        p0 = sum(weights[r]
                 for r in (seed.covered & positives).indices())
        n0 = seed.covered.andnot_count(positives)
        scored: List[Tuple[float, int, TidVector]] = []
        for item in range(dataset.n_items):
            if item in seed.items:
                continue
            covered = seed.covered & dataset.item_tidsets[item]
            if covered == seed.covered:
                continue  # adds no constraint
            p1 = sum(weights[r]
                     for r in (covered & positives).indices())
            if p1 == 0.0:
                continue
            n1 = covered.andnot_count(positives)
            gain = foil_gain(p0, n0, p1, n1)
            if gain >= self.min_gain:
                scored.append((gain, item, covered))
        if not scored:
            return []
        scored.sort(key=lambda t: (-t[0], t[1]))
        best_gain = scored[0][0]
        floor = best_gain * (1.0 - self.gain_similarity)
        chosen = [t for t in scored if t[0] >= floor]
        return [(item, covered)
                for __, item, covered in chosen[:self.max_branches]]

    # ------------------------------------------------------------------
    # statistical filtering
    # ------------------------------------------------------------------

    def induced_ruleset(self) -> InducedRuleSet:
        """The induced rules wrapped for the correction procedures."""
        if self.default_class is None:
            raise DataError("classifier is not fitted")
        return InducedRuleSet(list(self.rules))

    def filtered(self, correction: str = "bonferroni",
                 alpha: float = 0.05) -> "CPARClassifier":
        """A copy keeping only the statistically significant rules.

        ``correction`` is a direct-adjustment identifier (``none``,
        ``bonferroni``, ``holm``, ``hochberg``, ``sidak``, ``bh``,
        ``by``, ``storey``, ``bky``) applied over the induced rules'
        Fisher p-values; the multiplicity charged is the number of
        rules CPAR *emitted* — an honest accounting would also charge
        the rules the greedy search visited and discarded, which is
        unknowable, so treat the filter as a floor on stringency.
        """
        result = _direct_correction(correction)(
            self.induced_ruleset(), alpha)
        clone = CPARClassifier(
            min_gain=self.min_gain, weight_decay=self.weight_decay,
            coverage_threshold=self.coverage_threshold,
            gain_similarity=self.gain_similarity,
            max_branches=self.max_branches, k_best=self.k_best,
            max_rule_length=self.max_rule_length)
        clone.rules = list(result.significant)
        clone.default_class = self.default_class
        clone._n_classes = self._n_classes
        clone._class_priors = list(self._class_priors)
        clone._laplace = {
            id(rule): self._laplace[id(rule)] for rule in clone.rules
        }
        return clone

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def predict_itemset(self, items: FrozenSet[int]) -> Prediction:
        """Average-of-k-best Laplace accuracies, per class."""
        if self.default_class is None or self._n_classes is None:
            raise DataError("classifier is not fitted")
        per_class: Dict[int, List[float]] = {}
        best_rule: Dict[int, ClassRule] = {}
        for rule in self.rules:
            if not rule_matches(rule, items):
                continue
            accuracy = self._laplace[id(rule)]
            bucket = per_class.setdefault(rule.class_index, [])
            bucket.append(accuracy)
            incumbent = best_rule.get(rule.class_index)
            if incumbent is None \
                    or accuracy > self._laplace[id(incumbent)]:
                best_rule[rule.class_index] = rule
        if not per_class:
            return Prediction(self.default_class, None,
                              self._class_priors[self.default_class],
                              is_default=True)
        averages = {
            c: sum(sorted(scores, reverse=True)[:self.k_best])
            / min(len(scores), self.k_best)
            for c, scores in per_class.items()
        }
        winner = max(averages,
                     key=lambda c: (averages[c],
                                    self._class_priors[c], -c))
        return Prediction(winner, best_rule[winner], averages[winner],
                          is_default=False)

    def predict(self, item_sets: Sequence[FrozenSet[int]]) -> List[int]:
        """Predicted class indices for a batch of record item sets."""
        return [self.predict_itemset(items).class_index
                for items in item_sets]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_rules(self) -> int:
        """Number of induced rules."""
        return len(self.rules)

    def describe(self, dataset: Dataset, limit: int = 20) -> str:
        """Induced rules ordered by Laplace accuracy."""
        if self.default_class is None:
            return "CPARClassifier (not fitted)"
        lines = [f"CPARClassifier: {self.n_rules} induced rules, "
                 f"default={dataset.class_names[self.default_class]}"]
        ranked = sorted(self.rules,
                        key=lambda r: -self._laplace[id(r)])
        for i, rule in enumerate(ranked[:limit], start=1):
            lines.append(f"  {i}. laplace="
                         f"{self._laplace[id(rule)]:.3f}  "
                         + rule.describe(dataset))
        if self.n_rules > limit:
            lines.append(f"  ... and {self.n_rules - limit} more")
        return "\n".join(lines)
