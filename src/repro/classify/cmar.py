"""CMAR-style voting classifier (Li, Han, Pei; ICDM 2001).

Where CBA fires a single best rule, CMAR lets *all* matching rules vote
and aggregates per class with a weighted chi-square score, which makes
the prediction robust to one over-confident rule. The ingredients:

* **database-coverage pruning with a cover threshold** ``delta``: rules
  are scanned in CBA precedence; each training record may be covered up
  to ``delta`` times before it stops attracting rules. ``delta=1``
  reduces to CBA's pruning; larger values keep a thicker rule blanket
  for voting.
* **weighted chi-square vote**: a matching rule contributes
  ``chi2^2 / max_chi2`` to its class, where ``chi2`` is the statistic of
  the rule's 2x2 table and ``max_chi2`` is the largest value the
  statistic could take with the table's margins fixed (perfect
  association). The ratio damps rules whose chi-square is large only
  because their margins are large.

The class with the highest vote wins; ties break to the class with the
larger training prior, then the smaller index.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from ..data.dataset import Dataset
from ..errors import DataError
from ..mining.rules import ClassRule, RuleSet
from ..stats.chi2 import chi2_statistic
from ..tidvector import TidVector
from .base import Prediction, majority_class, rule_matches
from .ranking import rank_rules

__all__ = ["CMARClassifier", "max_chi2"]


def max_chi2(coverage: int, n_c: int, n: int) -> float:
    """Largest chi-square a 2x2 rule table with these margins allows.

    With ``supp(X)`` and ``supp(c)`` fixed, the statistic is maximal
    when the overlap cell hits one of its Fréchet bounds:
    ``min(supp(X), supp(c))`` (perfect positive association) or
    ``max(0, supp(X) + supp(c) - n)`` (perfect negative association).
    The CMAR paper's formula considers only the positive end; we take
    the larger of the two so the ratio ``chi2 / max_chi2`` is a genuine
    [0, 1] normalization for every feasible table. Degenerate margins
    (empty or full rows or columns) admit no association and return 0.
    """
    if not 0 < coverage < n or not 0 < n_c < n:
        return 0.0
    e = (1.0 / (coverage * n_c)
         + 1.0 / (coverage * (n - n_c))
         + 1.0 / ((n - coverage) * n_c)
         + 1.0 / ((n - coverage) * (n - n_c)))
    expected = coverage * n_c / n
    positive = min(coverage, n_c) - expected
    negative = expected - max(0, coverage + n_c - n)
    deviation = max(positive, negative)
    return deviation * deviation * n * e


class CMARClassifier:
    """Multiple-rule weighted chi-square classifier.

    Parameters
    ----------
    delta:
        Cover threshold for pruning: each training record tolerates
        ``delta`` covering rules before it is retired. The CMAR paper
        uses 3 or 4; ``delta=1`` reproduces single-cover CBA pruning.
    order:
        Rule precedence used during pruning (``"cba"`` or
        ``"significance"``).
    """

    def __init__(self, delta: int = 3, order: str = "cba") -> None:
        if delta < 1:
            raise DataError(f"cover threshold delta must be >= 1, "
                            f"got {delta}")
        self.delta = delta
        self.order = order
        self.rules: List[ClassRule] = []
        self.default_class: Optional[int] = None
        self._n: Optional[int] = None
        self._class_supports: List[int] = []
        self._weights: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def fit(self, rule_set: RuleSet,
            rules: Optional[Sequence[ClassRule]] = None,
            ) -> "CMARClassifier":
        """Prune the rule base by delta-coverage and cache vote weights.

        ``rules`` defaults to the full rule set; pass a correction's
        ``significant`` list for a statistically filtered voter pool.
        """
        dataset = rule_set.dataset
        candidates = rank_rules(
            rule_set.rules if rules is None else rules, order=self.order)
        n = dataset.n_records
        cover_counts = [0] * n
        alive = TidVector.universe(n)
        kept: List[ClassRule] = []
        for rule in candidates:
            if not alive:
                break
            matched = dataset.pattern_tidset(rule.items) & alive
            if not matched.intersects(
                    dataset.class_tidset(rule.class_index)):
                continue
            kept.append(rule)
            retired = []
            for r in matched.indices():
                cover_counts[r] += 1
                if cover_counts[r] >= self.delta:
                    retired.append(int(r))
            if retired:
                alive = alive.without_indices(retired)
        self.rules = kept
        self.default_class = majority_class(dataset)
        self._n = n
        self._class_supports = [dataset.class_support(c)
                                for c in range(dataset.n_classes)]
        self._weights = {
            id(rule): self._vote_weight(rule) for rule in kept
        }
        return self

    def _vote_weight(self, rule: ClassRule) -> float:
        """CMAR's ``chi2^2 / max_chi2`` contribution of one rule."""
        n = self._n
        n_c = self._class_supports[rule.class_index]
        a = rule.support
        b = rule.coverage - rule.support
        c = n_c - rule.support
        d = n - n_c - b
        statistic = chi2_statistic(a, b, c, d)
        upper = max_chi2(rule.coverage, n_c, n)
        if upper <= 0.0:
            return 0.0
        return statistic * statistic / upper

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def predict_itemset(self, items: FrozenSet[int]) -> Prediction:
        """Classify one record by the weighted chi-square group vote."""
        if self.default_class is None or self._n is None:
            raise DataError("classifier is not fitted")
        votes: Dict[int, float] = {}
        best_rule: Dict[int, ClassRule] = {}
        for rule in self.rules:
            if not rule_matches(rule, items):
                continue
            weight = self._weights[id(rule)]
            votes[rule.class_index] = votes.get(rule.class_index, 0.0) \
                + weight
            incumbent = best_rule.get(rule.class_index)
            if incumbent is None or weight > self._weights[id(incumbent)]:
                best_rule[rule.class_index] = rule
        if not votes:
            prior = self._class_supports[self.default_class] / self._n
            return Prediction(self.default_class, None, prior,
                              is_default=True)
        winner = max(
            votes,
            key=lambda c: (votes[c], self._class_supports[c], -c))
        total = sum(votes.values())
        score = votes[winner] / total if total > 0 else 0.0
        return Prediction(winner, best_rule[winner], score,
                          is_default=False)

    def predict(self, item_sets: Sequence[FrozenSet[int]]) -> List[int]:
        """Predicted class indices for a batch of record item sets."""
        return [self.predict_itemset(items).class_index
                for items in item_sets]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_rules(self) -> int:
        """Number of rules surviving delta-coverage pruning."""
        return len(self.rules)

    def describe(self, dataset: Dataset, limit: int = 20) -> str:
        """Human-readable voter pool summary."""
        if self.default_class is None:
            return "CMARClassifier (not fitted)"
        lines = [f"CMARClassifier: {self.n_rules} rules (delta="
                 f"{self.delta}), default="
                 f"{dataset.class_names[self.default_class]}"]
        ranked = sorted(self.rules, key=lambda r: -self._weights[id(r)])
        for i, rule in enumerate(ranked[:limit], start=1):
            lines.append(f"  {i}. w={self._weights[id(rule)]:.3g}  "
                         + rule.describe(dataset))
        if self.n_rules > limit:
            lines.append(f"  ... and {self.n_rules - limit} more")
        return "\n".join(lines)
