"""Classifier evaluation: stratified cross-validation and the
correction-vs-accuracy harness.

The headline question this module answers is the one the paper's
Section 2 implies but never measures: *does statistical filtering of
the rule base cost predictive accuracy?* A correction procedure shrinks
the rule base; CBA then builds a shorter rule list whose residual
errors fall to the default class. The harness
:func:`compare_filtered_rule_bases` quantifies the trade across
corrections on the same folds, so differences are paired, not
confounded by fold noise.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import Dataset
from ..errors import EvaluationError
from ..mining.rules import mine_class_rules
from .base import record_item_sets
from .cba import CBAClassifier
from .cmar import CMARClassifier

__all__ = [
    "ConfusionMatrix",
    "CrossValidationResult",
    "FilteredBaseReport",
    "stratified_folds",
    "cross_validate",
    "significance_filtered_classifier",
    "compare_filtered_rule_bases",
]


@dataclass
class ConfusionMatrix:
    """Counts of (actual, predicted) class pairs.

    ``counts[actual][predicted]`` accumulates over however many test
    records were scored into this matrix.
    """

    class_names: List[str]
    counts: List[List[int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        k = len(self.class_names)
        if not self.counts:
            self.counts = [[0] * k for _ in range(k)]
        if len(self.counts) != k or any(len(row) != k
                                        for row in self.counts):
            raise EvaluationError("confusion matrix shape mismatch")

    def record(self, actual: int, predicted: int) -> None:
        """Tally one test record."""
        self.counts[actual][predicted] += 1

    @property
    def total(self) -> int:
        """Number of records tallied."""
        return sum(sum(row) for row in self.counts)

    @property
    def n_correct(self) -> int:
        """Number of records on the diagonal."""
        return sum(self.counts[i][i] for i in range(len(self.counts)))

    @property
    def accuracy(self) -> float:
        """Fraction correct (0 when the matrix is empty)."""
        total = self.total
        return self.n_correct / total if total else 0.0

    def describe(self) -> str:
        """Aligned actual-by-predicted table."""
        width = max(len(name) for name in self.class_names)
        width = max(width, 6)
        header = " " * (width + 2) + "  ".join(
            f"{name:>{width}}" for name in self.class_names)
        lines = [header]
        for i, name in enumerate(self.class_names):
            cells = "  ".join(f"{c:>{width}}" for c in self.counts[i])
            lines.append(f"{name:>{width}}  {cells}")
        lines.append(f"accuracy: {self.accuracy:.4f} "
                     f"({self.n_correct}/{self.total})")
        return "\n".join(lines)


@dataclass
class CrossValidationResult:
    """Per-fold accuracies plus the pooled confusion matrix."""

    fold_accuracies: List[float]
    confusion: ConfusionMatrix
    fold_rule_counts: List[int]

    @property
    def mean_accuracy(self) -> float:
        """Average accuracy over folds."""
        if not self.fold_accuracies:
            return 0.0
        return sum(self.fold_accuracies) / len(self.fold_accuracies)

    @property
    def std_accuracy(self) -> float:
        """Population standard deviation of fold accuracies."""
        k = len(self.fold_accuracies)
        if k < 2:
            return 0.0
        mean = self.mean_accuracy
        variance = sum((a - mean) ** 2 for a in self.fold_accuracies) / k
        return math.sqrt(variance)

    @property
    def mean_rule_count(self) -> float:
        """Average number of rules the per-fold classifiers kept."""
        if not self.fold_rule_counts:
            return 0.0
        return sum(self.fold_rule_counts) / len(self.fold_rule_counts)


@dataclass
class FilteredBaseReport:
    """One row of the correction-vs-accuracy comparison."""

    correction: str
    n_candidate_rules: int
    n_significant_rules: int
    n_classifier_rules: int
    training_accuracy: float
    cv: Optional[CrossValidationResult] = None

    def row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        out: Dict[str, object] = {
            "correction": self.correction,
            "candidates": self.n_candidate_rules,
            "significant": self.n_significant_rules,
            "classifier_rules": self.n_classifier_rules,
            "train_acc": round(self.training_accuracy, 4),
        }
        if self.cv is not None:
            out["cv_acc"] = round(self.cv.mean_accuracy, 4)
            out["cv_std"] = round(self.cv.std_accuracy, 4)
        return out


def stratified_folds(class_labels: Sequence[int], k: int,
                     rng=None) -> List[List[int]]:
    """Partition record ids into ``k`` folds with per-class balance.

    Each class's records are shuffled and dealt round-robin, so every
    fold's class mix tracks the full data's within one record per
    class. Folds partition ``range(len(class_labels))`` exactly.

    ``rng`` is a :class:`numpy.random.Generator` (``None`` uses
    ``numpy.random.default_rng(0)``), matching the determinism
    contract of the parallel subsystem. Passing a
    :class:`random.Random` is deprecated; the legacy Fisher–Yates
    shuffle is kept as a warning shim for one release.
    """
    if k < 2:
        raise EvaluationError(f"need at least 2 folds, got {k}")
    if k > len(class_labels):
        raise EvaluationError(
            f"{k} folds for only {len(class_labels)} records")
    if isinstance(rng, random.Random):
        warnings.warn(
            "stratified_folds(random.Random) is deprecated; pass a "
            "numpy.random.Generator (e.g. numpy.random.default_rng"
            "(seed)) for the engine-consistent shuffle",
            DeprecationWarning, stacklevel=2)
        shuffle = rng.shuffle
    else:
        generator = rng if rng is not None else np.random.default_rng(0)

        def shuffle(members: List[int]) -> None:
            order = generator.permutation(len(members))
            members[:] = [members[i] for i in order]
    by_class: Dict[int, List[int]] = {}
    for r, label in enumerate(class_labels):
        by_class.setdefault(label, []).append(r)
    folds: List[List[int]] = [[] for _ in range(k)]
    position = 0
    for label in sorted(by_class):
        members = by_class[label]
        shuffle(members)
        for r in members:
            folds[position % k].append(r)
            position += 1
    return folds


def cross_validate(
    dataset: Dataset,
    make_classifier: Callable[[Dataset], object],
    k: int = 5,
    seed: int = 0,
) -> CrossValidationResult:
    """Stratified k-fold cross-validation of an associative classifier.

    Parameters
    ----------
    make_classifier:
        Callable receiving the training :class:`Dataset` (sharing the
        full data's item catalog) and returning a fitted object with
        ``predict_itemset`` and ``n_rules``. See
        :func:`significance_filtered_classifier` for a ready factory.
    """
    rng = np.random.default_rng(seed)
    folds = stratified_folds(dataset.class_labels, k, rng)
    item_sets = record_item_sets(dataset)
    confusion = ConfusionMatrix(list(dataset.class_names))
    fold_accuracies: List[float] = []
    fold_rule_counts: List[int] = []
    for fold in folds:
        test_ids = set(fold)
        train_ids = [r for r in range(dataset.n_records)
                     if r not in test_ids]
        train = dataset.subset(train_ids, name=f"{dataset.name}[train]")
        classifier = make_classifier(train)
        correct = 0
        for r in fold:
            predicted = classifier.predict_itemset(
                item_sets[r]).class_index
            actual = dataset.class_labels[r]
            confusion.record(actual, predicted)
            if predicted == actual:
                correct += 1
        fold_accuracies.append(correct / len(fold) if fold else 0.0)
        fold_rule_counts.append(getattr(classifier, "n_rules", 0))
    return CrossValidationResult(fold_accuracies, confusion,
                                 fold_rule_counts)


def significance_filtered_classifier(
    dataset: Dataset,
    min_sup: int,
    correction: str = "bh",
    alpha: float = 0.05,
    classifier: str = "cba",
    min_conf: float = 0.0,
    max_length: Optional[int] = None,
    n_permutations: int = 200,
    seed: Optional[int] = None,
    delta: int = 3,
):
    """Mine, correct, and fit a classifier on the surviving rules.

    Returns the fitted classifier. ``correction="none"`` keeps every
    mined rule, reproducing plain CBA/CMAR; any other name from
    :data:`repro.core.CORRECTIONS` restricts the candidate pool to the
    rules that correction declares significant. With an empty surviving
    pool the classifier degenerates to the default class — that is the
    honest outcome of over-filtering, not an error.

    ``classifier="cpar"`` induces its own rules from the dataset (so
    ``min_sup``, ``min_conf``, ``max_length`` and the permutation
    knobs do not apply) and supports only the direct-adjustment
    correction names, applied post hoc over the induced rules' Fisher
    p-values.
    """
    fitted, _, _ = _mine_correct_fit(
        dataset, min_sup, correction, alpha, classifier, min_conf,
        max_length, n_permutations, seed, delta)
    return fitted


def _mine_correct_fit(dataset: Dataset, min_sup: int, correction: str,
                      alpha: float, classifier: str, min_conf: float,
                      max_length: Optional[int], n_permutations: int,
                      seed: Optional[int], delta: int = 3):
    """Shared pipeline: returns (classifier, n_candidates, n_significant).
    """
    # Imported here: repro.core imports corrections which import mining;
    # importing it at module scope would cycle through repro.classify
    # once the public API re-exports this factory.
    from ..core.miner import SignificantRuleMiner
    from ..corrections.registry import resolve_correction

    if classifier not in ("cba", "cmar", "cpar"):
        raise EvaluationError(f"unknown classifier {classifier!r}")
    # Canonicalise up front so aliases ("BH", "raw", ...) behave
    # exactly like their canonical names in the comparisons below —
    # but keep variant spellings ("HD_BC") intact: they bind context
    # overrides that the canonical name alone would lose.
    resolved = resolve_correction(correction)
    correction = correction if resolved.overrides else resolved.name
    if classifier == "cpar":
        # CPAR induces its own rules; the statistical filter applies
        # post hoc over the induced rules' Fisher p-values.
        from .cpar import CPARClassifier

        fitted = CPARClassifier().fit(dataset)
        n_candidates = fitted.n_rules
        if correction != "none":
            fitted = fitted.filtered(correction, alpha)
        return fitted, n_candidates, fitted.n_rules
    miner = SignificantRuleMiner(
        min_sup=min_sup, min_conf=min_conf, correction=correction,
        alpha=alpha, max_length=max_length,
        n_permutations=n_permutations, seed=seed)
    report = miner.mine(dataset)
    if report.ruleset is None:
        # Holdout corrections score on a half-dataset; rebuild rule
        # statistics on the full data so the classifier trains on
        # everything while keeping only the validated rule LHSs.
        ruleset = mine_class_rules(dataset, min_sup, min_conf=min_conf,
                                   max_length=max_length)
        validated = {(rule.items, rule.class_index)
                     for rule in report.significant}
        rules = [rule for rule in ruleset.rules
                 if (rule.items, rule.class_index) in validated]
    else:
        ruleset = report.ruleset
        rules = report.significant
    if classifier == "cba":
        fitted = CBAClassifier().fit(ruleset, rules=rules)
    else:
        fitted = CMARClassifier(delta=delta).fit(ruleset, rules=rules)
    return fitted, ruleset.n_tests, len(rules)


def compare_filtered_rule_bases(
    dataset: Dataset,
    min_sup: int,
    corrections: Sequence[str] = ("none", "bonferroni", "bh"),
    alpha: float = 0.05,
    classifier: str = "cba",
    k: Optional[int] = 5,
    seed: int = 0,
    n_permutations: int = 200,
    min_conf: float = 0.0,
    max_length: Optional[int] = None,
) -> List[FilteredBaseReport]:
    """Accuracy and rule-base size per correction, on shared folds.

    For each correction: mine + correct + fit on the full data (for the
    rule-count and training-accuracy columns), then — when ``k`` is not
    None — cross-validate the whole mine/correct/fit pipeline so the
    accuracy estimate is honest about selection effects.
    """
    item_sets = record_item_sets(dataset)
    labels = dataset.class_labels
    reports: List[FilteredBaseReport] = []
    for correction in corrections:
        fitted, n_candidates, n_significant = _mine_correct_fit(
            dataset, min_sup, correction, alpha, classifier, min_conf,
            max_length, n_permutations, seed)
        predictions = fitted.predict(item_sets)
        train_correct = sum(
            1 for predicted, actual in zip(predictions, labels)
            if predicted == actual)
        cv = None
        if k is not None:
            def factory(train: Dataset, _c: str = correction):
                return significance_filtered_classifier(
                    train, max(1, min_sup * (k - 1) // k),
                    correction=_c, alpha=alpha, classifier=classifier,
                    min_conf=min_conf, max_length=max_length,
                    n_permutations=n_permutations, seed=seed)
            cv = cross_validate(dataset, factory, k=k, seed=seed)
        reports.append(FilteredBaseReport(
            correction=correction,
            n_candidate_rules=n_candidates,
            n_significant_rules=n_significant,
            n_classifier_rules=fitted.n_rules,
            training_accuracy=train_correct / dataset.n_records,
            cv=cv,
        ))
    return reports
