"""Shared plumbing for associative classifiers.

A classifier consumes :class:`~repro.mining.rules.ClassRule` objects and
predicts the class of a *record item set*: the frozenset of catalog item
ids the record contains. Records of any :class:`~repro.data.dataset.
Dataset` sharing the training catalog can be converted with
:func:`record_item_sets`, which is what lets cross-validation reuse one
catalog across train/test splits (``Dataset.subset`` keeps the catalog).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from ..data.dataset import Dataset
from ..errors import DataError
from ..mining.rules import ClassRule
from ..tidvector import TidVector, as_tidvector

__all__ = ["Prediction", "record_item_sets", "rule_matches"]


@dataclass(frozen=True)
class Prediction:
    """Outcome of classifying one record.

    Attributes
    ----------
    class_index:
        The predicted class.
    rule:
        The rule that fired (CBA) or the highest-scoring rule of the
        winning class (CMAR); ``None`` when the default class was used.
    score:
        Method-specific confidence in the prediction: the firing rule's
        confidence for CBA, the winning class's normalized vote for
        CMAR, and the default-class training prior when no rule fired.
    is_default:
        True when no rule matched and the default class was returned.
    """

    class_index: int
    rule: Optional[ClassRule]
    score: float
    is_default: bool


def record_item_sets(dataset: Dataset) -> List[FrozenSet[int]]:
    """Materialize, per record, the frozenset of item ids it contains.

    The inverse of the dataset's columnar layout; classifiers match
    rule left-hand sides against these sets.
    """
    sets: List[set] = [set() for _ in range(dataset.n_records)]
    for item_id, tids in enumerate(dataset.item_tidsets):
        for r in tids.indices():
            sets[r].add(item_id)
    return [frozenset(s) for s in sets]


def rule_matches(rule: ClassRule, items: FrozenSet[int]) -> bool:
    """True when the rule's left-hand side is contained in the record."""
    return rule.items <= items


def majority_class(dataset: Dataset,
                   tidset: Optional[TidVector] = None) -> int:
    """Most frequent class among ``tidset`` records (whole data if None).

    ``tidset`` may be a packed :class:`~repro.tidvector.TidVector` or a
    bigint bitset (interop). Ties break toward the smaller class index
    so the choice is deterministic.
    """
    if dataset.n_records == 0:
        raise DataError("cannot take a majority over an empty dataset")
    if tidset is not None:
        tidset = as_tidvector(tidset, dataset.n_records)
    best_class = 0
    best_count = -1
    for c in range(dataset.n_classes):
        class_tids = dataset.class_tidset(c)
        count = (class_tids.count() if tidset is None
                 else class_tids.intersection_count(tidset))
        if count > best_count:
            best_count = count
            best_class = c
    return best_class
