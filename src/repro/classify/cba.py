"""CBA-style associative classifier (Liu, Hsu, Ma; SIGKDD 1998).

The classifier builder follows CBA-CB (the M1 variant):

1. rank the candidate rules by CBA precedence (or by significance when
   the rule base came out of a correction procedure);
2. walk the ranking; a rule is kept iff it correctly classifies at
   least one still-uncovered training record, and keeping it covers all
   the uncovered records it matches;
3. after each kept rule, record the default class (majority of the
   still-uncovered records) and the total number of training errors the
   classifier-so-far plus that default would make;
4. cut the list at the prefix with the fewest total errors.

Prediction fires the first (highest-precedence) kept rule whose
left-hand side the record contains, falling back to the default class.

Coverage bookkeeping is done on record-id bitsets, reusing the mining
substrate, so building a classifier costs one tidset intersection per
candidate rule.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..data.dataset import Dataset
from ..errors import DataError
from ..mining.rules import ClassRule, RuleSet
from ..tidvector import TidVector
from .base import Prediction, majority_class, rule_matches
from .ranking import rank_rules

__all__ = ["CBAClassifier"]


class CBAClassifier:
    """Ordered-rule-list classifier with database-coverage pruning.

    Parameters
    ----------
    order:
        Rule precedence used for pruning and prediction: ``"cba"``
        (default) or ``"significance"``.

    Attributes
    ----------
    rules:
        The kept rules, in firing order (available after :meth:`fit`).
    default_class:
        Class predicted when no rule matches.
    training_errors:
        Training errors of the final (pruned) classifier.
    """

    def __init__(self, order: str = "cba") -> None:
        self.order = order
        self.rules: List[ClassRule] = []
        self.default_class: Optional[int] = None
        self.training_errors: Optional[int] = None
        self._n_classes: Optional[int] = None
        self._default_score: float = 0.0

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------

    def fit(self, rule_set: RuleSet,
            rules: Optional[Sequence[ClassRule]] = None,
            ) -> "CBAClassifier":
        """Build the classifier from a mined rule set.

        Parameters
        ----------
        rule_set:
            The mining outcome; supplies the training dataset whose
            records drive coverage pruning.
        rules:
            Candidate rules to build from; defaults to every rule in
            ``rule_set``. Pass a correction's ``significant`` list to
            build a statistically filtered classifier.
        """
        dataset = rule_set.dataset
        candidates = rank_rules(
            rule_set.rules if rules is None else rules, order=self.order)
        self._n_classes = dataset.n_classes
        self._fit_ranked(dataset, candidates)
        return self

    def _fit_ranked(self, dataset: Dataset,
                    candidates: Iterable[ClassRule]) -> None:
        n = dataset.n_records
        uncovered = TidVector.universe(n)
        kept: List[ClassRule] = []
        # errors committed by kept rules on the records they covered
        committed_errors = 0
        # stage i = classifier (kept[:i], defaults[i]) making errors[i]
        defaults = [majority_class(dataset)]
        errors = [n - dataset.class_support(defaults[0])]
        for rule in candidates:
            if not uncovered:
                break
            matched = dataset.pattern_tidset(rule.items) & uncovered
            if not matched:
                continue
            correct = matched.intersection_count(
                dataset.class_tidset(rule.class_index))
            if correct == 0:
                continue
            kept.append(rule)
            committed_errors += matched.count() - correct
            uncovered = uncovered.andnot(matched)
            default = majority_class(dataset, uncovered) if uncovered \
                else majority_class(dataset)
            default_errors = (
                uncovered.count() -
                uncovered.intersection_count(
                    dataset.class_tidset(default)))
            defaults.append(default)
            errors.append(committed_errors + default_errors)
        best_stage = min(range(len(errors)), key=lambda i: (errors[i], i))
        self.rules = kept[:best_stage]
        self.default_class = defaults[best_stage]
        self.training_errors = errors[best_stage]
        self._default_score = dataset.class_support(self.default_class) / n

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def predict_itemset(self, items: FrozenSet[int]) -> Prediction:
        """Classify one record given as a frozenset of item ids."""
        if self.default_class is None:
            raise DataError("classifier is not fitted")
        for rule in self.rules:
            if rule_matches(rule, items):
                return Prediction(rule.class_index, rule, rule.confidence,
                                  is_default=False)
        return Prediction(self.default_class, None, self._default_score,
                          is_default=True)

    def predict(self, item_sets: Sequence[FrozenSet[int]]) -> List[int]:
        """Predicted class indices for a batch of record item sets."""
        return [self.predict_itemset(items).class_index
                for items in item_sets]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def n_rules(self) -> int:
        """Number of rules kept after coverage pruning."""
        return len(self.rules)

    def describe(self, dataset: Dataset, limit: int = 20) -> str:
        """Human-readable rule list with the default class appended."""
        if self.default_class is None:
            return "CBAClassifier (not fitted)"
        lines = [f"CBAClassifier: {self.n_rules} rules, "
                 f"default={dataset.class_names[self.default_class]}, "
                 f"training_errors={self.training_errors}"]
        for i, rule in enumerate(self.rules[:limit], start=1):
            lines.append(f"  {i}. {rule.describe(dataset)}")
        if self.n_rules > limit:
            lines.append(f"  ... and {self.n_rules - limit} more")
        return "\n".join(lines)
