"""Total orders on class association rules.

CBA's rule ranking (Liu/Hsu/Ma 1998) prefers higher confidence, then
higher support, then shorter left-hand sides; we append the pattern id
as a final tiebreak so the order is total and runs are reproducible.
The significance order ranks by p-value first, which is the natural
companion when the rule base was filtered by a correction procedure.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from ..mining.rules import ClassRule

__all__ = ["cba_sort_key", "significance_sort_key", "rank_rules"]


def cba_sort_key(rule: ClassRule) -> Tuple[float, int, int, int, int]:
    """Sort key realizing CBA's precedence (earlier = higher ranked)."""
    return (-rule.confidence, -rule.support, rule.length,
            rule.pattern_id, rule.class_index)


def significance_sort_key(rule: ClassRule) -> Tuple[float, float, int, int,
                                                    int]:
    """P-value-first precedence for significance-filtered rule bases."""
    return (rule.p_value, -rule.confidence, -rule.support,
            rule.pattern_id, rule.class_index)


def rank_rules(rules: Iterable[ClassRule],
               order: str = "cba") -> List[ClassRule]:
    """Return rules sorted by the requested precedence.

    Parameters
    ----------
    order:
        ``"cba"`` (confidence/support/brevity) or ``"significance"``
        (p-value first).
    """
    if order == "cba":
        return sorted(rules, key=cba_sort_key)
    if order == "significance":
        return sorted(rules, key=significance_sort_key)
    raise ValueError(f"unknown rule order {order!r}")
