"""Associative classification on class association rules.

The paper motivates class association rules by their success in
classification (Section 2, citing Liu/Hsu/Ma's CBA [11], Megiddo &
Srikant [13] and CPAR [21]). This subpackage closes that loop: it turns
a mined-and-corrected rule set into a working classifier, so the effect
of statistical filtering on *downstream predictive accuracy* can be
measured instead of argued.

Two classifiers are provided:

* :class:`~repro.classify.cba.CBAClassifier` — CBA-CB style: a total
  order on rules (confidence, support, brevity), database-coverage
  pruning, and a default class chosen to minimize training errors.
* :class:`~repro.classify.cmar.CMARClassifier` — CMAR style: multiple
  matching rules vote per class with a weighted chi-square score.
* :class:`~repro.classify.cpar.CPARClassifier` — CPAR style (ref
  [21]): rules induced greedily by weighted FOIL gain instead of
  selected from frequent patterns; prediction averages the best-k
  Laplace accuracies per class.

:mod:`~repro.classify.evaluate` adds stratified cross-validation and
the correction-vs-accuracy harness used by
``benchmarks/test_ablation_classifier.py``.
"""

from .base import Prediction, record_item_sets, rule_matches
from .cba import CBAClassifier
from .cmar import CMARClassifier
from .cpar import CPARClassifier, InducedRuleSet, foil_gain
from .evaluate import (
    ConfusionMatrix,
    CrossValidationResult,
    FilteredBaseReport,
    compare_filtered_rule_bases,
    cross_validate,
    significance_filtered_classifier,
    stratified_folds,
)
from .ranking import cba_sort_key, rank_rules, significance_sort_key

__all__ = [
    "Prediction",
    "record_item_sets",
    "rule_matches",
    "CBAClassifier",
    "CMARClassifier",
    "CPARClassifier",
    "InducedRuleSet",
    "foil_gain",
    "ConfusionMatrix",
    "CrossValidationResult",
    "FilteredBaseReport",
    "compare_filtered_rule_bases",
    "cross_validate",
    "significance_filtered_classifier",
    "stratified_folds",
    "cba_sort_key",
    "rank_rules",
    "significance_sort_key",
]
