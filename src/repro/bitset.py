"""Bigint bitset interop shim (DEPRECATED as a storage substrate).

Historically the library stored every tidset as an arbitrary-precision
Python ``int`` (record ``i`` present when bit ``i`` is set). The native
representation is now the packed uint64 :class:`repro.tidvector.
TidVector` end-to-end — ingest, mining, scoring, corrections and
classification all operate word-wise — and this module remains only
for two interop purposes:

* **plugin compatibility** — out-of-tree miners and corrections that
  still build bigint tidsets keep working: every mining entry path
  coerces through :func:`repro.tidvector.as_tidvector`, and
  :func:`popcount` / :func:`is_subset` accept either representation;
* **property-test oracles** — the test suite checks the word-wise
  kernels against these independent bigint implementations.

Do not introduce new bigint tidset call sites; use
:class:`~repro.tidvector.TidVector` (``TidVector.from_bigint`` /
``to_bigint`` convert losslessly, byte for byte).

All functions treat a bitset as immutable; operations return new ints.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Iterable, Iterator, List, Sequence

__all__ = [
    "warn_if_unsanctioned_import",
    "bitset_from_indices",
    "bitset_to_indices",
    "iter_indices",
    "popcount",
    "universe",
    "complement",
    "is_subset",
    "to_uint64_words",
    "from_uint64_words",
]

#: Filename suffixes sanctioned to import this shim: the TidVector
#: bridge, the Diffsets miner's bigint interop, and the test-suite
#: oracles (mirrors the ``bitset-quarantine`` lint rule's whitelist).
_SANCTIONED_SUFFIXES = (
    "repro/bitmat.py",
    "repro/mining/diffsets.py",
)
_SANCTIONED_COMPONENTS = ("tests", "benchmarks")


def warn_if_unsanctioned_import() -> None:
    """Emit a DeprecationWarning when a non-whitelisted module imports us.

    Walks past the import machinery to the frame that triggered the
    import; files outside the quarantine whitelist (``bitmat.py``,
    ``diffsets.py``, tests, benchmarks) get a warning pointing at
    :class:`repro.tidvector.TidVector`. Interactive / frozen importers
    with no resolvable filename are left alone.
    """
    frame = inspect.currentframe()
    try:
        caller = frame.f_back if frame is not None else None
        while caller is not None:
            filename = caller.f_code.co_filename.replace("\\", "/")
            in_machinery = ("importlib" in filename
                            or filename.startswith("<frozen")
                            or filename.endswith("repro/bitset.py"))
            if not in_machinery:
                break
            caller = caller.f_back
        if caller is None:
            return
        filename = caller.f_code.co_filename.replace("\\", "/")
        if filename.startswith("<"):
            return  # REPL / exec'd source: not a quarantine target
        if any(filename.endswith(sfx) for sfx in _SANCTIONED_SUFFIXES):
            return
        parts = filename.split("/")
        if any(comp in parts for comp in _SANCTIONED_COMPONENTS):
            return
        warnings.warn(
            f"repro.bitset is a deprecated interop shim (imported from "
            f"{filename}); use repro.tidvector.TidVector for record "
            f"sets — see docs/static-analysis.md (bitset-quarantine)",
            DeprecationWarning, stacklevel=3)
    finally:
        del frame


warn_if_unsanctioned_import()


def popcount(bits) -> int:
    """Return the number of set bits (the cardinality of the set).

    Accepts a bigint or a :class:`~repro.tidvector.TidVector` (both
    expose ``bit_count``), so interop call sites need no dispatch.
    """
    return bits.bit_count()


if not hasattr(int, "bit_count"):  # pragma: no cover - Python < 3.10 fallback

    def popcount(bits) -> int:  # noqa: F811
        """Return the number of set bits (the cardinality of the set)."""
        if hasattr(bits, "bit_count"):
            return bits.bit_count()
        return bin(bits).count("1")


def bitset_from_indices(indices: Iterable[int], n: int | None = None) -> int:
    """Build a bitset from an iterable of record ids.

    ``n`` is accepted for symmetry with fixed-width representations and
    used only to validate that indices are in range when provided.
    """
    bits = 0
    if n is None:
        for i in indices:
            bits |= 1 << i
        return bits
    for i in indices:
        if i < 0 or i >= n:
            raise ValueError(f"record id {i} out of range [0, {n})")
        bits |= 1 << i
    return bits


def iter_indices(bits) -> Iterator[int]:
    """Yield the indices of set bits in ascending order.

    Uses the lowest-set-bit trick: ``bits & -bits`` isolates the lowest
    set bit, whose position is recovered via ``bit_length``. A
    :class:`~repro.tidvector.TidVector` argument delegates to its own
    (vectorized) enumeration.
    """
    if hasattr(bits, "iter_indices"):
        yield from bits.iter_indices()
        return
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def bitset_to_indices(bits: int) -> List[int]:
    """Return the sorted list of indices of set bits."""
    return list(iter_indices(bits))


def universe(n: int) -> int:
    """Return the bitset containing every record id in ``[0, n)``."""
    if n < 0:
        raise ValueError("universe size must be non-negative")
    return (1 << n) - 1


def complement(bits: int, n: int) -> int:
    """Return the complement of ``bits`` within a universe of size ``n``."""
    return universe(n) & ~bits


def is_subset(a, b) -> bool:
    """Return True when every bit of ``a`` is also set in ``b``.

    Either argument may be a bigint or a
    :class:`~repro.tidvector.TidVector`.
    """
    if hasattr(a, "is_subset"):
        return a.is_subset(b)
    if hasattr(b, "to_bigint"):
        b = b.to_bigint()
    return a & ~b == 0


def bitset_from_bool_sequence(flags: Sequence[bool]) -> int:
    """Build a bitset where bit ``i`` is set iff ``flags[i]`` is truthy."""
    bits = 0
    for i, flag in enumerate(flags):
        if flag:
            bits |= 1 << i
    return bits


def to_numpy_indices(bits: int, n: int):
    """Vectorized ``bitset_to_indices``: int32 array of set-bit positions.

    Goes through the little-endian byte representation and
    ``numpy.unpackbits`` so large tidsets convert without a Python-level
    loop per bit.
    """
    import numpy as np

    if bits == 0:
        return np.empty(0, dtype=np.int32)
    raw = bits.to_bytes((n + 7) // 8, "little")
    flags = np.unpackbits(np.frombuffer(raw, dtype=np.uint8),
                          bitorder="little")[:n]
    return np.nonzero(flags)[0].astype(np.int32)


def from_numpy_bool(flags) -> int:
    """Vectorized ``bitset_from_bool_sequence`` for a numpy bool array."""
    import numpy as np

    packed = np.packbits(np.asarray(flags, dtype=bool), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def to_uint64_words(bits: int, n: int):
    """Pack a bigint bitset into a ``ceil(n / 64)`` uint64 word array.

    Little-endian within and across words: record ``i`` is bit
    ``i % 64`` of word ``i // 64`` — the layout
    :class:`repro.bitmat.BitMatrix` counts with, so word-packed and
    bigint representations describe identical sets byte for byte.
    """
    import numpy as np

    n_words = (n + 63) // 64
    if bits < 0:
        raise ValueError("bitsets are non-negative")
    if bits >> n:
        # Catches records in [n, n_words * 64) too, which the
        # to_bytes overflow below would let through when n is not a
        # multiple of 64.
        raise ValueError(f"bitset references records >= {n}")
    raw = int(bits).to_bytes(n_words * 8, "little")
    words = np.frombuffer(raw, dtype=np.dtype("<u8"))
    return words.astype(np.uint64, copy=False)


def from_uint64_words(words) -> int:
    """Rebuild the bigint bitset from a uint64 word array.

    Inverse of :func:`to_uint64_words` (trailing zero words are
    harmless — the bigint simply has no bits there).
    """
    import numpy as np

    raw = (np.ascontiguousarray(words)
           .astype(np.dtype("<u8"), copy=False).tobytes())
    return int.from_bytes(raw, "little")
