"""Core public API: mine, score, and statistically filter class rules.

:class:`SignificantRuleMiner` configures the full Section 3 + 4
pipeline behind one object; :func:`mine_significant_rules` is its
one-call wrapper and :data:`CORRECTIONS` enumerates every correction
identifier the pipeline accepts.
"""

from .miner import (
    CORRECTIONS,
    MiningReport,
    SignificantRuleMiner,
    mine_significant_rules,
)

__all__ = [
    "CORRECTIONS",
    "MiningReport",
    "SignificantRuleMiner",
    "mine_significant_rules",
]
