"""Core public API: mine, score, and statistically filter class rules.

:class:`Pipeline` is the composable Mine → Reduce → Score → Correct
pipeline (several corrections per mining pass, shared permutation and
holdout state); :class:`SignificantRuleMiner` configures a
single-correction run behind one object; :func:`mine_significant_rules`
is its one-call wrapper and :data:`CORRECTIONS` is a live view of the
correction registry (canonical name → Table 3 abbreviation).
"""

from .miner import (
    CORRECTIONS,
    MiningReport,
    SignificantRuleMiner,
    mine_significant_rules,
)
from .pipeline import (
    CorrectStage,
    MineStage,
    Pipeline,
    PipelineContext,
    PipelineResult,
    PipelineState,
    ReduceStage,
    ScoreStage,
)

__all__ = [
    "CORRECTIONS",
    "CorrectStage",
    "MineStage",
    "MiningReport",
    "Pipeline",
    "PipelineContext",
    "PipelineResult",
    "PipelineState",
    "ReduceStage",
    "ScoreStage",
    "SignificantRuleMiner",
    "mine_significant_rules",
]
