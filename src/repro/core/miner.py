"""The high-level public API: statistically sound rule mining.

:class:`SignificantRuleMiner` ties the whole paper together: mine
closed frequent patterns, score one hypothesis per rule with Fisher's
exact test, and control false positives with the multiple-testing
correction of your choice. :func:`mine_significant_rules` is the
one-call convenience wrapper.

Example
-------
>>> from repro import mine_significant_rules
>>> from repro.data import make_german
>>> report = mine_significant_rules(make_german(), min_sup=60,
...                                 correction="bh", alpha=0.05)
>>> print(report.summary())            # doctest: +SKIP
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..corrections.base import CorrectionResult
from ..corrections.direct import (
    benjamini_hochberg,
    bonferroni,
    no_correction,
)
from ..corrections.by import benjamini_yekutieli
from ..corrections.holdout import holdout
from ..corrections.lamp import lamp_bonferroni
from ..corrections.layered import layered_critical_values
from ..corrections.permutation import PermutationEngine
from ..corrections.stepwise import hochberg, holm, sidak
from ..corrections.storey import storey_fdr, two_stage_bh
from ..corrections.weighted import weighted_bh, weighted_bonferroni
from ..data.dataset import Dataset
from ..errors import CorrectionError
from ..mining.representative import mine_representative_rules
from ..mining.rules import ClassRule, RuleSet, mine_class_rules

__all__ = ["SignificantRuleMiner", "MiningReport",
           "mine_significant_rules", "CORRECTIONS"]

#: Correction identifiers accepted by the public API, with the Table 3
#: abbreviation each maps to.
CORRECTIONS: Dict[str, str] = {
    "none": "No correction",
    "bonferroni": "BC",
    "holm": "Holm",
    "hochberg": "Hochberg",
    "sidak": "Sidak",
    "weighted-bonferroni": "wBC",
    "bh": "BH",
    "by": "BY",
    "storey": "Storey",
    "bky": "BKY",
    "weighted-bh": "wBH",
    "lamp": "LAMP",
    "permutation-fwer": "Perm_FWER",
    "permutation-fwer-stepdown": "Perm_FWER_SD",
    "permutation-fdr": "Perm_FDR",
    "holdout-fwer": "HD_BC / RH_BC",
    "holdout-fdr": "HD_BH / RH_BH",
    "layered": "Layered",
}


@dataclass
class MiningReport:
    """What a mining run hands back to the caller.

    ``ruleset`` is the full scored rule population (``None`` for the
    holdout corrections, which never score the whole dataset — that is
    their point); ``result`` carries the significant rules and the
    decision threshold.
    """

    dataset: Dataset
    correction: str
    result: CorrectionResult
    ruleset: Optional[RuleSet] = field(default=None, repr=False)

    @property
    def significant(self) -> List[ClassRule]:
        """Rules declared statistically significant."""
        return self.result.significant

    @property
    def n_tested(self) -> int:
        """Hypotheses the correction accounted for (``Nt``)."""
        return self.result.n_tests

    def summary(self) -> str:
        """One-line outcome description."""
        return (f"{self.dataset.name}: {self.result.summary()} "
                f"[correction={self.correction}]")

    def describe(self, limit: int = 20) -> str:
        """Multi-line listing of the most significant rules."""
        ordered = sorted(self.significant, key=lambda r: r.p_value)
        lines = [self.summary()]
        for rule in ordered[:limit]:
            lines.append("  " + rule.describe(self.dataset))
        if len(ordered) > limit:
            lines.append(f"  ... and {len(ordered) - limit} more")
        return "\n".join(lines)


class SignificantRuleMiner:
    """Configurable pipeline: mine, score, correct.

    Parameters
    ----------
    min_sup:
        Minimum coverage of a rule's left-hand side.
    min_conf:
        Domain-significance filter (Section 2.3 recommends choosing it
        from domain knowledge, independent of the statistics).
    correction:
        One of :data:`CORRECTIONS`. The two permutation corrections
        accept ``n_permutations``; the holdout corrections accept
        ``holdout_split`` (``"structured"`` or ``"random"``) and use
        the paper's convention of halving ``min_sup`` on the
        exploratory half.
    alpha:
        Error budget: FWER or FDR level depending on the correction.
    scorer:
        ``"fisher"`` (default), ``"fisher-midp"`` or ``"chi2"``.
    redundancy_delta:
        When set, apply the Section 7 representative-pattern reduction
        before scoring: near-duplicate sub/super-pattern chains whose
        supports agree within a factor ``1 - delta`` are collapsed to
        one representative, shrinking the hypothesis count ``Nt``. Not
        available with the holdout corrections (they mine their own
        halves).
    """

    def __init__(self, min_sup: int, min_conf: float = 0.0,
                 correction: str = "bh", alpha: float = 0.05,
                 n_permutations: int = 1000,
                 holdout_split: str = "random",
                 max_length: Optional[int] = None,
                 scorer: str = "fisher",
                 seed: Optional[int] = None,
                 redundancy_delta: Optional[float] = None) -> None:
        if correction not in CORRECTIONS:
            raise CorrectionError(
                f"unknown correction {correction!r}; "
                f"choose from {sorted(CORRECTIONS)}")
        if (redundancy_delta is not None
                and correction in ("holdout-fwer", "holdout-fdr")):
            raise CorrectionError(
                "redundancy_delta is not supported with holdout "
                "corrections")
        self.min_sup = min_sup
        self.min_conf = min_conf
        self.correction = correction
        self.alpha = alpha
        self.n_permutations = n_permutations
        self.holdout_split = holdout_split
        self.max_length = max_length
        self.scorer = scorer
        self.seed = seed
        self.redundancy_delta = redundancy_delta

    def mine(self, dataset: Dataset) -> MiningReport:
        """Run the configured pipeline on one dataset."""
        if self.correction in ("holdout-fwer", "holdout-fdr"):
            control = ("fwer" if self.correction == "holdout-fwer"
                       else "fdr")
            result = holdout(
                dataset, self.min_sup, alpha=self.alpha, control=control,
                split=self.holdout_split, seed=self.seed,
                min_conf=self.min_conf, max_length=self.max_length,
                scorer=self.scorer)
            return MiningReport(dataset=dataset,
                                correction=self.correction,
                                result=result, ruleset=None)
        if self.redundancy_delta is not None:
            ruleset = mine_representative_rules(
                dataset, self.min_sup, delta=self.redundancy_delta,
                min_conf=self.min_conf, max_length=self.max_length,
                scorer=self.scorer)
        else:
            ruleset = mine_class_rules(
                dataset, self.min_sup, min_conf=self.min_conf,
                max_length=self.max_length, scorer=self.scorer)
        result = self._correct(ruleset)
        return MiningReport(dataset=dataset, correction=self.correction,
                            result=result, ruleset=ruleset)

    def _correct(self, ruleset: RuleSet) -> CorrectionResult:
        if self.correction == "none":
            return no_correction(ruleset, self.alpha)
        if self.correction == "bonferroni":
            return bonferroni(ruleset, self.alpha)
        if self.correction == "holm":
            return holm(ruleset, self.alpha)
        if self.correction == "hochberg":
            return hochberg(ruleset, self.alpha)
        if self.correction == "sidak":
            return sidak(ruleset, self.alpha)
        if self.correction == "weighted-bonferroni":
            return weighted_bonferroni(ruleset, self.alpha)
        if self.correction == "weighted-bh":
            return weighted_bh(ruleset, self.alpha)
        if self.correction == "bh":
            return benjamini_hochberg(ruleset, self.alpha)
        if self.correction == "by":
            return benjamini_yekutieli(ruleset, self.alpha)
        if self.correction == "storey":
            return storey_fdr(ruleset, self.alpha)
        if self.correction == "bky":
            return two_stage_bh(ruleset, self.alpha)
        if self.correction == "lamp":
            return lamp_bonferroni(ruleset, self.alpha)
        if self.correction == "layered":
            return layered_critical_values(ruleset, self.alpha)
        engine = PermutationEngine(
            ruleset, n_permutations=self.n_permutations, seed=self.seed)
        if self.correction == "permutation-fwer":
            return engine.fwer(self.alpha)
        if self.correction == "permutation-fwer-stepdown":
            return engine.fwer_stepdown(self.alpha)
        return engine.fdr(self.alpha)


def mine_significant_rules(dataset: Dataset, min_sup: int,
                           correction: str = "bh", alpha: float = 0.05,
                           **kwargs) -> MiningReport:
    """One-call pipeline; see :class:`SignificantRuleMiner`."""
    miner = SignificantRuleMiner(min_sup=min_sup, correction=correction,
                                 alpha=alpha, **kwargs)
    return miner.mine(dataset)
