"""The high-level public API: statistically sound rule mining.

:class:`SignificantRuleMiner` ties the whole paper together: mine
closed frequent patterns, score one hypothesis per rule with Fisher's
exact test, and control false positives with the multiple-testing
correction of your choice. :func:`mine_significant_rules` is the
one-call convenience wrapper. Both are thin layers over
:class:`~repro.core.pipeline.Pipeline` and the correction registry
(:mod:`repro.corrections.registry`) — use those directly to run
several corrections against one mining pass or to plug in your own
correction.

Example
-------
>>> from repro import mine_significant_rules
>>> from repro.data import make_german
>>> report = mine_significant_rules(make_german(), min_sup=60,
...                                 correction="bh", alpha=0.05)
>>> print(report.summary())            # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from ..corrections.base import CorrectionResult
from ..corrections.registry import CorrectionsView, resolve_correction
from ..data.dataset import Dataset
from ..errors import CorrectionError
from ..mining.diffsets import DEFAULT_POLICY
from ..mining.rules import ClassRule, RuleSet
from .pipeline import Pipeline

__all__ = ["SignificantRuleMiner", "MiningReport",
           "mine_significant_rules", "CORRECTIONS"]

#: Live registry view: canonical correction name -> Table 3
#: abbreviation. Kept for backwards compatibility; the source of truth
#: is :func:`repro.corrections.available_corrections`, and corrections
#: registered by downstream code appear here automatically.
CORRECTIONS: Mapping[str, str] = CorrectionsView()


@dataclass
class MiningReport:
    """What a mining run hands back to the caller.

    ``ruleset`` is the full scored rule population (``None`` for the
    holdout corrections, which never score the whole dataset — that is
    their point); ``result`` carries the significant rules and the
    decision threshold.
    """

    dataset: Dataset
    correction: str
    result: CorrectionResult
    ruleset: Optional[RuleSet] = field(default=None, repr=False)

    @property
    def significant(self) -> List[ClassRule]:
        """Rules declared statistically significant."""
        return self.result.significant

    @property
    def n_tested(self) -> int:
        """Hypotheses the correction accounted for (``Nt``)."""
        return self.result.n_tests

    def summary(self) -> str:
        """One-line outcome description."""
        return (f"{self.dataset.name}: {self.result.summary()} "
                f"[correction={self.correction}]")

    def describe(self, limit: int = 20) -> str:
        """Multi-line listing of the most significant rules."""
        ordered = sorted(self.significant, key=lambda r: r.p_value)
        lines = [self.summary()]
        for rule in ordered[:limit]:
            lines.append("  " + rule.describe(self.dataset))
        if len(ordered) > limit:
            lines.append(f"  ... and {len(ordered) - limit} more")
        return "\n".join(lines)


class SignificantRuleMiner:
    """Configurable pipeline: mine, score, correct.

    Parameters
    ----------
    min_sup:
        Minimum coverage of a rule's left-hand side.
    min_conf:
        Domain-significance filter (Section 2.3 recommends choosing it
        from domain knowledge, independent of the statistics).
    algorithm:
        The registered miner enumerating the hypothesis set, in any
        accepted spelling (default ``"closed"``, the paper's choice);
        see ``python -m repro --list-algorithms`` and
        :mod:`repro.mining.registry`. ``miner_options`` passes extra
        keyword options to it.
    correction:
        Any registered correction, in any accepted spelling — the
        canonical name (``"bh"``), the Table 3 abbreviation (``"BH"``)
        or an alias; see :data:`CORRECTIONS` and
        ``python -m repro corrections``. The permutation corrections
        accept ``n_permutations`` and ``policy`` (the pattern forest's
        storage/kernel policy, default ``"packed"`` — the uint64
        bitmap kernel; all policies are bit-identical in results); the
        holdout corrections accept ``holdout_split`` (``"structured"``
        or ``"random"``) and use the paper's convention of halving
        ``min_sup`` on the exploratory half.
    alpha:
        Error budget: FWER or FDR level depending on the correction.
    scorer:
        ``"fisher"`` (default), ``"fisher-midp"`` or ``"chi2"``.
    redundancy_delta:
        When set, apply the Section 7 representative-pattern reduction
        before scoring: near-duplicate sub/super-pattern chains whose
        supports agree within a factor ``1 - delta`` are collapsed to
        one representative, shrinking the hypothesis count ``Nt``. Not
        available with the holdout corrections (they mine their own
        halves).
    n_jobs / backend:
        Parallel execution of the permutation pass (``-1`` = all
        cores; backends ``"serial"``, ``"threads"``, ``"processes"``).
        Bit-identical results at any worker count; see
        ``docs/parallel.md``.
    """

    def __init__(self, min_sup: int, min_conf: float = 0.0,
                 correction: str = "bh", alpha: float = 0.05,
                 algorithm: str = "closed",
                 miner_options: Optional[Mapping[str, object]] = None,
                 n_permutations: int = 1000,
                 policy: str = DEFAULT_POLICY,
                 holdout_split: str = "random",
                 max_length: Optional[int] = None,
                 scorer: str = "fisher",
                 seed: Optional[int] = None,
                 redundancy_delta: Optional[float] = None,
                 n_jobs: int = 1,
                 backend: str = "serial") -> None:
        resolved = resolve_correction(correction)
        if (redundancy_delta is not None
                and not resolved.spec.supports_redundancy):
            raise CorrectionError(
                f"redundancy_delta is not supported with the "
                f"{resolved.name!r} correction (holdout corrections "
                f"mine their own halves)")
        self.min_sup = min_sup
        self.min_conf = min_conf
        # Variant spellings ("HD_BC") bind context overrides; storing
        # the canonical name would silently drop that binding.
        self.correction = (correction if resolved.overrides
                           else resolved.name)
        self.algorithm = algorithm
        self.miner_options = dict(miner_options or {})
        self.alpha = alpha
        self.n_permutations = n_permutations
        self.policy = policy
        self.holdout_split = holdout_split
        self.max_length = max_length
        self.scorer = scorer
        self.seed = seed
        self.redundancy_delta = redundancy_delta
        self.n_jobs = n_jobs
        self.backend = backend

    def pipeline(self) -> Pipeline:
        """The single-correction :class:`Pipeline` for the *current*
        attribute values (attributes may be mutated between runs)."""
        return Pipeline(
            min_sup=self.min_sup, corrections=(self.correction,),
            algorithm=self.algorithm,
            miner_options=dict(self.miner_options),
            alpha=self.alpha, min_conf=self.min_conf,
            max_length=self.max_length, scorer=self.scorer,
            seed=self.seed, n_permutations=self.n_permutations,
            policy=self.policy,
            holdout_split=self.holdout_split,
            redundancy_delta=self.redundancy_delta,
            n_jobs=self.n_jobs, backend=self.backend)

    def mine(self, dataset: Dataset) -> MiningReport:
        """Run the configured pipeline on one dataset."""
        return self.pipeline().run(dataset).report()


def mine_significant_rules(dataset: Dataset, min_sup: int,
                           correction: str = "bh", alpha: float = 0.05,
                           **kwargs) -> MiningReport:
    """One-call pipeline; see :class:`SignificantRuleMiner`."""
    miner = SignificantRuleMiner(min_sup=min_sup, correction=correction,
                                 alpha=alpha, **kwargs)
    return miner.mine(dataset)
